"""Unit tests for workload characterization and Amdahl analysis."""

import math

import pytest

from repro.core.characterize import (
    amdahl_speedup,
    characterize,
    end_to_end_speedup,
    intensity_histogram,
    max_amdahl_speedup,
    time_weighted_shares,
)
from repro.core.profile import WorkloadProfile
from repro.core.workload import Stage, TaskGraph, Workload
from repro.errors import ConfigurationError


def _graph():
    return TaskGraph("g", [
        Stage("hot", WorkloadProfile(name="hot", flops=90.0,
                                     op_class="gemm"), rate_hz=1.0),
        Stage("cold", WorkloadProfile(name="cold", flops=10.0,
                                      op_class="search"),
              deps=("hot",)),
    ])


class TestAmdahl:
    def test_basic_value(self):
        # 50% at 2x -> 1 / (0.5 + 0.25) = 1.333...
        assert amdahl_speedup(0.5, 2.0) == pytest.approx(4.0 / 3.0)

    def test_infinite_kernel_speedup_limit(self):
        assert amdahl_speedup(0.9, 1e12) == pytest.approx(
            max_amdahl_speedup(0.9), rel=1e-6
        )

    def test_ceiling(self):
        assert max_amdahl_speedup(0.9) == pytest.approx(10.0)
        assert math.isinf(max_amdahl_speedup(1.0))

    def test_invalid_fraction(self):
        with pytest.raises(ConfigurationError):
            amdahl_speedup(1.5, 2.0)
        with pytest.raises(ConfigurationError):
            amdahl_speedup(0.5, 0.0)

    def test_speedup_of_one_is_identity(self):
        assert amdahl_speedup(0.7, 1.0) == pytest.approx(1.0)


class TestCharacterize:
    def test_hotspot_ordering(self):
        report = characterize(Workload(name="w", graph=_graph()))
        assert report.top_hotspot()[0] == "hot"
        assert report.top_hotspot()[1] == pytest.approx(0.9)

    def test_amdahl_ceilings(self):
        report = characterize(Workload(name="w", graph=_graph()))
        assert report.amdahl_ceilings["hot"] == pytest.approx(10.0)
        assert report.amdahl_ceilings["cold"] == pytest.approx(1.0 / 0.9)

    def test_op_class_shares(self):
        report = characterize(Workload(name="w", graph=_graph()))
        assert report.op_class_shares["gemm"] == pytest.approx(0.9)
        # Shares are sorted descending.
        assert list(report.op_class_shares) == ["gemm", "search"]


class TestEndToEnd:
    def test_speedup_matches_amdahl(self):
        g = _graph()
        base = {"hot": 0.9, "cold": 0.1}
        accel = {"hot": 0.09, "cold": 0.1}  # 10x on the hot stage
        measured = end_to_end_speedup(g, base, accel)
        assert measured == pytest.approx(amdahl_speedup(0.9, 10.0))

    def test_unaccelerated_stages_default_to_baseline(self):
        g = _graph()
        base = {"hot": 1.0, "cold": 1.0}
        assert end_to_end_speedup(g, base, {}) == pytest.approx(1.0)

    def test_missing_baseline_raises(self):
        with pytest.raises(ConfigurationError):
            end_to_end_speedup(_graph(), {"hot": 1.0}, {})

    def test_time_weighted_shares(self):
        g = _graph()
        shares = time_weighted_shares(g, {"hot": 3.0, "cold": 1.0})
        assert shares["hot"] == pytest.approx(0.75)


class TestIntensityHistogram:
    def test_bucketing(self):
        profiles = [
            WorkloadProfile(name="low", flops=1.0, bytes_read=100.0),
            WorkloadProfile(name="high", flops=1e6, bytes_read=1.0),
        ]
        hist = intensity_histogram(profiles)
        assert sum(hist.values()) == 2
        assert hist["<= 0.1"] == 1
        assert hist["> 100"] == 1

    def test_bad_edges(self):
        with pytest.raises(ConfigurationError):
            intensity_histogram([], edges=(1.0, 0.5))
