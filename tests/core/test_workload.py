"""Unit tests for Kernel, Stage, TaskGraph, and Workload."""

import pytest

from repro.core.profile import WorkloadProfile
from repro.core.workload import (
    Kernel,
    Stage,
    TaskGraph,
    Workload,
    linear_pipeline,
)
from repro.errors import ConfigurationError


def _p(name, flops=1.0, op_class="generic"):
    return WorkloadProfile(name=name, flops=flops, op_class=op_class)


class TestKernel:
    def test_static_profile(self):
        k = Kernel(name="k", static_profile=_p("k", 5.0))
        assert k.profile().flops == 5.0

    def test_profile_fn(self):
        k = Kernel(name="k",
                   profile_fn=lambda n: _p("k", float(n)))
        assert k.profile(n=7).flops == 7.0

    def test_neither_raises(self):
        with pytest.raises(ConfigurationError):
            Kernel(name="k").profile()


class TestTaskGraph:
    def _diamond(self):
        return TaskGraph("d", [
            Stage("src", _p("src"), rate_hz=10.0),
            Stage("left", _p("left", 2.0), deps=("src",)),
            Stage("right", _p("right", 3.0), deps=("src",)),
            Stage("sink", _p("sink"), deps=("left", "right")),
        ])

    def test_topological_order(self):
        g = self._diamond()
        names = [s.name for s in g.stages]
        assert names.index("src") < names.index("left")
        assert names.index("left") < names.index("sink")
        assert names.index("right") < names.index("sink")

    def test_sources_and_sinks(self):
        g = self._diamond()
        assert [s.name for s in g.sources()] == ["src"]
        assert [s.name for s in g.sinks()] == ["sink"]

    def test_cycle_detection(self):
        with pytest.raises(ConfigurationError, match="cycle"):
            TaskGraph("c", [
                Stage("a", _p("a"), deps=("b",)),
                Stage("b", _p("b"), deps=("a",)),
            ])

    def test_unknown_dep(self):
        with pytest.raises(ConfigurationError, match="unknown"):
            TaskGraph("u", [Stage("a", _p("a"), deps=("ghost",))])

    def test_duplicate_stage(self):
        with pytest.raises(ConfigurationError, match="duplicate"):
            TaskGraph("dup", [Stage("a", _p("a")),
                              Stage("a", _p("a"))])

    def test_critical_path_picks_longer_branch(self):
        g = self._diamond()
        latency = {"src": 1.0, "left": 5.0, "right": 1.0, "sink": 1.0}
        length, path = g.critical_path(latency)
        assert length == pytest.approx(7.0)
        assert path == ["src", "left", "sink"]

    def test_critical_path_missing_latency(self):
        g = self._diamond()
        with pytest.raises(ConfigurationError, match="missing latency"):
            g.critical_path({"src": 1.0})

    def test_total_profile_sums(self):
        g = self._diamond()
        assert g.total_profile().flops == pytest.approx(1 + 2 + 3 + 1)

    def test_contains_and_len(self):
        g = self._diamond()
        assert len(g) == 4
        assert "src" in g
        assert "ghost" not in g

    def test_stage_lookup_error(self):
        with pytest.raises(ConfigurationError):
            self._diamond().stage("ghost")


class TestWorkload:
    def test_deadline(self):
        g = linear_pipeline("p", [_p("a")], rate_hz=20.0)
        w = Workload(name="w", graph=g, target_rate_hz=20.0)
        assert w.deadline_s() == pytest.approx(0.05)

    def test_deadline_requires_positive_rate(self):
        g = linear_pipeline("p", [_p("a")])
        w = Workload(name="w", graph=g, target_rate_hz=0.0)
        with pytest.raises(ConfigurationError):
            w.deadline_s()

    def test_composition_from_graph(self):
        g = TaskGraph("g", [
            Stage("a", _p("a", 75.0, op_class="gemm"), rate_hz=1.0),
            Stage("b", _p("b", 25.0, op_class="search"), deps=("a",)),
        ])
        w = Workload(name="w", graph=g)
        comp = w.composition()
        assert comp["gemm"] == pytest.approx(0.75)
        assert comp["search"] == pytest.approx(0.25)

    def test_explicit_composition_wins(self):
        g = linear_pipeline("p", [_p("a")])
        w = Workload(name="w", graph=g,
                     kernel_composition={"custom": 1.0})
        assert w.composition() == {"custom": 1.0}


class TestLinearPipeline:
    def test_chain_structure(self):
        g = linear_pipeline("p", [_p("a"), _p("b"), _p("c")],
                            rate_hz=5.0)
        assert [s.name for s in g.stages] == ["a", "b", "c"]
        assert g.stage("b").deps == ("a",)
        assert g.stage("a").rate_hz == 5.0
        assert g.stage("b").rate_hz is None
