"""Unit tests for the Seven Challenges design advisor."""

import pytest

from repro.core.advisor import (
    CHALLENGE_PITFALLS,
    Challenge,
    DesignReview,
    EvaluationPlan,
    Severity,
    SevenChallengesAdvisor,
)


def _good_review(**overrides):
    """A review that should pass all seven checks."""
    defaults = dict(
        name="good",
        accelerated_categories=("gemm",),
        target_platform="asic",
        evaluation=EvaluationPlan(
            metrics=("latency_s", "success_rate", "mission_energy_j"),
            evaluated_workloads=("a", "b", "c"),
            baseline_platforms=("cpu", "gpu"),
            end_to_end=True,
            closed_loop=True,
        ),
        expert_consultations=2,
        algorithm_vintage_years=(1.0,),
        integrates_with_middleware=True,
        system_budget_accounted=True,
        shared_resource_analysis=True,
        lifecycle_analysis=True,
        deployment_scale_units=10000,
    )
    defaults.update(overrides)
    return DesignReview(**defaults)


@pytest.fixture
def advisor():
    return SevenChallengesAdvisor()


class TestCleanReview:
    def test_no_findings(self, advisor):
        assert advisor.audit(_good_review()) == []

    def test_perfect_score(self, advisor):
        assert advisor.score(_good_review()) == 100.0


class TestBuildBridges:
    def test_no_experts_is_critical(self, advisor):
        review = _good_review(expert_consultations=0)
        findings = advisor.audit(review)
        hits = [f for f in findings
                if f.challenge is Challenge.BUILD_BRIDGES]
        assert any(f.severity is Severity.CRITICAL for f in hits)

    def test_stale_algorithm_flagged(self, advisor):
        review = _good_review(algorithm_vintage_years=(12.0,))
        findings = advisor.audit(review)
        assert any(f.challenge is Challenge.BUILD_BRIDGES
                   and "state of the art" in f.message
                   for f in findings)

    def test_no_middleware_flagged(self, advisor):
        review = _good_review(integrates_with_middleware=False)
        assert any(f.challenge is Challenge.BUILD_BRIDGES
                   for f in advisor.audit(review))


class TestMetricsMatter:
    def test_throughput_only_is_critical(self, advisor):
        review = _good_review(evaluation=EvaluationPlan(
            metrics=("throughput", "tops_per_watt"),
            evaluated_workloads=("a", "b", "c"),
            baseline_platforms=("cpu", "gpu"),
            end_to_end=True, closed_loop=True,
        ))
        hits = [f for f in advisor.audit(review)
                if f.challenge is Challenge.METRICS_MATTER]
        assert any(f.severity is Severity.CRITICAL for f in hits)

    def test_no_metrics_is_critical(self, advisor):
        review = _good_review(evaluation=EvaluationPlan(
            metrics=(), evaluated_workloads=("a", "b", "c"),
            baseline_platforms=("cpu", "gpu"),
            end_to_end=True, closed_loop=True,
        ))
        hits = [f for f in advisor.audit(review)
                if f.challenge is Challenge.METRICS_MATTER]
        assert hits and hits[0].severity is Severity.CRITICAL


class TestWidgetism:
    def test_narrow_evaluation_flagged(self, advisor):
        review = _good_review(evaluation=EvaluationPlan(
            metrics=("success_rate", "mission_energy_j"),
            evaluated_workloads=("only-one",),
            baseline_platforms=("cpu", "gpu"),
            end_to_end=True, closed_loop=True,
        ))
        assert any(f.challenge is Challenge.WIDGETISM
                   for f in advisor.audit(review))


class TestPumpTheBrakes:
    def test_missing_system_budget_is_critical(self, advisor):
        review = _good_review(system_budget_accounted=False)
        hits = [f for f in advisor.audit(review)
                if f.challenge is Challenge.PUMP_THE_BRAKES]
        assert any(f.severity is Severity.CRITICAL for f in hits)

    def test_missing_contention_analysis_warns(self, advisor):
        review = _good_review(shared_resource_analysis=False)
        hits = [f for f in advisor.audit(review)
                if f.challenge is Challenge.PUMP_THE_BRAKES]
        assert hits and hits[0].severity is Severity.WARNING


class TestChipsAndSalsa:
    def test_asic_without_baselines_flagged(self, advisor):
        review = _good_review(evaluation=EvaluationPlan(
            metrics=("success_rate", "mission_energy_j"),
            evaluated_workloads=("a", "b", "c"),
            baseline_platforms=(),
            end_to_end=True, closed_loop=True,
        ))
        assert any(f.challenge is Challenge.CHIPS_AND_SALSA
                   for f in advisor.audit(review))

    def test_gpu_target_not_flagged(self, advisor):
        review = _good_review(
            target_platform="gpu",
            evaluation=EvaluationPlan(
                metrics=("success_rate", "mission_energy_j"),
                evaluated_workloads=("a", "b", "c"),
                baseline_platforms=("cpu",),
                end_to_end=True, closed_loop=True,
            ),
        )
        assert not [f for f in advisor.audit(review)
                    if f.challenge is Challenge.CHIPS_AND_SALSA
                    and f.severity is not Severity.INFO]


class TestForestVsTrees:
    def test_kernel_only_eval_is_critical(self, advisor):
        review = _good_review(evaluation=EvaluationPlan(
            metrics=("success_rate", "mission_energy_j"),
            evaluated_workloads=("a", "b", "c"),
            baseline_platforms=("cpu", "gpu"),
            end_to_end=False, closed_loop=False,
        ))
        hits = [f for f in advisor.audit(review)
                if f.challenge is Challenge.FOREST_VS_TREES]
        assert hits and hits[0].severity is Severity.CRITICAL

    def test_open_loop_warns(self, advisor):
        review = _good_review(evaluation=EvaluationPlan(
            metrics=("success_rate", "mission_energy_j"),
            evaluated_workloads=("a", "b", "c"),
            baseline_platforms=("cpu", "gpu"),
            end_to_end=True, closed_loop=False,
        ))
        hits = [f for f in advisor.audit(review)
                if f.challenge is Challenge.FOREST_VS_TREES]
        assert hits and hits[0].severity is Severity.WARNING


class TestDesignGlobal:
    def test_no_lca_at_scale_is_critical(self, advisor):
        review = _good_review(lifecycle_analysis=False,
                              deployment_scale_units=1_000_000)
        hits = [f for f in advisor.audit(review)
                if f.challenge is Challenge.DESIGN_GLOBAL]
        assert hits and hits[0].severity is Severity.CRITICAL

    def test_no_lca_small_scale_warns(self, advisor):
        review = _good_review(lifecycle_analysis=False,
                              deployment_scale_units=5)
        hits = [f for f in advisor.audit(review)
                if f.challenge is Challenge.DESIGN_GLOBAL]
        assert hits and hits[0].severity is Severity.WARNING


class TestScoringAndOrdering:
    def test_findings_sorted_worst_first(self, advisor):
        review = DesignReview(
            name="naive", accelerated_categories=("niche",),
        )
        findings = advisor.audit(review)
        severities = [f.severity for f in findings]
        order = {Severity.CRITICAL: 0, Severity.WARNING: 1,
                 Severity.INFO: 2}
        ranks = [order[s] for s in severities]
        assert ranks == sorted(ranks)

    def test_naive_review_scores_badly(self, advisor):
        review = DesignReview(
            name="naive", accelerated_categories=("niche",),
        )
        assert advisor.score(review) < 40.0

    def test_pitfall_table_complete(self):
        assert set(CHALLENGE_PITFALLS) == set(Challenge)
