"""Unit tests for cross-cutting kernel identification (§2.3)."""

import pytest

from repro.core.crosscut import (
    breadth,
    coverage,
    find_crosscutting_kernels,
    widgetism_score,
)
from repro.core.profile import WorkloadProfile
from repro.core.workload import Stage, TaskGraph, Workload
from repro.errors import ConfigurationError


def _workload(name, shares):
    """A workload whose op-class composition is exactly ``shares``."""
    stages = []
    prev = None
    for i, (op_class, share) in enumerate(shares.items()):
        stage = Stage(
            name=f"s{i}",
            profile=WorkloadProfile(name=f"s{i}", flops=share * 100,
                                    op_class=op_class),
            deps=(prev,) if prev else (),
            rate_hz=1.0 if prev is None else None,
        )
        stages.append(stage)
        prev = stage.name
    return Workload(name=name, graph=TaskGraph(name, stages))


@pytest.fixture
def suite():
    return [
        _workload("w1", {"gemm": 0.6, "stencil": 0.3, "niche-a": 0.1}),
        _workload("w2", {"gemm": 0.5, "search": 0.5}),
        _workload("w3", {"gemm": 0.4, "stencil": 0.5, "niche-b": 0.1}),
    ]


class TestCoverage:
    def test_full_coverage(self, suite):
        cats = {"gemm", "stencil", "search", "niche-a", "niche-b"}
        assert coverage(cats, suite) == pytest.approx(1.0)

    def test_single_category(self, suite):
        assert coverage(["gemm"], suite) == pytest.approx(0.5)

    def test_empty_suite_raises(self):
        with pytest.raises(ConfigurationError):
            coverage(["gemm"], [])


class TestBreadth:
    def test_crosscutting_has_full_breadth(self, suite):
        assert breadth("gemm", suite) == 3

    def test_niche_has_breadth_one(self, suite):
        assert breadth("niche-a", suite) == 1

    def test_threshold_filters(self, suite):
        assert breadth("niche-a", suite, threshold=0.2) == 0


class TestGreedySelection:
    def test_picks_gemm_first(self, suite):
        report = find_crosscutting_kernels(suite, budget=3)
        assert report.selected[0] == "gemm"

    def test_coverage_curve_monotone(self, suite):
        report = find_crosscutting_kernels(suite, budget=5)
        curve = report.coverage_curve
        assert all(b >= a for a, b in zip(curve, curve[1:]))

    def test_budget_respected(self, suite):
        report = find_crosscutting_kernels(suite, budget=2)
        assert len(report.selected) <= 2

    def test_bad_budget(self, suite):
        with pytest.raises(ConfigurationError):
            find_crosscutting_kernels(suite, budget=0)

    def test_breadth_report_sorted(self, suite):
        report = find_crosscutting_kernels(suite, budget=2)
        values = list(report.per_category_breadth.values())
        assert values == sorted(values, reverse=True)


class TestWidgetismScore:
    def test_pure_widget_scores_one(self, suite):
        assert widgetism_score("niche-a", suite) == pytest.approx(1.0)

    def test_crosscutting_scores_zero(self, suite):
        assert widgetism_score("gemm", suite) == pytest.approx(0.0)

    def test_empty_suite_raises(self):
        with pytest.raises(ConfigurationError):
            widgetism_score("gemm", [])
