"""Unit tests for WorkloadProfile, CostEstimate, and OpCounter."""

import math

import pytest

from repro.core.profile import (
    DIVERGENCE_DERATING,
    CostEstimate,
    DivergenceClass,
    OpCounter,
    WorkloadProfile,
)
from repro.errors import ProfileError


class TestWorkloadProfile:
    def test_totals(self):
        p = WorkloadProfile(name="k", flops=100.0, int_ops=50.0,
                            bytes_read=10.0, bytes_written=5.0)
        assert p.total_ops == 150.0
        assert p.total_bytes == 15.0
        assert p.arithmetic_intensity == pytest.approx(10.0)

    def test_intensity_edge_cases(self):
        compute_only = WorkloadProfile(name="c", flops=10.0)
        assert math.isinf(compute_only.arithmetic_intensity)
        empty = WorkloadProfile(name="e")
        assert empty.arithmetic_intensity == 0.0

    def test_negative_counts_rejected(self):
        with pytest.raises(ProfileError):
            WorkloadProfile(name="bad", flops=-1.0)
        with pytest.raises(ProfileError):
            WorkloadProfile(name="bad", bytes_read=-1.0)

    def test_parallel_fraction_bounds(self):
        with pytest.raises(ProfileError):
            WorkloadProfile(name="bad", parallel_fraction=1.5)
        with pytest.raises(ProfileError):
            WorkloadProfile(name="bad", parallel_fraction=-0.1)

    def test_scaled(self):
        p = WorkloadProfile(name="k", flops=10.0, bytes_read=4.0)
        doubled = p.scaled(2.0)
        assert doubled.flops == 20.0
        assert doubled.bytes_read == 8.0
        # Size-independent fields are preserved.
        assert doubled.parallel_fraction == p.parallel_fraction
        assert doubled.divergence == p.divergence

    def test_scaled_rejects_negative(self):
        with pytest.raises(ProfileError):
            WorkloadProfile(name="k", flops=1.0).scaled(-1.0)

    def test_combined_adds_counts(self):
        a = WorkloadProfile(name="a", flops=10.0, bytes_read=2.0,
                            working_set_bytes=100.0)
        b = WorkloadProfile(name="b", flops=30.0, bytes_written=4.0,
                            working_set_bytes=50.0)
        c = a.combined(b)
        assert c.flops == 40.0
        assert c.total_bytes == 6.0
        # Sequential phases reuse memory: working set is the max.
        assert c.working_set_bytes == 100.0

    def test_combined_parallel_fraction_is_op_weighted(self):
        a = WorkloadProfile(name="a", flops=90.0, parallel_fraction=1.0)
        b = WorkloadProfile(name="b", flops=10.0, parallel_fraction=0.0)
        assert a.combined(b).parallel_fraction == pytest.approx(0.9)

    def test_combined_takes_worse_divergence(self):
        a = WorkloadProfile(name="a", flops=1.0,
                            divergence=DivergenceClass.NONE)
        b = WorkloadProfile(name="b", flops=1.0,
                            divergence=DivergenceClass.HIGH)
        assert a.combined(b).divergence == DivergenceClass.HIGH

    def test_combined_op_class(self):
        a = WorkloadProfile(name="a", flops=1.0, op_class="gemm")
        b = WorkloadProfile(name="b", flops=1.0, op_class="gemm")
        c = WorkloadProfile(name="c", flops=1.0, op_class="stencil")
        assert a.combined(b).op_class == "gemm"
        assert a.combined(c).op_class == "mixed"

    def test_merge_empty(self):
        merged = WorkloadProfile.merge([], name="nothing")
        assert merged.total_ops == 0.0
        assert merged.name == "nothing"

    def test_merge_keeps_name(self):
        profiles = [WorkloadProfile(name=f"p{i}", flops=1.0)
                    for i in range(3)]
        merged = WorkloadProfile.merge(profiles, name="all")
        assert merged.name == "all"
        assert merged.flops == 3.0


class TestCostEstimate:
    def test_edp_and_throughput(self):
        e = CostEstimate(latency_s=0.01, energy_j=0.5)
        assert e.edp == pytest.approx(0.005)
        assert e.throughput_hz() == pytest.approx(100.0)

    def test_zero_latency_throughput(self):
        e = CostEstimate(latency_s=0.0, energy_j=0.0)
        assert math.isinf(e.throughput_hz())

    def test_negative_rejected(self):
        with pytest.raises(ProfileError):
            CostEstimate(latency_s=-1.0, energy_j=0.0)


class TestOpCounter:
    def test_gemm_counting(self):
        c = OpCounter(name="g")
        c.add_gemm(4, 5, 6)
        assert c.flops == 2 * 4 * 5 * 6
        assert c.bytes_read == 8 * (4 * 6 + 6 * 5)
        assert c.bytes_written == 8 * 4 * 5

    def test_axpy_counting(self):
        c = OpCounter(name="a")
        c.add_axpy(100)
        assert c.flops == 200.0
        assert c.bytes_read == 1600.0

    def test_working_set_tracks_peak(self):
        c = OpCounter(name="w")
        c.note_working_set(100.0)
        c.note_working_set(50.0)
        assert c.working_set_bytes == 100.0

    def test_profile_freeze(self):
        c = OpCounter(name="k")
        c.add_flops(10.0)
        c.add_int_ops(5.0)
        p = c.profile(parallel_fraction=0.5,
                      divergence=DivergenceClass.HIGH,
                      op_class="search")
        assert p.flops == 10.0
        assert p.int_ops == 5.0
        assert p.op_class == "search"
        assert p.divergence == DivergenceClass.HIGH

    def test_events_counted(self):
        c = OpCounter(name="k")
        c.add_flops(1.0)
        c.add_read(1.0)
        assert c.events == 2


def test_derating_table_covers_all_classes():
    assert set(DIVERGENCE_DERATING) == set(DivergenceClass)
    assert DIVERGENCE_DERATING[DivergenceClass.NONE] == 1.0
    assert (DIVERGENCE_DERATING[DivergenceClass.HIGH]
            < DIVERGENCE_DERATING[DivergenceClass.LOW])
