"""Unit tests for the pipeline DSL and the workload-drift feedback."""

import pytest

from repro.core import (
    WorkloadSnapshot,
    WorkloadTimeline,
    accelerator_value_over_time,
    redesign_recommendation,
)
from repro.core.dsl import (
    KERNEL_REGISTRY,
    parse_pipeline,
    verify_pipeline,
)
from repro.core.profile import WorkloadProfile
from repro.core.workload import Stage, TaskGraph, Workload
from repro.errors import ConfigurationError
from repro.hw.asic import widget_asic

GOOD_SOURCE = """
# a perception pipeline a roboticist could write
pipeline uav-perception @ 30Hz
stage detect: harris(image_size=480) -> 200000B
stage track: lk(n_points=120) after detect -> 4000B
stage fuse: cholesky(n=60) after track
"""


class TestParser:
    def test_parses_structure(self):
        workload = parse_pipeline(GOOD_SOURCE)
        assert workload.name == "uav-perception"
        assert workload.target_rate_hz == 30.0
        assert len(workload.graph) == 3
        assert workload.graph.stage("track").deps == ("detect",)
        assert workload.graph.stage("detect").rate_hz == 30.0
        assert workload.graph.stage("detect").output_bytes == 200000.0

    def test_kernel_args_reach_profiles(self):
        workload = parse_pipeline(GOOD_SOURCE)
        detect = workload.graph.stage("detect").profile
        assert detect.flops == pytest.approx(480 * 480 * 30.0)

    def test_comments_and_blank_lines_ignored(self):
        assert parse_pipeline(GOOD_SOURCE).name == "uav-perception"

    def test_unknown_kernel(self):
        with pytest.raises(ConfigurationError, match="unknown kernel"):
            parse_pipeline(
                "pipeline p @ 10Hz\nstage a: warp_drive(x=1)"
            )

    def test_bad_kernel_args(self):
        with pytest.raises(ConfigurationError, match="bad arguments"):
            parse_pipeline(
                "pipeline p @ 10Hz\nstage a: harris(bogus_arg=3)"
            )

    def test_missing_header(self):
        with pytest.raises(ConfigurationError, match="header"):
            parse_pipeline("stage a: harris(image_size=64)")

    def test_unknown_dependency_propagates(self):
        with pytest.raises(ConfigurationError, match="unknown stage"):
            parse_pipeline(
                "pipeline p @ 10Hz\n"
                "stage a: harris(image_size=64) after ghost"
            )

    def test_syntax_error_reports_line(self):
        with pytest.raises(ConfigurationError, match="line 3"):
            parse_pipeline(
                "pipeline p @ 10Hz\n"
                "stage a: harris(image_size=64)\n"
                "this is not a stage\n"
            )

    def test_registry_is_extensible(self):
        KERNEL_REGISTRY["custom"] = \
            lambda n: WorkloadProfile(name="custom", flops=float(n))
        try:
            workload = parse_pipeline(
                "pipeline p @ 5Hz\nstage a: custom(n=42)"
            )
            assert workload.graph.stage("a").profile.flops == 42.0
        finally:
            del KERNEL_REGISTRY["custom"]


class TestVerifier:
    def test_feasible_pipeline_verifies(self, cpu):
        workload = parse_pipeline(GOOD_SOURCE)
        report = verify_pipeline(workload, cpu)
        assert report.verified
        assert all(u < 1.0
                   for u in report.stage_utilization.values())
        assert report.critical_path_s < report.period_s

    def test_overloaded_stage_fails_stability(self, cpu):
        source = (
            "pipeline hungry @ 30Hz\n"
            "stage big: gemm(m=2048, n=2048, k=2048)\n"
        )
        report = verify_pipeline(parse_pipeline(source), cpu)
        assert not report.verified
        assert any(v.check == "stability" for v in report.violations)
        assert any("utilization" in v.detail
                   for v in report.violations)

    def test_unmapped_kernel_fails_mappability(self):
        workload = parse_pipeline(GOOD_SOURCE)
        asic = widget_asic("gemm")
        report = verify_pipeline(workload, asic)
        assert not report.verified
        assert all(v.check == "mappability"
                   for v in report.violations
                   if v.check != "deadline")

    def test_deadline_check_fires_when_chain_too_long(self, cpu):
        # Three stages, each ~0.7 of a period: stable individually,
        # but one activation cannot traverse the chain in a period.
        source = (
            "pipeline tight @ 30Hz\n"
            "stage a: gemm(m=512, n=512, k=800)\n"
            "stage b: gemm(m=512, n=512, k=800) after a\n"
            "stage c: gemm(m=512, n=512, k=800) after b\n"
        )
        report = verify_pipeline(parse_pipeline(source), cpu)
        assert any(v.check == "deadline" for v in report.violations)


def _snapshot(year, shares):
    stages, prev = [], None
    for i, (op_class, share) in enumerate(shares.items()):
        stage = Stage(
            f"s{i}",
            WorkloadProfile(name=f"s{i}", flops=share * 100.0,
                            op_class=op_class),
            deps=(prev,) if prev else (),
            rate_hz=1.0 if prev is None else None,
        )
        stages.append(stage)
        prev = stage.name
    return WorkloadSnapshot(
        year, Workload(name=f"w{year}",
                       graph=TaskGraph(f"g{year}", stages))
    )


@pytest.fixture
def drifting_timeline():
    """Classical CV (stencil) giving way to deep learning (gemm)."""
    return WorkloadTimeline([
        _snapshot(2014, {"stencil": 0.7, "gemm": 0.2, "search": 0.1}),
        _snapshot(2018, {"stencil": 0.45, "gemm": 0.45,
                         "search": 0.1}),
        _snapshot(2022, {"stencil": 0.2, "gemm": 0.7, "search": 0.1}),
        _snapshot(2026, {"stencil": 0.1, "gemm": 0.8, "search": 0.1}),
    ])


class TestMovingTarget:
    def test_bottleneck_shifts(self, drifting_timeline):
        assert drifting_timeline.bottleneck_class(2014) == "stencil"
        assert drifting_timeline.bottleneck_class(2026) == "gemm"

    def test_coverage_decays_for_stale_design(self, drifting_timeline):
        trend = accelerator_value_over_time(
            drifting_timeline, ["stencil"], kernel_speedup=10.0
        )
        coverages = [trend.coverage_by_year[y]
                     for y in drifting_timeline.years()]
        assert coverages == sorted(coverages, reverse=True)
        assert trend.stale_year == 2022

    def test_speedup_decays_with_coverage(self, drifting_timeline):
        trend = accelerator_value_over_time(
            drifting_timeline, ["stencil"], kernel_speedup=10.0
        )
        speedups = [trend.end_to_end_speedup_by_year[y]
                    for y in drifting_timeline.years()]
        assert speedups[0] > 2.0
        assert speedups[-1] < 1.2

    def test_recommendation_names_new_bottleneck(self,
                                                 drifting_timeline):
        trend = accelerator_value_over_time(
            drifting_timeline, ["stencil"]
        )
        assert redesign_recommendation(drifting_timeline,
                                       trend) == "gemm"

    def test_covered_design_gets_no_recommendation(self,
                                                   drifting_timeline):
        trend = accelerator_value_over_time(
            drifting_timeline, ["gemm", "stencil"]
        )
        assert redesign_recommendation(drifting_timeline,
                                       trend) is None

    def test_timeline_validation(self):
        snap = _snapshot(2020, {"gemm": 1.0})
        with pytest.raises(ConfigurationError):
            WorkloadTimeline([snap, snap])
        with pytest.raises(ConfigurationError):
            WorkloadTimeline([])
