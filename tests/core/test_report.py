"""Unit tests for text report rendering."""

import pytest

from repro.core.report import ascii_bar_chart, format_series, format_table


class TestFormatTable:
    def test_alignment_and_content(self):
        text = format_table(["name", "value"],
                            [["alpha", 1], ["b", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert "alpha" in lines[2]
        # All lines equally wide.
        assert len({len(line) for line in lines}) == 1

    def test_title(self):
        text = format_table(["a"], [[1]], title="My Title")
        assert text.splitlines()[0] == "My Title"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_float_formatting(self):
        text = format_table(["x"], [[0.000012345]], precision=3)
        assert "1.234e-05" in text

    def test_large_float_scientific(self):
        text = format_table(["x"], [[1.5e9]])
        assert "e+09" in text

    def test_zero_renders_plainly(self):
        assert "0" in format_table(["x"], [[0.0]]).splitlines()[-1]


class TestSeries:
    def test_series_is_two_columns(self):
        text = format_series("year", "count", [[2020, 5], [2021, 9]])
        assert "year" in text and "count" in text
        assert "2021" in text


class TestBarChart:
    def test_bars_scale(self):
        text = ascii_bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = text.splitlines()
        assert lines[1].count("#") == 10
        assert lines[0].count("#") == 5

    def test_zero_value_empty_bar(self):
        text = ascii_bar_chart(["a", "b"], [0.0, 3.0])
        assert "#" not in text.splitlines()[0]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ascii_bar_chart(["a"], [1.0, 2.0])
