"""Unit tests for span-scoped profiling and allocation accounting."""

import numpy as np
import pytest

from repro.telemetry import (
    AllocationMeter,
    SpanProfiler,
    Tracer,
    format_hotspots,
    get_alloc_meter,
    measure_allocations,
    peak_rss_kb,
    use_tracer,
)
from repro.telemetry.tracer import NullTracer


def _burn(n=200):
    """A named function cProfile can attribute samples to."""
    total = 0
    for i in range(n):
        total += i * i
    return total


class TestSpanProfiler:
    def test_cpu_capture_yields_hotspots(self):
        profiler = SpanProfiler(cpu=True, top_n=5)
        with profiler.capture("work", track="t"):
            for _ in range(50):
                _burn()
        assert len(profiler.records) == 1
        record = profiler.records[0]
        assert record.cpu_captured
        assert record.wall_s > 0
        assert record.hotspots
        assert len(record.hotspots) <= 5
        assert any("_burn" in spot.function
                   for spot in record.hotspots)

    def test_nested_capture_records_wall_only(self):
        """cProfile cannot nest: the inner capture must still record
        wall time but own no profile of its own."""
        profiler = SpanProfiler(cpu=True)
        with profiler.capture("outer", track="t"):
            with profiler.capture("inner", track="t"):
                _burn()
        by_name = {record.name: record for record in profiler.records}
        assert by_name["outer"].cpu_captured
        assert not by_name["inner"].cpu_captured
        assert by_name["inner"].hotspots == []
        assert by_name["inner"].wall_s > 0

    def test_memory_capture_attributes_numpy_bytes(self):
        profiler = SpanProfiler(cpu=False, memory=True)
        with profiler.capture("alloc", track="t"):
            kept = np.ones(250_000, dtype=np.float64)
        record = profiler.records[0]
        assert record.tracemalloc_current_b is not None
        assert record.tracemalloc_peak_b >= 2_000_000
        # numpy registers array data in its own tracemalloc domain.
        assert record.numpy_alloc_b >= kept.nbytes

    def test_capture_closes_on_exception(self):
        profiler = SpanProfiler(cpu=True)
        with pytest.raises(ValueError):
            with profiler.capture("boom", track="t"):
                raise ValueError("boom")
        assert len(profiler.records) == 1
        assert profiler.records[0].cpu_captured
        # the cProfile slot is free again for the next capture
        with profiler.capture("after", track="t"):
            _burn()
        assert profiler.records[1].cpu_captured

    def test_merged_hotspots_and_report(self):
        profiler = SpanProfiler(cpu=True, top_n=4)
        for name in ("a", "b"):
            with profiler.capture(name, track="t"):
                _burn(500)
        merged = profiler.hotspots()
        assert merged and len(merged) <= 4
        only_a = profiler.hotspots(name="a")
        assert only_a
        document = profiler.report()
        assert {r["name"] for r in document["records"]} == {"a", "b"}
        assert document["hotspots"]
        text = format_hotspots(merged, title="T")
        assert text.startswith("T")
        assert "function" in text
        profiler.clear()
        assert profiler.records == []


class TestProfileSpan:
    def test_tracer_without_profiler_degrades_to_wall_span(self):
        tracer = Tracer()
        with tracer.profile_span("plain", track="t") as span:
            pass
        assert span.wall
        assert span.end_s is not None
        assert tracer.profiler is None

    def test_tracer_with_profiler_captures(self):
        tracer = Tracer()
        tracer.profiler = SpanProfiler(cpu=True)
        with tracer.profile_span("profiled", track="t"):
            _burn()
        assert len(tracer.profiler.records) == 1
        assert tracer.profiler.records[0].name == "profiled"
        assert [s.name for s in tracer.spans] == ["profiled"]

    def test_null_tracer_profile_span_is_noop(self):
        tracer = NullTracer()
        with tracer.profile_span("x", track="t") as span:
            pass
        assert span is NullTracer._NULL_SPAN
        assert tracer.event_count() == 0


class TestAllocationMeter:
    def test_add_counts_nbytes(self):
        meter = AllocationMeter()
        added = meter.add("site", np.zeros(10, dtype=np.float64),
                          np.zeros(5, dtype=np.int32), object())
        assert added == 100  # 80 + 20; the plain object is skipped
        snap = meter.snapshot()
        assert snap == {"site": {"bytes": 100, "arrays": 2,
                                 "calls": 1}}
        assert meter.total_bytes() == 100
        meter.clear()
        assert meter.snapshot() == {}

    def test_global_meter_disabled_by_default(self):
        assert get_alloc_meter().enabled is False

    def test_measure_allocations_scopes_the_global(self):
        outside = get_alloc_meter()
        with measure_allocations() as meter:
            assert meter is outside  # toggled in place, not swapped
            assert meter.enabled
            meter.add("k", np.zeros(4))
        assert not outside.enabled
        # tallies survive the scope for post-hoc reads
        assert outside.snapshot()["k"]["bytes"] == 32

    def test_measure_allocations_clears_by_default(self):
        with measure_allocations() as meter:
            meter.add("first", np.zeros(2))
        with measure_allocations() as meter:
            assert meter.snapshot() == {}
        with measure_allocations() as meter:
            meter.add("second", np.zeros(2))
        with measure_allocations(clear=False) as meter:
            assert "second" in meter.snapshot()

    def test_profiler_attributes_meter_sites_to_spans(self):
        tracer = Tracer()
        tracer.profiler = SpanProfiler(cpu=False)
        with use_tracer(tracer), measure_allocations():
            with tracer.profile_span("k", track="t"):
                get_alloc_meter().add("kernel", np.zeros(8))
        record = tracer.profiler.records[0]
        assert record.alloc_sites["kernel"]["bytes"] == 64


def test_peak_rss_is_positive_on_posix():
    peak = peak_rss_kb()
    assert peak is None or peak > 0
