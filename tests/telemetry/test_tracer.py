"""Unit tests for the tracer: spans, the no-op path, and the global."""

import pytest

from repro.telemetry import (
    NULL_TRACER,
    NullTracer,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)


class TestTracer:
    def test_span_records_interval(self):
        tracer = Tracer()
        span = tracer.begin("service", ts=1.0, track="stage:a",
                            args={"seq": 3})
        tracer.end(span, ts=1.5)
        assert tracer.spans == [span]
        assert span.start_s == 1.0
        assert span.end_s == 1.5
        assert span.duration_s == pytest.approx(0.5)
        assert span.args == {"seq": 3}

    def test_instants_and_counters(self):
        tracer = Tracer()
        tracer.instant("drop", ts=0.2, track="stage:a")
        tracer.counter("queue", ts=0.2, value=3, track="stage:a")
        assert len(tracer.instants) == 1
        assert tracer.counters == [("queue", "stage:a", 0.2, 3.0)]
        assert tracer.event_count() == 2

    def test_wall_span_measures_nonnegative_time(self):
        tracer = Tracer()
        with tracer.wall_span("row", track="suite") as span:
            pass
        assert span.wall
        assert span.end_s is not None
        assert span.end_s >= span.start_s >= 0.0

    def test_clear(self):
        tracer = Tracer()
        tracer.begin("a", ts=0.0)
        tracer.instant("b", ts=0.0)
        tracer.counter("c", ts=0.0, value=1)
        tracer.clear()
        assert tracer.event_count() == 0

    def test_wall_span_closes_and_tags_on_exception(self):
        """A span interrupted by an exception must still close (no
        dangling end_s) and record what killed it."""
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.wall_span("doomed", track="t",
                                  args={"seq": 1}) as span:
                raise RuntimeError("boom")
        assert span.end_s is not None
        assert span.end_s >= span.start_s
        assert span.args == {"seq": 1, "error": "RuntimeError"}

    def test_nested_spans_all_close_under_exception(self):
        tracer = Tracer()
        with pytest.raises(ValueError):
            with tracer.wall_span("outer") as outer:
                with tracer.wall_span("inner") as inner:
                    raise ValueError("inner blew up")
        for span in (inner, outer):
            assert span.end_s is not None
            assert span.args["error"] == "ValueError"
        # both spans were recorded, innermost first to finish
        assert [s.name for s in tracer.spans] == ["outer", "inner"]


class TestNullTracer:
    """The disabled path must record nothing and allocate nothing new."""

    def test_disabled_flag(self):
        assert not NULL_TRACER.enabled
        assert Tracer().enabled

    def test_all_emits_are_noops(self):
        tracer = NullTracer()
        span = tracer.begin("x", ts=0.0, track="t")
        tracer.end(span, ts=1.0)
        tracer.instant("y", ts=0.5)
        tracer.counter("z", ts=0.5, value=2)
        with tracer.wall_span("w") as wall:
            pass
        assert tracer.event_count() == 0
        # The shared sentinel span is returned, never a fresh object.
        assert span is wall
        assert span is NullTracer._NULL_SPAN


class TestGlobalTracer:
    def test_default_is_noop(self):
        assert get_tracer() is NULL_TRACER
        assert not get_tracer().enabled

    def test_set_and_restore(self):
        tracer = Tracer()
        previous = set_tracer(tracer)
        try:
            assert get_tracer() is tracer
        finally:
            set_tracer(previous)
        assert get_tracer() is previous

    def test_use_tracer_scopes_installation(self):
        tracer = Tracer()
        with use_tracer(tracer) as active:
            assert active is tracer
            assert get_tracer() is tracer
        assert get_tracer() is NULL_TRACER

    def test_set_none_restores_default(self):
        set_tracer(Tracer())
        set_tracer(None)
        assert get_tracer() is NULL_TRACER
