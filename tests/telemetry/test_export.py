"""Exporter and instrumentation tests: Chrome-trace round trips and the
telemetry the pipeline / scheduler / suite / DSE loops publish."""

import json

from repro.core.profile import WorkloadProfile
from repro.core.workload import Stage, TaskGraph
from repro.dse.space import DesignSpace, Parameter
from repro.dse.search import random_search
from repro.system.pipeline import PipelineSimulation
from repro.system.scheduler import (
    PeriodicTask,
    SchedulerPolicy,
    simulate_scheduler,
)
from repro.telemetry import (
    MetricsRegistry,
    Tracer,
    chrome_trace_events,
    run_provenance,
    trace_summary,
    use_tracer,
    write_chrome_trace,
    write_metrics_json,
)


def _profile(name):
    return WorkloadProfile(name=name, flops=1e6, bytes_read=1e4,
                           bytes_written=1e4, working_set_bytes=1e4)


def _two_stage_graph():
    return TaskGraph("toy", [
        Stage("sense", _profile("sense"), rate_hz=100.0,
              output_bytes=1e3),
        Stage("plan", _profile("plan"), deps=("sense",)),
    ])


def _run_traced_pipeline(tracer, metrics=None, slow=False):
    # A "plan" stage slower than the input period backs up and drops.
    service = {"sense": 1e-3, "plan": 0.05 if slow else 2e-3}
    simulation = PipelineSimulation(_two_stage_graph(), service,
                                    tracer=tracer, metrics=metrics)
    return simulation.run(1.0)


class TestChromeTraceRoundTrip:
    def test_pipeline_trace_is_valid_chrome_json(self, tmp_path):
        tracer = Tracer()
        _run_traced_pipeline(tracer, slow=True)
        path = tmp_path / "trace.json"
        count = write_chrome_trace(tracer, str(path),
                                   provenance=run_provenance(seed=0))
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert count == len(events) > 0
        for event in events:
            assert "ph" in event
            assert "ts" in event
            assert "name" in event
        phases = {e["ph"] for e in events}
        assert {"M", "X", "C"} <= phases  # tracks, spans, counters
        assert "i" in phases  # drops from the slow stage
        assert document["otherData"]["seed"] == 0

    def test_span_timestamps_are_microseconds(self):
        tracer = Tracer()
        span = tracer.begin("s", ts=0.5, track="stage:a")
        tracer.end(span, ts=0.75)
        events = [e for e in chrome_trace_events(tracer)
                  if e["ph"] == "X"]
        assert events[0]["ts"] == 0.5e6
        assert events[0]["dur"] == 0.25e6

    def test_wall_and_sim_spans_get_separate_pids(self):
        tracer = Tracer()
        sim_span = tracer.begin("sim", ts=0.0, track="a")
        tracer.end(sim_span, ts=1.0)
        with tracer.wall_span("wall", track="a"):
            pass
        spans = [e for e in chrome_trace_events(tracer)
                 if e["ph"] == "X"]
        assert {e["pid"] for e in spans} == {1, 2}

    def test_trace_summary(self):
        tracer = Tracer()
        span = tracer.begin("s", ts=0.0, track="stage:a")
        tracer.end(span, ts=2.0)
        summary = trace_summary(
            {"traceEvents": chrome_trace_events(tracer)})
        assert summary["tracks"]["stage:a"]["spans"] == 1
        assert summary["tracks"]["stage:a"]["busy_us"] == 2e6


class TestPipelineInstrumentation:
    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer()
        baseline = _run_traced_pipeline(None)  # global no-op default
        traced = _run_traced_pipeline(tracer)
        assert tracer.event_count() > 0
        # Instrumentation must not perturb simulation results.
        assert traced.samples_completed == baseline.samples_completed
        assert traced.end_to_end_latencies == \
            baseline.end_to_end_latencies

    def test_service_spans_match_completions(self):
        tracer = Tracer()
        result = _run_traced_pipeline(tracer)
        completions = sum(s.completed
                          for s in result.stage_stats.values())
        closed = [s for s in tracer.spans if s.end_s is not None]
        assert len(closed) == completions
        for span in closed:
            assert span.track.startswith("stage:")

    def test_drop_instants_match_drop_counts(self):
        tracer = Tracer()
        metrics = MetricsRegistry()
        result = _run_traced_pipeline(tracer, metrics=metrics,
                                      slow=True)
        dropped = sum(s.dropped for s in result.stage_stats.values())
        assert dropped > 0
        drops = [m for m in tracer.instants if m.name == "drop"]
        assert len(drops) == dropped
        assert metrics.counter("pipeline.dropped").value == dropped

    def test_metrics_published(self):
        metrics = MetricsRegistry()
        result = _run_traced_pipeline(None, metrics=metrics)
        snap = metrics.snapshot()
        assert snap["pipeline.emitted"]["value"] == \
            result.samples_emitted
        assert snap["pipeline.latency_s"]["count"] == \
            len(result.end_to_end_latencies)
        assert "pipeline.max_queue.plan" in snap


class TestSchedulerInstrumentation:
    def test_gantt_trace_accounts_for_all_busy_time(self):
        tasks = [
            PeriodicTask("control", period_s=0.01, wcet_s=0.002,
                         priority=0),
            PeriodicTask("perception", period_s=0.033, wcet_s=0.010,
                         priority=1),
        ]
        tracer = Tracer()
        result = simulate_scheduler(tasks, SchedulerPolicy.EDF,
                                    duration_s=1.0, tracer=tracer)
        busy = sum(s.duration_s for s in tracer.spans)
        # Execution spans must reconstruct the processor's busy time:
        # every released job executes its wcet, except at most one
        # tail job truncated at the horizon.
        releases_per_task = {
            t.name: sum(1 for m in tracer.instants
                        if m.name == "release"
                        and m.track == f"job:{t.name}")
            for t in tasks
        }
        expected = sum(t.wcet_s * releases_per_task[t.name]
                       for t in tasks)
        max_wcet = max(t.wcet_s for t in tasks)
        assert expected - max_wcet <= busy <= expected + 1e-9
        releases = [m for m in tracer.instants if m.name == "release"]
        assert len(releases) == result.jobs_released
        completes = [m for m in tracer.instants
                     if m.name == "complete"]
        assert len(completes) == result.jobs_completed

    def test_preempt_and_miss_instants_under_overload(self):
        tasks = [
            PeriodicTask("fast", period_s=0.01, wcet_s=0.006,
                         priority=0),
            PeriodicTask("slow", period_s=0.05, wcet_s=0.04,
                         priority=1),
        ]
        tracer = Tracer()
        result = simulate_scheduler(
            tasks, SchedulerPolicy.FIXED_PRIORITY, duration_s=0.5,
            tracer=tracer)
        names = {m.name for m in tracer.instants}
        assert "preempt" in names
        assert result.deadline_misses > 0
        misses = [m for m in tracer.instants if m.name == "miss"]
        assert len(misses) == result.deadline_misses

    def test_untraced_run_unaffected(self):
        tasks = [PeriodicTask("t", period_s=0.01, wcet_s=0.002)]
        plain = simulate_scheduler(tasks, SchedulerPolicy.EDF,
                                   duration_s=0.2)
        traced = simulate_scheduler(tasks, SchedulerPolicy.EDF,
                                    duration_s=0.2, tracer=Tracer())
        assert plain == traced


class TestDseInstrumentation:
    def test_per_iteration_events(self):
        space = DesignSpace([
            Parameter("x", (1, 2, 3, 4)),
            Parameter("y", (1, 2)),
        ])
        tracer = Tracer()
        with use_tracer(tracer):
            result = random_search(space,
                                   lambda c: float(c["x"] * c["y"]),
                                   budget=6, seed=3)
        evals = [m for m in tracer.instants if m.name == "dse.eval"]
        assert len(evals) == result.evaluations
        # best-so-far counter samples mirror the convergence trace.
        assert [v for _, _, _, v in tracer.counters] == result.trace


class TestMetricsJson:
    def test_write_metrics_json(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("n").inc(2)
        path = tmp_path / "metrics.json"
        write_metrics_json(str(path), registry=registry,
                           provenance=run_provenance(seed=42),
                           extra={"rows": [{"a": 1}]})
        document = json.loads(path.read_text())
        assert document["provenance"]["seed"] == 42
        assert document["metrics"]["n"]["value"] == 2
        assert document["rows"] == [{"a": 1}]

    def test_export_is_deterministic_across_insertion_order(
            self, tmp_path):
        """The same data must serialize byte-identically no matter the
        order metrics were registered or extra keys inserted."""
        fixed = {"seed": 7, "git_sha": "abc", "unix_time": 0.0}

        first = MetricsRegistry()
        first.counter("b").inc(1)
        first.gauge("a").set(2)
        second = MetricsRegistry()
        second.gauge("a").set(2)
        second.counter("b").inc(1)

        path_one = tmp_path / "one.json"
        path_two = tmp_path / "two.json"
        write_metrics_json(str(path_one), registry=first,
                           provenance=fixed,
                           extra={"x": 1, "y": 2})
        write_metrics_json(str(path_two), registry=second,
                           provenance=fixed,
                           extra={"y": 2, "x": 1})
        assert path_one.read_bytes() == path_two.read_bytes()


class TestProvenance:
    def test_provenance_carries_versions_and_machine(self):
        provenance = run_provenance(seed=3, config={"k": "v"})
        assert provenance["seed"] == 3
        assert provenance["config"] == {"k": "v"}
        assert provenance["python"]
        assert provenance["numpy"]
        machine = provenance["machine"]
        assert set(machine) == {"hostname_sha", "system", "machine",
                                "cpus"}
        # hostname enters only as a truncated hash
        assert len(machine["hostname_sha"]) == 12
        import platform
        node = platform.node()
        if len(node) > 12:  # a short/empty name matches trivially
            assert node not in str(machine)

    def test_machine_fingerprint_is_stable(self):
        from repro.telemetry import machine_fingerprint

        assert machine_fingerprint() == machine_fingerprint()
