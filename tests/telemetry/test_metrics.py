"""Unit tests for counters, gauges, and the streaming histogram."""

import numpy as np
import pytest

from repro.errors import TelemetryError
from repro.telemetry import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)


class TestCounter:
    def test_increments(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        with pytest.raises(TelemetryError):
            Counter("c").inc(-1)


class TestGauge:
    def test_tracks_watermarks(self):
        gauge = Gauge("g")
        for value in (3.0, -1.0, 7.0):
            gauge.set(value)
        snap = gauge.snapshot()
        assert snap["value"] == 7.0
        assert snap["min"] == -1.0
        assert snap["max"] == 7.0
        assert snap["updates"] == 3

    def test_empty_snapshot_is_zeroed(self):
        snap = Gauge("g").snapshot()
        assert snap["min"] == 0.0 and snap["max"] == 0.0


class TestStreamingHistogram:
    def test_quantiles_match_sorted_samples(self):
        """Sketch quantiles vs. exact sorted-sample ground truth on a
        fixed seed: relative error must stay within the bucket bound."""
        rng = np.random.default_rng(1234)
        samples = rng.lognormal(mean=-4.0, sigma=1.2, size=20_000)
        histogram = StreamingHistogram("lat")
        for value in samples:
            histogram.record(float(value))
        ordered = np.sort(samples)
        for q in (0.50, 0.90, 0.99, 0.999):
            exact = float(ordered[int(q * (len(ordered) - 1))])
            sketch = histogram.quantile(q)
            assert sketch == pytest.approx(exact, rel=0.02), q

    def test_bounded_memory(self):
        rng = np.random.default_rng(7)
        histogram = StreamingHistogram("lat")
        for value in rng.uniform(1e-6, 10.0, size=50_000):
            histogram.record(float(value))
        # ~16 decades at 1% growth is < 4000 buckets, samples >> that.
        assert len(histogram._buckets) < 4000
        assert histogram.count == 50_000

    def test_min_max_mean_exact(self):
        histogram = StreamingHistogram("h")
        for value in (1.0, 2.0, 3.0):
            histogram.record(value)
        assert histogram.min == 1.0
        assert histogram.max == 3.0
        assert histogram.mean() == pytest.approx(2.0)

    def test_empty_histogram_quantiles_are_zero(self):
        """Zero samples: every quantile reads 0.0 and the summary is
        well-formed (no division by the empty count)."""
        histogram = StreamingHistogram("h")
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == 0.0
        assert histogram.count == 0
        assert histogram.mean() == 0.0
        summary = histogram.summary()
        assert summary["count"] == 0
        assert summary["p50"] == 0.0 and summary["p999"] == 0.0

    def test_single_sample_quantiles_collapse_to_it(self):
        """One sample: every quantile lands in that sample's bucket
        (within the sketch's relative-error bound)."""
        histogram = StreamingHistogram("h")
        histogram.record(0.25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == \
                pytest.approx(0.25, rel=0.02), q
        assert histogram.min == histogram.max == 0.25
        assert histogram.mean() == pytest.approx(0.25)
        assert histogram.summary()["count"] == 1

    def test_underflow_and_empty(self):
        histogram = StreamingHistogram("h", min_value=1e-3)
        assert histogram.quantile(0.5) == 0.0
        histogram.record(0.0)
        histogram.record(-5.0)
        assert histogram.quantile(0.5) == 1e-3

    def test_summary_keys(self):
        histogram = StreamingHistogram("h")
        histogram.record(1.0)
        summary = histogram.summary()
        assert set(summary) == {"count", "mean", "min", "max",
                                "p50", "p90", "p99", "p999"}

    def test_rejects_bad_parameters(self):
        with pytest.raises(TelemetryError):
            StreamingHistogram("h", growth=1.0)
        with pytest.raises(TelemetryError):
            StreamingHistogram("h", min_value=0.0)
        with pytest.raises(TelemetryError):
            StreamingHistogram("h").quantile(1.5)


class TestMetricsRegistry:
    def test_get_or_create_is_idempotent(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.histogram("b") is registry.histogram("b")

    def test_type_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(TelemetryError):
            registry.gauge("a")

    def test_snapshot_covers_all_metrics(self):
        registry = MetricsRegistry()
        registry.counter("jobs").inc(3)
        registry.gauge("depth").set(2)
        registry.histogram("lat").record(0.5)
        snap = registry.snapshot()
        assert snap["jobs"]["value"] == 3
        assert snap["depth"]["value"] == 2
        assert snap["lat"]["count"] == 1
        assert registry.names() == ["depth", "jobs", "lat"]
