"""Unit tests for the metrics package (§2.2)."""

import pytest

from repro.core.profile import CostEstimate, WorkloadProfile
from repro.errors import ConfigurationError
from repro.metrics import (
    CompositeScore,
    accuracy_throughput_frontier,
    edp,
    normalize_metrics,
    offchip_bandwidth_demand,
    time_to_threshold,
    tops,
    tops_per_watt,
)
from repro.metrics.accuracy import quality_weighted_speedup
from repro.metrics.compute import device_report, peak_utilization


def _profile():
    return WorkloadProfile(name="k", flops=1e12, bytes_read=1e9,
                           working_set_bytes=1e8,
                           parallel_fraction=1.0)


def _estimate():
    return CostEstimate(latency_s=1.0, energy_j=10.0)


class TestComputeMetrics:
    def test_tops(self):
        assert tops(_profile(), _estimate()) == pytest.approx(1.0)

    def test_tops_per_watt(self):
        assert tops_per_watt(_profile(), _estimate()) \
            == pytest.approx(0.1)

    def test_edp(self):
        assert edp(_estimate()) == pytest.approx(10.0)

    def test_offchip_demand_zero_when_fits(self):
        assert offchip_bandwidth_demand(_profile(), 30.0,
                                        onchip_bytes=1e9) == 0.0

    def test_offchip_demand_when_spilling(self):
        demand = offchip_bandwidth_demand(_profile(), 30.0,
                                          onchip_bytes=1e6)
        assert demand == pytest.approx(1e9 * 30.0)

    def test_device_report_keys(self, cpu):
        report = device_report(_profile(), cpu)
        assert {"latency_s", "tops", "tops_per_watt",
                "offchip_bw_demand"} <= set(report)

    def test_peak_utilization_bounded(self, cpu):
        profile = _profile()
        estimate = cpu.estimate(profile)
        util = peak_utilization(profile, estimate, cpu)
        assert 0.0 < util <= 1.0

    def test_invalid_latency(self):
        with pytest.raises(ConfigurationError):
            tops(_profile(), CostEstimate(latency_s=0.0, energy_j=1.0))


class TestAccuracyMetrics:
    def test_time_to_threshold(self):
        times = [1.0, 2.0, 3.0, 4.0]
        quality = [0.2, 0.5, 0.9, 0.95]
        assert time_to_threshold(times, quality, 0.9) == 3.0
        assert time_to_threshold(times, quality, 0.99) == float("inf")

    def test_non_monotone_times_rejected(self):
        with pytest.raises(ConfigurationError):
            time_to_threshold([2.0, 1.0], [0.1, 0.2], 0.5)

    def test_frontier_drops_dominated(self):
        runs = [
            ("slow-accurate", 10.0, 0.95),
            ("fast-sloppy", 100.0, 0.80),
            ("dominated", 5.0, 0.70),
        ]
        frontier = accuracy_throughput_frontier(runs)
        names = [name for name, _, __ in frontier]
        assert "dominated" not in names
        assert len(names) == 2

    def test_quality_weighted_speedup_discounts(self):
        # 4x faster but 10% worse quality -> 3.6x effective.
        value = quality_weighted_speedup(4.0, 1.0, 1.0, 0.9)
        assert value == pytest.approx(3.6)
        # Quality gains never inflate beyond the raw speedup.
        value = quality_weighted_speedup(4.0, 1.0, 0.8, 0.9)
        assert value == pytest.approx(4.0)


class TestComposite:
    def test_normalize_directions(self):
        rows = [{"lat": 1.0, "acc": 0.9}, {"lat": 2.0, "acc": 0.5}]
        norm = normalize_metrics(rows, {"lat": True, "acc": False})
        assert norm[0]["lat"] == 1.0  # lower latency = best
        assert norm[0]["acc"] == 1.0  # higher accuracy = best
        assert norm[1]["lat"] == 0.0

    def test_constant_metric_normalizes_to_one(self):
        rows = [{"x": 5.0}, {"x": 5.0}]
        norm = normalize_metrics(rows, {"x": True})
        assert norm[0]["x"] == 1.0 and norm[1]["x"] == 1.0

    def test_missing_direction_rejected(self):
        with pytest.raises(ConfigurationError):
            normalize_metrics([{"x": 1.0}], {})

    def test_composite_ranking_changes_with_weights(self):
        designs = [
            ("throughput-monster", {"fps": 100.0, "accuracy": 0.6}),
            ("balanced", {"fps": 40.0, "accuracy": 0.92}),
        ]
        directions = {"fps": False, "accuracy": False}
        fps_lover = CompositeScore({"fps": 1.0, "accuracy": 0.0},
                                   directions)
        task_lover = CompositeScore({"fps": 0.1, "accuracy": 0.9},
                                    directions)
        assert fps_lover.rank(designs)[0][0] == "throughput-monster"
        assert task_lover.rank(designs)[0][0] == "balanced"

    def test_weights_renormalized(self):
        score = CompositeScore({"a": 2.0, "b": 2.0})
        assert score.weights == {"a": 0.5, "b": 0.5}

    def test_empty_weights_rejected(self):
        with pytest.raises(ConfigurationError):
            CompositeScore({})
