"""Property-based scalar-equivalence contract for SoA batch pricing.

The whole point of :mod:`repro.hw.batch` is that it is a *vectorization*
of :meth:`AnalyticalPlatform.estimate`, not an approximation — so the
property here is strict equality of every CostEstimate field, bit for
bit, across every SoA-priceable catalog platform and arbitrary workload
profiles (divergent, serial, empty, and working sets straddling the
on-chip boundary included).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.hw.batch import (
    PlatformSoA,
    ProfileSoA,
    batch_estimate,
    is_soa_priceable,
)
from repro.hw.catalog import (
    datacenter_gpu,
    desktop_cpu,
    embedded_cpu,
    embedded_gpu,
)
from repro.hw.platform import AnalyticalPlatform, PlatformConfig


def _catalog():
    platforms = [desktop_cpu(), embedded_cpu(), datacenter_gpu(),
                 embedded_gpu(),
                 AnalyticalPlatform(PlatformConfig(
                     name="scalar-roofline", peak_flops=5e11,
                     scalar_flops=3e9, onchip_bytes=2e6, onchip_bw=8e11,
                     offchip_bw=4e10, lockstep=False))]
    assert all(is_soa_priceable(p) for p in platforms)
    return platforms


_PLATFORMS = _catalog()
#: On-chip capacities of the catalog — used to aim working sets at the
#: exact on/off-chip decision boundary.
_CAPACITIES = sorted({p.config.onchip_bytes for p in _PLATFORMS})

_count = st.floats(min_value=0.0, max_value=1e15, allow_nan=False)
_working_set = st.one_of(
    st.floats(min_value=0.0, max_value=1e12, allow_nan=False),
    st.sampled_from(_CAPACITIES),
    st.sampled_from([float(np.nextafter(c, np.inf))
                     for c in _CAPACITIES]),
    st.sampled_from([float(np.nextafter(c, -np.inf))
                     for c in _CAPACITIES]),
)

_profile = st.builds(
    WorkloadProfile,
    name=st.just("prop"),
    flops=_count,
    int_ops=_count,
    bytes_read=_count,
    bytes_written=_count,
    working_set_bytes=_working_set,
    parallel_fraction=st.floats(min_value=0.0, max_value=1.0),
    divergence=st.sampled_from(list(DivergenceClass)),
)


@settings(max_examples=120, deadline=None)
@given(st.lists(_profile, min_size=1, max_size=6))
def test_batch_equals_scalar_bit_for_bit(profiles):
    cost = batch_estimate(PlatformSoA.from_platforms(_PLATFORMS),
                          ProfileSoA.from_profiles(profiles))
    for i, platform in enumerate(_PLATFORMS):
        for j, profile in enumerate(profiles):
            scalar = platform.estimate(profile)
            batch = cost.estimate(i, j)
            # Strict dataclass equality: latency, energy, power, area,
            # bound label, and platform name all identical.
            assert batch == scalar, (platform.name, profile, scalar,
                                     batch)


@settings(max_examples=60, deadline=None)
@given(_profile)
def test_single_pair_block_matches_direct_estimate(profile):
    platform = _PLATFORMS[0]
    cost = batch_estimate(PlatformSoA.from_platforms([platform]),
                          ProfileSoA.from_profiles([profile]))
    assert cost.shape == (1, 1)
    assert cost.estimate(0, 0) == platform.estimate(profile)
