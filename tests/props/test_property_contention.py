"""Property-based tests for the shared-memory allocator."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.contention import SharedMemorySystem

_demand = st.floats(min_value=0.0, max_value=1e11)
_demands = st.dictionaries(
    st.sampled_from(["a", "b", "c", "d", "e"]), _demand,
    min_size=1, max_size=5,
)


@settings(max_examples=80, deadline=None)
@given(_demands,
       st.floats(min_value=1e9, max_value=1e11),
       st.floats(min_value=0.5, max_value=1.0))
def test_grants_bounded_by_pool(demands, bandwidth, efficiency):
    memory = SharedMemorySystem(total_bandwidth=bandwidth,
                                contention_efficiency=efficiency)
    grants = memory.allocate(demands)
    active = sum(1 for v in demands.values() if v > 0)
    pool = bandwidth * (efficiency if active > 1 else 1.0)
    assert sum(grants.values()) <= pool * (1 + 1e-9)


@settings(max_examples=80, deadline=None)
@given(_demands,
       st.floats(min_value=1e9, max_value=1e11))
def test_no_grant_exceeds_demand(demands, bandwidth):
    memory = SharedMemorySystem(total_bandwidth=bandwidth)
    grants = memory.allocate(demands)
    for name, demand in demands.items():
        assert grants[name] <= demand + 1e-6


@settings(max_examples=80, deadline=None)
@given(_demands,
       st.floats(min_value=1e9, max_value=1e11))
def test_idle_clients_get_nothing_active_get_something(demands,
                                                       bandwidth):
    memory = SharedMemorySystem(total_bandwidth=bandwidth)
    grants = memory.allocate(demands)
    for name, demand in demands.items():
        if demand == 0.0:
            assert grants[name] == 0.0
        else:
            assert grants[name] > 0.0


@settings(max_examples=50, deadline=None)
@given(st.floats(min_value=1e6, max_value=1e10),
       st.floats(min_value=1e6, max_value=1e10),
       st.floats(min_value=1e9, max_value=1e11))
def test_equal_demands_get_equal_grants(demand_value, _, bandwidth):
    memory = SharedMemorySystem(total_bandwidth=bandwidth,
                                contention_efficiency=1.0)
    grants = memory.allocate({"x": demand_value, "y": demand_value})
    assert abs(grants["x"] - grants["y"]) < 1e-6
