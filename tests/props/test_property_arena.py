"""Property-based contracts for the arena-backed memory layer.

Two claims are under test, both strict (bit-for-bit, not approximate):

1. **Arena reuse is invisible.**  A single :class:`BatchArena` carried
   across generations of *varying* population sizes — including
   shrink-then-grow sequences that exercise both the reuse path and the
   capacity-doubling growth path — produces outputs bit-identical to
   fresh allocation, for both the SoA pricing kernel
   (:func:`repro.hw.batch.batch_estimate`) and the fleet engine
   (:func:`repro.system.fleet.run_fleet`).  Arena buffers are undefined
   at handoff, so any read-before-write bug in a kernel shows up here
   as stale data from the *previous* generation leaking into this one.

2. **Transport is invisible.**  Sharding a :class:`FleetStudy`
   population over ``jobs=2`` with the shared-memory column transport
   returns results equal to the serial run (and to the pickled
   transport) — the zero-copy path changes how bytes move, never what
   they are.
"""

import dataclasses

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.engine.arena import BatchArena
from repro.engine.shm import shm_available
from repro.hw.batch import PlatformSoA, ProfileSoA, batch_estimate
from repro.hw.catalog import uav_compute_tiers
from repro.kernels.planning import CircleWorld
from repro.system.fleet import FleetStudy, run_fleet
from repro.system.mission import MissionConfig

_TIERS = uav_compute_tiers()
_PLATFORMS = PlatformSoA.from_platforms([t[1] for t in _TIERS])

_count = st.floats(min_value=0.0, max_value=1e14, allow_nan=False)
_profile = st.builds(
    WorkloadProfile,
    name=st.just("prop"),
    flops=_count,
    int_ops=_count,
    bytes_read=_count,
    bytes_written=_count,
    working_set_bytes=st.floats(min_value=0.0, max_value=1e9,
                                allow_nan=False),
    parallel_fraction=st.floats(min_value=0.0, max_value=1.0),
    divergence=st.sampled_from(list(DivergenceClass)),
)
#: Generations of varying width: 1..8 profiles each, 2..5 generations.
#: Hypothesis shrinks toward short/narrow, but the size floor still
#: forces shrink-then-grow orderings through the arena.
_generations = st.lists(st.lists(_profile, min_size=1, max_size=8),
                        min_size=2, max_size=5)


def _freeze(cost):
    """Copy a (possibly arena-borrowed) BatchCost into owned arrays so
    it survives the next kernel call on the same arena."""
    return (cost.latency_s.copy(), cost.energy_j.copy(),
            cost.power_w.copy(), cost.bound.copy(),
            cost.area_mm2.copy())


@settings(max_examples=60, deadline=None)
@given(generations=_generations)
def test_arena_reuse_bit_identical_batch_estimate(generations):
    arena = BatchArena()
    for profiles in generations:
        soa = ProfileSoA.from_profiles(profiles)
        reused = _freeze(batch_estimate(_PLATFORMS, soa, arena=arena))
        fresh = _freeze(batch_estimate(_PLATFORMS, soa))
        for got, want in zip(reused, fresh):
            np.testing.assert_array_equal(got, want, strict=True)
    # Varying widths must have exercised reuse, not just growth.
    assert arena.grows + arena.reuses >= len(generations)


# -- fleet generations --------------------------------------------------

_WORLD = CircleWorld.random(dim=2, n_obstacles=10, extent=25.0,
                            radius_range=(1.0, 2.0), seed=4,
                            keep_corners_free=3.0)
_BASE = MissionConfig(world=_WORLD, start=np.array([1.0, 1.0]),
                      goal=np.array([23.0, 23.0]))
_COURSES = {}

#: A pool of perturbed studies; generations draw rollout prefixes of
#: varying length from it so population size changes across calls.
_POOL = FleetStudy(
    config=_BASE, tiers=_TIERS, trials=6, seed=11).rollouts()


@settings(max_examples=25, deadline=None)
@given(sizes=st.lists(
    st.integers(min_value=1, max_value=len(_POOL)),
    min_size=2, max_size=4))
def test_arena_reuse_bit_identical_run_fleet(sizes):
    arena = BatchArena()
    for size in sizes:
        rollouts = _POOL[:size]
        reused = run_fleet(rollouts, course_cache=_COURSES, arena=arena)
        fresh = run_fleet(rollouts, course_cache=_COURSES)
        # MissionResult is a plain dataclass of Python scalars: strict
        # equality is bit-identity here.
        assert reused.results == fresh.results
        assert reused.alloc_bytes == fresh.alloc_bytes


def test_shrink_then_grow_never_corrupts():
    """A deliberate worst case: wide, then narrow (stale tail bytes in
    every buffer), then wide again (growth re-allocation mid-sequence)."""
    arena = BatchArena()
    for size in (12, 1, 12, 3, len(_POOL)):
        rollouts = _POOL[:size]
        reused = run_fleet(rollouts, course_cache=_COURSES, arena=arena)
        fresh = run_fleet(rollouts, course_cache=_COURSES)
        assert reused.results == fresh.results
    assert arena.grows >= 1 and arena.reuses >= 1


# -- shared-memory transport -------------------------------------------

@pytest.mark.skipif(not shm_available(),
                    reason="POSIX shared memory unavailable")
@settings(max_examples=6, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16),
       trials=st.integers(min_value=2, max_value=5))
def test_shm_jobs2_equals_serial(seed, trials):
    config = dataclasses.replace(_BASE, laps=1)
    study = FleetStudy(config=config, tiers=_TIERS, trials=trials,
                       seed=seed)
    serial = study.run()
    shm = study.run(jobs=2, transport="shm")
    pickled = study.run(jobs=2, transport="pickle")
    assert shm.fleet.results == serial.fleet.results
    assert pickled.fleet.results == serial.fleet.results
    assert shm.statistics == serial.statistics
