"""Property-based tests for planning and DSE invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dse import DesignSpace, Parameter, pareto_front
from repro.dse.pareto import dominates
from repro.kernels.planning import (
    BatchCollisionChecker,
    CircleWorld,
    ScalarCollisionChecker,
)


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_checkers_agree_on_random_worlds(seed):
    rng = np.random.default_rng(seed)
    world = CircleWorld.random(
        dim=2, n_obstacles=int(rng.integers(1, 30)), extent=10.0,
        seed=seed,
    )
    points = rng.uniform(0, 10, size=(40, 2))
    scalar = ScalarCollisionChecker(world)
    batch = BatchCollisionChecker(world)
    expected = [scalar.point_free(p) for p in points]
    assert list(batch.points_free(points)) == expected


@settings(max_examples=25, deadline=None)
@given(st.integers(min_value=0, max_value=10_000))
def test_clearance_consistent_with_checks(seed):
    rng = np.random.default_rng(seed)
    world = CircleWorld.random(dim=2, n_obstacles=10, seed=seed)
    point = rng.uniform(0, 10, size=2)
    checker = BatchCollisionChecker(world)
    free = checker.point_free(point)
    clearance = world.clearance(point)
    if clearance > 1e-9:
        assert free
    if clearance < -1e-9:
        assert not free


_sizes = st.lists(st.integers(min_value=1, max_value=6),
                  min_size=1, max_size=4)


@settings(max_examples=40, deadline=None)
@given(_sizes, st.integers(min_value=0, max_value=10_000))
def test_space_index_bijection(sizes, seed):
    space = DesignSpace([
        Parameter(f"p{i}", tuple(range(size)))
        for i, size in enumerate(sizes)
    ])
    rng = np.random.default_rng(seed)
    index = int(rng.integers(space.size))
    assert space.index_of(space.config_at(index)) == index


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.floats(min_value=0, max_value=10),
              st.floats(min_value=0, max_value=10)),
    min_size=1, max_size=30,
))
def test_pareto_front_is_mutually_nondominated(points):
    front = pareto_front(points)
    assert front  # never empty for non-empty input
    for i in front:
        for j in front:
            if i != j:
                assert not dominates(points[j], points[i])


@settings(max_examples=40, deadline=None)
@given(st.lists(
    st.tuples(st.floats(min_value=0, max_value=10),
              st.floats(min_value=0, max_value=10)),
    min_size=2, max_size=30,
))
def test_pareto_front_members_dominate_or_tie_everyone(points):
    front = set(pareto_front(points))
    for i, point in enumerate(points):
        if i in front:
            continue
        # Every non-front point is dominated by some front point OR is
        # a duplicate of one.
        assert any(
            dominates(points[j], point) or tuple(points[j]) == tuple(point)
            for j in front
        )
