"""Property-based tests for geometry invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.kernels.geometry import (
    SE3,
    exp_so3,
    log_so3,
    quat_multiply,
    quat_normalize,
    quat_to_rotation,
    rotation_to_quat,
    wrap_angle,
)

_small = st.floats(min_value=-3.0, max_value=3.0,
                   allow_nan=False, allow_infinity=False)
_vec3 = arrays(np.float64, 3, elements=_small)
_nonzero_vec4 = arrays(
    np.float64, 4,
    elements=st.floats(min_value=-2.0, max_value=2.0),
).filter(lambda q: np.linalg.norm(q) > 1e-3)


@settings(max_examples=60, deadline=None)
@given(_vec3)
def test_exp_gives_valid_rotation(omega):
    r = exp_so3(omega)
    assert np.allclose(r @ r.T, np.eye(3), atol=1e-9)
    assert np.isclose(np.linalg.det(r), 1.0, atol=1e-9)


@settings(max_examples=60, deadline=None)
@given(_vec3.filter(lambda v: 1e-4 < np.linalg.norm(v) < np.pi - 0.05))
def test_exp_log_round_trip(omega):
    assert np.allclose(log_so3(exp_so3(omega)), omega, atol=1e-7)


@settings(max_examples=60, deadline=None)
@given(_nonzero_vec4)
def test_quat_rotation_round_trip(q):
    # Compare as rotations: q and -q are the same rotation, and sign
    # canonicalization is numerically ambiguous near w == 0.
    qn = quat_normalize(q)
    recovered = rotation_to_quat(quat_to_rotation(qn))
    assert np.allclose(quat_to_rotation(recovered),
                       quat_to_rotation(qn), atol=1e-7)


@settings(max_examples=60, deadline=None)
@given(_nonzero_vec4, _nonzero_vec4)
def test_quat_product_norm_preserved(q1, q2):
    product = quat_multiply(quat_normalize(q1), quat_normalize(q2))
    assert np.isclose(np.linalg.norm(product), 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(_vec3, _vec3, _vec3, _vec3)
def test_se3_composition_associative(w1, t1, w2, t2):
    a = SE3(exp_so3(w1), t1)
    b = SE3(exp_so3(w2), t2)
    c = SE3(exp_so3(w1 * 0.5), t2 * 0.5)
    left = a.compose(b).compose(c)
    right = a.compose(b.compose(c))
    assert np.allclose(left.rotation, right.rotation, atol=1e-9)
    assert np.allclose(left.translation, right.translation, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(_vec3, _vec3, arrays(np.float64, (4, 3), elements=_small))
def test_se3_inverse_undoes_apply(w, t, points):
    transform = SE3(exp_so3(w), t)
    restored = transform.inverse().apply(transform.apply(points))
    assert np.allclose(restored, points, atol=1e-8)


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=-100.0, max_value=100.0))
def test_wrap_angle_range_and_equivalence(angle):
    wrapped = wrap_angle(angle)
    assert -np.pi < wrapped <= np.pi
    assert np.isclose(np.sin(wrapped), np.sin(angle), atol=1e-9)
    assert np.isclose(np.cos(wrapped), np.cos(angle), atol=1e-9)
