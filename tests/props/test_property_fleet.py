"""Property-based scalar-equivalence contract for the fleet engine.

:func:`repro.system.fleet.run_fleet` claims to be a *vectorization* of
:func:`repro.system.mission.run_mission`, not an approximation — so the
property is strict dataclass equality of every :class:`MissionResult`
field across randomly drawn mission parameters: battery capacities that
die mid-course or never, timeouts that cut missions short or land
exactly on a step boundary, sensor rates, workload scales, payload
masses, time steps, and lap counts, flown on every tier of the catalog
ladder plus a non-SoA-priceable platform that forces the scalar pricing
fallback.

Planning is hoisted deliberately (the contract is about simulation, not
search): worlds and courses are fixed per lap count and shared through
a course cache, so hypothesis explores the simulation parameter space
densely instead of re-running A* per example.
"""

import dataclasses

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.batch import is_soa_priceable
from repro.hw.catalog import uav_compute_tiers
from repro.hw.platform import AnalyticalPlatform, PlatformConfig
from repro.kernels.planning import CircleWorld
from repro.system.fleet import FleetRollout, ensure_course, run_fleet
from repro.system.mission import MissionConfig, run_mission

_WORLD = CircleWorld.random(dim=2, n_obstacles=12, extent=30.0,
                            radius_range=(1.0, 2.0), seed=9,
                            keep_corners_free=3.0)
_BASE = MissionConfig(world=_WORLD, start=np.array([1.0, 1.0]),
                      goal=np.array([28.0, 28.0]))
_TIERS = uav_compute_tiers()


class _FallbackPlatform(AnalyticalPlatform):
    """Same pricing as its parent, but the override defeats the SoA
    gate — exercising the engine's scalar-estimate path."""

    def estimate(self, profile):
        return super().estimate(profile)


_FALLBACK = _FallbackPlatform(PlatformConfig(
    name="prop-fallback", peak_flops=1e12, scalar_flops=4e9,
    onchip_bytes=4e6, onchip_bw=5e11, offchip_bw=5e10,
    static_power_w=8.0))
assert not is_soa_priceable(_FALLBACK)

#: (platform, module mass, module power) candidates: the whole ladder
#: plus the fallback.
_MODULES = [(platform, mass, power)
            for _name, platform, mass, power in _TIERS]
_MODULES.append((_FALLBACK, 0.25, 14.0))

#: Shared across examples so each lap count plans exactly once.
_COURSES = {}

_capacity_wh = st.one_of(
    st.floats(min_value=0.05, max_value=200.0, allow_nan=False),
    st.sampled_from([0.5, 5.0, 50.0]),
)
_max_duration = st.one_of(
    st.floats(min_value=0.5, max_value=7200.0, allow_nan=False),
    # exact multiples of the dt grid, where tie precedence bites
    st.sampled_from([5.0, 60.0, 0.05]),
)
_scenario = st.fixed_dictionaries({
    "capacity_wh": _capacity_wh,
    "max_duration_s": _max_duration,
    "time_step_s": st.sampled_from([0.01, 0.05, 0.2, 1.0]),
    "sensor_rate_hz": st.floats(min_value=1.0, max_value=120.0,
                                allow_nan=False),
    "workload_scale": st.floats(min_value=0.1, max_value=4.0,
                                allow_nan=False),
    "mass_factor": st.floats(min_value=0.5, max_value=2.0,
                             allow_nan=False),
    "laps": st.sampled_from([1, 2, 5]),
    "module": st.integers(min_value=0, max_value=len(_MODULES) - 1),
})


def _config_for(params) -> MissionConfig:
    return dataclasses.replace(
        _BASE,
        battery=dataclasses.replace(_BASE.battery,
                                    capacity_wh=params["capacity_wh"]),
        max_duration_s=params["max_duration_s"],
        time_step_s=params["time_step_s"],
        sensor_rate_hz=params["sensor_rate_hz"],
        frame_profile=_BASE.frame_profile.scaled(
            params["workload_scale"]),
        laps=params["laps"],
    )


@given(params=_scenario)
@settings(max_examples=150, deadline=None)
def test_batch_equals_scalar_field_for_field(params):
    config = _config_for(params)
    platform, mass, power = _MODULES[params["module"]]
    rollout = FleetRollout(name="prop", config=config,
                           platform=platform,
                           compute_mass_kg=mass * params["mass_factor"],
                           compute_power_w=power)
    course = ensure_course(config, _COURSES)
    fleet = run_fleet([rollout], course_cache=_COURSES)
    scalar = run_mission(config, platform, rollout.compute_mass_kg,
                         power, course=course)
    batch = fleet.results[0]
    assert batch == scalar, [
        (f.name, getattr(scalar, f.name), getattr(batch, f.name))
        for f in dataclasses.fields(scalar)
        if getattr(scalar, f.name) != getattr(batch, f.name)]
    assert fleet.batch_priced + fleet.scalar_fallback == 1
    assert fleet.scalar_fallback == (
        0 if is_soa_priceable(platform) else 1)


@given(params=st.lists(_scenario, min_size=2, max_size=6))
@settings(max_examples=40, deadline=None)
def test_mixed_population_equals_scalar(params):
    """Heterogeneous populations — mixed tiers, dts, batteries, and
    priceability — must still match rollout-for-rollout, in order."""
    rollouts = []
    for i, p in enumerate(params):
        platform, mass, power = _MODULES[p["module"]]
        rollouts.append(FleetRollout(
            name=f"prop-{i}", config=_config_for(p), platform=platform,
            compute_mass_kg=mass * p["mass_factor"],
            compute_power_w=power))
    fleet = run_fleet(rollouts, course_cache=_COURSES)
    for rollout, batch in zip(rollouts, fleet.results):
        scalar = run_mission(
            rollout.config, rollout.platform, rollout.compute_mass_kg,
            rollout.compute_power_w,
            course=ensure_course(rollout.config, _COURSES))
        assert batch == scalar
    assert fleet.batch_priced + fleet.scalar_fallback == len(rollouts)
