"""Property-based tests for hardware model invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.hw import RooflineModel, SystolicArrayModel, embedded_cpu
from repro.hw.cpu import CpuConfig

_counts = st.floats(min_value=1.0, max_value=1e13, allow_nan=False)


def profiles():
    return st.builds(
        WorkloadProfile,
        name=st.just("p"),
        flops=_counts,
        bytes_read=_counts,
        bytes_written=_counts,
        working_set_bytes=_counts,
        parallel_fraction=st.floats(min_value=0.0, max_value=1.0),
        divergence=st.sampled_from(list(DivergenceClass)),
    )


@settings(max_examples=60, deadline=None)
@given(profiles())
def test_estimates_are_physical(profile):
    cpu = embedded_cpu()
    estimate = cpu.estimate(profile)
    assert estimate.latency_s > 0
    assert estimate.energy_j > 0
    assert estimate.power_w > 0
    assert estimate.bound in ("compute", "memory", "serial")


@settings(max_examples=60, deadline=None)
@given(profiles(), st.floats(min_value=1.1, max_value=10.0))
def test_more_work_never_faster(profile, factor):
    cpu = embedded_cpu()
    base = cpu.estimate(profile).latency_s
    bigger = cpu.estimate(profile.scaled(factor)).latency_s
    assert bigger >= base - 1e-15


@settings(max_examples=60, deadline=None)
@given(profiles())
def test_roofline_never_exceeds_peak(profile):
    roofline = RooflineModel(name="r", peak_ops=1e12, bandwidth=1e10)
    attainable = roofline.attainable_ops(profile.arithmetic_intensity)
    assert attainable <= 1e12 + 1e-6


@settings(max_examples=60, deadline=None)
@given(st.integers(min_value=2, max_value=16),
       st.floats(min_value=0.3, max_value=1.0))
def test_simd_width_never_hurts_peak(width, efficiency):
    narrow = CpuConfig(name="n", simd_width=1, simd_efficiency=1.0)
    wide = CpuConfig(name="w", simd_width=width,
                     simd_efficiency=efficiency)
    # Any SIMD at reasonable efficiency beats pure scalar peak... as
    # long as width * efficiency >= 1, which these ranges guarantee
    # for width >= 2, efficiency >= 0.5; clamp the check accordingly.
    if width * efficiency >= 1.0:
        assert wide.peak_flops >= narrow.peak_flops


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=300),
       st.integers(min_value=1, max_value=300),
       st.integers(min_value=1, max_value=500))
def test_systolic_utilization_in_unit_interval(m, n, k):
    array = SystolicArrayModel(rows=32, cols=32)
    utilization = array.utilization(m, n, k)
    assert 0.0 < utilization <= 1.0


@settings(max_examples=40, deadline=None)
@given(st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=200),
       st.integers(min_value=1, max_value=200))
def test_systolic_effective_flops_below_peak(m, n, k):
    array = SystolicArrayModel(rows=16, cols=16)
    assert array.effective_flops(m, n, k) <= array.peak_flops + 1e-6
