"""Property-based tests for system-level invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import WorkloadProfile
from repro.core.workload import linear_pipeline
from repro.system.io_model import IoModel
from repro.system.pipeline import PipelineSimulation
from repro.system.robot import BatteryModel, UavPhysics
from repro.system.scheduler import (
    PeriodicTask,
    SchedulerPolicy,
    response_time_analysis,
    simulate_scheduler,
)

_service = st.floats(min_value=0.001, max_value=0.08)


@settings(max_examples=20, deadline=None)
@given(st.lists(_service, min_size=1, max_size=4),
       st.floats(min_value=2.0, max_value=15.0))
def test_pipeline_conservation(services, rate_hz):
    """Emitted samples = completed + dropped + still in flight."""
    profiles = [WorkloadProfile(name=f"s{i}", flops=1e6)
                for i in range(len(services))]
    graph = linear_pipeline("p", profiles, rate_hz=rate_hz,
                            output_bytes=1e3)
    service_map = {s.name: services[i]
                   for i, s in enumerate(graph.stages)}
    sim = PipelineSimulation(graph, service_map, io=IoModel())
    result = sim.run(4.0)
    dropped = sum(s.dropped for s in result.stage_stats.values())
    assert result.samples_completed + dropped \
        <= result.samples_emitted
    # In-flight items are bounded by the total queue capacity + one
    # in service per stage.
    in_flight = (result.samples_emitted - result.samples_completed
                 - dropped)
    assert 0 <= in_flight <= len(services) * (sim.queue_capacity + 1)
    # Latencies are all positive and at least the service-time sum.
    floor = sum(service_map.values())
    assert all(lat >= floor - 1e-9
               for lat in result.end_to_end_latencies)


@settings(max_examples=20, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0.01, max_value=0.1),   # period
    st.floats(min_value=0.05, max_value=0.5),   # utilization share
), min_size=1, max_size=3),
    st.sampled_from(list(SchedulerPolicy)))
def test_scheduler_accounting_invariants(specs, policy):
    tasks = [
        PeriodicTask(f"t{i}", period_s=period,
                     wcet_s=max(1e-3, period * share), priority=i)
        for i, (period, share) in enumerate(specs)
    ]
    result = simulate_scheduler(tasks, policy, duration_s=0.5,
                                time_step_s=1e-4)
    assert result.jobs_completed <= result.jobs_released
    assert result.deadline_misses <= result.jobs_released
    assert sum(result.per_task_misses.values()) \
        == result.deadline_misses
    assert 0.0 <= result.miss_rate <= 1.0


@settings(max_examples=30, deadline=None)
@given(st.lists(st.tuples(
    st.floats(min_value=0.01, max_value=0.2),
    st.floats(min_value=0.01, max_value=0.25),
), min_size=1, max_size=4))
def test_rta_response_at_least_wcet(specs):
    tasks = [
        PeriodicTask(f"t{i}", period_s=period,
                     wcet_s=max(1e-4, period * share), priority=i)
        for i, (period, share) in enumerate(specs)
    ]
    response = response_time_analysis(tasks)
    for task in tasks:
        assert response[task.name] >= task.wcet_s - 1e-12


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.5, max_value=5.0),
       st.floats(min_value=0.5, max_value=5.0))
def test_hover_power_monotone_in_mass(mass_a, mass_b):
    uav = UavPhysics()
    if mass_a < mass_b:
        assert uav.hover_power_w(mass_a) < uav.hover_power_w(mass_b)


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=5.0),
       st.floats(min_value=0.0, max_value=5.0),
       st.floats(min_value=1.0, max_value=30.0))
def test_safe_speed_monotone_in_latency(lat_a, lat_b, sensing):
    uav = UavPhysics(max_speed_m_s=100.0)
    speed_a = uav.safe_speed_m_s(sensing, lat_a)
    speed_b = uav.safe_speed_m_s(sensing, lat_b)
    if lat_a < lat_b:
        assert speed_a >= speed_b - 1e-12


@settings(max_examples=40, deadline=None)
@given(st.floats(min_value=0.0, max_value=2.0),
       st.floats(min_value=0.0, max_value=50.0))
def test_flight_time_monotone_in_payload(extra_mass, extra_power):
    uav = UavPhysics()
    battery = BatteryModel()
    base = uav.flight_time_s(battery, 0.0, 0.0)
    loaded = uav.flight_time_s(battery, extra_mass, extra_power)
    assert loaded <= base + 1e-9
