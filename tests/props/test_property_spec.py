"""Property-based round-trip tests for the spec codec layer.

For every codec: ``from_spec(to_spec(x)) == x`` (where the domain type
defines ``==``) and ``fingerprint`` equality, with the spec pushed
through real JSON text so the tests cover exactly what a scenario file
on disk goes through.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.core.workload import Kernel, Stage, TaskGraph
from repro.dse.space import DesignSpace, Parameter
from repro.engine.fingerprint import fingerprint
from repro.hw.mapping import Interconnect
from repro.spec import DSE_STRATEGIES, OBJECTIVES, from_spec, to_spec
from repro.system.robot import BatteryModel, UavPhysics

_counts = st.floats(min_value=0.0, max_value=1e15, allow_nan=False)
_fractions = st.floats(min_value=0.0, max_value=1.0)
_positive = st.floats(min_value=1e-6, max_value=1e6, allow_nan=False)
_names = st.text(
    alphabet="abcdefghijklmnopqrstuvwxyz-_0123456789",
    min_size=1, max_size=12)


def _roundtrip(obj):
    spec = json.loads(json.dumps(to_spec(obj)))
    clone = from_spec(spec)
    assert fingerprint(clone) == fingerprint(obj)
    return clone


def profiles():
    return st.builds(
        WorkloadProfile,
        name=_names,
        flops=_counts,
        int_ops=_counts,
        bytes_read=_counts,
        bytes_written=_counts,
        working_set_bytes=_counts,
        parallel_fraction=_fractions,
        divergence=st.sampled_from(list(DivergenceClass)),
        op_class=st.sampled_from(["generic", "gemm", "collision",
                                  "stencil"]),
    )


def stages(name=None):
    return st.builds(
        Stage,
        name=st.just(name) if name else _names,
        profile=profiles(),
        output_bytes=_counts,
        rate_hz=st.none() | _positive,
        deadline_s=st.none() | _positive,
    )


@settings(max_examples=60, deadline=None)
@given(profiles())
def test_profile_round_trip(profile):
    assert _roundtrip(profile) == profile


@settings(max_examples=60, deadline=None)
@given(stages())
def test_stage_round_trip(stage):
    assert _roundtrip(stage) == stage


@settings(max_examples=40, deadline=None)
@given(name=_names, category=_names, profile=profiles(),
       tags=st.lists(_names, max_size=3).map(tuple))
def test_static_kernel_round_trip(name, category, profile, tags):
    kernel = Kernel(name, category=category, static_profile=profile,
                    tags=tags)
    assert _roundtrip(kernel) == kernel


@settings(max_examples=40, deadline=None)
@given(st.lists(profiles(), min_size=1, max_size=4))
def test_task_graph_chain_round_trip(profiles_):
    # A linear chain: stage i depends on stage i-1.
    stages_ = [
        Stage(f"s{i}", profile,
              deps=(f"s{i - 1}",) if i else (),
              rate_hz=30.0 if i == 0 else None)
        for i, profile in enumerate(profiles_)
    ]
    graph = TaskGraph("chain", stages_)
    assert _roundtrip(graph) == graph


@settings(max_examples=60, deadline=None)
@given(name=_names,
       values=st.lists(st.integers(min_value=-10**6, max_value=10**6),
                       unique=True, min_size=1, max_size=6)
       | st.lists(_names, unique=True, min_size=1, max_size=6))
def test_parameter_round_trip(name, values):
    parameter = Parameter(name, tuple(values))
    clone = _roundtrip(parameter)
    assert clone == parameter
    # JSON must not blur the int/str identity of values (ints feed
    # numeric encodings; strings stay categorical).
    assert [type(v) for v in clone.values] == \
        [type(v) for v in parameter.values]


@settings(max_examples=40, deadline=None)
@given(st.dictionaries(
    _names,
    st.lists(st.integers(min_value=0, max_value=100), unique=True,
             min_size=1, max_size=4),
    min_size=1, max_size=4))
def test_design_space_round_trip(table):
    space = DesignSpace([Parameter(name, tuple(values))
                         for name, values in table.items()])
    assert _roundtrip(space) == space


@settings(max_examples=40, deadline=None)
@given(st.builds(
    Interconnect,
    bandwidth=_positive,
    latency_s=st.floats(min_value=0.0, max_value=1.0),
    energy_per_byte=st.floats(min_value=0.0, max_value=1e-6),
))
def test_interconnect_round_trip(link):
    assert _roundtrip(link) == link


@settings(max_examples=40, deadline=None)
@given(st.builds(
    BatteryModel,
    capacity_wh=st.floats(min_value=1.0, max_value=1000.0),
    mass_kg=st.floats(min_value=0.01, max_value=10.0),
    usable_fraction=st.floats(min_value=0.1, max_value=1.0),
))
def test_battery_round_trip(battery):
    assert _roundtrip(battery) == battery


@settings(max_examples=40, deadline=None)
@given(st.builds(
    UavPhysics,
    frame_mass_kg=st.floats(min_value=0.1, max_value=10.0),
    rotor_disk_area_m2=st.floats(min_value=0.01, max_value=2.0),
    figure_of_merit=st.floats(min_value=0.1, max_value=1.0),
    max_speed_m_s=st.floats(min_value=1.0, max_value=50.0),
    max_accel_m_s2=st.floats(min_value=0.5, max_value=20.0),
    avionics_power_w=st.floats(min_value=0.0, max_value=50.0),
))
def test_uav_round_trip(uav):
    assert _roundtrip(uav) == uav


@settings(max_examples=40, deadline=None)
@given(name=_names,
       strategy=st.sampled_from(DSE_STRATEGIES),
       objective=st.sampled_from(OBJECTIVES.names()),
       budget=st.integers(min_value=1, max_value=100),
       seed=st.integers(min_value=0, max_value=2**31 - 1),
       jobs=st.integers(min_value=1, max_value=8))
def test_dse_scenario_round_trip(name, strategy, objective, budget,
                                 seed, jobs):
    scenario = from_spec({
        "kind": "scenario", "name": name,
        "dse": {"space": {"ref": "codesign"},
                "objective": {"ref": objective},
                "strategy": strategy, "budget": budget, "seed": seed,
                "jobs": jobs},
    })
    clone = _roundtrip(scenario)
    assert clone.name == name
    assert (clone.run.objective, clone.run.strategy) == \
        (objective, strategy)
    assert (clone.run.budget, clone.run.seed, clone.run.jobs) == \
        (budget, seed, jobs)
