"""Property-based tests for core profile/characterization invariants."""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.characterize import amdahl_speedup, max_amdahl_speedup
from repro.core.profile import DivergenceClass, WorkloadProfile

_counts = st.floats(min_value=0.0, max_value=1e15, allow_nan=False)
_fractions = st.floats(min_value=0.0, max_value=1.0)
_divergence = st.sampled_from(list(DivergenceClass))


def profiles():
    return st.builds(
        WorkloadProfile,
        name=st.just("p"),
        flops=_counts,
        int_ops=_counts,
        bytes_read=_counts,
        bytes_written=_counts,
        working_set_bytes=_counts,
        parallel_fraction=_fractions,
        divergence=_divergence,
    )


@settings(max_examples=60, deadline=None)
@given(profiles(), profiles())
def test_combined_conserves_counts(a, b):
    c = a.combined(b)
    assert c.flops == a.flops + b.flops
    assert math.isclose(c.total_bytes, a.total_bytes + b.total_bytes,
                        rel_tol=1e-12, abs_tol=1e-12)
    assert c.working_set_bytes == max(a.working_set_bytes,
                                      b.working_set_bytes)


@settings(max_examples=60, deadline=None)
@given(profiles(), profiles())
def test_combined_parallel_fraction_between_inputs(a, b):
    c = a.combined(b)
    lo = min(a.parallel_fraction, b.parallel_fraction)
    hi = max(a.parallel_fraction, b.parallel_fraction)
    assert lo - 1e-12 <= c.parallel_fraction <= hi + 1e-12


@settings(max_examples=60, deadline=None)
@given(profiles(), st.floats(min_value=0.0, max_value=1e6))
def test_scaling_is_linear(p, factor):
    scaled = p.scaled(factor)
    assert scaled.flops == p.flops * factor
    assert math.isclose(scaled.total_bytes, p.total_bytes * factor,
                        rel_tol=1e-12, abs_tol=1e-12)


@settings(max_examples=60, deadline=None)
@given(profiles())
def test_intensity_nonnegative(p):
    assert p.arithmetic_intensity >= 0.0


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=1.0, max_value=1e9))
def test_amdahl_bounds(fraction, speedup):
    result = amdahl_speedup(fraction, speedup)
    # End-to-end speedup never exceeds the kernel speedup or the
    # fraction ceiling, and never goes below 1 for speedup >= 1.
    assert 1.0 - 1e-12 <= result
    # Tolerances are relative: at fraction == 1 the reciprocal
    # round-trip 1/(1/s) is off by ~1 ulp, which exceeds any absolute
    # epsilon once s is large (hypothesis found s ~ 1.3e8).
    assert result <= speedup * (1.0 + 1e-12) + 1e-9
    assert result <= max_amdahl_speedup(fraction) * (1.0 + 1e-12) + 1e-9


@settings(max_examples=100, deadline=None)
@given(st.floats(min_value=0.0, max_value=0.999999),
       st.floats(min_value=0.0, max_value=1e-9))
def test_amdahl_slowdown_allowed(fraction, epsilon):
    # Kernel *slowdowns* (speedup < 1) make things worse, never better.
    result = amdahl_speedup(fraction, 0.5 + epsilon)
    assert result <= 1.0 + 1e-12
