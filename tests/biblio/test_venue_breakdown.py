"""Unit tests for venue-level trend breakdown."""

import pytest

from repro.biblio import TOP_VENUES, fig1_series, generate_corpus
from repro.biblio.trends import community_split, venue_breakdown

ARCH = ("ISCA", "MICRO", "HPCA", "ASPLOS", "DAC")
ROBO = ("ICRA", "IROS", "RSS", "CoRL")


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(seed=3)


class TestVenueBreakdown:
    def test_covers_all_matching_venues(self, corpus):
        breakdown = venue_breakdown(corpus)
        assert set(breakdown) <= set(TOP_VENUES)
        assert len(breakdown) >= 5

    def test_totals_match_fig1(self, corpus):
        breakdown = venue_breakdown(corpus)
        total = sum(sum(counts.values())
                    for counts in breakdown.values())
        assert total == fig1_series(corpus,
                                    venues=TOP_VENUES).total

    def test_each_venue_grows(self, corpus):
        breakdown = venue_breakdown(corpus)
        for venue, counts in breakdown.items():
            early = sum(counts.get(y, 0) for y in range(2010, 2016))
            late = sum(counts.get(y, 0) for y in range(2019, 2025))
            assert late > early, venue


class TestCommunitySplit:
    def test_both_communities_publish(self, corpus):
        split = community_split(corpus, ARCH, ROBO)
        assert split["architecture"] > 0
        assert split["robotics"] > 0

    def test_split_partitions_total(self, corpus):
        split = community_split(corpus, ARCH, ROBO)
        total = fig1_series(corpus, venues=TOP_VENUES).total
        assert split["architecture"] + split["robotics"] == total
