"""Unit tests for the publication corpus and Fig. 1 trend analysis."""

import pytest

from repro.biblio import (
    Publication,
    TOP_VENUES,
    cagr,
    counts_per_year,
    fig1_series,
    generate_corpus,
    query,
)
from repro.biblio.corpus import logistic_fraction
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def corpus():
    return generate_corpus(start_year=2010, end_year=2024, seed=1)


class TestCorpus:
    def test_reproducible(self):
        a = generate_corpus(seed=2, end_year=2012)
        b = generate_corpus(seed=2, end_year=2012)
        assert [p.title for p in a] == [p.title for p in b]

    def test_years_covered(self, corpus):
        years = {p.year for p in corpus}
        assert years == set(range(2010, 2025))

    def test_venues_covered(self, corpus):
        venues = {p.venue for p in corpus}
        assert venues == set(TOP_VENUES)

    def test_logistic_fraction_monotone(self):
        values = [logistic_fraction(y) for y in range(2010, 2025)]
        assert all(b > a for a, b in zip(values, values[1:]))
        assert values[-1] < 0.2  # below the ceiling

    def test_invalid_range(self):
        with pytest.raises(ConfigurationError):
            generate_corpus(start_year=2020, end_year=2010)

    def test_mentions_matching(self):
        pub = Publication(title="A SLAM accelerator study",
                          venue="DAC", year=2020,
                          keywords=("robotics",))
        assert pub.mentions(["slam accelerator"])
        assert pub.mentions(["ROBOTICS"])
        assert not pub.mentions(["quantum"])


class TestQuery:
    def test_venue_filter(self, corpus):
        dac_only = query(corpus, ["accelerator"], venues=["DAC"])
        assert all(p.venue == "DAC" for p in dac_only)

    def test_and_groups(self, corpus):
        both = query(corpus, ["accelerator"],
                     require_all_groups=[["robotics",
                                          "autonomous systems"]])
        assert all(
            p.mentions(["robotics", "autonomous systems"])
            for p in both
        )

    def test_empty_terms_rejected(self, corpus):
        with pytest.raises(ConfigurationError):
            query(corpus, [])


class TestTrends:
    def test_counts_cover_range(self, corpus):
        matched = query(corpus, ["accelerator"])
        counts = counts_per_year(matched)
        assert set(counts) == set(range(min(counts), max(counts) + 1))

    def test_cagr(self):
        assert cagr(1.0, 8.0, 3) == pytest.approx(1.0)  # doubling
        with pytest.raises(ConfigurationError):
            cagr(0.0, 5.0, 3)

    def test_fig1_shape(self, corpus):
        """The Fig. 1 reproduction: rapid growth through the 2010s."""
        report = fig1_series(corpus, venues=TOP_VENUES)
        counts = dict(report.series)
        early = sum(counts.get(y, 0) for y in range(2010, 2014))
        late = sum(counts.get(y, 0) for y in range(2020, 2024))
        assert late > 10 * max(early, 1)
        assert report.growth_rate > 0.2
        assert report.peak_year >= 2020

    def test_fig1_total_positive(self, corpus):
        report = fig1_series(corpus)
        assert report.total > 100
