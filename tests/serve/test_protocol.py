"""Unit tests for the daemon wire protocol (no sockets needed)."""

import io
import json

import pytest

from repro.errors import SpecError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    decode_line,
    decode_submission,
    encode_line,
    error_response,
    evaluator_context,
    read_frame,
    split_results,
)
from repro.spec.registry import SPACES


class TestLineCodec:
    def test_round_trip(self):
        message = {"op": "ping", "n": 3}
        assert dict(decode_line(encode_line(message))) == message

    def test_encoding_is_one_compact_line(self):
        raw = encode_line({"op": "stats", "a": [1, 2]})
        assert raw.endswith(b"\n")
        assert raw.count(b"\n") == 1
        assert b" " not in raw

    def test_non_json_rejected(self):
        with pytest.raises(SpecError, match="not a JSON line"):
            decode_line(b"{nope\n")

    def test_non_mapping_rejected(self):
        with pytest.raises(SpecError):
            decode_line(b"[1, 2]\n")

    def test_unknown_op_rejected(self):
        with pytest.raises(SpecError, match="unknown operation"):
            decode_line(encode_line({"op": "frobnicate"}))

    def test_missing_op_rejected(self):
        with pytest.raises(SpecError, match="op"):
            decode_line(b"{}\n")


class TestErrorResponse:
    def test_shape(self):
        envelope = error_response("submit", "overloaded", "busy",
                                  retry_after_ms=50.0)
        assert envelope == {"ok": False, "op": "submit",
                            "error": "overloaded", "detail": "busy",
                            "retry_after_ms": 50.0}


class TestEvaluatorContext:
    def test_matches_cli_dse_context(self):
        # The serve equivalence contract hinges on this exact value —
        # it is what ``repro dse`` / ``repro run`` hash into keys.
        assert evaluator_context("suite_objective") == {
            "task": "dse-codesign",
            "objective": "suite_objective",
        }


class TestDecodeSubmission:
    def test_inline_candidates(self):
        submission = decode_submission({
            "op": "submit",
            "candidates": [{"peak_gflops": 200.0}],
            "tenant": "t1",
        })
        assert submission.objective == "suite_objective"
        assert submission.candidates == [{"peak_gflops": 200.0}]
        assert submission.tenant == "t1"
        assert submission.no_coalesce is False

    def test_space_indices_decode_through_registry(self):
        space = SPACES.build("codesign", "$")
        submission = decode_submission({
            "op": "submit", "space": "codesign", "indices": [0, 5],
        })
        assert submission.candidates == [space.config_at(0),
                                         space.config_at(5)]

    def test_unknown_objective_rejected(self):
        with pytest.raises(SpecError, match="objective"):
            decode_submission({"op": "submit", "objective": "nope",
                               "candidates": [{}]})

    def test_both_forms_rejected(self):
        with pytest.raises(SpecError, match="not both"):
            decode_submission({"op": "submit", "candidates": [{}],
                               "space": "codesign", "indices": [0]})

    def test_neither_form_rejected(self):
        with pytest.raises(SpecError, match="neither"):
            decode_submission({"op": "submit"})

    def test_empty_candidates_rejected(self):
        with pytest.raises(SpecError, match="at least one"):
            decode_submission({"op": "submit", "candidates": []})

    def test_out_of_range_index_rejected(self):
        with pytest.raises(SpecError, match="outside space"):
            decode_submission({"op": "submit", "space": "codesign",
                               "indices": [10**9]})

    def test_unknown_key_rejected(self):
        with pytest.raises(SpecError, match="unknown"):
            decode_submission({"op": "submit", "candidates": [{}],
                               "sneaky": 1})


class TestReadFrame:
    def test_reads_one_line(self):
        handle = io.BytesIO(b'{"op":"ping"}\n{"op":"stats"}\n')
        assert read_frame(handle) == b'{"op":"ping"}\n'
        assert read_frame(handle) == b'{"op":"stats"}\n'

    def test_eof_is_none(self):
        assert read_frame(io.BytesIO(b"")) is None

    def test_oversized_line_rejected(self):
        blob = b"x" * (MAX_LINE_BYTES + 16)
        with pytest.raises(SpecError, match="exceeds"):
            read_frame(io.BytesIO(blob))

    def test_max_line_bound_fits_large_submissions(self):
        # ~10k candidates must fit on one line with headroom.
        candidates = [{"peak_gflops": 3200.0, "onchip_kb": 8192.0,
                       "offchip_gbs": 150.0,
                       "static_power_w": 20.0}] * 10_000
        line = encode_line({"op": "submit", "candidates": candidates})
        assert len(line) < MAX_LINE_BYTES


class TestSplitResults:
    def test_counts_hits_and_fresh(self):
        results = [{"cached": True}, {"cached": False},
                   {"cached": True}]
        assert split_results(results) == (2, 1)
