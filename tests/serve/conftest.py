"""Shared daemon fixture: an in-process EvalServer on its own event
loop thread, driven by blocking ServeClients from the test thread —
the same traffic shape as production, without subprocess startup
cost."""

import asyncio
import threading

import pytest

from repro.serve import EvalServer, ServeClient, ServeConfig


class Daemon:
    """One running EvalServer plus the loop thread that owns it."""

    def __init__(self, config: ServeConfig):
        self.server = EvalServer(config)
        self._loop = None
        self._ready = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("daemon failed to start")

    def _run(self) -> None:
        async def main() -> None:
            await self.server.start()
            self._loop = asyncio.get_running_loop()
            self._ready.set()
            await self.server.run()

        asyncio.run(main())

    @property
    def port(self) -> int:
        assert self.server.port is not None
        return self.server.port

    def client(self, **kwargs) -> ServeClient:
        kwargs.setdefault("timeout", 60.0)
        return ServeClient(port=self.port, **kwargs)

    def stop(self) -> None:
        if self._thread.is_alive() and self._loop is not None:
            self._loop.call_soon_threadsafe(self.server.request_stop)
        self._thread.join(timeout=30)


@pytest.fixture
def daemon():
    """Factory fixture: ``daemon(max_wait_ms=..., ...)`` returns a
    running :class:`Daemon`; every daemon is drained at teardown."""
    started = []

    def factory(**kwargs) -> Daemon:
        handle = Daemon(ServeConfig(**kwargs))
        started.append(handle)
        return handle

    yield factory
    for handle in started:
        handle.stop()
