"""Integration tests for the evaluation daemon.

Load-bearing properties: served values are byte-identical to the
serial one-shot path (same cache keys, so a server-primed cache
replays ``repro run`` with zero oracle calls), concurrent clients'
misses coalesce into shared batches, and admission control rejects —
never queues unboundedly — under pressure.
"""

import json
import socket
import threading
import time

from repro.cli import main
from repro.engine import Evaluator
from repro.serve import ServeClient
from repro.serve.protocol import encode_line, evaluator_context
from repro.spec.registry import OBJECTIVES, SPACES

SPACE = SPACES.build("codesign", "$")


def serial_values(indices, objective="suite_objective"):
    """The one-shot reference: a fresh serial Evaluator with the CLI's
    DSE context."""
    evaluator = Evaluator(OBJECTIVES.get(objective),
                          context=evaluator_context(objective))
    outcomes = evaluator.map_batch(
        [SPACE.config_at(i) for i in indices])
    return [outcome.value for outcome in outcomes]


class TestEquivalence:
    def test_served_values_match_serial_path(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        with handle.client() as client:
            served = client.submit_values(space="codesign",
                                          indices=list(range(8)))
        assert served == serial_values(range(8))

    def test_served_keys_match_serial_path(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        evaluator = Evaluator(
            OBJECTIVES.get("suite_objective"),
            context=evaluator_context("suite_objective"))
        with handle.client() as client:
            envelope = client.submit(space="codesign", indices=[0, 7])
        assert envelope["ok"]
        assert [r["key"] for r in envelope["results"]] == \
            [evaluator.key_for(SPACE.config_at(i)) for i in (0, 7)]

    def test_inline_and_indexed_submissions_share_keys(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        with handle.client() as client:
            by_index = client.submit(space="codesign", indices=[3])
            inline = client.submit(
                candidates=[SPACE.config_at(3)])
        assert by_index["results"][0]["key"] == \
            inline["results"][0]["key"]
        assert inline["results"][0]["cached"] is True

    def test_server_primed_cache_replays_run_with_zero_oracle_calls(
            self, daemon, tmp_path, capsys):
        # The acceptance criterion, end to end: prime through the
        # daemon, then the one-shot CLI replays entirely from cache.
        cache = str(tmp_path / "cache")
        handle = daemon(max_wait_ms=10.0, cache_dir=cache)
        with handle.client() as client:
            client.submit_values(space="codesign",
                                 indices=list(range(8)))
        handle.stop()

        scenario = tmp_path / "grid8.json"
        scenario.write_text(json.dumps({
            "spec_version": 1, "kind": "scenario", "name": "grid8",
            "dse": {"space": {"ref": "codesign"},
                    "objective": {"ref": "suite_objective"},
                    "strategy": "grid", "budget": 8, "seed": 0,
                    "jobs": 1},
        }))
        assert main(["run", str(scenario), "--cache", cache]) == 0
        out = capsys.readouterr().out
        assert "oracle calls: 0 (cache hits: 8, jobs: 1)" in out


class TestCoalescing:
    def test_concurrent_clients_share_one_batch(self, daemon):
        handle = daemon(max_wait_ms=400.0, max_batch=1024)
        clients = 4
        barrier = threading.Barrier(clients)
        values = {}

        def worker(rank):
            indices = list(range(rank * 4, rank * 4 + 4))
            with handle.client() as client:
                barrier.wait()
                values[rank] = client.submit_values(
                    space="codesign", indices=indices,
                    tenant=f"t{rank}")

        threads = [threading.Thread(target=worker, args=(rank,))
                   for rank in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        for rank in range(clients):
            assert values[rank] == serial_values(
                range(rank * 4, rank * 4 + 4))

        with handle.client() as client:
            stats = client.stats()["serve"]
        assert stats["coalesced_batches"] >= 1
        assert stats["coalesced_candidates"] >= 8
        # Coalescing amortizes: far fewer flushes than requests.
        assert stats["flushes"] < clients

    def test_duplicate_candidates_share_one_oracle_slot(self, daemon):
        handle = daemon(max_wait_ms=300.0, max_batch=1024)
        barrier = threading.Barrier(2)
        envelopes = {}

        def worker(name):
            with handle.client() as client:
                barrier.wait()
                envelopes[name] = client.submit(
                    space="codesign", indices=[0, 1, 2], tenant=name)

        threads = [threading.Thread(target=worker, args=(name,))
                   for name in ("a", "b")]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)

        values = {name: [r["value"] for r in envelopes[name]["results"]]
                  for name in envelopes}
        assert values["a"] == values["b"] == serial_values([0, 1, 2])
        with handle.client() as client:
            stats = client.stats()
        # Both tenants asked for the same 3 candidates; the oracle
        # priced each exactly once.
        occupancy = stats["serve"]["batch_occupancy"]
        assert occupancy["count"] * occupancy["mean"] == 3

    def test_deadline_flushes_a_single_candidate(self, daemon):
        handle = daemon(max_wait_ms=100.0, max_batch=1024)
        started = time.monotonic()
        with handle.client() as client:
            values = client.submit_values(space="codesign",
                                          indices=[9])
            stats = client.stats()["serve"]
        assert time.monotonic() - started < 30
        assert values == serial_values([9])
        assert stats["flushes"] == 1
        assert stats["batch_occupancy"]["count"] == 1
        assert stats["batch_occupancy"]["mean"] == 1

    def test_occupancy_triggers_flush_before_deadline(self, daemon):
        # With a 60s deadline, only the max_batch trigger can explain
        # a prompt answer.
        handle = daemon(max_wait_ms=60_000.0, max_batch=4)
        started = time.monotonic()
        with handle.client() as client:
            values = client.submit_values(space="codesign",
                                          indices=[0, 1, 2, 3])
        assert time.monotonic() - started < 30
        assert values == serial_values([0, 1, 2, 3])

    def test_no_coalesce_prices_request_alone(self, daemon):
        handle = daemon(max_wait_ms=60_000.0, max_batch=1024)
        with handle.client() as client:
            values = client.submit_values(space="codesign",
                                          indices=[4, 5],
                                          no_coalesce=True)
            stats = client.stats()["serve"]
        assert values == serial_values([4, 5])
        assert stats["flushes"] == 1
        assert stats["coalesced_batches"] == 0


class TestCacheSharing:
    def test_hits_answer_across_tenants(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        with handle.client() as client:
            client.submit_values(space="codesign", indices=[0, 1, 2],
                                 tenant="t1")
            second = client.submit(space="codesign", indices=[1, 2, 3],
                                   tenant="t2")
        assert [r["cached"] for r in second["results"]] == \
            [True, True, False]

    def test_tenant_counters_are_namespaced_metrics(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        with handle.client() as client:
            client.submit_values(space="codesign", indices=[0, 1, 2],
                                 tenant="t1")
            client.submit_values(space="codesign", indices=[1, 2, 3],
                                 tenant="t2")
            stats = client.stats()
        assert stats["tenants"]["t1"] == {"misses": 3.0}
        assert stats["tenants"]["t2"] == {"hits": 2.0, "misses": 1.0}
        # The registry IS the store: the same counts live under the
        # namespaced metric names.
        snapshot = handle.server.metrics.snapshot()
        assert snapshot["engine.cache.tenant.t2.hits"]["value"] == 2.0

    def test_cache_totals_reported(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        with handle.client() as client:
            client.submit_values(space="codesign", indices=[0, 1])
            client.submit_values(space="codesign", indices=[0, 1])
            stats = client.stats()
        assert stats["cache"]["hits"] >= 2
        assert stats["cache"]["misses"] >= 2


class TestAdmissionControl:
    def test_per_tenant_inflight_cap(self, daemon):
        handle = daemon(max_wait_ms=10.0, max_inflight=4)
        with handle.client() as client:
            envelope = client.submit(space="codesign",
                                     indices=list(range(5)),
                                     tenant="greedy")
        assert envelope["ok"] is False
        assert envelope["error"] == "overloaded"
        assert "retry_after_ms" in envelope

    def test_queue_full_rejects_new_misses(self, daemon):
        handle = daemon(max_wait_ms=60_000.0, max_batch=1024,
                        max_queue=4)
        parked = {}

        def parker():
            with handle.client(timeout=120.0) as client:
                parked["values"] = client.submit_values(
                    space="codesign", indices=[0, 1, 2, 3],
                    tenant="parker")

        thread = threading.Thread(target=parker)
        thread.start()
        # Wait until the parker's misses occupy the whole queue.
        deadline = time.monotonic() + 30
        with handle.client() as client:
            while time.monotonic() < deadline:
                if client.stats()["serve"]["queue_depth"] >= 4:
                    break
                time.sleep(0.02)
            else:
                raise AssertionError("queue never filled")
            rejected = client.submit(space="codesign", indices=[8, 9],
                                     tenant="latecomer")
        assert rejected["ok"] is False
        assert rejected["error"] == "overloaded"
        assert "queue" in rejected["detail"]

        # Shutdown drains the parked batch; the parker still gets
        # correct values.
        handle.stop()
        thread.join(timeout=60)
        assert parked["values"] == serial_values([0, 1, 2, 3])

    def test_draining_rejects_new_submissions(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        handle.server.draining = True
        with handle.client() as client:
            envelope = client.submit(space="codesign", indices=[0])
        assert envelope["ok"] is False
        assert envelope["error"] == "draining"


class TestRobustness:
    def test_disconnect_mid_batch_leaves_server_healthy(self, daemon):
        handle = daemon(max_wait_ms=300.0, max_batch=1024)
        # A raw socket fires a submission and vanishes without reading
        # the response.
        ghost = socket.create_connection(("127.0.0.1", handle.port))
        ghost.sendall(encode_line({"op": "submit", "space": "codesign",
                                   "indices": [0, 1], "tenant": "g"}))
        ghost.close()
        # An honest client overlapping the ghost's candidates still
        # gets correct values, and the server keeps answering.
        with handle.client() as client:
            values = client.submit_values(space="codesign",
                                          indices=[0, 1, 2])
            assert values == serial_values([0, 1, 2])
            assert client.ping()

    def test_malformed_line_is_bad_request(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        with handle.client() as client:
            envelope = client.request({"op": "ping"})
            assert envelope["ok"]
            bad = client.submit(candidates=[{"x": 1}],
                                space="codesign", indices=[0])
        assert bad["ok"] is False
        assert bad["error"] == "bad_request"

    def test_raw_garbage_is_bad_request_not_a_crash(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        raw = socket.create_connection(("127.0.0.1", handle.port))
        try:
            raw.sendall(b"this is not json\n")
            reply = raw.makefile("rb").readline()
        finally:
            raw.close()
        envelope = json.loads(reply)
        assert envelope["ok"] is False
        assert envelope["error"] == "bad_request"
        with handle.client() as client:
            assert client.ping()

    def test_stats_dashboard_shape(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        with handle.client() as client:
            client.submit_values(space="codesign", indices=[0])
            stats = client.stats()
        serve = stats["serve"]
        assert serve["requests"] == 1
        assert serve["candidates"] == 1
        assert serve["queue_depth"] == 0
        assert serve["request_latency_s"]["count"] == 1
        assert serve["request_latency_s"]["p99"] >= \
            serve["request_latency_s"]["p50"] >= 0
        assert stats["lanes"]["suite_objective"]["oracle_calls"] == 1

    def test_shutdown_op_stops_the_daemon(self, daemon):
        handle = daemon(max_wait_ms=10.0)
        with handle.client() as client:
            assert client.shutdown()
        handle._thread.join(timeout=30)
        assert not handle._thread.is_alive()
