"""Unit tests for carbon, LCA, and fleet models (§2.7)."""

import pytest

from repro.errors import ConfigurationError
from repro.sustainability import (
    EolPlan,
    FleetScenario,
    LifecycleInputs,
    ProcessNode,
    embodied_carbon_kg,
    fleet_power_w,
    fleet_vs_datacenters,
    operational_carbon_kg,
    packaging_carbon_kg,
    recovery_credit_kg,
)
from repro.sustainability.embodied import chiplet_vs_monolithic_kg
from repro.sustainability.eol import ewaste_mass_kg
from repro.sustainability.fleet import (
    crossover_year,
    datacenter_equivalents,
    fleet_energy_twh_per_year,
)
from repro.sustainability.lca import (
    amortized_kg_per_year,
    assess,
    compare_designs,
)
from repro.sustainability.operational import (
    edge_vs_cloud_training,
    training_carbon_kg,
)


class TestEmbodied:
    def test_advanced_nodes_cost_more_per_mm2(self):
        a28 = embodied_carbon_kg(100.0, ProcessNode.N28)
        a5 = embodied_carbon_kg(100.0, ProcessNode.N5)
        assert a5 > a28

    def test_yield_amortization(self):
        perfect = embodied_carbon_kg(100.0, ProcessNode.N7,
                                     yield_fraction=1.0)
        poor = embodied_carbon_kg(100.0, ProcessNode.N7,
                                  yield_fraction=0.5)
        assert poor == pytest.approx(2.0 * perfect)

    def test_invalid_area(self):
        with pytest.raises(ConfigurationError):
            embodied_carbon_kg(0.0, ProcessNode.N7)

    def test_packaging_grows_with_dies(self):
        assert packaging_carbon_kg(4) > packaging_carbon_kg(1)

    def test_chiplets_beat_monolith_on_big_dies(self):
        result = chiplet_vs_monolithic_kg(800.0, ProcessNode.N5,
                                          n_chiplets=4)
        assert result["chiplet_kg"] < result["monolithic_kg"]


class TestOperational:
    def test_grid_scaling(self):
        coal = operational_carbon_kg(100.0, "coal-heavy")
        hydro = operational_carbon_kg(100.0, "hydro-nordic")
        assert coal > 20.0 * hydro

    def test_pue_multiplies(self):
        base = operational_carbon_kg(100.0, "us-average", pue=1.0)
        dc = operational_carbon_kg(100.0, "us-average", pue=1.5)
        assert dc == pytest.approx(1.5 * base)

    def test_unknown_grid(self):
        with pytest.raises(ConfigurationError):
            operational_carbon_kg(1.0, "mars")

    def test_training_carbon_scales_with_flops(self):
        small = training_carbon_kg(1e15, 1e10, "world-average")
        big = training_carbon_kg(1e18, 1e10, "world-average")
        assert big == pytest.approx(1000.0 * small)

    def test_edge_vs_cloud_directional_claim(self):
        """The Patterson et al. §2.7 claim: on-device training emits
        more CO2 than cloud training."""
        result = edge_vs_cloud_training(1e18)
        assert result["edge_kg"] > result["cloud_kg"]
        assert result["ratio"] > 1.0

    def test_edge_can_win_on_clean_microgrid(self):
        result = edge_vs_cloud_training(
            1e18, edge_efficiency=5e10, edge_grid="solar-microgrid",
            cloud_grid="coal-heavy",
        )
        assert result["ratio"] < 1.0


class TestEol:
    def test_recovery_credit_bounded(self):
        plan = EolPlan(collection_rate=1.0, material_recovery=1.0)
        credit = recovery_credit_kg(plan, 100.0,
                                    recoverable_fraction=0.3)
        assert credit == pytest.approx(30.0)

    def test_default_plan_recovers_little(self):
        credit = recovery_credit_kg(EolPlan(), 100.0)
        assert credit < 5.0

    def test_ewaste_mass(self):
        plan = EolPlan(collection_rate=0.25)
        assert ewaste_mass_kg(1000, 0.1, plan) == pytest.approx(75.0)

    def test_invalid_rates(self):
        with pytest.raises(ConfigurationError):
            EolPlan(collection_rate=1.5)


class TestLca:
    def _inputs(self, **overrides):
        defaults = dict(
            name="dev", die_area_mm2=100.0, node=ProcessNode.N7,
            average_power_w=10.0, duty_cycle=0.5,
            lifetime_years=5.0, grid="world-average", units=1000,
        )
        defaults.update(overrides)
        return LifecycleInputs(**defaults)

    def test_components_sum(self):
        a = assess(self._inputs())
        assert a.total_kg == pytest.approx(
            a.embodied_kg + a.operational_kg - a.eol_credit_kg
        )
        assert a.fleet_total_kg == pytest.approx(1000 * a.total_kg)

    def test_short_life_raises_amortized_footprint(self):
        long_lived = amortized_kg_per_year(
            self._inputs(lifetime_years=10.0)
        )
        short_lived = amortized_kg_per_year(
            self._inputs(lifetime_years=1.0)
        )
        assert short_lived > long_lived

    def test_operational_fraction_grows_with_power(self):
        idle = assess(self._inputs(average_power_w=1.0))
        hungry = assess(self._inputs(average_power_w=100.0))
        assert (hungry.operational_fraction
                > idle.operational_fraction)

    def test_compare_designs(self):
        results = compare_designs({
            "a": self._inputs(),
            "b": self._inputs(average_power_w=50.0),
        })
        assert results["b"].total_kg > results["a"].total_kg

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            self._inputs(duty_cycle=2.0)


class TestFleet:
    def test_global_fleet_is_datacenter_scale(self):
        """The Sudhakar et al. headline: ~100M AVs at ~840 W for ~2
        h/day rival global datacenter power."""
        scenario = FleetScenario("global", n_vehicles=1e8)
        power = fleet_power_w(scenario)
        assert datacenter_equivalents(scenario) > 100.0
        assert power > 1e9  # gigawatt class

    def test_growth_reaches_crossover(self):
        scenario = FleetScenario("growing", n_vehicles=1e7,
                                 annual_growth=0.3)
        year = crossover_year(scenario)
        assert 0 < year < 30

    def test_no_growth_no_crossover(self):
        scenario = FleetScenario("flat", n_vehicles=1e6,
                                 annual_growth=0.0)
        assert crossover_year(scenario, horizon_years=20) == -1

    def test_projection_rows(self):
        scenario = FleetScenario("s", n_vehicles=1e6,
                                 annual_growth=0.1)
        rows = fleet_vs_datacenters(scenario, years=5)
        assert len(rows) == 6
        powers = [p for _, p, __ in rows]
        assert powers == sorted(powers)

    def test_energy_projection(self):
        scenario = FleetScenario("s", n_vehicles=1e8)
        assert fleet_energy_twh_per_year(scenario) > 10.0

    def test_invalid_hours(self):
        with pytest.raises(ConfigurationError):
            FleetScenario("bad", n_vehicles=1.0, hours_per_day=30.0)
