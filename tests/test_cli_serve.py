"""E2E smoke for the ``repro serve`` / ``repro submit`` verbs.

One real daemon subprocess, concurrent clients, and the CLI client
verb — the same shape as the CI serve smoke job, kept small enough for
tier-1.
"""

import json
import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.serve import ServeClient

ROOT = Path(__file__).resolve().parents[1]


@pytest.fixture
def daemon_process(tmp_path):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    cache = str(tmp_path / "cache")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--port", "0",
         "--max-wait-ms", "150", "--cache", cache],
        stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
        env=env, cwd=str(ROOT))
    banner = proc.stdout.readline().strip()
    assert banner.startswith("serving on 127.0.0.1:"), banner
    port = int(banner.rsplit(":", 1)[1])
    try:
        yield proc, port, cache
    finally:
        if proc.poll() is None:
            proc.terminate()
            proc.wait(timeout=30)


def _submit_cli(port, *extra):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return subprocess.run(
        [sys.executable, "-m", "repro", "submit", "--port",
         str(port), *extra],
        capture_output=True, text=True, timeout=120, env=env,
        cwd=str(ROOT))


class TestServeSmoke:
    def test_daemon_serves_concurrent_clients(self, daemon_process,
                                              tmp_path):
        proc, port, _ = daemon_process

        # 4 concurrent clients, distinct candidates each.
        barrier = threading.Barrier(4)
        envelopes = {}

        def worker(rank):
            with ServeClient(port=port, timeout=120.0) as client:
                barrier.wait()
                envelopes[rank] = client.submit(
                    space="codesign",
                    indices=list(range(rank * 4, rank * 4 + 4)),
                    tenant=f"smoke{rank}")

        threads = [threading.Thread(target=worker, args=(rank,))
                   for rank in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=120)
        for rank in range(4):
            assert envelopes[rank]["ok"], envelopes[rank]
            assert len(envelopes[rank]["results"]) == 4

        # The CLI verb resubmits overlapping candidates: all hits now.
        out_json = tmp_path / "resubmit.json"
        result = _submit_cli(port, "--indices", "0-7", "--json",
                             str(out_json))
        assert result.returncode == 0, result.stderr
        assert "cache hits: 8/8" in result.stdout
        envelope = json.loads(out_json.read_text())
        assert [r["cached"] for r in envelope["results"]] == [True] * 8
        # CLI-submitted values match what the raw clients were served.
        assert [r["value"] for r in envelope["results"]] == \
            [r["value"] for rank in (0, 1)
             for r in envelopes[rank]["results"]]

        # Concurrent misses coalesced into shared batches.
        with ServeClient(port=port, timeout=120.0) as client:
            stats = client.stats()
        assert stats["serve"]["coalesced_batches"] >= 1

        # Stats + graceful shutdown through the CLI verb.
        result = _submit_cli(port, "--stats", "--shutdown")
        assert result.returncode == 0, result.stderr
        assert "Daemon dashboard" in result.stdout
        assert "daemon acknowledged shutdown" in result.stdout

        assert proc.wait(timeout=60) == 0
        tail = proc.stdout.read()
        assert "request(s)" in tail and "coalesced" in tail

    def test_submit_without_daemon_fails_cleanly(self):
        result = _submit_cli(1, "--indices", "0", "--timeout", "5")
        assert result.returncode == 2
        assert "cannot reach daemon" in result.stderr

    def test_submit_requires_an_action(self, daemon_process):
        _, port, _ = daemon_process
        result = _submit_cli(port)
        assert result.returncode == 2
        assert "nothing to do" in result.stderr
