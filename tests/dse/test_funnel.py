"""Multi-fidelity funnel: gates, edge cases, determinism, and the
tier-equivalence contract at the search level."""

import pytest

from repro.dse import DesignSpace, Parameter
from repro.dse.funnel import (FunnelConfig, FunnelStrategy,
                              PromotionGate, build_inner, default_gates,
                              funnel_search)
from repro.dse.objectives import (codesign_space, codesign_space_xl,
                                  mission_objective, suite_objective)
from repro.dse.search import GridStrategy, RandomStrategy, grid_search, \
    random_search
from repro.engine.cache import ResultCache
from repro.engine.evaluator import Evaluator
from repro.engine.protocol import FidelityTier, fidelity_tiers, \
    run_search
from repro.errors import SearchError


def plain(config):
    return (config["x"] - 5) ** 2


def screen(config):
    return abs(config["x"] - 5)


def screen_batch(configs):
    return [screen(c) for c in configs]


def flat(config):
    return 1.0


def flat_batch(configs):
    return [1.0 for _ in configs]


class TwoTier:
    """Tiny tiered objective (module-level: picklable for jobs=2)."""

    def __call__(self, config):
        return plain(config)

    def evaluate_batch(self, configs):
        return [self(c) for c in configs]

    def fidelity_tiers(self):
        return (
            FidelityTier(name="screen", evaluate=screen,
                         evaluate_batch=screen_batch, cost_hint=1.0),
            FidelityTier(name="full", evaluate=self,
                         evaluate_batch=self.evaluate_batch,
                         cost_hint=3.0),
        )


class FlatScreenTier(TwoTier):
    """Screen scores are all equal — gate must break ties by arrival."""

    def fidelity_tiers(self):
        return (
            FidelityTier(name="screen", evaluate=flat,
                         evaluate_batch=flat_batch, cost_hint=1.0),
            FidelityTier(name="full", evaluate=self,
                         evaluate_batch=self.evaluate_batch,
                         cost_hint=3.0),
        )


@pytest.fixture
def line_space():
    return DesignSpace([Parameter("x", tuple(range(16)))])


class TestPromotionGate:
    def test_needs_exactly_one_rule(self):
        with pytest.raises(SearchError):
            PromotionGate()
        with pytest.raises(SearchError):
            PromotionGate(top_fraction=0.1, threshold=1.0)

    def test_fraction_range(self):
        with pytest.raises(SearchError):
            PromotionGate(top_fraction=0.0)
        with pytest.raises(SearchError):
            PromotionGate(top_fraction=1.5)
        PromotionGate(top_fraction=1.0)  # inclusive upper bound

    def test_budget_positive(self):
        with pytest.raises(SearchError):
            PromotionGate(top_fraction=0.5, budget=0)

    def test_default_gates(self):
        assert default_gates(0) == ()
        (one,) = default_gates(1)
        assert one.top_fraction == 0.01
        two = default_gates(2)
        assert [g.top_fraction for g in two] == [0.05, 0.2]
        three = default_gates(3)
        product = 1.0
        for gate in three:
            product *= gate.top_fraction
        assert product == pytest.approx(0.01)

    def test_default_gates_reject_negative(self):
        with pytest.raises(SearchError):
            default_gates(-1)


class TestFunnelConfig:
    def test_unknown_inner_rejected(self):
        with pytest.raises(SearchError):
            FunnelConfig(inner="annealing")

    def test_gates_coerced_to_tuple(self):
        cfg = FunnelConfig(gates=[PromotionGate(top_fraction=0.5)])
        assert isinstance(cfg.gates, tuple)

    def test_build_inner_names(self, line_space):
        for name in ("random", "grid", "evolutionary"):
            build_inner(name, line_space, budget=4)
        with pytest.raises(SearchError):
            build_inner("annealing", line_space, budget=4)


class TestFunnelStrategyValidation:
    def _inner(self, space):
        return RandomStrategy(space, budget=8)

    def test_needs_tiers(self, line_space):
        with pytest.raises(SearchError):
            FunnelStrategy((), self._inner(line_space))

    def test_duplicate_tiers_rejected(self, line_space):
        with pytest.raises(SearchError):
            FunnelStrategy(("a", "a"), self._inner(line_space))

    def test_gate_count_must_match(self, line_space):
        with pytest.raises(SearchError):
            FunnelStrategy(("a", "b"), self._inner(line_space),
                           gates=())

    def test_budget_positive(self, line_space):
        with pytest.raises(SearchError):
            FunnelStrategy(("a", "b"), self._inner(line_space),
                           budget=0)


class TestFunnelSearch:
    def test_finds_direct_search_optimum(self):
        """Full-budget funnel over the whole demo space lands on the
        same optimum as exhaustive full-fidelity enumeration."""
        space = codesign_space()
        direct = grid_search(space, suite_objective)
        result, strategy = funnel_search(
            space, suite_objective, budget=space.size,
            config=FunnelConfig(inner="grid"))
        assert result.best_config == direct.best_config
        assert result.best_value == direct.best_value
        report = {row["tier"]: row for row in strategy.tier_report()}
        assert report["roofline"]["evaluated"] == space.size
        assert report["suite"]["evaluated"] < space.size * 0.05
        assert report["roofline"]["kill_rate"] > 0.9

    def test_history_is_top_tier_only(self, line_space):
        result, strategy = funnel_search(
            line_space, TwoTier(), budget=16,
            config=FunnelConfig(
                inner="grid",
                gates=(PromotionGate(top_fraction=0.25),)))
        assert result.evaluations == len(result.history) == 4
        # Full-fidelity values, not screen values.
        for config, value in result.history:
            assert value == plain(config)

    def test_screen_budget_caps_mid_batch(self, line_space):
        """A budget that cuts into the inner's one big ask truncates
        the screen exactly there."""
        result, strategy = funnel_search(
            line_space, TwoTier(), budget=10,
            config=FunnelConfig(
                inner="grid",
                gates=(PromotionGate(top_fraction=0.2),)))
        report = {row["tier"]: row for row in strategy.tier_report()}
        assert report["screen"]["evaluated"] == 10
        assert report["screen"]["survivors"] == 2  # ceil(0.2 * 10)
        assert result.evaluations == 2

    def test_forced_promotion_when_gate_kills_everyone(self, line_space):
        result, strategy = funnel_search(
            line_space, TwoTier(), budget=8,
            config=FunnelConfig(
                inner="grid",
                gates=(PromotionGate(threshold=-1.0),)))
        report = {row["tier"]: row for row in strategy.tier_report()}
        assert report["screen"]["forced"] is True
        assert report["screen"]["survivors"] == 1
        assert result.evaluations == 1
        # The forced survivor is the screen's best candidate.
        assert result.best_config == {"x": 5}

    def test_gate_budget_caps_survivors(self, line_space):
        result, strategy = funnel_search(
            line_space, TwoTier(), budget=16,
            config=FunnelConfig(
                inner="grid",
                gates=(PromotionGate(top_fraction=1.0, budget=3),)))
        assert result.evaluations == 3

    def test_ties_promote_in_arrival_order(self, line_space):
        """Equal screen scores: the stable (value, arrival) sort keeps
        the first-proposed candidates."""
        result, _ = funnel_search(
            line_space, FlatScreenTier(), budget=16,
            config=FunnelConfig(
                inner="grid",
                gates=(PromotionGate(top_fraction=0.25),)))
        promoted = [config for config, _ in result.history]
        assert promoted == [{"x": x} for x in range(4)]

    def test_duplicate_proposals_deduplicated(self):
        tiny = DesignSpace([Parameter("x", (4, 5, 6, 7))])
        # budget > space.size forces sampling with replacement.
        result, strategy = funnel_search(
            tiny, TwoTier(), budget=12,
            config=FunnelConfig(
                gates=(PromotionGate(top_fraction=1.0),)))
        keys = [tuple(sorted(c.items())) for c, _ in result.history]
        assert len(keys) == len(set(keys)) <= tiny.size

    def test_jobs_and_chunking_do_not_change_survivors(self):
        space = codesign_space()
        runs = [
            funnel_search(space, suite_objective, budget=64,
                          config=FunnelConfig(inner="random")),
            funnel_search(space, suite_objective, budget=64,
                          config=FunnelConfig(inner="random"), jobs=2),
            funnel_search(space, suite_objective, budget=64,
                          config=FunnelConfig(inner="random"),
                          chunk_size=7),
        ]
        results, strategies = zip(*runs)
        baseline = results[0]
        for other in results[1:]:
            assert other.best_config == baseline.best_config
            assert other.best_value == baseline.best_value
            assert other.history == baseline.history
        reports = [s.tier_report() for s in strategies]
        assert reports[1] == reports[0]
        assert reports[2] == reports[0]

    def test_single_tier_funnel_degenerates_to_inner(self, line_space):
        """Untiered objective: the funnel is its inner strategy."""
        result, strategy = funnel_search(line_space, plain, budget=8,
                                         seed=3)
        direct = random_search(line_space, plain, budget=8, seed=3)
        assert result.best_config == direct.best_config
        assert result.best_value == direct.best_value
        assert result.history == direct.history
        (row,) = strategy.tier_report()
        assert row["tier"] == "full"

    def test_mission_three_tier_ladder(self):
        """The mission funnel climbs pricing -> fleet -> mission and
        reports a shrinking population at every rung."""
        space = codesign_space()
        result, strategy = funnel_search(
            space, mission_objective, budget=60, seed=1)
        rows = strategy.tier_report()
        assert [r["tier"] for r in rows] \
            == ["pricing", "fleet", "mission"]
        assert rows[0]["evaluated"] == 60
        assert rows[0]["evaluated"] >= rows[1]["evaluated"] \
            >= rows[2]["evaluated"] >= 1
        assert result.best_value == mission_objective(result.best_config)

    def test_fleet_tier_values_match_top_tier(self):
        """The mid "fleet" tier is an exact vectorization of the DES
        top tier — same values, different cache namespace."""
        space = codesign_space()
        configs = [space.config_at(i) for i in (0, 37, 121, 255)]
        ev = Evaluator(mission_objective, context=None)
        fleet = ev.map_batch(configs, tier="fleet")
        full = ev.map_batch(configs, tier="mission")
        assert [r.value for r in fleet] == [r.value for r in full]
        assert all(f.key != m.key for f, m in zip(fleet, full))

    def test_funnel_primed_cache_replays_directly(self):
        """Tier-equivalence, end to end: every top-tier evaluation the
        funnel made is a legacy-keyed cache entry a direct evaluator
        replays without the oracle."""
        space = codesign_space()
        cache = ResultCache()
        result, _ = funnel_search(space, suite_objective,
                                  budget=space.size, cache=cache,
                                  config=FunnelConfig(inner="grid"))
        replay = Evaluator(suite_objective, cache=cache)
        results = replay.map_batch(
            [config for config, _ in result.history])
        assert all(r.cached for r in results)
        assert replay.oracle_calls == 0
        assert [r.value for r in results] \
            == [value for _, value in result.history]

    def test_xl_space_shape(self):
        space = codesign_space_xl()
        assert space.size == 64 * 32 * 32 * 16
        first, last = space.config_at(0), space.config_at(space.size - 1)
        assert first["peak_gflops"] == 50.0
        assert last["peak_gflops"] == 3200.0

    def test_run_search_routes_tiers(self, line_space):
        """run_search consults ask_tier() — driving a funnel manually
        through run_search and an Evaluator prices each stage at its
        own tier (screen evaluations never hit the full oracle)."""
        objective = TwoTier()
        ev = Evaluator(objective)
        inner = GridStrategy(line_space)
        strategy = FunnelStrategy(
            fidelity_tiers(objective), inner,
            gates=(PromotionGate(top_fraction=0.125),))
        run_search(strategy, ev)
        stats = ev.tier_stats()
        assert stats["screen"]["oracle_calls"] == 16
        assert stats["full"]["oracle_calls"] == 2
