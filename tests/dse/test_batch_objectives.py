"""Batch wiring tests: suite objectives, vector objectives, and the
suite runner all price through the SoA kernel with values identical to
their scalar paths."""

import pytest

from repro.benchmarksuite.runner import (
    PairPricer,
    SuiteRunner,
    evaluate_pair,
    price_pairs,
)
from repro.benchmarksuite.workloads import standard_suite
from repro.dse.multiobjective import VectorObjective
from repro.dse.objectives import (
    SuiteObjective,
    codesign_space,
    encode_codesign,
    suite_energy,
    suite_latency,
    suite_objective,
)
from repro.dse.search import random_search
from repro.engine import Evaluator
from repro.errors import BatchFallback, SearchError
from repro.hw.catalog import (
    asic_gemm_engine,
    desktop_cpu,
    embedded_gpu,
    midrange_fpga,
)


def _sample_configs(step=23):
    space = codesign_space()
    return [space.config_at(i) for i in range(0, space.size, step)]


def _scalar_objective(config):
    """Plain-function twin of suite_objective: no evaluate_batch, so an
    Evaluator built on it can only take the scalar path."""
    return suite_objective(config)


class TestSuiteObjectives:
    def test_batch_equals_scalar_bitwise(self):
        configs = _sample_configs()
        for objective in (suite_objective, suite_latency,
                          suite_energy):
            scalar = [objective(config) for config in configs]
            batch = objective.evaluate_batch(configs)
            assert batch == scalar
            assert all(type(value) is float for value in batch)

    def test_empty_batch(self):
        assert suite_objective.evaluate_batch([]) == []

    def test_unknown_kind_rejected(self):
        with pytest.raises(SearchError):
            SuiteObjective("latency")

    def test_encoder_matches_population(self):
        configs = _sample_configs()
        soa = encode_codesign(configs)
        assert len(soa) == len(configs)
        for i, config in enumerate(configs):
            assert soa.peak_flops[i] == config["peak_gflops"] * 1e9
            assert soa.onchip_bytes[i] == config["onchip_kb"] * 1024.0

    def test_encoder_bit_equal_to_reference_transpose(self):
        """The direct column encode must match transposing
        per-candidate build_platform configs, field for field."""
        import dataclasses

        import numpy as np

        from repro.dse.objectives import build_platform
        from repro.hw.batch import PlatformSoA

        configs = _sample_configs()
        fast = encode_codesign(configs)
        reference = PlatformSoA.from_configs(
            [build_platform(config).config for config in configs])
        assert fast.names == reference.names
        for field in dataclasses.fields(PlatformSoA):
            if field.name == "names":
                continue
            lhs = getattr(fast, field.name)
            rhs = getattr(reference, field.name)
            assert lhs.dtype == rhs.dtype, field.name
            assert np.array_equal(lhs, rhs), field.name

    def test_encoder_empty_population(self):
        assert len(encode_codesign([])) == 0

    def test_search_prices_through_batch_path(self):
        space = codesign_space()
        batch_eval = Evaluator(suite_objective, seed=3)
        batch = random_search(space, budget=40, seed=3,
                              evaluator=batch_eval)
        scalar_eval = Evaluator(_scalar_objective, seed=3)
        scalar = random_search(space, budget=40, seed=3,
                               evaluator=scalar_eval)
        assert batch_eval.stats()["batch_hits"] > 0
        assert scalar_eval.stats()["batch_hits"] == 0
        assert batch.best_config == scalar.best_config
        assert batch.best_value == scalar.best_value


class TestVectorObjective:
    def test_batch_equals_scalar(self):
        configs = _sample_configs(37)
        vector = VectorObjective({"slack": suite_latency,
                                  "energy": suite_energy,
                                  "bias": _scalar_objective})
        batch = vector.evaluate_batch(configs)
        scalar = [vector(config) for config in configs]
        assert batch == scalar

    def test_declines_without_batchable_components(self):
        vector = VectorObjective({"a": _scalar_objective,
                                  "b": _scalar_objective})
        with pytest.raises(BatchFallback):
            vector.evaluate_batch(_sample_configs(61))


class TestSuitePairs:
    def test_rows_equal_scalar_for_mixed_targets(self):
        targets = [desktop_cpu(), embedded_gpu(), asic_gemm_engine(),
                   midrange_fpga()]
        pairs = [{"workload": workload, "target": target}
                 for workload in standard_suite() for target in targets]
        assert (price_pairs.evaluate_batch(pairs)
                == [evaluate_pair(pair) for pair in pairs])

    def test_declines_all_scalar_batches(self):
        pairs = [{"workload": workload, "target": asic_gemm_engine()}
                 for workload in standard_suite()]
        with pytest.raises(BatchFallback):
            price_pairs.evaluate_batch(pairs)

    def test_runner_rows_identical_and_batch_priced(self):
        runner = SuiteRunner()
        targets = [desktop_cpu(), embedded_gpu()]
        batch_eval = Evaluator(
            PairPricer(), context={"probe": "batch"})
        scalar_eval = Evaluator(
            evaluate_pair, context={"probe": "scalar"})
        batch_rows = runner.run(targets, evaluator=batch_eval)
        scalar_rows = runner.run(targets, evaluator=scalar_eval)
        assert batch_rows == scalar_rows
        assert batch_eval.stats()["batch_hits"] > 0
