"""Mission-objective wiring: co-design candidates scored by flying the
fixed closed-loop scenario, batch path identical to scalar, search
routed through the engine's batch fast path, and cache keys stable
across the two paths (a scalar-primed cache replays under batch)."""

import pickle

from repro.dse.objectives import (
    codesign_payload,
    codesign_space,
    mission_objective,
)
from repro.dse.search import random_search
from repro.engine import Evaluator
from repro.engine.cache import ResultCache
from repro.spec.registry import OBJECTIVES


def _sample_configs(step=23):
    space = codesign_space()
    return [space.config_at(i) for i in range(0, space.size, step)]


def _scalar_mission_objective(config):
    """Plain-function twin: no evaluate_batch, so an Evaluator built on
    it can only take the scalar path."""
    return mission_objective(config)


class TestMissionObjective:
    def test_batch_equals_scalar_bitwise(self):
        configs = _sample_configs()
        scalar = [mission_objective(config) for config in configs]
        batch = mission_objective.evaluate_batch(configs)
        assert batch == scalar
        assert all(type(value) is float for value in batch)

    def test_empty_batch(self):
        assert mission_objective.evaluate_batch([]) == []

    def test_registered(self):
        assert OBJECTIVES.get("mission_objective") is \
            mission_objective

    def test_pickles_to_the_singleton(self):
        clone = pickle.loads(pickle.dumps(mission_objective))
        assert clone is mission_objective

    def test_payload_scales_with_compute(self):
        space = codesign_space()
        small = codesign_payload(space.config_at(0))
        large = codesign_payload(space.config_at(space.size - 1))
        assert small[0] < large[0]  # mass
        assert small[1] < large[1]  # power

    def test_failure_penalty_dominates(self):
        # Any feasible score is < 10; any infeasible score is >= 10,
        # so success always orders above failure.
        values = mission_objective.evaluate_batch(_sample_configs(11))
        feasible = [v for v in values if v < 10.0]
        infeasible = [v for v in values if v >= 10.0]
        assert feasible, "no candidate flies the mission"
        assert max(feasible) < min(infeasible, default=float("inf"))


class TestSearchIntegration:
    def test_search_prices_through_batch_path(self):
        space = codesign_space()
        batch_eval = Evaluator(mission_objective, seed=3)
        batch = random_search(space, budget=40, seed=3,
                              evaluator=batch_eval)
        scalar_eval = Evaluator(_scalar_mission_objective, seed=3)
        scalar = random_search(space, budget=40, seed=3,
                               evaluator=scalar_eval)
        assert batch_eval.stats()["batch_hits"] > 0
        assert scalar_eval.stats()["batch_hits"] == 0
        assert batch.best_config == scalar.best_config
        assert batch.best_value == scalar.best_value

    def test_scalar_primed_cache_replays_under_batch(self):
        """Cache keys must not depend on which path priced the
        candidate: prime a cache through the scalar twin, then the
        batch-capable objective must answer entirely from it."""
        configs = _sample_configs(31)
        cache = ResultCache()
        context = {"objective": "mission"}
        scalar_eval = Evaluator(_scalar_mission_objective, cache=cache,
                                context=context)
        scalar_values = [r.value
                         for r in scalar_eval.map_batch(configs)]
        batch_eval = Evaluator(mission_objective, cache=cache,
                               context=context)
        results = batch_eval.map_batch(configs)
        assert [r.value for r in results] == scalar_values
        assert all(r.cached for r in results)
        assert batch_eval.stats()["oracle_calls"] == 0
        assert batch_eval.stats()["batch_hits"] == 0
