"""Mission-objective wiring: co-design candidates scored by flying the
fixed closed-loop scenario, batch path identical to scalar, search
routed through the engine's batch fast path, and cache keys stable
across the two paths (a scalar-primed cache replays under batch)."""

import pickle

from repro.dse.objectives import (
    MissionObjective,
    codesign_payload,
    codesign_space,
    mission_objective,
    mission_setting,
)
from repro.dse.search import random_search
from repro.engine import Evaluator
from repro.engine.cache import ResultCache
from repro.spec.registry import OBJECTIVES


def _sample_configs(step=23):
    space = codesign_space()
    return [space.config_at(i) for i in range(0, space.size, step)]


def _scalar_mission_objective(config):
    """Plain-function twin: no evaluate_batch, so an Evaluator built on
    it can only take the scalar path."""
    return mission_objective(config)


class TestMissionObjective:
    def test_batch_equals_scalar_bitwise(self):
        configs = _sample_configs()
        scalar = [mission_objective(config) for config in configs]
        batch = mission_objective.evaluate_batch(configs)
        assert batch == scalar
        assert all(type(value) is float for value in batch)

    def test_empty_batch(self):
        assert mission_objective.evaluate_batch([]) == []

    def test_registered(self):
        assert OBJECTIVES.get("mission_objective") is \
            mission_objective

    def test_pickles_to_the_singleton(self):
        clone = pickle.loads(pickle.dumps(mission_objective))
        assert clone is mission_objective

    def test_payload_scales_with_compute(self):
        space = codesign_space()
        small = codesign_payload(space.config_at(0))
        large = codesign_payload(space.config_at(space.size - 1))
        assert small[0] < large[0]  # mass
        assert small[1] < large[1]  # power

    def test_failure_penalty_dominates(self):
        # Any feasible score is < 10; any infeasible score is >= 10,
        # so success always orders above failure.
        values = mission_objective.evaluate_batch(_sample_configs(11))
        feasible = [v for v in values if v < 10.0]
        infeasible = [v for v in values if v >= 10.0]
        assert feasible, "no candidate flies the mission"
        assert max(feasible) < min(infeasible, default=float("inf"))


class TestParametricSetting:
    def test_default_setting_matches_singleton(self):
        """mission_setting()'s defaults rebuild the shared scenario, so
        a parametric objective built on them scores identically."""
        configs = _sample_configs(101)
        twin = MissionObjective(mission_setting())
        assert [twin(c) for c in configs] == \
            [mission_objective(c) for c in configs]
        assert twin.evaluate_batch(configs) == \
            mission_objective.evaluate_batch(configs)
        assert twin.pricing_screen_batch(configs) == \
            mission_objective.pricing_screen_batch(configs)

    def test_heavier_setting_changes_full_but_not_screen_shape(self):
        """More laps lengthen the flight (higher time/energy terms)
        while the tier ladder keeps working end to end."""
        config = codesign_space().config_at(0)
        heavy = MissionObjective(mission_setting(laps=4))
        base_value = mission_objective(config)
        heavy_value = heavy(config)
        assert heavy_value != base_value
        names = [tier.name for tier in heavy.fidelity_tiers()]
        assert names == ["pricing", "fleet", "mission"]
        # Batch path flies the parametric scenario too.
        assert heavy.evaluate_batch([config]) == [heavy_value]

    def test_finer_timestep_preserves_feasibility(self):
        """A finer integration step re-resolves the same flight: the
        success/failure verdict of the shared scenario must hold."""
        configs = _sample_configs(151)
        fine = MissionObjective(mission_setting(time_step_s=0.01))
        for config in configs:
            assert (fine(config) >= 10.0) == \
                (mission_objective(config) >= 10.0)

    def test_parametric_repr_and_pickle(self):
        heavy = MissionObjective(mission_setting(laps=4))
        assert "laps=4" in repr(heavy)
        clone = pickle.loads(pickle.dumps(heavy))
        assert clone is not mission_objective
        config = codesign_space().config_at(7)
        assert clone(config) == heavy(config)


class TestSearchIntegration:
    def test_search_prices_through_batch_path(self):
        space = codesign_space()
        batch_eval = Evaluator(mission_objective, seed=3)
        batch = random_search(space, budget=40, seed=3,
                              evaluator=batch_eval)
        scalar_eval = Evaluator(_scalar_mission_objective, seed=3)
        scalar = random_search(space, budget=40, seed=3,
                               evaluator=scalar_eval)
        assert batch_eval.stats()["batch_hits"] > 0
        assert scalar_eval.stats()["batch_hits"] == 0
        assert batch.best_config == scalar.best_config
        assert batch.best_value == scalar.best_value

    def test_scalar_primed_cache_replays_under_batch(self):
        """Cache keys must not depend on which path priced the
        candidate: prime a cache through the scalar twin, then the
        batch-capable objective must answer entirely from it."""
        configs = _sample_configs(31)
        cache = ResultCache()
        context = {"objective": "mission"}
        scalar_eval = Evaluator(_scalar_mission_objective, cache=cache,
                                context=context)
        scalar_values = [r.value
                         for r in scalar_eval.map_batch(configs)]
        batch_eval = Evaluator(mission_objective, cache=cache,
                               context=context)
        results = batch_eval.map_batch(configs)
        assert [r.value for r in results] == scalar_values
        assert all(r.cached for r in results)
        assert batch_eval.stats()["oracle_calls"] == 0
        assert batch_eval.stats()["batch_hits"] == 0
