"""``jobs=`` through the funnel's per-tier batch pricing.

The funnel's screen tier asks its whole budget as one batch, so with
``jobs > 1`` that window shards across the process pool — same
survivors, same values, ``batch_shards > 0``.
"""

from repro.dse.funnel import FunnelConfig, funnel_search
from repro.dse.objectives import codesign_space, suite_objective
from repro.engine import Evaluator


def _funnel(jobs):
    space = codesign_space()
    evaluator = Evaluator(suite_objective, jobs=jobs)
    result, strategy = funnel_search(
        space, budget=128, config=FunnelConfig(inner="random"),
        evaluator=evaluator)
    return result, strategy, evaluator


class TestFunnelJobs:
    def test_sharded_funnel_matches_serial(self):
        serial, serial_strategy, serial_eval = _funnel(jobs=1)
        sharded, sharded_strategy, sharded_eval = _funnel(jobs=2)

        assert sharded.best_config == serial.best_config
        assert sharded.best_value == serial.best_value
        assert sharded.history == serial.history
        assert sharded_strategy.tier_report() == \
            serial_strategy.tier_report()

        # The screen tier's 128-candidate ask is the window that
        # shards; the serial run never touches the pool.
        assert serial_eval.stats()["batch_shards"] == 0
        assert sharded_eval.stats()["batch_shards"] > 0

    def test_tier_pricing_shards_large_screens_only(self):
        # Budget below the shard floor: jobs=2 stays in-process.
        space = codesign_space()
        evaluator = Evaluator(suite_objective, jobs=2)
        funnel_search(space, budget=16,
                      config=FunnelConfig(inner="random"),
                      evaluator=evaluator)
        assert evaluator.stats()["batch_shards"] == 0
