"""Unit tests for design spaces, searches, surrogates, and Pareto tools."""

import numpy as np
import pytest

from repro.dse import (
    Constraint,
    ConstraintSet,
    DesignSpace,
    EvolutionarySearch,
    GaussianProcess,
    Parameter,
    SurrogateSearch,
    grid_search,
    hypervolume_2d,
    pareto_front,
    random_search,
)
from repro.dse.pareto import dominates, normalized_regret
from repro.dse.surrogate import expected_improvement
from repro.errors import SearchError


@pytest.fixture
def space():
    return DesignSpace([
        Parameter("a", tuple(range(8))),
        Parameter("b", tuple(range(8))),
        Parameter("c", ("x", "y")),
    ])


def _objective(config):
    return ((config["a"] - 5) ** 2 + (config["b"] - 2) ** 2
            + (0.0 if config["c"] == "y" else 2.0))


class TestSpace:
    def test_size(self, space):
        assert space.size == 8 * 8 * 2

    def test_index_round_trip(self, space):
        for index in (0, 1, 17, space.size - 1):
            config = space.config_at(index)
            assert space.index_of(config) == index

    def test_out_of_range(self, space):
        with pytest.raises(SearchError):
            space.config_at(space.size)

    def test_invalid_config(self, space):
        with pytest.raises(SearchError):
            space.index_of({"a": 0, "b": 0, "c": "nope"})

    def test_iteration_covers_space(self):
        tiny = DesignSpace([Parameter("x", (1, 2)),
                            Parameter("y", ("p", "q"))])
        assert len(list(tiny)) == 4

    def test_encode_numeric_scaled(self, space):
        enc = space.encode({"a": 7, "b": 0, "c": "x"})
        assert enc[0] == pytest.approx(1.0)
        assert enc[1] == pytest.approx(0.0)
        # Categorical is one-hot.
        assert list(enc[2:]) == [1.0, 0.0]
        assert len(enc) == space.encoded_dim

    def test_sample_without_replacement_unique(self, space, rng):
        configs = space.sample(rng, n=20, replace=False)
        indices = {space.index_of(c) for c in configs}
        assert len(indices) == 20

    def test_neighbors(self, space):
        config = space.config_at(0)
        neighbors = space.neighbors(config)
        assert len(neighbors) == 7 + 7 + 1
        assert all(n != config for n in neighbors)

    def test_duplicate_values_rejected(self):
        with pytest.raises(SearchError):
            Parameter("p", (1, 1))


class TestBaselines:
    def test_grid_finds_optimum(self, space):
        result = grid_search(space, _objective)
        assert result.best_value == 0.0
        assert result.best_config == {"a": 5, "b": 2, "c": "y"}
        assert result.evaluations == space.size

    def test_grid_budget(self, space):
        result = grid_search(space, _objective, budget=10)
        assert result.evaluations == 10

    def test_random_trace_monotone(self, space):
        result = random_search(space, _objective, budget=30, seed=1)
        assert all(b <= a for a, b in zip(result.trace,
                                          result.trace[1:]))

    def test_random_reproducible(self, space):
        a = random_search(space, _objective, budget=20, seed=2)
        b = random_search(space, _objective, budget=20, seed=2)
        assert a.best_value == b.best_value
        assert a.history == b.history

    def test_best_after(self, space):
        result = random_search(space, _objective, budget=30, seed=3)
        assert result.best_after(30) <= result.best_after(5)


class TestGaussianProcess:
    def test_interpolates_training_points(self, rng):
        x = rng.uniform(0, 1, size=(15, 2))
        y = np.sin(3 * x[:, 0]) + x[:, 1]
        gp = GaussianProcess(noise_variance=1e-8).fit(x, y)
        mean, std = gp.predict(x)
        assert np.allclose(mean, y, atol=1e-3)
        assert np.all(std < 0.1)

    def test_uncertainty_grows_away_from_data(self, rng):
        x = rng.uniform(0, 0.3, size=(10, 1))
        y = x[:, 0]
        gp = GaussianProcess(length_scale=0.1).fit(x, y)
        _, near = gp.predict(np.array([[0.15]]))
        _, far = gp.predict(np.array([[5.0]]))
        assert far[0] > near[0]

    def test_predict_before_fit(self):
        with pytest.raises(SearchError):
            GaussianProcess().predict(np.zeros((1, 2)))

    def test_mismatched_training(self):
        with pytest.raises(SearchError):
            GaussianProcess().fit(np.zeros((3, 2)), np.zeros(4))

    def test_expected_improvement_properties(self):
        # High mean (bad) with low std -> near-zero EI.
        ei_bad = expected_improvement(np.array([10.0]),
                                      np.array([0.01]), best=0.0)
        # Low mean (good) -> large EI.
        ei_good = expected_improvement(np.array([-1.0]),
                                       np.array([0.01]), best=0.0)
        assert ei_bad[0] < 1e-6
        assert ei_good[0] > 0.9
        # Uncertainty creates EI even at the incumbent mean.
        ei_unc = expected_improvement(np.array([0.0]),
                                      np.array([1.0]), best=0.0)
        assert ei_unc[0] > 0.1


class TestGuidedSearches:
    def test_surrogate_beats_random_sample_efficiency(self, space):
        budget = 30
        surrogate = SurrogateSearch(space, n_initial=8,
                                    seed=0).run(_objective, budget)
        random_result = random_search(space, _objective,
                                      budget=budget, seed=0)
        assert surrogate.best_value <= random_result.best_value

    def test_surrogate_finds_optimum_with_modest_budget(self, space):
        result = SurrogateSearch(space, n_initial=8,
                                 seed=1).run(_objective, 40)
        assert result.best_value <= 1.0

    def test_surrogate_budget_validation(self, space):
        search = SurrogateSearch(space, n_initial=8, seed=2)
        with pytest.raises(SearchError):
            search.run(_objective, budget=4)

    def test_evolutionary_improves_over_time(self, space):
        result = EvolutionarySearch(space, population_size=10,
                                    seed=3).run(_objective, 60)
        assert result.best_value <= 2.0
        assert result.trace[-1] <= result.trace[9]

    def test_evolutionary_memoizes(self, space):
        calls = []

        def counting(config):
            calls.append(1)
            return _objective(config)

        result = EvolutionarySearch(space, seed=4).run(counting, 50)
        assert len(calls) == result.evaluations


class TestPareto:
    def test_dominates(self):
        assert dominates([1.0, 1.0], [2.0, 2.0])
        assert not dominates([1.0, 3.0], [2.0, 2.0])
        assert not dominates([1.0, 1.0], [1.0, 1.0])

    def test_front_extraction(self):
        points = [[1, 5], [2, 2], [5, 1], [4, 4], [3, 3]]
        front = pareto_front(points)
        assert front == [0, 1, 2]

    def test_hypervolume(self):
        points = [[1.0, 1.0]]
        assert hypervolume_2d(points, [2.0, 2.0]) == pytest.approx(1.0)
        # Two staircase points.
        points = [[0.0, 1.0], [1.0, 0.0]]
        assert hypervolume_2d(points, [2.0, 2.0]) == pytest.approx(3.0)

    def test_hypervolume_beyond_reference_is_zero(self):
        assert hypervolume_2d([[3.0, 3.0]], [2.0, 2.0]) == 0.0

    def test_normalized_regret(self):
        assert normalized_regret(5.0, 0.0, 10.0) == pytest.approx(0.5)
        assert normalized_regret(3.0, 3.0, 3.0) == 0.0


class TestConstraints:
    def test_feasibility(self):
        constraints = ConstraintSet([
            Constraint("mass", lambda c: c["a"] * 0.1, bound=0.3),
        ])
        assert constraints.feasible({"a": 2})
        assert not constraints.feasible({"a": 5})
        assert constraints.total_violation({"a": 5}) \
            == pytest.approx(0.2)

    def test_penalized_objective_ranks_feasible_first(self, space):
        constraints = ConstraintSet([
            Constraint("a-bound", lambda c: float(c["a"]), bound=3.0),
        ])
        penalized = constraints.penalized(_objective)
        feasible_best = min(penalized(c) for c in space
                            if constraints.feasible(c))
        infeasible_any = penalized({"a": 7, "b": 2, "c": "y"})
        assert feasible_best < infeasible_any

    def test_duplicate_names_rejected(self):
        with pytest.raises(SearchError):
            ConstraintSet([
                Constraint("x", lambda c: 0.0, 1.0),
                Constraint("x", lambda c: 0.0, 1.0),
            ])
