"""Unit tests for multi-objective DSE."""

import pytest

from repro.dse import DesignSpace, Parameter
from repro.dse.multiobjective import (
    MultiObjectiveResult,
    multi_objective_search,
)
from repro.dse.pareto import dominates
from repro.errors import SearchError


@pytest.fixture
def space():
    return DesignSpace([
        Parameter("a", tuple(range(10))),
        Parameter("b", tuple(range(10))),
    ])


@pytest.fixture
def objectives():
    # Conflicting: latency falls with a, energy rises with a.
    return {
        "latency": lambda c: 10.0 - c["a"] + 0.1 * c["b"],
        "energy": lambda c: 1.0 + c["a"] + 0.2 * (c["b"] - 5) ** 2,
    }


class TestMultiObjective:
    def test_front_is_nondominated(self, space, objectives):
        result = multi_objective_search(space, objectives,
                                        budget_per_weight=10,
                                        n_weights=4, seed=1)
        assert result.front
        for p in result.front:
            for q in result.front:
                if p is not q:
                    assert not dominates(
                        [q.objectives["latency"],
                         q.objectives["energy"]],
                        [p.objectives["latency"],
                         p.objectives["energy"]],
                    )

    def test_front_spans_the_tradeoff(self, space, objectives):
        result = multi_objective_search(space, objectives,
                                        budget_per_weight=12,
                                        n_weights=5, seed=2)
        latencies = [p.objectives["latency"] for p in result.front]
        energies = [p.objectives["energy"] for p in result.front]
        # Conflicting objectives -> more than one trade point, and the
        # orderings oppose each other along the front.
        assert len(result.front) >= 2
        by_latency = sorted(result.front,
                            key=lambda p: p.objectives["latency"])
        front_energy = [p.objectives["energy"] for p in by_latency]
        assert front_energy == sorted(front_energy, reverse=True)

    def test_memoization_bounds_evaluations(self, space, objectives):
        result = multi_objective_search(space, objectives,
                                        budget_per_weight=10,
                                        n_weights=5, seed=3)
        assert result.evaluations <= space.size

    def test_hypervolume_positive(self, space, objectives):
        result = multi_objective_search(space, objectives,
                                        budget_per_weight=10,
                                        n_weights=4, seed=4)
        assert result.hypervolume([20.0, 20.0]) > 0.0

    def test_random_method_works(self, space, objectives):
        result = multi_objective_search(space, objectives,
                                        budget_per_weight=10,
                                        n_weights=3,
                                        method="random", seed=5)
        assert result.front

    def test_surrogate_front_at_least_as_good_as_random(
            self, space, objectives):
        reference = [20.0, 25.0]
        surrogate = multi_objective_search(
            space, objectives, budget_per_weight=10, n_weights=4,
            method="surrogate", seed=6,
        )
        random_result = multi_objective_search(
            space, objectives, budget_per_weight=10, n_weights=4,
            method="random", seed=6,
        )
        assert surrogate.hypervolume(reference) \
            >= 0.9 * random_result.hypervolume(reference)

    def test_single_objective_rejected(self, space):
        with pytest.raises(SearchError):
            multi_objective_search(space, {"only": lambda c: 0.0})

    def test_unknown_method_rejected(self, space, objectives):
        with pytest.raises(SearchError):
            multi_objective_search(space, objectives,
                                   method="simulated-annealing")

    def test_empty_front_hypervolume(self):
        result = MultiObjectiveResult(objective_names=("a", "b"))
        assert result.hypervolume([1.0, 1.0]) == 0.0
