"""Unit tests for the analytical platform base model."""

import pytest

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw.platform import AnalyticalPlatform, PlatformConfig


def _platform(**overrides):
    defaults = dict(
        name="test",
        peak_flops=100e9,
        scalar_flops=2e9,
        onchip_bytes=1e6,
        onchip_bw=500e9,
        offchip_bw=20e9,
        launch_overhead_s=0.0,
        energy_per_flop=10e-12,
        static_power_w=1.0,
        lockstep=False,
    )
    defaults.update(overrides)
    return AnalyticalPlatform(PlatformConfig(**defaults))


class TestConfigValidation:
    def test_zero_peak_rejected(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(name="bad", peak_flops=0.0)

    def test_negative_overhead_rejected(self):
        with pytest.raises(ConfigurationError):
            PlatformConfig(name="bad", launch_overhead_s=-1.0)

    def test_int_defaults(self):
        cfg = PlatformConfig(name="p", peak_flops=1e9,
                             energy_per_flop=10e-12)
        assert cfg.int_throughput == 1e9
        assert cfg.int_energy == pytest.approx(5e-12)


class TestComputeBound:
    def test_fully_parallel_hits_peak(self):
        p = _platform()
        profile = WorkloadProfile(name="k", flops=100e9,
                                  parallel_fraction=1.0,
                                  divergence=DivergenceClass.NONE)
        estimate = p.estimate(profile)
        assert estimate.latency_s == pytest.approx(1.0)
        assert estimate.bound == "compute"

    def test_serial_fraction_obeys_amdahl(self):
        p = _platform()
        profile = WorkloadProfile(name="k", flops=100e9,
                                  parallel_fraction=0.5,
                                  divergence=DivergenceClass.NONE)
        estimate = p.estimate(profile)
        expected = 50e9 / 2e9 + 50e9 / 100e9
        assert estimate.latency_s == pytest.approx(expected)
        assert estimate.bound == "serial"


class TestMemoryBound:
    def test_streaming_is_bandwidth_limited(self):
        p = _platform()
        profile = WorkloadProfile(name="k", flops=1e6,
                                  bytes_read=20e9,
                                  working_set_bytes=1e9,
                                  parallel_fraction=1.0)
        estimate = p.estimate(profile)
        assert estimate.bound == "memory"
        assert estimate.latency_s == pytest.approx(1.0, rel=1e-3)

    def test_onchip_fit_uses_fast_path(self):
        p = _platform()
        small = WorkloadProfile(name="s", bytes_read=1e6,
                                working_set_bytes=0.5e6)
        large = WorkloadProfile(name="l", bytes_read=1e6,
                                working_set_bytes=100e6)
        assert (p.estimate(small).latency_s
                < p.estimate(large).latency_s)


class TestDivergence:
    def test_lockstep_derates_divergent_code(self):
        lockstep = _platform(lockstep=True)
        profile = WorkloadProfile(name="k", flops=1e9,
                                  parallel_fraction=1.0,
                                  divergence=DivergenceClass.HIGH)
        regular = WorkloadProfile(name="k2", flops=1e9,
                                  parallel_fraction=1.0,
                                  divergence=DivergenceClass.NONE)
        assert (lockstep.estimate(profile).latency_s
                > lockstep.estimate(regular).latency_s)

    def test_non_lockstep_ignores_divergence(self):
        p = _platform(lockstep=False)
        a = WorkloadProfile(name="a", flops=1e9, parallel_fraction=1.0,
                            divergence=DivergenceClass.HIGH)
        b = WorkloadProfile(name="b", flops=1e9, parallel_fraction=1.0,
                            divergence=DivergenceClass.NONE)
        assert p.estimate(a).latency_s == p.estimate(b).latency_s


class TestEnergy:
    def test_energy_components_add(self):
        p = _platform(static_power_w=0.0)
        profile = WorkloadProfile(name="k", flops=1e9,
                                  parallel_fraction=1.0,
                                  divergence=DivergenceClass.NONE)
        estimate = p.estimate(profile)
        assert estimate.energy_j == pytest.approx(1e9 * 10e-12)

    def test_static_power_charged_over_latency(self):
        slow = _platform(peak_flops=1e9, static_power_w=10.0)
        fast = _platform(peak_flops=100e9, static_power_w=10.0)
        profile = WorkloadProfile(name="k", flops=1e9,
                                  parallel_fraction=1.0,
                                  divergence=DivergenceClass.NONE)
        assert (slow.estimate(profile).energy_j
                > fast.estimate(profile).energy_j)

    def test_launch_overhead_added(self):
        with_overhead = _platform(launch_overhead_s=1e-3)
        without = _platform()
        profile = WorkloadProfile(name="k", flops=1e6,
                                  parallel_fraction=1.0)
        delta = (with_overhead.estimate(profile).latency_s
                 - without.estimate(profile).latency_s)
        assert delta == pytest.approx(1e-3)


def test_sustained_rate_is_latency_inverse():
    p = _platform()
    profile = WorkloadProfile(name="k", flops=100e9,
                              parallel_fraction=1.0,
                              divergence=DivergenceClass.NONE)
    assert p.sustained_rate_hz(profile) == pytest.approx(
        1.0 / p.estimate(profile).latency_s
    )
