"""Unit tests for shared-resource contention and accelerator synthesis."""

import pytest

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw import (
    ContendedPlatform,
    InfeasibleDesign,
    SharedMemorySystem,
    SynthesisSpec,
    asic_gemm_engine,
    co_run,
    embedded_cpu,
    synthesize_accelerator,
)
from repro.kernels.linalg import gemm_profile


def _streaming(name="stream"):
    return WorkloadProfile(
        name=name, flops=1e8, bytes_read=80e6, bytes_written=20e6,
        working_set_bytes=100e6, parallel_fraction=0.99,
        divergence=DivergenceClass.NONE, op_class="stencil",
    )


class TestSharedMemorySystem:
    def test_single_client_gets_full_pool(self):
        mem = SharedMemorySystem(total_bandwidth=20e9)
        grants = mem.allocate({"a": 50e9})
        assert grants["a"] == pytest.approx(20e9)

    def test_contention_efficiency_applied(self):
        mem = SharedMemorySystem(total_bandwidth=20e9,
                                 contention_efficiency=0.8)
        grants = mem.allocate({"a": 50e9, "b": 50e9})
        assert sum(grants.values()) == pytest.approx(16e9)
        assert grants["a"] == pytest.approx(grants["b"])

    def test_small_demand_fully_satisfied(self):
        mem = SharedMemorySystem(total_bandwidth=20e9,
                                 contention_efficiency=1.0)
        grants = mem.allocate({"small": 2e9, "big": 100e9})
        assert grants["small"] == pytest.approx(2e9)
        assert grants["big"] == pytest.approx(18e9)

    def test_idle_clients_get_zero(self):
        mem = SharedMemorySystem()
        grants = mem.allocate({"idle": 0.0, "busy": 5e9})
        assert grants["idle"] == 0.0
        assert grants["busy"] > 0.0

    def test_grants_never_exceed_pool(self):
        mem = SharedMemorySystem(total_bandwidth=10e9)
        grants = mem.allocate({"a": 9e9, "b": 9e9, "c": 9e9})
        assert sum(grants.values()) <= 10e9 + 1e-6

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            SharedMemorySystem().allocate({"a": -1.0})


class TestContendedPlatform:
    def test_memory_bound_kernel_slows_under_contention(self):
        cpu = embedded_cpu()
        profile = _streaming()
        full = cpu.estimate(profile).latency_s
        squeezed = ContendedPlatform(cpu, cpu.config.offchip_bw
                                     / 4.0).estimate(profile).latency_s
        assert squeezed > 3.0 * full

    def test_compute_bound_kernel_unaffected(self):
        cpu = embedded_cpu()
        small = gemm_profile(64, 64, 64)  # fits on chip
        full = cpu.estimate(small).latency_s
        squeezed = ContendedPlatform(cpu, 1e9).estimate(small).latency_s
        assert squeezed == pytest.approx(full, rel=1e-6)

    def test_grant_never_exceeds_native_bandwidth(self):
        cpu = embedded_cpu()
        boosted = ContendedPlatform(cpu, 1e15)
        assert boosted.config.offchip_bw == cpu.config.offchip_bw


class TestCoRun:
    def test_accelerator_steals_bandwidth_from_cpu(self):
        """The §2.4 effect: adding a bandwidth-hungry accelerator
        slows a co-resident memory-bound CPU task."""
        mem = SharedMemorySystem(total_bandwidth=15e9,
                                 contention_efficiency=0.85)
        cpu = embedded_cpu()
        cpu_task = _streaming("cpu-task")
        alone = co_run(mem, [("cpu", cpu, cpu_task, 10.0)])
        big_gemm = gemm_profile(2048, 2048, 2048)
        together = co_run(mem, [
            ("cpu", cpu, cpu_task, 10.0),
            ("asic", asic_gemm_engine(), big_gemm, 30.0),
        ])
        assert (together["cpu"].latency_s
                > 1.2 * alone["cpu"].latency_s)

    def test_duplicate_names_rejected(self):
        mem = SharedMemorySystem()
        cpu = embedded_cpu()
        with pytest.raises(ConfigurationError):
            co_run(mem, [("x", cpu, _streaming(), 1.0),
                         ("x", cpu, _streaming(), 1.0)])


class TestSynthesis:
    def test_generated_design_meets_rate(self):
        profile = gemm_profile(256, 4096, 512)
        report = synthesize_accelerator(SynthesisSpec(
            profile=profile, target_rate_hz=100.0,
        ))
        assert report.achieved_rate_hz >= 100.0
        assert report.accelerator.supports(profile)
        assert report.area_mm2 <= 50.0

    def test_higher_rate_needs_more_silicon(self):
        profile = gemm_profile(256, 4096, 512)
        slow = synthesize_accelerator(SynthesisSpec(
            profile=profile, target_rate_hz=30.0,
        ))
        fast = synthesize_accelerator(SynthesisSpec(
            profile=profile, target_rate_hz=300.0,
            area_budget_mm2=200.0,
        ))
        assert fast.peak_flops > slow.peak_flops

    def test_area_budget_enforced(self):
        profile = gemm_profile(256, 4096, 512)
        with pytest.raises(InfeasibleDesign, match="mm\\^2"):
            synthesize_accelerator(SynthesisSpec(
                profile=profile, target_rate_hz=100.0,
                area_budget_mm2=1.0,
            ))

    def test_serial_workload_is_infeasible(self):
        serial = WorkloadProfile(
            name="serial", flops=1e8, parallel_fraction=0.0,
            op_class="search",
        )
        with pytest.raises(InfeasibleDesign, match="Amdahl"):
            synthesize_accelerator(SynthesisSpec(
                profile=serial, target_rate_hz=100.0,
            ))

    def test_extra_classes_cost_area(self):
        profile = gemm_profile(256, 4096, 512)
        narrow = synthesize_accelerator(SynthesisSpec(
            profile=profile, target_rate_hz=100.0,
        ))
        broad = synthesize_accelerator(SynthesisSpec(
            profile=profile, target_rate_hz=100.0,
            extra_op_classes=frozenset({"stencil", "collision"}),
        ))
        assert broad.peak_flops > narrow.peak_flops  # generality tax

    def test_invalid_spec(self):
        with pytest.raises(ConfigurationError):
            SynthesisSpec(profile=gemm_profile(8, 8, 8),
                          target_rate_hz=0.0)
