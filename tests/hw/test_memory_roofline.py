"""Unit tests for the memory hierarchy, roofline, and systolic models."""


import pytest

from repro.core.profile import WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw.memory import MemoryHierarchy, MemoryLevel, typical_soc_hierarchy
from repro.hw.roofline import RooflineModel, place_kernels
from repro.hw.systolic import SystolicArrayModel, conv2d_as_gemm


class TestMemoryHierarchy:
    def test_serving_level(self):
        h = typical_soc_hierarchy()
        assert h.serving_level(1e3).name == "L1"
        assert h.serving_level(1e6).name == "L2"
        assert h.serving_level(1e9).name == "DRAM"

    def test_traffic_split_conserves_bytes(self):
        h = typical_soc_hierarchy()
        profile = WorkloadProfile(name="k", bytes_read=1e7,
                                  bytes_written=1e6,
                                  working_set_bytes=1e6)
        split = h.traffic_split(profile)
        assert sum(split.values()) == pytest.approx(1.1e7)

    def test_small_working_set_stays_in_l1(self):
        h = typical_soc_hierarchy()
        profile = WorkloadProfile(name="k", bytes_read=1e6,
                                  working_set_bytes=1e3)
        split = h.traffic_split(profile)
        assert split["L1"] == pytest.approx(1e6)
        assert split["DRAM"] == 0.0

    def test_offchip_fraction_grows_with_working_set(self):
        h = typical_soc_hierarchy()
        small = WorkloadProfile(name="s", bytes_read=1e6,
                                working_set_bytes=1e5)
        large = WorkloadProfile(name="l", bytes_read=1e6,
                                working_set_bytes=1e9)
        assert (h.offchip_fraction(large)
                > h.offchip_fraction(small))

    def test_access_time_monotone_in_working_set(self):
        h = typical_soc_hierarchy()
        small = WorkloadProfile(name="s", bytes_read=1e7,
                                working_set_bytes=1e4)
        large = WorkloadProfile(name="l", bytes_read=1e7,
                                working_set_bytes=1e8)
        assert h.access_time_s(large) > h.access_time_s(small)

    def test_capacity_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy([
                MemoryLevel("big", 1e9, 1e9, 1e-12),
                MemoryLevel("small", 1e3, 1e12, 1e-12),
            ])

    def test_empty_hierarchy_rejected(self):
        with pytest.raises(ConfigurationError):
            MemoryHierarchy([])


class TestRoofline:
    def test_ridge_point(self):
        r = RooflineModel(name="r", peak_ops=100e9, bandwidth=10e9)
        assert r.ridge_intensity == pytest.approx(10.0)
        assert r.is_memory_bound(5.0)
        assert not r.is_memory_bound(20.0)

    def test_attainable_clamps_at_peak(self):
        r = RooflineModel(name="r", peak_ops=100e9, bandwidth=10e9)
        assert r.attainable_ops(1.0) == pytest.approx(10e9)
        assert r.attainable_ops(1000.0) == pytest.approx(100e9)

    def test_latency_consistency(self):
        r = RooflineModel(name="r", peak_ops=100e9, bandwidth=10e9)
        profile = WorkloadProfile(name="k", flops=1e9, bytes_read=1e9)
        # intensity 1 -> 10 GFLOP/s -> 0.1 s
        assert r.latency_s(profile) == pytest.approx(0.1)

    def test_compute_only_profile(self):
        r = RooflineModel(name="r", peak_ops=100e9, bandwidth=10e9)
        profile = WorkloadProfile(name="k", flops=100e9)
        assert r.latency_s(profile) == pytest.approx(1.0)

    def test_from_platform(self, cpu):
        r = RooflineModel.from_platform(cpu)
        assert r.peak_ops == cpu.config.peak_flops
        assert r.bandwidth == cpu.config.offchip_bw

    def test_place_kernels_labels_bounds(self):
        r = RooflineModel(name="r", peak_ops=100e9, bandwidth=10e9)
        rows = place_kernels(r, [
            WorkloadProfile(name="mem", flops=1e6, bytes_read=1e7),
            WorkloadProfile(name="comp", flops=1e9, bytes_read=1e3),
        ])
        bounds = {name: bound for name, _, __, bound in rows}
        assert bounds["mem"] == "memory"
        assert bounds["comp"] == "compute"


class TestSystolic:
    def test_full_tile_high_utilization_with_large_k(self):
        arr = SystolicArrayModel(rows=16, cols=16)
        assert arr.utilization(16, 16, 4096) > 0.95

    def test_skinny_matrix_wastes_array(self):
        arr = SystolicArrayModel(rows=128, cols=128)
        assert arr.utilization(1, 1, 128) < 0.001

    def test_cycles_scale_with_tiles(self):
        arr = SystolicArrayModel(rows=16, cols=16)
        one_tile = arr.gemm_cycles(16, 16, 64)
        four_tiles = arr.gemm_cycles(32, 32, 64)
        assert four_tiles == 4 * one_tile

    def test_effective_flops_below_peak(self):
        arr = SystolicArrayModel(rows=32, cols=32)
        assert arr.effective_flops(32, 32, 1024) <= arr.peak_flops

    def test_invalid_dims(self):
        arr = SystolicArrayModel()
        with pytest.raises(ConfigurationError):
            arr.gemm_cycles(0, 1, 1)

    def test_conv_lowering(self):
        m, n, k = conv2d_as_gemm(batch=2, in_channels=3,
                                 out_channels=8, height=10, width=10,
                                 kernel=3)
        assert m == 8
        assert n == 2 * 8 * 8
        assert k == 27

    def test_conv_kernel_too_big(self):
        with pytest.raises(ConfigurationError):
            conv2d_as_gemm(1, 1, 1, height=2, width=2, kernel=5)
