"""Unit tests for CPU, GPU, FPGA, and ASIC device models."""

import pytest

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.errors import ConfigurationError, MappingError
from repro.hw.asic import AsicConfig, crosscutting_asic, widget_asic
from repro.hw.cpu import CpuConfig, CpuModel
from repro.hw.fpga import FpgaConfig, FpgaModel
from repro.hw.gpu import GpuConfig, GpuModel


def _gemm(flops=2e9):
    return WorkloadProfile(name="gemm", flops=flops,
                           bytes_read=12e6, bytes_written=4e6,
                           working_set_bytes=16e6,
                           parallel_fraction=1.0,
                           divergence=DivergenceClass.NONE,
                           op_class="gemm")


class TestCpu:
    def test_peak_scales_with_simd(self):
        scalar = CpuConfig(name="s", simd_width=1, simd_efficiency=1.0)
        vector = CpuConfig(name="v", simd_width=8, simd_efficiency=1.0)
        assert vector.peak_flops == pytest.approx(
            8.0 * scalar.peak_flops
        )

    def test_scalar_variant(self):
        cfg = CpuConfig(name="c", simd_width=8)
        scalar = cfg.scalar_variant()
        assert scalar.simd_width == 1
        assert scalar.peak_flops < cfg.peak_flops
        assert scalar.cores == cfg.cores

    def test_single_core_variant(self):
        cfg = CpuConfig(name="c", cores=8)
        assert cfg.single_core_variant().cores == 1

    def test_vector_build_is_faster_on_dense_code(self):
        cfg = CpuConfig(name="c", simd_width=8)
        vector = CpuModel(cfg)
        scalar = CpuModel(cfg.scalar_variant())
        profile = _gemm()
        assert (vector.estimate(profile).latency_s
                < scalar.estimate(profile).latency_s)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CpuConfig(name="bad", cores=0)
        with pytest.raises(ConfigurationError):
            CpuConfig(name="bad", simd_efficiency=0.0)


class TestGpu:
    def test_occupancy_bounds(self):
        with pytest.raises(ConfigurationError):
            GpuConfig(name="bad", occupancy=0.0)

    def test_gpu_beats_cpu_on_large_dense_kernels(self):
        gpu = GpuModel(GpuConfig(name="g"))
        cpu = CpuModel(CpuConfig(name="c"))
        big = _gemm(flops=200e9)
        assert (gpu.estimate(big).latency_s
                < cpu.estimate(big).latency_s)

    def test_launch_overhead_dominates_tiny_kernels(self):
        gpu = GpuModel(GpuConfig(name="g", launch_overhead_s=10e-6))
        cpu = CpuModel(CpuConfig(name="c"))
        tiny = WorkloadProfile(name="t", flops=1e4,
                               parallel_fraction=1.0,
                               divergence=DivergenceClass.NONE)
        assert (cpu.estimate(tiny).latency_s
                < gpu.estimate(tiny).latency_s)

    def test_divergence_hurts_gpu(self):
        gpu = GpuModel(GpuConfig(name="g"))
        dense = _gemm()
        branchy = WorkloadProfile(
            name="b", flops=2e9, bytes_read=12e6, bytes_written=4e6,
            working_set_bytes=16e6, parallel_fraction=1.0,
            divergence=DivergenceClass.HIGH, op_class="search",
        )
        assert (gpu.estimate(branchy).latency_s
                > gpu.estimate(dense).latency_s)


class TestFpga:
    def test_peak_from_dsp_budget(self):
        cfg = FpgaConfig(name="f", dsp_slices=1000,
                         flops_per_dsp_per_cycle=0.5,
                         fabric_frequency_hz=200e6)
        assert cfg.peak_flops == pytest.approx(1e11)

    def test_strict_mode_rejects_unmapped(self):
        fpga = FpgaModel(FpgaConfig(
            name="f", supported_op_classes=frozenset({"gemm"})
        ), strict=True)
        search = WorkloadProfile(name="s", flops=1e6,
                                 op_class="search")
        assert not fpga.supports(search)
        with pytest.raises(MappingError):
            fpga.estimate(search)

    def test_softcore_fallback_is_slow(self):
        fpga = FpgaModel(FpgaConfig(
            name="f", supported_op_classes=frozenset({"gemm"})
        ))
        mapped = _gemm()
        unmapped = WorkloadProfile(
            name="s", flops=2e9, bytes_read=12e6, bytes_written=4e6,
            working_set_bytes=16e6, parallel_fraction=1.0,
            divergence=DivergenceClass.NONE, op_class="search",
        )
        assert (fpga.estimate(unmapped).latency_s
                > 10.0 * fpga.estimate(mapped).latency_s)

    def test_reconfiguration_charged_on_switch(self):
        fpga = FpgaModel(FpgaConfig(name="f"))
        gemm = _gemm()
        other = WorkloadProfile(name="o", flops=1e6,
                                op_class="stencil",
                                parallel_fraction=1.0)
        first = fpga.estimate_with_reconfig(gemm)
        switched = fpga.estimate_with_reconfig(other)
        again = fpga.estimate_with_reconfig(other)
        assert switched.latency_s > again.latency_s
        assert first.latency_s < switched.latency_s


class TestAsic:
    def test_unsupported_class_raises(self):
        asic = widget_asic("gemm")
        search = WorkloadProfile(name="s", flops=1e6,
                                 op_class="search")
        assert not asic.supports(search)
        with pytest.raises(MappingError):
            asic.estimate(search)

    def test_widget_runs_its_class(self):
        asic = widget_asic("gemm")
        estimate = asic.estimate(_gemm())
        assert estimate.latency_s > 0
        assert estimate.platform == "widget-gemm"

    def test_generality_penalty(self):
        widget = AsicConfig(name="w",
                            supported_op_classes=frozenset({"gemm"}))
        broad = AsicConfig(
            name="b",
            supported_op_classes=frozenset({"gemm", "stencil",
                                            "collision"}),
        )
        assert broad.effective_peak_flops < widget.effective_peak_flops
        assert broad.effective_area_mm2 > widget.effective_area_mm2

    def test_crosscutting_supports_all_listed(self):
        asic = crosscutting_asic(["gemm", "collision"])
        assert asic.supports(_gemm())
        coll = WorkloadProfile(name="c", flops=1e6,
                               op_class="collision")
        assert asic.supports(coll)

    def test_empty_class_set_rejected(self):
        with pytest.raises(ConfigurationError):
            AsicConfig(name="bad", supported_op_classes=frozenset())

    def test_asic_wins_energy_on_its_kernel(self):
        asic = widget_asic("gemm")
        cpu = CpuModel(CpuConfig(name="c"))
        profile = _gemm()
        assert (asic.estimate(profile).energy_j
                < cpu.estimate(profile).energy_j)
