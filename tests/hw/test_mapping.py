"""Unit tests for the heterogeneous SoC mapper and the catalog."""

import pytest

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.core.workload import Stage, TaskGraph
from repro.errors import ConfigurationError, MappingError
from repro.hw import (
    HeterogeneousSoC,
    Interconnect,
    MappingPolicy,
    asic_gemm_engine,
    embedded_cpu,
    uav_compute_tiers,
)
from repro.hw.asic import widget_asic


def _gemm():
    return WorkloadProfile(name="g", flops=5e9, bytes_read=12e6,
                           bytes_written=4e6, working_set_bytes=16e6,
                           parallel_fraction=1.0,
                           divergence=DivergenceClass.NONE,
                           op_class="gemm")


def _search():
    return WorkloadProfile(name="s", flops=1e7, int_ops=5e7,
                           bytes_read=1e7, working_set_bytes=8e6,
                           parallel_fraction=0.3,
                           divergence=DivergenceClass.HIGH,
                           op_class="search")


@pytest.fixture
def soc():
    return HeterogeneousSoC("soc", embedded_cpu("host"),
                            [asic_gemm_engine()])


class TestInterconnect:
    def test_transfer_cost(self):
        link = Interconnect(bandwidth=1e9, latency_s=1e-6,
                            energy_per_byte=1e-12)
        seconds, joules = link.transfer_cost(1e9)
        assert seconds == pytest.approx(1.0 + 1e-6)
        assert joules == pytest.approx(1e-3)

    def test_zero_bytes_free(self):
        assert Interconnect().transfer_cost(0.0) == (0.0, 0.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            Interconnect(bandwidth=0.0)


class TestMapping:
    def test_gemm_offloads_to_asic(self, soc):
        mapped = soc.map_kernel(_gemm())
        assert mapped.device == "gemm-engine"
        assert mapped.offload_s > 0.0

    def test_search_stays_on_host(self, soc):
        mapped = soc.map_kernel(_search())
        assert mapped.device == "host"
        assert mapped.offload_s == 0.0

    def test_host_only_policy(self, soc):
        mapped = soc.map_kernel(_gemm(),
                                policy=MappingPolicy.HOST_ONLY)
        assert mapped.device == "host"

    def test_prefer_accelerator_policy(self, soc):
        mapped = soc.map_kernel(_gemm(),
                                policy=MappingPolicy.PREFER_ACCELERATOR)
        assert mapped.device == "gemm-engine"

    def test_lowest_energy_policy(self, soc):
        mapped = soc.map_kernel(_gemm(),
                                policy=MappingPolicy.LOWEST_ENERGY)
        options_energy = {
            "host": soc.host.estimate(_gemm()).energy_j,
        }
        assert mapped.estimate.energy_j <= min(options_energy.values())

    def test_unmappable_kernel_raises(self):
        lonely = HeterogeneousSoC("lonely", widget_asic("gemm"))
        with pytest.raises(MappingError):
            lonely.map_kernel(_search())

    def test_duplicate_device_names_rejected(self):
        with pytest.raises(ConfigurationError):
            HeterogeneousSoC("dup", embedded_cpu("x"),
                             [embedded_cpu("x")])

    def test_offload_included_in_latency(self, soc):
        mapped = soc.map_kernel(_gemm())
        asic = soc.device("gemm-engine")
        raw = asic.estimate(_gemm()).latency_s
        assert mapped.estimate.latency_s == pytest.approx(
            raw + mapped.offload_s
        )


class TestGraphMapping:
    def _graph(self):
        return TaskGraph("g", [
            Stage("perc", _gemm(), rate_hz=10.0),
            Stage("plan", _search(), deps=("perc",)),
        ])

    def test_map_graph_covers_all_stages(self, soc):
        mapping = soc.map_graph(self._graph())
        assert set(mapping) == {"perc", "plan"}
        assert mapping["perc"].device == "gemm-engine"
        assert mapping["plan"].device == "host"

    def test_graph_latency_is_critical_path(self, soc):
        graph = self._graph()
        mapping = soc.map_graph(graph)
        expected = (mapping["perc"].estimate.latency_s
                    + mapping["plan"].estimate.latency_s)
        assert soc.graph_latency_s(graph) == pytest.approx(expected)

    def test_graph_energy_sums(self, soc):
        graph = self._graph()
        mapping = soc.map_graph(graph)
        expected = sum(m.estimate.energy_j for m in mapping.values())
        assert soc.graph_energy_j(graph) == pytest.approx(expected)


class TestCatalog:
    def test_tiers_are_ordered_by_capability(self):
        tiers = uav_compute_tiers()
        peaks = [platform.config.peak_flops
                 for _, platform, __, ___ in tiers]
        assert peaks == sorted(peaks)

    def test_tiers_mass_and_power_grow(self):
        tiers = uav_compute_tiers()
        masses = [mass for _, __, mass, ___ in tiers]
        powers = [power for _, __, ___, power in tiers]
        assert masses == sorted(masses)
        assert powers == sorted(powers)

    def test_soc_totals(self, soc):
        assert soc.total_mass_kg() > 0
        assert soc.total_static_power_w() > 0
        assert len(soc.devices) == 2
