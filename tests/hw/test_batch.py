"""Unit tests for the SoA batch roofline kernel (repro.hw.batch)."""

import numpy as np
import pytest

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw.batch import (
    BOUND_NAMES,
    PlatformSoA,
    ProfileSoA,
    batch_estimate,
    is_soa_priceable,
)
from repro.hw.catalog import (
    asic_gemm_engine,
    datacenter_gpu,
    desktop_cpu,
    embedded_cpu,
    embedded_gpu,
    midrange_fpga,
)
from repro.hw.contention import ContendedPlatform
from repro.hw.platform import AnalyticalPlatform, PlatformConfig
from repro.hw.mapping import HeterogeneousSoC


def _roofline_targets():
    return [desktop_cpu(), embedded_cpu(), datacenter_gpu(),
            embedded_gpu()]


def _profiles():
    return [
        WorkloadProfile(name="gemm", flops=2e9, bytes_read=4e6,
                        bytes_written=1e6, working_set_bytes=2e6,
                        parallel_fraction=0.99,
                        divergence=DivergenceClass.NONE),
        WorkloadProfile(name="planner", flops=1e7, int_ops=5e8,
                        bytes_read=3e8, bytes_written=1e8,
                        working_set_bytes=5e8, parallel_fraction=0.6,
                        divergence=DivergenceClass.HIGH),
        WorkloadProfile(name="serial", flops=1e6,
                        parallel_fraction=0.0),
        WorkloadProfile(name="empty"),
    ]


class TestGate:
    def test_catalog_rooflines_are_priceable(self):
        for platform in _roofline_targets():
            assert is_soa_priceable(platform), platform.name

    def test_overriding_platforms_are_not(self):
        assert not is_soa_priceable(asic_gemm_engine())
        assert not is_soa_priceable(midrange_fpga())

    def test_soc_is_not(self):
        soc = HeterogeneousSoC("soc", host=desktop_cpu(),
                               accelerators=[embedded_gpu()])
        assert not is_soa_priceable(soc)

    def test_contended_platform_is_not(self):
        contended = ContendedPlatform(desktop_cpu(),
                                      granted_offchip_bw=1e9)
        assert not is_soa_priceable(contended)

    def test_from_platforms_rejects_non_priceable(self):
        with pytest.raises(ConfigurationError):
            PlatformSoA.from_platforms([desktop_cpu(),
                                        asic_gemm_engine()])


class TestEncoding:
    def test_platform_columns_match_config(self):
        platforms = _roofline_targets()
        soa = PlatformSoA.from_platforms(platforms)
        assert len(soa) == len(platforms)
        for i, platform in enumerate(platforms):
            cfg = platform.config
            assert soa.names[i] == cfg.name
            assert soa.peak_flops[i] == cfg.peak_flops
            assert soa.int_throughput[i] == cfg.int_throughput
            assert soa.int_energy[i] == cfg.int_energy
            assert soa.lockstep[i] == cfg.lockstep

    def test_profile_columns_match_profiles(self):
        profiles = _profiles()
        soa = ProfileSoA.from_profiles(profiles)
        assert len(soa) == len(profiles)
        for j, profile in enumerate(profiles):
            assert soa.names[j] == profile.name
            assert soa.total_ops[j] == profile.total_ops
            assert soa.total_bytes[j] == profile.total_bytes


class TestBatchEstimate:
    def test_block_is_bit_identical_to_scalar(self):
        platforms = _roofline_targets()
        profiles = _profiles()
        cost = batch_estimate(PlatformSoA.from_platforms(platforms),
                              ProfileSoA.from_profiles(profiles))
        assert cost.shape == (len(platforms), len(profiles))
        for i, platform in enumerate(platforms):
            for j, profile in enumerate(profiles):
                scalar = platform.estimate(profile)
                batch = cost.estimate(i, j)
                assert batch == scalar

    def test_materialized_estimates_are_plain_floats(self):
        cost = batch_estimate(
            PlatformSoA.from_platforms([desktop_cpu()]),
            ProfileSoA.from_profiles(_profiles()))
        estimate = cost.estimate(0, 0)
        assert type(estimate.latency_s) is float
        assert type(estimate.energy_j) is float
        assert type(estimate.power_w) is float
        assert estimate.bound in BOUND_NAMES

    def test_working_set_boundary_selects_onchip(self):
        platform = desktop_cpu()
        onchip = platform.config.onchip_bytes
        at = WorkloadProfile(name="at", flops=1e6, bytes_read=1e9,
                             working_set_bytes=onchip)
        over = WorkloadProfile(name="over", flops=1e6, bytes_read=1e9,
                               working_set_bytes=np.nextafter(
                                   onchip, np.inf))
        cost = batch_estimate(
            PlatformSoA.from_platforms([platform]),
            ProfileSoA.from_profiles([at, over]))
        assert cost.estimate(0, 0) == platform.estimate(at)
        assert cost.estimate(0, 1) == platform.estimate(over)
        # <=: the boundary itself is served on-chip, so it is faster.
        assert cost.latency_s[0, 0] < cost.latency_s[0, 1]

    def test_divergence_derating_only_on_lockstep(self):
        base = dict(peak_flops=1e12, scalar_flops=2e9,
                    onchip_bytes=1e6, onchip_bw=1e12, offchip_bw=1e11)
        cpu = AnalyticalPlatform(PlatformConfig(
            name="scalar-machine", lockstep=False, **base))
        gpu = AnalyticalPlatform(PlatformConfig(
            name="lockstep-machine", lockstep=True, **base))
        work = dict(flops=1e9, bytes_read=1e6, parallel_fraction=0.95)
        uniform = WorkloadProfile(name="u",
                                  divergence=DivergenceClass.NONE,
                                  **work)
        divergent = WorkloadProfile(name="d",
                                    divergence=DivergenceClass.HIGH,
                                    **work)
        cost = batch_estimate(
            PlatformSoA.from_platforms([cpu, gpu]),
            ProfileSoA.from_profiles([uniform, divergent]))
        assert cost.latency_s[0, 0] == cost.latency_s[0, 1]
        assert cost.latency_s[1, 1] > cost.latency_s[1, 0]
