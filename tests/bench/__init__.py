"""Tests for the benchmark registry and perf ledger."""
