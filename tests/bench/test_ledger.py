"""Unit tests for the perf ledger: records, baselines, the gate, and
legacy migration."""

import json

import pytest

from repro.bench import (
    BASELINES_SCHEMA,
    LEDGER_SCHEMA,
    Benchmark,
    Metric,
    append_records,
    baselines_from_records,
    check_monotone,
    check_records,
    ledger_record,
    load_baselines,
    merge_baselines,
    migrate_legacy_bench,
    read_ledger,
    write_baselines,
)
from repro.errors import BenchmarkError


def _benchmark(higher_is_better=True):
    return Benchmark(
        name="toy",
        description="toy",
        sizes=(10,),
        smoke_sizes=(4,),
        metrics=(
            Metric("rate", unit="1/s"),
            Metric("speedup", unit="x", gate=True,
                   higher_is_better=higher_is_better),
        ),
        runner=lambda size: {"rate": 1.0, "speedup": 1.0},
    )


def _record(speedup, size=10, benchmark="toy"):
    return ledger_record(benchmark, size,
                         {"rate": 100.0, "speedup": speedup},
                         wall_time_s=0.5, seed=7)


class TestLedgerRecords:
    def test_record_is_provenance_stamped(self):
        record = _record(2.0)
        assert record["schema"] == LEDGER_SCHEMA
        assert record["benchmark"] == "toy"
        assert record["size"] == 10
        assert record["metrics"]["speedup"] == 2.0
        assert record["wall_time_s"] == 0.5
        assert record["peak_rss_kb"] is None or \
            record["peak_rss_kb"] > 0
        provenance = record["provenance"]
        assert provenance["seed"] == 7
        assert provenance["python"] and provenance["numpy"]
        assert "hostname_sha" in provenance["machine"]

    def test_append_and_read_round_trip(self, tmp_path):
        path = str(tmp_path / "ledger.jsonl")
        assert read_ledger(path) == []  # absent file reads empty
        assert append_records(path, [_record(2.0)]) == 1
        assert append_records(path, [_record(3.0), _record(4.0)]) == 2
        assert append_records(path, []) == 0
        records = read_ledger(path)
        assert [r["metrics"]["speedup"] for r in records] == \
            [2.0, 3.0, 4.0]

    def test_read_rejects_corrupt_line_with_location(self, tmp_path):
        path = tmp_path / "ledger.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(BenchmarkError, match="2"):
            read_ledger(str(path))


class TestBaselines:
    def test_from_records_last_wins_and_round_trips(self, tmp_path):
        document = baselines_from_records(
            [_record(2.0), _record(5.0)], source="measured")
        assert document["schema"] == BASELINES_SCHEMA
        assert len(document["entries"]) == 1
        entry = document["entries"][0]
        assert entry["metrics"]["speedup"] == 5.0
        assert entry["source"] == "measured"
        assert "machine" in entry

        path = str(tmp_path / "base.json")
        write_baselines(path, document)
        loaded = load_baselines(path)
        assert loaded[("toy", 10)]["metrics"]["speedup"] == 5.0

    def test_load_missing_is_empty_and_bad_schema_raises(
            self, tmp_path):
        assert load_baselines(str(tmp_path / "nope.json")) == {}
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema": "something-else"}))
        with pytest.raises(BenchmarkError, match="schema"):
            load_baselines(str(bad))

    def test_merge_keeps_old_keys_and_overrides_matching(
            self, tmp_path):
        path = str(tmp_path / "base.json")
        write_baselines(path, baselines_from_records(
            [_record(2.0), _record(9.0, size=20)]))
        merged = merge_baselines(
            path, baselines_from_records([_record(5.0)]))
        by_key = {(e["benchmark"], e["size"]): e
                  for e in merged["entries"]}
        assert by_key[("toy", 10)]["metrics"]["speedup"] == 5.0
        assert by_key[("toy", 20)]["metrics"]["speedup"] == 9.0


class TestRegressionGate:
    def _check(self, measured, baseline, threshold=0.15,
               higher_is_better=True):
        checks = check_records(
            [_record(measured)],
            {("toy", 10): {"metrics": {"speedup": baseline}}},
            {"toy": _benchmark(higher_is_better)},
            threshold=threshold)
        assert len(checks) == 1
        return checks[0]

    def test_within_threshold_passes(self):
        check = self._check(measured=9.0, baseline=10.0)
        assert check.change == pytest.approx(-0.10)
        assert not check.regressed

    def test_beyond_threshold_regresses(self):
        check = self._check(measured=8.0, baseline=10.0)
        assert check.change == pytest.approx(-0.20)
        assert check.regressed

    def test_improvement_never_regresses(self):
        assert not self._check(measured=20.0, baseline=10.0).regressed

    def test_lower_is_better_flips_direction(self):
        # ratio 1.0 -> 1.5 is a regression when lower is better
        check = self._check(measured=1.5, baseline=1.0,
                            higher_is_better=False)
        assert check.change == pytest.approx(-0.5)
        assert check.regressed
        assert not self._check(measured=0.5, baseline=1.0,
                               higher_is_better=False).regressed

    def test_gate_skips_unknown_and_ungated(self):
        # no baseline for the size -> no comparison
        checks = check_records(
            [_record(1.0, size=99)],
            {("toy", 10): {"metrics": {"speedup": 10.0}}},
            {"toy": _benchmark()}, threshold=0.1)
        assert checks == []
        # ungated metrics (rate) are never compared
        checks = check_records(
            [_record(10.0)],
            {("toy", 10): {"metrics": {"speedup": 10.0,
                                       "rate": 1e9}}},
            {"toy": _benchmark()}, threshold=0.1)
        assert [c.metric for c in checks] == ["speedup"]

    def test_negative_threshold_rejected(self):
        with pytest.raises(BenchmarkError, match="threshold"):
            check_records([], {}, {}, threshold=-0.1)


def _monotone_benchmark():
    return Benchmark(
        name="sweep",
        description="toy size sweep",
        sizes=(10, 100, 1000),
        smoke_sizes=(10,),
        metrics=(
            Metric("rate", unit="1/s"),
            Metric("speedup", unit="x", monotone=True),
        ),
        runner=lambda size: {"rate": 1.0, "speedup": 1.0},
    )


def _sweep_records(speedups):
    return [ledger_record("sweep", size,
                          {"rate": 50.0, "speedup": speedup},
                          wall_time_s=0.1, seed=0)
            for size, speedup in speedups]


class TestMonotoneGate:
    BENCHMARKS = {"sweep": _monotone_benchmark()}

    def test_non_decreasing_sweep_passes(self):
        checks = check_monotone(
            _sweep_records([(10, 5.0), (100, 5.5), (1000, 6.0)]),
            self.BENCHMARKS)
        assert len(checks) == 2
        assert not any(c.violated for c in checks)

    def test_tolerance_allows_small_dips(self):
        # 5.0 -> 4.6 is a 8% dip: inside the 0.9 floor.
        checks = check_monotone(
            _sweep_records([(10, 5.0), (100, 4.6)]), self.BENCHMARKS)
        assert [c.violated for c in checks] == [False]

    def test_collapse_is_flagged_with_context(self):
        checks = check_monotone(
            _sweep_records([(10, 25.0), (100, 26.0), (1000, 19.0)]),
            self.BENCHMARKS)
        assert [c.violated for c in checks] == [False, True]
        bad = checks[-1]
        assert (bad.prev_size, bad.size) == (100, 1000)
        assert (bad.prev_value, bad.value) == (26.0, 19.0)
        assert bad.metric == "speedup"

    def test_records_arrive_unordered_last_per_size_wins(self):
        records = _sweep_records(
            [(1000, 1.0), (10, 5.0), (1000, 6.0)])  # rerun at 1000
        checks = check_monotone(records, self.BENCHMARKS)
        assert [c.violated for c in checks] == [False]
        assert checks[0].value == 6.0

    def test_single_size_and_unmarked_metrics_contribute_nothing(self):
        assert check_monotone(_sweep_records([(10, 5.0)]),
                              self.BENCHMARKS) == []
        # "toy" has no monotone metrics at all.
        records = [_record(5.0, size=10), _record(1.0, size=100)]
        assert check_monotone(records, {"toy": _benchmark()}) == []

    def test_unknown_benchmark_is_skipped(self):
        assert check_monotone(
            _sweep_records([(10, 5.0), (100, 1.0)]), {}) == []

    def test_bad_tolerance_rejected(self):
        with pytest.raises(BenchmarkError, match="tolerance"):
            check_monotone([], self.BENCHMARKS, tolerance=0.0)


class TestLegacyMigration:
    def test_migrates_legacy_rows(self, tmp_path):
        legacy = tmp_path / "BENCH_toy.json"
        legacy.write_text(json.dumps({
            "benchmark": "toy",
            "rows": [
                {"candidates": 10, "speedup": 2.0, "rate": 5.0},
                {"candidates": 100, "speedup": 4.0, "rate": 6.0},
            ],
        }))
        records = migrate_legacy_bench(str(legacy))
        assert len(records) == 2
        first = records[0]
        assert first["schema"] == LEDGER_SCHEMA
        assert first["benchmark"] == "toy"
        assert first["size"] == 10
        assert first["metrics"] == {"speedup": 2.0, "rate": 5.0}
        assert first["wall_time_s"] is None  # not recorded at seed
        assert first["migrated_from"] == "BENCH_toy.json"
        assert first["provenance"]["git_sha"]

    def test_migrated_records_feed_the_gate(self, tmp_path):
        legacy = tmp_path / "BENCH_toy.json"
        legacy.write_text(json.dumps({
            "benchmark": "toy",
            "rows": [{"rollouts": 10, "speedup": 10.0}],
        }))
        baselines = baselines_from_records(
            migrate_legacy_bench(str(legacy)), source="migrated")
        lookup = {(e["benchmark"], e["size"]): e
                  for e in baselines["entries"]}
        checks = check_records([_record(8.0)], lookup,
                               {"toy": _benchmark()}, threshold=0.15)
        assert checks[0].regressed  # 10 -> 8 is a 20% regression

    def test_rejects_malformed_documents(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"rows": []}))
        with pytest.raises(BenchmarkError, match="legacy"):
            migrate_legacy_bench(str(bad))
        no_size = tmp_path / "nosize.json"
        no_size.write_text(json.dumps({
            "benchmark": "b", "rows": [{"speedup": 1.0}]}))
        with pytest.raises(BenchmarkError, match="size"):
            migrate_legacy_bench(str(no_size))
