"""Unit tests for the benchmark registry and its metric schema."""

import pytest

from repro.bench import (
    REGISTRY,
    Benchmark,
    BenchmarkRegistry,
    Metric,
    get_benchmark,
    load_builtins,
)
from repro.errors import BenchmarkError


def _entry(name="toy", runner=None, metrics=None, tags=()):
    return Benchmark(
        name=name,
        description="toy entry",
        sizes=(10, 100),
        smoke_sizes=(4,),
        metrics=metrics if metrics is not None else (
            Metric("rate", unit="1/s"),
            Metric("speedup", unit="x", gate=True),
        ),
        runner=runner if runner is not None
        else (lambda size: {"rate": float(size), "speedup": 2.0}),
        tags=tuple(tags),
    )


class TestBenchmark:
    def test_run_validates_schema(self):
        measured = _entry().run(4)
        assert measured == {"rate": 4.0, "speedup": 2.0}

    def test_run_rejects_bad_size(self):
        with pytest.raises(BenchmarkError, match="size"):
            _entry().run(0)

    def test_run_rejects_missing_metric(self):
        entry = _entry(runner=lambda size: {"rate": 1.0})
        with pytest.raises(BenchmarkError, match="speedup"):
            entry.run(4)

    def test_run_rejects_undeclared_metric(self):
        entry = _entry(runner=lambda size: {
            "rate": 1.0, "speedup": 2.0, "extra": 3.0})
        with pytest.raises(BenchmarkError, match="extra"):
            entry.run(4)

    def test_run_rejects_non_finite_and_non_numeric(self):
        for bad in (float("nan"), float("inf"), "fast", True, None):
            entry = _entry(runner=lambda size, bad=bad: {
                "rate": bad, "speedup": 2.0})
            with pytest.raises(BenchmarkError, match="finite"):
                entry.run(4)

    def test_metric_lookup_and_gates(self):
        entry = _entry()
        assert entry.metric("speedup").gate
        assert [m.name for m in entry.gated_metrics()] == ["speedup"]
        with pytest.raises(BenchmarkError, match="nope"):
            entry.metric("nope")

    def test_matches_name_and_tags(self):
        entry = _entry(name="batch_toy", tags=("smoke", "dse"))
        assert entry.matches("batch")
        assert entry.matches("SMOKE")
        assert not entry.matches("fleet")


class TestRegistry:
    def test_register_get_and_select(self):
        registry = BenchmarkRegistry()
        a = registry.register(_entry(name="aaa", tags=("smoke",)))
        registry.register(_entry(name="bbb"))
        assert registry.get("aaa") is a
        assert registry.names() == ["aaa", "bbb"]
        assert [e.name for e in registry.select("smoke")] == ["aaa"]
        assert [e.name for e in registry.select("")] == ["aaa", "bbb"]

    def test_duplicate_registration_raises(self):
        registry = BenchmarkRegistry()
        registry.register(_entry(name="x"))
        with pytest.raises(BenchmarkError, match="already"):
            registry.register(_entry(name="x"))

    def test_unknown_name_lists_registered(self):
        registry = BenchmarkRegistry()
        registry.register(_entry(name="only"))
        with pytest.raises(BenchmarkError, match="only"):
            registry.get("missing")


class TestBuiltins:
    def test_builtin_entries_are_registered(self):
        load_builtins()
        names = REGISTRY.names()
        for expected in ("batch_pricing", "fleet_missions",
                         "engine_parallel", "obs_overhead"):
            assert expected in names

    def test_builtin_schemas_gate_only_ratios(self):
        """Gated metrics must be dimensionless (speedups / ratios):
        absolute rates are machine-relative and must stay ungated."""
        load_builtins()
        for name in REGISTRY.names():
            entry = REGISTRY.get(name)
            assert entry.smoke_sizes, name
            assert entry.gated_metrics(), name
            for metric in entry.gated_metrics():
                assert metric.unit in ("x", "ratio"), (
                    f"{name}.{metric.name} gates on unit"
                    f" {metric.unit!r}")
            for metric in entry.metrics:
                if metric.unit == "1/s":
                    assert not metric.gate, (
                        f"{name}.{metric.name}: absolute rates must"
                        f" not gate")

    def test_get_benchmark_loads_builtins(self):
        assert get_benchmark("batch_pricing").name == "batch_pricing"
