"""Shared fixtures for the repro test suite."""

import numpy as np
import pytest

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.hw import embedded_cpu, embedded_gpu, midrange_fpga
from repro.kernels.planning.occupancy import CircleWorld


@pytest.fixture
def gemm_profile_512() -> WorkloadProfile:
    """A 512^3 GEMM profile (compute-bound on most platforms)."""
    n = 512
    return WorkloadProfile(
        name="gemm-512",
        flops=2.0 * n ** 3,
        bytes_read=2.0 * 8 * n * n,
        bytes_written=8.0 * n * n,
        working_set_bytes=3.0 * 8 * n * n,
        parallel_fraction=1.0,
        divergence=DivergenceClass.NONE,
        op_class="gemm",
    )


@pytest.fixture
def streaming_profile() -> WorkloadProfile:
    """A memory-bound streaming profile (low arithmetic intensity)."""
    return WorkloadProfile(
        name="stream",
        flops=1e6,
        bytes_read=64e6,
        bytes_written=64e6,
        working_set_bytes=128e6,
        parallel_fraction=0.99,
        divergence=DivergenceClass.NONE,
        op_class="stencil",
    )


@pytest.fixture
def divergent_profile() -> WorkloadProfile:
    """A branchy, serial profile (tree search class)."""
    return WorkloadProfile(
        name="search",
        flops=1e7,
        int_ops=5e7,
        bytes_read=1e7,
        bytes_written=1e6,
        working_set_bytes=8e6,
        parallel_fraction=0.3,
        divergence=DivergenceClass.HIGH,
        op_class="search",
    )


@pytest.fixture
def cpu():
    return embedded_cpu()


@pytest.fixture
def gpu():
    return embedded_gpu()


@pytest.fixture
def fpga():
    return midrange_fpga()


@pytest.fixture
def small_world() -> CircleWorld:
    """A reproducible 2-D world with a guaranteed free corridor."""
    return CircleWorld.random(dim=2, n_obstacles=20, extent=10.0,
                              seed=7, keep_corners_free=1.5)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
