"""Unit tests for the benchmark suite (workloads, runner, scoring)."""

import math

import pytest

from repro.benchmarksuite import (
    SuiteRunner,
    WORKLOAD_BUILDERS,
    build_workload,
    geometric_mean,
    normalized_scores,
    standard_suite,
)
from repro.benchmarksuite.scoring import coverage_score
from repro.errors import BenchmarkError
from repro.hw import (
    HeterogeneousSoC,
    asic_gemm_engine,
    embedded_cpu,
    embedded_gpu,
)
from repro.hw.asic import widget_asic


class TestWorkloads:
    def test_registry_builds_everything(self):
        suite = standard_suite()
        assert len(suite) == len(WORKLOAD_BUILDERS)
        assert all(len(w.graph) >= 2 for w in suite)

    def test_unknown_workload(self):
        with pytest.raises(BenchmarkError):
            build_workload("nope")

    def test_suite_spans_categories(self):
        """§2.3 by construction: the suite must span several op classes
        so no widget can ace it."""
        classes = set()
        for workload in standard_suite():
            classes.update(workload.composition())
        assert {"gemm", "stencil", "collision", "linalg"} <= classes

    def test_every_workload_has_quality_metric(self):
        for workload in standard_suite():
            assert workload.quality_metric != "task_quality"

    def test_deadlines_positive(self):
        for workload in standard_suite():
            assert workload.deadline_s() > 0


class TestScoring:
    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(BenchmarkError):
            geometric_mean([1.0, 0.0])

    def test_normalized_scores_reference_is_one(self):
        latencies = {
            "ref": {"w1": 1.0, "w2": 2.0},
            "fast": {"w1": 0.5, "w2": 1.0},
        }
        scores = normalized_scores(latencies, "ref")
        assert scores["ref"] == pytest.approx(1.0)
        assert scores["fast"] == pytest.approx(2.0)

    def test_mismatched_workloads_rejected(self):
        with pytest.raises(BenchmarkError):
            normalized_scores({"a": {"w": 1.0}, "b": {"v": 1.0}}, "a")

    def test_coverage_score(self):
        latencies = {"w1": 0.01, "w2": 1.0}
        deadlines = {"w1": 0.1, "w2": 0.1}
        assert coverage_score(latencies, deadlines) == 0.5


class TestRunner:
    def test_rows_complete(self):
        runner = SuiteRunner()
        rows = runner.run([embedded_cpu(), embedded_gpu()])
        assert len(rows) == 2 * len(runner.workloads)
        assert all(row.latency_s > 0 for row in rows)

    def test_cpu_runs_everything(self):
        runner = SuiteRunner()
        rows = runner.run([embedded_cpu()])
        assert all(math.isfinite(row.latency_s) for row in rows)

    def test_widget_asic_cannot_run_suite(self):
        """The §2.3 punchline: a pure widget is infeasible on most of
        the suite."""
        runner = SuiteRunner()
        rows = runner.run([widget_asic("gemm")])
        infeasible = [r for r in rows if math.isinf(r.latency_s)]
        assert len(infeasible) >= len(runner.workloads) - 2

    def test_soc_beats_host_geomean(self):
        runner = SuiteRunner()
        host = embedded_cpu()
        soc = HeterogeneousSoC("soc", embedded_cpu("soc-host"),
                               [asic_gemm_engine()])
        rows = runner.run([host, soc])
        scores = dict(runner.ranked_scores(rows, host.name))
        assert scores["soc"] > 1.0

    def test_report_renders(self):
        runner = SuiteRunner()
        rows = runner.run([embedded_cpu()])
        text = runner.report(rows)
        assert "vio-navigation" in text
        assert "latency_ms" in text

    def test_duplicate_targets_rejected(self):
        runner = SuiteRunner()
        with pytest.raises(BenchmarkError):
            runner.run([embedded_cpu(), embedded_cpu()])

    def test_empty_targets_rejected(self):
        with pytest.raises(BenchmarkError):
            SuiteRunner().run([])
