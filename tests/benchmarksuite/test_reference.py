"""Unit tests for reference pinning and regression tracking."""

import pytest

from repro.benchmarksuite.reference import (
    check_against_reference,
    compute_reference,
    load_reference,
    save_reference,
)
from repro.errors import BenchmarkError


@pytest.fixture(scope="module")
def reference():
    return compute_reference()


class TestComputeReference:
    def test_covers_standard_suite(self, reference):
        from repro.benchmarksuite import WORKLOAD_BUILDERS
        assert set(reference) == set(WORKLOAD_BUILDERS)
        assert all(v > 0 for v in reference.values())

    def test_deterministic(self, reference):
        assert compute_reference() == reference


class TestCheck:
    def test_identical_results_pass(self, reference):
        assert check_against_reference(reference, reference) == []

    def test_slowdown_flagged_as_regression(self, reference):
        measured = dict(reference)
        key = next(iter(measured))
        measured[key] *= 1.5
        drifts = check_against_reference(measured, reference)
        assert len(drifts) == 1
        assert drifts[0].workload == key
        assert drifts[0].kind == "regression"
        assert drifts[0].ratio == pytest.approx(1.5)

    def test_speedup_flagged_as_suspicious(self, reference):
        measured = dict(reference)
        key = next(iter(measured))
        measured[key] *= 0.5
        drifts = check_against_reference(measured, reference)
        assert drifts[0].kind == "suspicious-speedup"

    def test_within_tolerance_passes(self, reference):
        measured = {k: v * 1.03 for k, v in reference.items()}
        assert check_against_reference(measured, reference,
                                       tolerance=0.05) == []

    def test_worst_drift_first(self, reference):
        measured = dict(reference)
        keys = list(measured)
        measured[keys[0]] *= 1.2
        measured[keys[1]] *= 2.0
        drifts = check_against_reference(measured, reference)
        assert drifts[0].workload == keys[1]

    def test_workload_set_mismatch_raises(self, reference):
        measured = dict(reference)
        measured.pop(next(iter(measured)))
        with pytest.raises(BenchmarkError, match="differ"):
            check_against_reference(measured, reference)


class TestPersistence:
    def test_round_trip(self, reference, tmp_path):
        path = str(tmp_path / "reference.json")
        save_reference(reference, path)
        loaded = load_reference(path)
        assert loaded == pytest.approx(reference)

    def test_malformed_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(BenchmarkError):
            load_reference(str(path))
