"""Cross-cutting sanity: error hierarchy, catalog calibration, package
surface."""

import pytest

import repro
from repro import errors
from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.hw import (
    asic_gemm_engine,
    datacenter_gpu,
    desktop_cpu,
    embedded_cpu,
    embedded_gpu,
    midrange_fpga,
)


class TestErrorHierarchy:
    def test_all_errors_derive_from_base(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception) \
                    and obj is not errors.ReproError:
                assert issubclass(obj, errors.ReproError), name

    def test_catchable_as_base(self):
        with pytest.raises(errors.ReproError):
            raise errors.MappingError("x")

    def test_package_version(self):
        assert repro.__version__


def _big_gemm():
    n = 1024
    return WorkloadProfile(
        name="gemm-1k", flops=2.0 * n ** 3,
        bytes_read=2.0 * 8 * n * n, bytes_written=8.0 * n * n,
        working_set_bytes=3.0 * 8 * n * n,
        parallel_fraction=1.0, divergence=DivergenceClass.NONE,
        op_class="gemm",
    )


class TestCatalogCalibration:
    """Datasheet-order sanity: the catalog's relative orderings are the
    ones the real device classes exhibit."""

    def test_desktop_beats_embedded_cpu(self):
        profile = _big_gemm()
        assert (desktop_cpu().estimate(profile).latency_s
                < embedded_cpu().estimate(profile).latency_s)

    def test_datacenter_gpu_is_fastest_on_big_gemm(self):
        profile = _big_gemm()
        platforms = [embedded_cpu(), desktop_cpu(), embedded_gpu(),
                     midrange_fpga(), datacenter_gpu()]
        latencies = {p.name: p.estimate(profile).latency_s
                     for p in platforms}
        assert min(latencies, key=latencies.get) == "datacenter-gpu"

    def test_asic_is_most_energy_efficient_on_its_kernel(self):
        profile = _big_gemm()
        platforms = [embedded_cpu(), desktop_cpu(), embedded_gpu(),
                     midrange_fpga(), asic_gemm_engine()]
        energies = {p.name: p.estimate(profile).energy_j
                    for p in platforms}
        assert min(energies, key=energies.get) == "gemm-engine"

    def test_peak_flops_ladder(self):
        # embedded CPU < FPGA < embedded GPU < datacenter GPU.
        assert (embedded_cpu().config.peak_flops
                < midrange_fpga().config.peak_flops
                < embedded_gpu().config.peak_flops
                < datacenter_gpu().config.peak_flops)

    def test_tdp_order_matches_device_class(self):
        assert (embedded_cpu().config.static_power_w
                < datacenter_gpu().config.static_power_w)

    def test_energy_per_flop_ladder(self):
        """The Horowitz ladder: CPU > FPGA > GPU-class > ASIC dynamic
        energy per op (as configured)."""
        cpu_e = embedded_cpu().config.energy_per_flop
        fpga_e = midrange_fpga().config.energy_per_flop
        gpu_e = embedded_gpu().config.energy_per_flop
        asic_e = asic_gemm_engine().config.energy_per_flop
        assert cpu_e > fpga_e > gpu_e > asic_e


class TestPublicSurface:
    def test_top_level_reexports(self):
        assert repro.WorkloadProfile is not None
        assert repro.CostEstimate is not None
        assert repro.ReproError is errors.ReproError

    def test_all_subpackages_importable(self):
        import importlib
        for name in ("core", "kernels", "hw", "system", "dse",
                     "metrics", "sustainability", "benchmarksuite",
                     "biblio", "cli"):
            module = importlib.import_module(f"repro.{name}")
            assert module.__doc__, f"repro.{name} lacks a docstring"

    def test_dunder_all_resolves(self):
        import importlib
        for name in ("core", "hw", "system", "dse", "metrics",
                     "sustainability", "benchmarksuite", "biblio"):
            module = importlib.import_module(f"repro.{name}")
            for symbol in getattr(module, "__all__", ()):
                assert hasattr(module, symbol), \
                    f"repro.{name}.{symbol} in __all__ but missing"
