"""Unit tests for the vectorized fleet mission engine.

The load-bearing property is the equivalence contract: every rollout's
result must be *exactly equal* — strict dataclass equality, every field
— to per-rollout :func:`run_mission`.  The Monte Carlo layer is tested
for determinism, paired draws, grouping, and parallel-shard identity.
"""

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw import uav_compute_tiers
from repro.hw.batch import is_soa_priceable
from repro.hw.platform import AnalyticalPlatform, PlatformConfig
from repro.kernels.planning import CircleWorld
from repro.system.fleet import (
    FleetPerturbation,
    FleetRollout,
    FleetStudy,
    _first_count,
    course_key,
    ensure_course,
    run_fleet,
    tier_rollouts,
)
from repro.system.mission import (
    MissionConfig,
    plan_course,
    run_mission,
)
from repro.telemetry import MetricsRegistry
from repro.telemetry.profiling import (
    get_alloc_meter,
    measure_allocations,
)


@pytest.fixture(scope="module")
def world():
    return CircleWorld.random(dim=2, n_obstacles=24, extent=60.0,
                              radius_range=(1.0, 2.5), seed=5,
                              keep_corners_free=3.0)


@pytest.fixture(scope="module")
def config(world):
    return MissionConfig(
        world=world,
        start=np.array([1.0, 1.0]),
        goal=np.array([58.0, 58.0]),
        laps=2,
    )


@pytest.fixture(scope="module")
def tiers():
    return uav_compute_tiers()


@pytest.fixture(scope="module")
def course(config):
    return plan_course(config)


class _OverriddenPlatform(AnalyticalPlatform):
    """Prices exactly like its parent but *overrides* estimate, so the
    SoA gate must refuse it and the fleet engine must go scalar."""

    def estimate(self, profile):
        return super().estimate(profile)


def _overridden_platform():
    platform = _OverriddenPlatform(PlatformConfig(
        name="contended-tier", peak_flops=2e11, scalar_flops=2e9,
        onchip_bytes=1e6, onchip_bw=4e11, offchip_bw=3e10,
        static_power_w=6.0))
    assert not is_soa_priceable(platform)
    return platform


def _assert_equal_to_scalar(fleet, course):
    for rollout, batch in zip(fleet.rollouts, fleet.results):
        scalar = run_mission(rollout.config, rollout.platform,
                             rollout.compute_mass_kg,
                             rollout.compute_power_w, course=course)
        assert batch == scalar, (
            rollout.name,
            [(f.name, getattr(scalar, f.name), getattr(batch, f.name))
             for f in dataclasses.fields(scalar)
             if getattr(scalar, f.name) != getattr(batch, f.name)])


class TestEquivalence:
    def test_ladder_equals_scalar_field_for_field(self, config, tiers,
                                                  course):
        fleet = run_fleet(tier_rollouts(config, tiers))
        assert fleet.batch_priced == len(tiers)
        assert fleet.scalar_fallback == 0
        _assert_equal_to_scalar(fleet, course)

    def test_battery_boundary_equals_scalar(self, config, tiers,
                                            course):
        # A pack too small for the patrol: every tier dies mid-course.
        lean = dataclasses.replace(
            config, battery=dataclasses.replace(config.battery,
                                                capacity_wh=0.5))
        fleet = run_fleet(tier_rollouts(lean, tiers))
        _assert_equal_to_scalar(fleet, plan_course(lean))
        assert all(r.failure_reason == "battery"
                   for r in fleet.results)

    def test_timeout_boundary_equals_scalar(self, config, tiers):
        rushed = dataclasses.replace(config, max_duration_s=10.0)
        fleet = run_fleet(tier_rollouts(rushed, tiers))
        _assert_equal_to_scalar(fleet, plan_course(rushed))
        assert all(r.failure_reason == "timeout"
                   for r in fleet.results)

    def test_timeout_exactly_on_step_grid(self, config, tiers):
        # max_duration an exact multiple of dt: the loop exits *at* the
        # boundary step, the closed form must agree.
        exact = dataclasses.replace(config, max_duration_s=5.0,
                                    time_step_s=0.05)
        fleet = run_fleet(tier_rollouts(exact, tiers))
        _assert_equal_to_scalar(fleet, plan_course(exact))
        assert all(r.mission_time_s == pytest.approx(5.0)
                   for r in fleet.results)

    def test_fallback_platform_equals_scalar(self, config, course):
        rollout = FleetRollout(name="contended", config=config,
                               platform=_overridden_platform(),
                               compute_mass_kg=0.3,
                               compute_power_w=12.0)
        fleet = run_fleet([rollout])
        assert fleet.batch_priced == 0
        assert fleet.scalar_fallback == 1
        _assert_equal_to_scalar(fleet, course)

    def test_mixed_population(self, config, tiers, course):
        rollouts = tier_rollouts(config, tiers)
        rollouts.append(FleetRollout(
            name="contended", config=config,
            platform=_overridden_platform(),
            compute_mass_kg=0.3, compute_power_w=12.0))
        fleet = run_fleet(rollouts)
        assert fleet.batch_priced == len(tiers)
        assert fleet.scalar_fallback == 1
        _assert_equal_to_scalar(fleet, course)

    def test_empty_population(self):
        fleet = run_fleet([])
        assert len(fleet) == 0
        assert fleet.batch_priced == 0
        assert fleet.scalar_fallback == 0

    def test_empty_tiers_rejected(self, config):
        with pytest.raises(ConfigurationError):
            tier_rollouts(config, [])


class TestCourseSharing:
    def test_cache_plans_once(self, config):
        cache = {}
        first = ensure_course(config, cache)
        second = ensure_course(config, cache)
        assert second is first

    def test_cache_rejects_stale_world_identity(self, config, world):
        stale = object()
        cache = {course_key(config): (object(), stale)}
        course = ensure_course(config, cache)
        assert course is not stale
        assert cache[course_key(config)][0] is world

    def test_key_distinguishes_laps(self, config):
        more_laps = dataclasses.replace(config, laps=config.laps + 1)
        assert course_key(config) != course_key(more_laps)

    def test_no_cache_replans(self, config):
        assert ensure_course(config, None) is not \
            ensure_course(config, None)


class TestTelemetry:
    def test_counters(self, config, tiers):
        metrics = MetricsRegistry()
        rollouts = tier_rollouts(config, tiers)
        rollouts.append(FleetRollout(
            name="contended", config=config,
            platform=_overridden_platform(),
            compute_mass_kg=0.3, compute_power_w=12.0))
        run_fleet(rollouts, metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["fleet.rollouts"]["value"] == len(rollouts)
        assert snapshot["fleet.batch_hits"]["value"] == len(tiers)
        assert snapshot["fleet.batch_fallbacks"]["value"] == 1


class TestAllocationAccounting:
    def test_result_reports_exact_bytes(self, config, tiers):
        fleet = run_fleet(tier_rollouts(config, tiers))
        assert fleet.alloc_bytes > 0
        assert fleet.alloc_bytes_per_rollout == \
            fleet.alloc_bytes / len(fleet)

    def test_meter_attributes_bytes_to_kernel_sites(self, config,
                                                    tiers):
        with measure_allocations() as meter:
            fleet = run_fleet(tier_rollouts(config, tiers))
        sites = meter.snapshot()
        assert sites["system.fleet.run_fleet"]["bytes"] == \
            fleet.alloc_bytes
        assert sites["system.fleet.run_fleet"]["arrays"] > 0
        assert sites["hw.batch.batch_estimate"]["bytes"] > 0
        assert meter.total_bytes() >= fleet.alloc_bytes

    def test_meter_disabled_by_default(self, config, tiers):
        meter = get_alloc_meter()
        before = dict(meter.snapshot())
        run_fleet(tier_rollouts(config, tiers))
        assert meter.snapshot() == before

    def test_alloc_bytes_counter_published(self, config, tiers):
        metrics = MetricsRegistry()
        fleet = run_fleet(tier_rollouts(config, tiers),
                          metrics=metrics)
        snapshot = metrics.snapshot()
        assert snapshot["fleet.alloc_bytes"]["value"] == \
            fleet.alloc_bytes

    def test_parallel_shards_report_same_bytes(self, config, tiers):
        study = FleetStudy(config=config, tiers=tiers, trials=6,
                           seed=2)
        serial = study.run(jobs=1)
        parallel = study.run(jobs=2)
        assert serial.fleet.alloc_bytes > 0
        assert parallel.fleet.alloc_bytes == serial.fleet.alloc_bytes


class TestFirstCount:
    def test_exact_multiples(self):
        counts = _first_count(np.array([0.5, 0.5]),
                              np.array([2.0, 2.25]), strict=False)
        assert counts.tolist() == [4.0, 5.0]

    def test_strict_at_exact_multiple(self):
        counts = _first_count(np.array([0.5]), np.array([2.0]),
                              strict=True)
        assert counts.tolist() == [5.0]

    def test_zero_target(self):
        assert _first_count(np.array([0.1]), np.array([0.0]),
                            strict=False).tolist() == [0.0]

    def test_infinite_target_never_reached(self):
        counts = _first_count(np.array([0.1]), np.array([np.inf]),
                              strict=False)
        assert counts.tolist() == [np.inf]

    def test_zero_unit_never_reaches_positive_target(self):
        counts = _first_count(np.array([0.0]), np.array([1.0]),
                              strict=False)
        assert counts.tolist() == [np.inf]

    def test_matches_bruteforce_loop(self):
        rng = np.random.default_rng(7)
        units = rng.uniform(1e-3, 2.0, size=200)
        targets = rng.uniform(0.0, 50.0, size=200)
        counts = _first_count(units, targets, strict=False)
        for unit, target, count in zip(units, targets, counts):
            n = 0
            while n * unit < target:
                n += 1
            assert count == n


class TestFleetStudy:
    def test_same_seed_reproduces(self, config, tiers):
        first = FleetStudy(config=config, tiers=tiers, trials=6,
                           seed=3).run()
        second = FleetStudy(config=config, tiers=tiers, trials=6,
                            seed=3).run()
        assert first.fleet.results == second.fleet.results
        assert first.statistics == second.statistics

    def test_different_seed_differs(self, config, tiers):
        base = FleetStudy(config=config, tiers=tiers, trials=6,
                          seed=3).run()
        other = FleetStudy(config=config, tiers=tiers, trials=6,
                           seed=4).run()
        assert base.fleet.results != other.fleet.results

    def test_rollouts_equal_scalar(self, config, tiers, course):
        study = FleetStudy(config=config, tiers=tiers, trials=4,
                           seed=1)
        _assert_equal_to_scalar(study.run().fleet, course)

    def test_paired_draws_shared_across_tiers(self, config, tiers):
        study = FleetStudy(config=config, tiers=tiers, trials=3,
                           seed=0)
        rollouts = study.rollouts()
        assert len(rollouts) == 3 * len(tiers)
        for trial in range(3):
            block = rollouts[trial * len(tiers):
                             (trial + 1) * len(tiers)]
            assert len({id(r.config) for r in block}) == 1

    def test_statistics_grouping(self, config, tiers):
        result = FleetStudy(config=config, tiers=tiers, trials=5,
                            seed=0).run()
        assert [s.tier for s in result.statistics] == \
            [name for name, _, _, _ in tiers]
        assert all(s.trials == 5 for s in result.statistics)
        for s in result.statistics:
            assert s.mission_time_p50_s <= s.mission_time_p90_s \
                <= s.mission_time_p99_s
            failed = sum(s.failure_counts.values())
            assert failed == round((1.0 - s.success_rate) * s.trials)

    def test_best_tier_prefers_success_then_speed(self, config, tiers):
        result = FleetStudy(config=config, tiers=tiers, trials=4,
                            seed=0).run()
        best = result.best_tier()
        top = max(s.success_rate for s in result.statistics)
        assert best.success_rate == top
        assert best.mission_time_p50_s == min(
            s.mission_time_p50_s for s in result.statistics
            if s.success_rate == top)

    def test_parallel_shards_identical(self, config, tiers):
        study = FleetStudy(config=config, tiers=tiers, trials=6,
                           seed=2)
        serial = study.run(jobs=1)
        parallel = study.run(jobs=2)
        assert parallel.fleet.results == serial.fleet.results
        assert parallel.statistics == serial.statistics
        assert parallel.batch_priced == serial.batch_priced

    def test_zero_width_perturbation_pins_axes(self, config, tiers):
        study = FleetStudy(
            config=config, tiers=tiers, trials=3, seed=0,
            perturbation=FleetPerturbation(
                battery_capacity=0.0, payload_mass=0.0,
                sensor_rate=0.0, workload_scale=0.0))
        assert np.all(study.factors() == 1.0)
        result = study.run()
        # With nothing perturbed, trials are identical per tier.
        for s in result.statistics:
            assert s.mission_time_p50_s == s.mission_time_p99_s

    def test_perturbation_width_validated(self):
        with pytest.raises(ConfigurationError):
            FleetPerturbation(battery_capacity=1.0)
        with pytest.raises(ConfigurationError):
            FleetPerturbation(workload_scale=-0.1)

    def test_trials_validated(self, config, tiers):
        with pytest.raises(ConfigurationError):
            FleetStudy(config=config, tiers=tiers, trials=0)

    def test_json_rows(self, config, tiers):
        result = FleetStudy(config=config, tiers=tiers, trials=3,
                            seed=0).run()
        rows = result.to_rows()
        assert len(rows) == len(tiers)
        assert {"tier", "trials", "success_rate",
                "mission_time_p50_s"} <= set(rows[0])
