"""Unit tests for the DES engine, sensors, and I/O model."""

import pytest

from repro.errors import ConfigurationError, SimulationError
from repro.system.des import Simulator
from repro.system.io_model import (
    IoModel,
    datacenter_ingest,
    ros_like_middleware,
    shared_memory_transport,
)
from repro.system.sensors import Sensor, camera, imu, lidar


class TestSimulator:
    def test_events_run_in_time_order(self):
        sim = Simulator()
        log = []
        sim.schedule(0.3, lambda s: log.append("c"))
        sim.schedule(0.1, lambda s: log.append("a"))
        sim.schedule(0.2, lambda s: log.append("b"))
        sim.run()
        assert log == ["a", "b", "c"]

    def test_ties_break_by_priority_then_insertion(self):
        sim = Simulator()
        log = []
        sim.schedule(0.1, lambda s: log.append("late"), priority=5)
        sim.schedule(0.1, lambda s: log.append("early"), priority=0)
        sim.schedule(0.1, lambda s: log.append("late2"), priority=5)
        sim.run()
        assert log == ["early", "late", "late2"]

    def test_clock_advances(self):
        sim = Simulator()
        times = []
        sim.schedule(0.5, lambda s: times.append(s.now))
        sim.run()
        assert times == [0.5]
        assert sim.now == 0.5

    def test_until_stops_early(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda s: log.append("x"))
        sim.run(until=0.5)
        assert log == []
        assert sim.now == 0.5
        assert sim.pending() == 1

    def test_cannot_schedule_into_past(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.schedule(-0.1, lambda s: None)

    def test_chained_scheduling(self):
        sim = Simulator()
        count = [0]

        def tick(s):
            count[0] += 1
            if count[0] < 5:
                s.schedule(0.1, tick)

        sim.schedule(0.0, tick)
        sim.run()
        assert count[0] == 5
        assert sim.now == pytest.approx(0.4)

    def test_runaway_guard(self):
        sim = Simulator()

        def forever(s):
            s.schedule(0.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)


class TestSensor:
    def test_emits_at_rate(self):
        sim = Simulator()
        samples = []
        sensor = Sensor("s", rate_hz=10.0, output_bytes=100.0)
        sensor.attach(sim, lambda s, sample: samples.append(sample))
        sim.run(until=1.0)
        assert 10 <= len(samples) <= 11
        assert samples[0].seq == 0
        assert samples[1].seq == 1

    def test_jitter_bounded(self):
        sim = Simulator()
        stamps = []
        sensor = Sensor("s", rate_hz=100.0, output_bytes=1.0,
                        jitter_std_s=1e-3, seed=1)
        sensor.attach(sim, lambda s, sample: stamps.append(s.now))
        sim.run(until=0.5)
        gaps = [b - a for a, b in zip(stamps, stamps[1:])]
        # Jitter is clipped to half a period: gaps stay positive.
        assert all(g > 0 for g in gaps)

    def test_until_stops_emission(self):
        sim = Simulator()
        samples = []
        sensor = Sensor("s", rate_hz=10.0, output_bytes=1.0)
        sensor.attach(sim, lambda s, sample: samples.append(sample),
                      until=0.25)
        sim.run(until=2.0)
        assert len(samples) <= 4

    def test_presets(self):
        assert camera().output_bytes == 640 * 480 * 2
        assert imu().rate_hz == 200.0
        assert lidar().output_bytes == 30000 * 16

    def test_invalid_rate(self):
        with pytest.raises(ConfigurationError):
            Sensor("bad", rate_hz=0.0, output_bytes=1.0)


class TestIoModel:
    def test_transfer_time(self):
        io = IoModel(fixed_overhead_s=1e-3, bandwidth=1e6)
        assert io.transfer_time_s(1e6) == pytest.approx(1.001)

    def test_energy(self):
        io = IoModel(energy_per_byte=1e-9)
        assert io.transfer_energy_j(1e6) == pytest.approx(1e-3)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            IoModel().transfer_time_s(-1.0)

    def test_middleware_slower_than_shared_memory(self):
        frame = 640 * 480 * 2
        assert (ros_like_middleware().transfer_time_s(frame)
                > shared_memory_transport().transfer_time_s(frame))

    def test_wan_is_the_ai_tax(self):
        frame = 640 * 480 * 2
        assert (datacenter_ingest().transfer_time_s(frame)
                > 10 * ros_like_middleware().transfer_time_s(frame))
