"""Unit tests for the scheduler and UAV physics."""

import pytest

from repro.errors import ConfigurationError
from repro.system.robot import BatteryModel, UavPhysics
from repro.system.scheduler import (
    PeriodicTask,
    SchedulerPolicy,
    rm_utilization_bound,
    simulate_scheduler,
)


def _feasible_tasks():
    # Utilization 0.2 + 0.3 + 0.2 = 0.7 < RM bound for 3 tasks (0.78).
    return [
        PeriodicTask("fast", period_s=0.01, wcet_s=0.002, priority=0),
        PeriodicTask("mid", period_s=0.05, wcet_s=0.015, priority=1),
        PeriodicTask("slow", period_s=0.1, wcet_s=0.02, priority=2),
    ]


def _overloaded_tasks():
    return [
        PeriodicTask("fast", period_s=0.01, wcet_s=0.005, priority=0),
        PeriodicTask("mid", period_s=0.05, wcet_s=0.03, priority=1),
        PeriodicTask("slow", period_s=0.1, wcet_s=0.05, priority=2),
    ]


class TestScheduler:
    def test_feasible_set_meets_deadlines_under_edf(self):
        result = simulate_scheduler(_feasible_tasks(),
                                    SchedulerPolicy.EDF,
                                    duration_s=1.0, time_step_s=1e-4)
        assert result.miss_rate == 0.0

    def test_feasible_set_meets_deadlines_under_rm(self):
        result = simulate_scheduler(_feasible_tasks(),
                                    SchedulerPolicy.RATE_MONOTONIC,
                                    duration_s=1.0, time_step_s=1e-4)
        assert result.miss_rate == 0.0

    def test_fifo_misses_on_feasible_set(self):
        """Non-preemptive FIFO lets long jobs block short periods —
        the §2.4 scheduling-complexity point."""
        result = simulate_scheduler(_feasible_tasks(),
                                    SchedulerPolicy.FIFO,
                                    duration_s=1.0, time_step_s=1e-4)
        assert result.miss_rate > 0.0

    def test_overload_degrades_everyone(self):
        result = simulate_scheduler(_overloaded_tasks(),
                                    SchedulerPolicy.EDF,
                                    duration_s=1.0, time_step_s=1e-4)
        assert result.utilization > 1.0
        assert result.miss_rate > 0.1

    def test_priority_protects_high_priority_task(self):
        result = simulate_scheduler(_overloaded_tasks(),
                                    SchedulerPolicy.FIXED_PRIORITY,
                                    duration_s=1.0, time_step_s=1e-4)
        assert result.per_task_misses["fast"] == 0

    def test_rm_bound_values(self):
        assert rm_utilization_bound(1) == pytest.approx(1.0)
        assert rm_utilization_bound(2) == pytest.approx(0.828, abs=1e-3)
        assert rm_utilization_bound(3) == pytest.approx(0.780, abs=1e-3)

    def test_jobs_accounted(self):
        result = simulate_scheduler(_feasible_tasks(),
                                    SchedulerPolicy.EDF,
                                    duration_s=0.5, time_step_s=1e-4)
        assert result.jobs_released >= 50 + 10 + 5
        assert result.jobs_completed <= result.jobs_released

    def test_coarse_time_step_rejected(self):
        with pytest.raises(ConfigurationError):
            simulate_scheduler(_feasible_tasks(),
                               SchedulerPolicy.EDF,
                               duration_s=1.0, time_step_s=0.005)

    def test_invalid_task(self):
        with pytest.raises(ConfigurationError):
            PeriodicTask("bad", period_s=0.0, wcet_s=0.1)


class TestBattery:
    def test_usable_energy(self):
        battery = BatteryModel(capacity_wh=50.0, usable_fraction=0.8)
        assert battery.usable_energy_j == pytest.approx(
            50.0 * 3600.0 * 0.8
        )

    def test_from_capacity_sizes_mass(self):
        battery = BatteryModel.from_capacity(
            150.0, specific_energy_wh_per_kg=150.0
        )
        assert battery.mass_kg == pytest.approx(1.0)

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            BatteryModel(capacity_wh=0.0)


class TestUavPhysics:
    def test_hover_power_superlinear_in_mass(self):
        uav = UavPhysics()
        p1 = uav.hover_power_w(1.0)
        p2 = uav.hover_power_w(2.0)
        assert p2 > 2.0 * p1  # m^1.5 scaling

    def test_hover_power_plausible_for_small_quad(self):
        uav = UavPhysics()
        power = uav.hover_power_w(1.2)
        assert 50.0 < power < 300.0

    def test_safe_speed_decreases_with_latency(self):
        uav = UavPhysics()
        fast = uav.safe_speed_m_s(10.0, 0.01)
        slow = uav.safe_speed_m_s(10.0, 1.0)
        assert fast > slow

    def test_safe_speed_zero_latency_is_braking_limited(self):
        uav = UavPhysics(max_speed_m_s=100.0, max_accel_m_s2=5.0)
        v = uav.safe_speed_m_s(10.0, 0.0)
        assert v == pytest.approx((2 * 5.0 * 10.0) ** 0.5)

    def test_safe_speed_capped(self):
        uav = UavPhysics(max_speed_m_s=3.0)
        assert uav.safe_speed_m_s(1000.0, 0.0) == 3.0

    def test_flight_time_shrinks_with_payload(self):
        uav = UavPhysics()
        battery = BatteryModel()
        light = uav.flight_time_s(battery, 0.05, 5.0)
        heavy = uav.flight_time_s(battery, 2.0, 250.0)
        assert light > 2.0 * heavy

    def test_invalid_args(self):
        uav = UavPhysics()
        with pytest.raises(ConfigurationError):
            uav.hover_power_w(0.0)
        with pytest.raises(ConfigurationError):
            uav.safe_speed_m_s(-1.0, 0.1)
