"""Unit tests for fault injection and thermal throttling (§2.6)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw import uav_compute_tiers
from repro.kernels.planning import CircleWorld
from repro.system import (
    FaultSchedule,
    MissionConfig,
    ThermalModel,
    run_mission,
    run_mission_with_faults,
)


@pytest.fixture(scope="module")
def mission_setup():
    world = CircleWorld.random(dim=2, n_obstacles=30, extent=120.0,
                               radius_range=(1.0, 3.0), seed=11,
                               keep_corners_free=3.0)
    config = MissionConfig(world=world, start=np.array([1.0, 1.0]),
                           goal=np.array([118.0, 118.0]), laps=20)
    tiers = uav_compute_tiers()
    # tier1: comfortably successful nominal mission.
    _, platform, mass, power = tiers[1]
    return config, platform, mass, power


class TestFaultSchedule:
    def test_active_windows(self):
        schedule = FaultSchedule(windows=((10.0, 20.0), (50.0, 55.0)))
        assert schedule.active(15.0)
        assert not schedule.active(30.0)
        assert schedule.total_outage_s() == pytest.approx(15.0)

    def test_invalid_window(self):
        with pytest.raises(ConfigurationError):
            FaultSchedule(windows=((5.0, 5.0),))
        with pytest.raises(ConfigurationError):
            FaultSchedule(windows=((-1.0, 5.0),))


class TestMissionWithFaults:
    def test_no_faults_matches_nominal(self, mission_setup):
        config, platform, mass, power = mission_setup
        nominal = run_mission(config, platform, mass, power)
        faulted = run_mission_with_faults(config, platform, mass,
                                          power, FaultSchedule())
        assert faulted.mission_time_s == nominal.mission_time_s
        assert faulted.energy_j == nominal.energy_j

    def test_short_blackout_costs_time_and_energy(self, mission_setup):
        config, platform, mass, power = mission_setup
        nominal = run_mission(config, platform, mass, power)
        faulted = run_mission_with_faults(
            config, platform, mass, power,
            FaultSchedule(windows=((30.0, 90.0),)),
        )
        assert faulted.success
        assert faulted.mission_time_s == pytest.approx(
            nominal.mission_time_s + 60.0
        )
        assert faulted.energy_j > nominal.energy_j
        assert faulted.mean_speed_m_s < nominal.mean_speed_m_s

    def test_long_blackout_kills_the_battery(self, mission_setup):
        config, platform, mass, power = mission_setup
        nominal = run_mission(config, platform, mass, power)
        margin_s = nominal.endurance_s - nominal.mission_time_s
        assert margin_s > 0
        faulted = run_mission_with_faults(
            config, platform, mass, power,
            FaultSchedule(windows=((10.0, 10.0 + margin_s + 120.0),)),
        )
        assert not faulted.success
        assert faulted.failure_reason == "battery"
        assert faulted.distance_m < nominal.distance_m

    def test_faults_shrink_design_margin_not_speed(self, mission_setup):
        config, platform, mass, power = mission_setup
        faulted = run_mission_with_faults(
            config, platform, mass, power,
            FaultSchedule(windows=((0.0, 30.0),)),
        )
        nominal = run_mission(config, platform, mass, power)
        assert faulted.safe_speed_m_s == nominal.safe_speed_m_s


class TestThermalModel:
    def test_no_throttle_within_capacity(self):
        thermal = ThermalModel(heat_rejection_w=30.0)
        assert thermal.throttle_factor(20.0) == 1.0
        assert thermal.throttled_latency_s(0.01, 20.0) == 0.01

    def test_throttle_scales_inverse_to_power(self):
        thermal = ThermalModel(heat_rejection_w=30.0)
        assert thermal.throttle_factor(60.0) == pytest.approx(0.5)
        assert thermal.throttled_latency_s(0.01, 60.0) \
            == pytest.approx(0.02)

    def test_floor_respected(self):
        thermal = ThermalModel(heat_rejection_w=30.0,
                               min_throttle=0.4)
        assert thermal.throttle_factor(1000.0) == 0.4

    def test_desktop_gpu_on_a_drone_is_throttled(self):
        """The quiet E4 failure mode: a 250 W board behind a 40 W
        heatsink loses most of its paper advantage."""
        thermal = ThermalModel(heat_rejection_w=40.0,
                               min_throttle=0.1)
        tiers = uav_compute_tiers()
        _, workstation, __, power = tiers[-1]
        from repro.system.mission import default_frame_profile
        latency = workstation.estimate(default_frame_profile()).latency_s
        throttled = thermal.throttled_latency_s(latency, power)
        assert throttled > 5.0 * latency

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            ThermalModel(heat_rejection_w=0.0)
        with pytest.raises(ConfigurationError):
            ThermalModel().throttle_factor(-1.0)
