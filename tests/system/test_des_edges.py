"""Edge-case coverage for the DES engine: past scheduling, livelock
guard, deterministic tie-breaking, horizon semantics, and listeners."""

import pytest

from repro.errors import SimulationError
from repro.system.des import Simulator


class TestScheduleAtValidation:
    def test_schedule_at_in_the_past_raises(self):
        sim = Simulator()
        sim.schedule(1.0, lambda s: None)
        sim.run()
        assert sim.now == 1.0
        with pytest.raises(SimulationError):
            sim.schedule_at(0.5, lambda s: None)

    def test_schedule_at_now_is_allowed(self):
        sim = Simulator()
        log = []
        sim.schedule(1.0, lambda s: s.schedule_at(s.now,
                                                  lambda s2:
                                                  log.append(s2.now)))
        sim.run()
        assert log == [1.0]


class TestLivelockGuard:
    def test_max_events_exceeded_raises(self):
        sim = Simulator()

        def respawn(s):
            s.schedule(0.0, respawn)  # zero-delay self-perpetuation

        sim.schedule(0.0, respawn)
        with pytest.raises(SimulationError, match="livelock"):
            sim.run(max_events=100)

    def test_guard_not_triggered_at_exact_budget(self):
        sim = Simulator()
        for index in range(10):
            sim.schedule(index * 0.1, lambda s: None)
        sim.run(max_events=10)
        assert sim.events_processed == 10


class TestDeterministicTieBreaking:
    def test_time_priority_seq_ordering(self):
        """Same-time events order by priority, then insertion seq —
        regardless of scheduling order."""
        sim = Simulator()
        log = []
        sim.schedule(0.5, lambda s: log.append("p2-first"), priority=2)
        sim.schedule(0.5, lambda s: log.append("p0"), priority=0)
        sim.schedule(0.5, lambda s: log.append("p2-second"), priority=2)
        sim.schedule(0.5, lambda s: log.append("p1"), priority=1)
        sim.run()
        assert log == ["p0", "p1", "p2-first", "p2-second"]

    def test_two_identical_runs_are_bit_identical(self):
        def build():
            sim = Simulator()
            log = []
            for index in range(50):
                sim.schedule(
                    (index % 7) * 0.01,
                    lambda s, i=index: log.append((s.now, i)),
                    priority=index % 3,
                )
            sim.run()
            return log

        assert build() == build()


class TestRunUntil:
    def test_until_advances_clock_with_pending_events(self):
        """run(until=...) must leave now == until even when later
        events remain queued, so consecutive windows tile exactly."""
        sim = Simulator()
        log = []
        sim.schedule(0.25, lambda s: log.append(s.now))
        sim.schedule(2.0, lambda s: log.append(s.now))
        sim.run(until=1.0)
        assert log == [0.25]
        assert sim.now == 1.0
        assert sim.pending() == 1
        sim.run(until=3.0)
        assert log == [0.25, 2.0]
        assert sim.now == 2.0  # queue drained before the horizon


class TestDispatchListeners:
    def test_listener_sees_every_event_in_order(self):
        sim = Simulator()
        seen = []
        sim.add_listener(lambda s, e: seen.append((e.time, e.seq)))
        sim.schedule(0.2, lambda s: None)
        sim.schedule(0.1, lambda s: None)
        sim.run()
        assert seen == [(0.1, 1), (0.2, 0)]

    def test_listener_fires_after_clock_advance(self):
        sim = Simulator()
        clocks = []
        sim.add_listener(lambda s, e: clocks.append(s.now == e.time))
        sim.schedule(0.3, lambda s: None)
        sim.run()
        assert clocks == [True]

    def test_remove_listener(self):
        sim = Simulator()
        seen = []
        listener = lambda s, e: seen.append(e.seq)  # noqa: E731
        sim.add_listener(listener)
        sim.schedule(0.1, lambda s: None)
        sim.run()
        sim.remove_listener(listener)
        sim.schedule(0.1, lambda s: None)
        sim.run()
        assert seen == [0]
