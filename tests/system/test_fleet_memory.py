"""Fleet memory architecture: chunked streaming and shard transport.

Complements ``tests/system/test_fleet.py`` (scalar equivalence,
allocation accounting): here the contract is that ``chunk_size`` and
``transport`` change *where bytes live and move*, never what any result
is — chunked == unchunked, shm == pickle == serial — plus the telemetry
those paths publish and the errors they raise when misconfigured.
"""

import numpy as np
import pytest

from repro.engine.arena import BatchArena
from repro.engine.shm import shm_available
from repro.errors import ConfigurationError
from repro.hw.catalog import uav_compute_tiers
from repro.kernels.planning import CircleWorld
from repro.system.fleet import FleetStudy, run_fleet
from repro.telemetry.metrics import MetricsRegistry

_WORLD = CircleWorld.random(dim=2, n_obstacles=10, extent=25.0,
                            radius_range=(1.0, 2.0), seed=4,
                            keep_corners_free=3.0)


@pytest.fixture(scope="module")
def config():
    from repro.system.mission import MissionConfig

    return MissionConfig(world=_WORLD, start=np.array([1.0, 1.0]),
                         goal=np.array([23.0, 23.0]))


@pytest.fixture(scope="module")
def courses():
    return {}


@pytest.fixture(scope="module")
def population(config):
    return FleetStudy(config=config, tiers=uav_compute_tiers(),
                      trials=5, seed=7).rollouts()


class TestChunkedRunFleet:
    def test_chunked_equals_unchunked(self, population, courses):
        whole = run_fleet(population, course_cache=courses)
        for chunk_size in (1, 3, 7, len(population), 10_000):
            chunked = run_fleet(population, course_cache=courses,
                                chunk_size=chunk_size)
            assert chunked.results == whole.results
            assert chunked.batch_priced == whole.batch_priced
            assert chunked.scalar_fallback == whole.scalar_fallback
            assert chunked.alloc_bytes == whole.alloc_bytes

    def test_chunked_with_shared_arena(self, population, courses):
        arena = BatchArena()
        whole = run_fleet(population, course_cache=courses)
        chunked = run_fleet(population, course_cache=courses,
                            arena=arena, chunk_size=4)
        assert chunked.results == whole.results
        assert arena.grows > 0

    def test_chunk_telemetry(self, population, courses):
        metrics = MetricsRegistry()
        run_fleet(population, course_cache=courses, chunk_size=4,
                  metrics=metrics)
        snapshot = metrics.snapshot()
        expected = -(-len(population) // 4)  # ceil division
        assert snapshot["fleet.chunks"]["value"] == expected
        assert 0 < snapshot["fleet.arena_occupancy_pct"]["value"] <= 100

    def test_no_chunk_metrics_when_unchunked(self, population, courses):
        metrics = MetricsRegistry()
        run_fleet(population, course_cache=courses, metrics=metrics)
        assert "fleet.chunks" not in metrics.snapshot()

    def test_invalid_chunk_size(self, population):
        with pytest.raises(ConfigurationError):
            run_fleet(population, chunk_size=0)


class TestStudyTransport:
    @pytest.fixture(scope="class")
    def study(self, config):
        return FleetStudy(config=config, tiers=uav_compute_tiers(),
                          trials=4, seed=3)

    @pytest.fixture(scope="class")
    def serial(self, study):
        return study.run()

    def test_pickle_transport_equals_serial(self, study, serial):
        parallel = study.run(jobs=2, transport="pickle")
        assert parallel.fleet.results == serial.fleet.results
        assert parallel.statistics == serial.statistics

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_shm_transport_equals_serial(self, study, serial):
        parallel = study.run(jobs=2, transport="shm")
        assert parallel.fleet.results == serial.fleet.results
        assert parallel.statistics == serial.statistics

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_shm_chunked_equals_serial(self, study, serial):
        parallel = study.run(jobs=2, transport="shm", chunk_size=3)
        assert parallel.fleet.results == serial.fleet.results

    def test_chunked_serial_study_equals_serial(self, study, serial):
        chunked = study.run(chunk_size=2)
        assert chunked.fleet.results == serial.fleet.results
        assert chunked.statistics == serial.statistics

    def test_invalid_transport_rejected(self, study):
        with pytest.raises(ConfigurationError):
            study.run(jobs=2, transport="carrier-pigeon")

    def test_invalid_chunk_size_rejected(self, study):
        with pytest.raises(ConfigurationError):
            study.run(chunk_size=-1)
