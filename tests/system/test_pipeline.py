"""Unit tests for the queued pipeline simulation."""

import pytest

from repro.core.profile import WorkloadProfile
from repro.core.workload import Stage, TaskGraph, linear_pipeline
from repro.errors import ConfigurationError
from repro.system.io_model import IoModel
from repro.system.pipeline import PipelineSimulation


def _profiles(names):
    return [WorkloadProfile(name=n, flops=1e6) for n in names]


def _linear(service_times, rate_hz=10.0, io=None, capacity=4):
    graph = linear_pipeline("p", _profiles(list(service_times)),
                            rate_hz=rate_hz, output_bytes=1e4)
    return PipelineSimulation(graph, service_times,
                              io=io or IoModel(),
                              queue_capacity=capacity)


class TestBasics:
    def test_underloaded_pipeline_completes_everything(self):
        sim = _linear({"a": 0.01, "b": 0.02}, rate_hz=10.0)
        result = sim.run(5.0)
        assert result.samples_completed >= result.samples_emitted - 2
        assert result.drop_rate() == 0.0

    def test_latency_is_sum_of_services_when_idle(self):
        sim = _linear({"a": 0.01, "b": 0.02}, rate_hz=1.0)
        result = sim.run(10.0)
        expected = 0.01 + 0.02 + IoModel().transfer_time_s(1e4)
        assert result.mean_latency_s() == pytest.approx(expected,
                                                        rel=0.01)

    def test_missing_service_time_rejected(self):
        graph = linear_pipeline("p", _profiles(["a", "b"]),
                                rate_hz=1.0)
        with pytest.raises(ConfigurationError):
            PipelineSimulation(graph, {"a": 0.01})

    def test_source_needs_rate(self):
        graph = TaskGraph("g", [
            Stage("a", WorkloadProfile(name="a", flops=1.0)),
        ])
        with pytest.raises(ConfigurationError):
            PipelineSimulation(graph, {"a": 0.01})


class TestOverload:
    def test_bottleneck_drops_frames(self):
        # Stage b needs 0.2 s but frames arrive every 0.1 s.
        sim = _linear({"a": 0.01, "b": 0.2}, rate_hz=10.0,
                      capacity=2)
        result = sim.run(10.0)
        assert result.drop_rate() > 0.2
        assert result.stage_stats["b"].dropped > 0

    def test_throughput_capped_by_bottleneck(self):
        sim = _linear({"a": 0.01, "b": 0.2}, rate_hz=10.0)
        result = sim.run(20.0)
        assert result.throughput_hz() == pytest.approx(5.0, rel=0.1)

    def test_utilization_saturates(self):
        sim = _linear({"a": 0.01, "b": 0.2}, rate_hz=10.0)
        result = sim.run(10.0)
        assert result.stage_stats["b"].utilization(10.0) > 0.9
        assert result.stage_stats["a"].utilization(10.0) < 0.2

    def test_queueing_inflates_latency(self):
        fast = _linear({"a": 0.01, "b": 0.05}, rate_hz=10.0)
        slow = _linear({"a": 0.01, "b": 0.099}, rate_hz=10.0)
        lat_fast = fast.run(10.0).mean_latency_s()
        lat_slow = slow.run(10.0).mean_latency_s()
        assert lat_slow > lat_fast


class TestDeadlines:
    def test_deadline_miss_rate(self):
        sim = _linear({"a": 0.01, "b": 0.02}, rate_hz=10.0)
        result = sim.run(5.0)
        # Generous deadline: everything on time.
        assert result.deadline_miss_rate(1.0) < 0.1
        # Impossible deadline: everything misses.
        assert result.deadline_miss_rate(1e-6) == pytest.approx(
            1.0, abs=0.05
        )

    def test_p99_at_least_mean(self):
        sim = _linear({"a": 0.01, "b": 0.02}, rate_hz=10.0)
        result = sim.run(5.0)
        assert result.p99_latency_s() >= result.mean_latency_s()


class TestJoin:
    def test_fork_join_completes(self):
        profile = WorkloadProfile(name="x", flops=1e6)
        graph = TaskGraph("diamond", [
            Stage("src", profile, rate_hz=10.0, output_bytes=1e3),
            Stage("left", profile, deps=("src",), output_bytes=1e3),
            Stage("right", profile, deps=("src",), output_bytes=1e3),
            Stage("sink", profile, deps=("left", "right")),
        ])
        sim = PipelineSimulation(graph, {
            "src": 0.001, "left": 0.002, "right": 0.005,
            "sink": 0.001,
        })
        result = sim.run(3.0)
        assert result.samples_completed > 20
        # The join fires once per seq, not once per input.
        assert result.stage_stats["sink"].completed <= \
            result.stage_stats["left"].completed + 1

    def test_io_cost_adds_latency(self):
        slow_io = IoModel(fixed_overhead_s=0.05, bandwidth=1e9)
        sim_fast = _linear({"a": 0.001, "b": 0.001}, rate_hz=5.0)
        sim_slow = _linear({"a": 0.001, "b": 0.001}, rate_hz=5.0,
                           io=slow_io)
        fast = sim_fast.run(4.0).mean_latency_s()
        slow = sim_slow.run(4.0).mean_latency_s()
        assert slow > fast + 0.04
