"""Unit tests for closed-loop missions (the §2.4 experiment core)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hw import uav_compute_tiers
from repro.kernels.planning import CircleWorld
from repro.system.mission import (
    MissionConfig,
    MissionResult,
    default_frame_profile,
    pipeline_latency_s,
    plan_course,
    run_mission,
    sweep_compute_tiers,
)


@pytest.fixture(scope="module")
def world():
    return CircleWorld.random(dim=2, n_obstacles=40, extent=120.0,
                              radius_range=(1.0, 3.0), seed=11,
                              keep_corners_free=3.0)


@pytest.fixture(scope="module")
def config(world):
    return MissionConfig(
        world=world,
        start=np.array([1.0, 1.0]),
        goal=np.array([118.0, 118.0]),
        laps=20,
    )


@pytest.fixture(scope="module")
def tiers():
    return uav_compute_tiers()


@pytest.fixture(scope="module")
def sweep(config, tiers):
    return sweep_compute_tiers(config, tiers)


class TestFrameProfile:
    def test_dnn_class_magnitude(self):
        profile = default_frame_profile()
        assert 0.5e9 < profile.flops < 10e9

    def test_scale(self):
        assert default_frame_profile(2.0).flops == pytest.approx(
            2.0 * default_frame_profile().flops
        )

    def test_invalid_scale(self):
        with pytest.raises(ConfigurationError):
            default_frame_profile(0.0)


class TestPipelineLatency:
    def test_faster_platform_lower_latency(self, tiers):
        profile = default_frame_profile()
        weak = pipeline_latency_s(tiers[0][1], profile, 30.0, 0.02)
        strong = pipeline_latency_s(tiers[3][1], profile, 30.0, 0.02)
        assert weak > strong

    def test_staleness_penalty_when_compute_slow(self, tiers):
        profile = default_frame_profile()
        weak_platform = tiers[0][1]
        compute = weak_platform.estimate(profile).latency_s
        latency = pipeline_latency_s(weak_platform, profile, 30.0, 0.0)
        period = 1.0 / 30.0
        assert compute > period  # premise: tier0 can't keep up
        assert latency == pytest.approx(
            0.5 * period + compute + (compute - period)
        )


class TestMissionShape:
    """The Krishnan et al. U-shape, asserted."""

    def test_underprovisioned_tier_fails(self, sweep):
        name, result = sweep[0]
        assert not result.success
        assert result.failure_reason == "battery"
        assert result.safe_speed_m_s < 3.0  # crawling

    def test_overprovisioned_tier_fails(self, sweep):
        name, result = sweep[-1]
        assert not result.success
        assert result.failure_reason == "battery"
        assert result.safe_speed_m_s > 9.0  # fast but short-lived

    def test_middle_tier_succeeds(self, sweep):
        assert any(result.success for _, result in sweep[1:4])

    def test_best_energy_is_interior(self, sweep):
        successes = [(name, r) for name, r in sweep if r.success]
        assert successes
        best = min(successes, key=lambda pair: pair[1].energy_j)
        assert best[0] not in (sweep[0][0], sweep[-1][0])

    def test_endurance_monotone_decreasing(self, sweep):
        endurances = [r.endurance_s for _, r in sweep]
        assert endurances == sorted(endurances, reverse=True)

    def test_safe_speed_monotone_nondecreasing(self, sweep):
        speeds = [r.safe_speed_m_s for _, r in sweep]
        assert all(b >= a - 1e-9 for a, b in zip(speeds, speeds[1:]))


class TestMissionMechanics:
    def test_successful_mission_distance(self, config, tiers):
        _, platform, mass, power = tiers[1]
        result = run_mission(config, platform, mass, power)
        assert result.success
        # 20 laps over a ~167 m course.
        assert result.distance_m > 2000.0
        assert result.mean_speed_m_s == pytest.approx(
            result.safe_speed_m_s, rel=0.05
        )

    def test_energy_never_exceeds_budget(self, config, tiers):
        for _, platform, mass, power in tiers:
            result = run_mission(config, platform, mass, power)
            assert result.energy_j <= \
                config.battery.usable_energy_j + 1.0

    def test_single_lap_config(self, world, tiers):
        config = MissionConfig(
            world=world, start=np.array([1.0, 1.0]),
            goal=np.array([118.0, 118.0]), laps=1,
        )
        _, platform, mass, power = tiers[2]
        result = run_mission(config, platform, mass, power)
        assert result.success
        assert result.distance_m < 400.0

    def test_invalid_laps(self, world):
        with pytest.raises(ConfigurationError):
            MissionConfig(world=world, start=np.zeros(2),
                          goal=np.ones(2), laps=0)

    def test_missions_per_charge(self, config, tiers):
        _, platform, mass, power = tiers[1]
        result = run_mission(config, platform, mass, power)
        assert result.missions_per_charge() > 1.0


def _result(**overrides):
    """A healthy successful mission, overridable per degenerate case."""
    base = dict(
        success=True, failure_reason="", mission_time_s=100.0,
        distance_m=500.0, energy_j=5_000.0, mean_speed_m_s=5.0,
        safe_speed_m_s=5.0, pipeline_latency_s=0.1,
        compute_power_w=10.0, hover_power_w=90.0, total_mass_kg=2.0,
        endurance_s=600.0,
    )
    base.update(overrides)
    return MissionResult(**base)


class TestMissionsPerChargeGuards:
    """Degenerate inputs must produce 0 / inf, never NaN."""

    def test_healthy_value(self):
        # usable = 600 s * 100 W = 60 kJ; 5 kJ per mission.
        assert _result().missions_per_charge() == pytest.approx(12.0)

    def test_failed_mission_scores_zero(self):
        failed = _result(success=False, failure_reason="battery")
        assert failed.missions_per_charge() == 0.0

    def test_free_mission_is_unlimited(self):
        assert _result(energy_j=0.0).missions_per_charge() == \
            float("inf")

    def test_zero_power_tier_is_unlimited_not_nan(self):
        # inf endurance * 0 W would be NaN without the guard.
        ghost = _result(endurance_s=float("inf"), hover_power_w=0.0,
                        compute_power_w=0.0)
        value = ghost.missions_per_charge()
        assert value == float("inf")
        assert value == value  # not NaN


class TestCourseReuse:
    """plan_course is hoisted: precomputed courses must change nothing
    but the planning cost."""

    def test_precomputed_course_identical_result(self, config, tiers):
        course = plan_course(config)
        for _, platform, mass, power in tiers:
            fresh = run_mission(config, platform, mass, power)
            reused = run_mission(config, platform, mass, power,
                                 course=course)
            assert reused == fresh

    def test_sweep_accepts_precomputed_course(self, config, tiers,
                                              sweep):
        course = plan_course(config)
        assert sweep_compute_tiers(config, tiers, course=course) == \
            sweep

    def test_course_geometry(self, config):
        course = plan_course(config)
        assert len(course) > 0
        gaps = np.diff(course.cumulative_m, prepend=0.0)
        assert np.all(gaps >= 0.0)
        assert course.total_length_m == pytest.approx(
            course.cumulative_m[-1])
        # 20 laps over a ~167 m loop.
        assert course.total_length_m > 2000.0

    def test_empty_tiers_rejected(self, config):
        with pytest.raises(ConfigurationError):
            sweep_compute_tiers(config, [])
