"""Unit tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("suite", "mission", "fleet", "fig1", "dse"):
            args = parser.parse_args([command])
            assert args.command == command

    def test_suite_accepts_jobs_and_cache(self):
        args = build_parser().parse_args(
            ["suite", "--jobs", "4", "--cache", "/tmp/c"])
        assert args.jobs == 4 and args.cache == "/tmp/c"

    def test_dse_defaults(self):
        args = build_parser().parse_args(["dse"])
        assert args.strategy == "surrogate"
        assert args.jobs == 1 and args.cache is None


class TestFig1Command:
    def test_prints_trend(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "2024" in out
        assert "CAGR" in out


class TestAuditCommand:
    def test_bad_plan_exits_nonzero(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "name": "naive",
            "accelerated_categories": ["gemm"],
            "metrics": ["throughput"],
        }))
        assert main(["audit", str(plan)]) == 1
        out = capsys.readouterr().out
        assert "score" in out
        assert "build-bridges" in out

    def test_clean_plan_exits_zero(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "name": "playbook",
            "accelerated_categories": ["gemm"],
            "metrics": ["success_rate", "mission_energy_j"],
            "evaluated_workloads": ["a", "b", "c"],
            "baseline_platforms": ["cpu", "gpu"],
            "end_to_end": True,
            "closed_loop": True,
            "expert_consultations": 2,
            "integrates_with_middleware": True,
            "system_budget_accounted": True,
            "shared_resource_analysis": True,
            "lifecycle_analysis": True,
        }))
        assert main(["audit", str(plan)]) == 0


class TestVerifyCommand:
    def test_feasible_pipeline(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\nstage a: harris(image_size=480)\n"
        )
        assert main(["verify", str(dsl)]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_infeasible_pipeline(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\n"
            "stage big: gemm(m=2048, n=2048, k=2048)\n"
        )
        assert main(["verify", str(dsl)]) == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_unknown_platform(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\nstage a: harris(image_size=64)\n"
        )
        assert main(["verify", str(dsl),
                     "--platform", "quantum"]) == 2


class TestSuiteCommand:
    def test_runs_and_ranks(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "Suite scores" in out
        assert "embedded-cpu" in out

    def test_json_output_matches_table(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["suite", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        document = json.loads(path.read_text())
        # The results table has one line per row between its header
        # separator and the blank line before the scores table.
        table = out.split("Benchmark suite results")[1] \
            .split("Suite scores")[0]
        table_rows = [line for line in table.splitlines()
                      if " | " in line and "latency_ms" not in line]
        rows = document["rows"]
        assert len(rows) == len(table_rows)
        for row in rows:
            assert {"workload", "target", "latency_s", "energy_j",
                    "deadline_s", "wall_time_s",
                    "meets_deadline"} <= set(row)
        assert document["scores"]
        assert "provenance" in document
        assert document["metrics"]["suite.rows"]["value"] == len(rows)

    def test_trace_out_is_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["suite", "--trace-out", str(path)]) == 0
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events
        assert all("ph" in e and "ts" in e and "name" in e
                   for e in events)


class TestSuiteCacheAndJobs:
    def test_parallel_json_matches_serial(self, tmp_path, capsys):
        serial_path = tmp_path / "serial.json"
        parallel_path = tmp_path / "parallel.json"
        assert main(["suite", "--json", str(serial_path)]) == 0
        assert main(["suite", "--json", str(parallel_path),
                     "--jobs", "4"]) == 0
        capsys.readouterr()
        serial = json.loads(serial_path.read_text())
        parallel = json.loads(parallel_path.read_text())
        assert serial["rows"] == parallel["rows"]
        assert serial["scores"] == parallel["scores"]

    def test_warm_cache_answers_without_misses(self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        cold_path = tmp_path / "cold.json"
        warm_path = tmp_path / "warm.json"
        assert main(["suite", "--cache", str(cache_dir),
                     "--json", str(cold_path)]) == 0
        assert main(["suite", "--cache", str(cache_dir),
                     "--json", str(warm_path)]) == 0
        out = capsys.readouterr().out
        assert "0 miss(es)" in out
        cold = json.loads(cold_path.read_text())
        warm = json.loads(warm_path.read_text())
        assert cold["rows"] == warm["rows"]


class TestDseCommand:
    def test_random_strategy_runs(self, capsys):
        assert main(["dse", "--strategy", "random",
                     "--budget", "6"]) == 0
        out = capsys.readouterr().out
        assert "peak_gflops" in out
        assert "oracle calls: 6" in out

    def test_bad_budget_exits_nonzero(self, capsys):
        assert main(["dse", "--budget", "0"]) == 2

    def test_cache_warm_rerun_identical_with_zero_oracle_calls(
            self, tmp_path, capsys):
        cache_dir = tmp_path / "cache"
        first_path = tmp_path / "first.json"
        second_path = tmp_path / "second.json"
        assert main(["dse", "--strategy", "random", "--budget", "8",
                     "--seed", "3", "--cache", str(cache_dir),
                     "--json", str(first_path)]) == 0
        assert main(["dse", "--strategy", "random", "--budget", "8",
                     "--seed", "3", "--cache", str(cache_dir),
                     "--jobs", "2",
                     "--json", str(second_path)]) == 0
        out = capsys.readouterr().out
        assert "oracle calls: 0" in out
        first = json.loads(first_path.read_text())
        second = json.loads(second_path.read_text())
        assert first["best_config"] == second["best_config"]
        assert first["best_value"] == second["best_value"]
        assert first["trace"] == second["trace"]
        assert first["engine"]["oracle_calls"] == 8
        assert second["engine"]["oracle_calls"] == 0


class TestMissionCommand:
    def test_sweep_runs(self, capsys):
        assert main(["mission", "--laps", "2"]) == 0
        out = capsys.readouterr().out
        assert "tier0" in out and "tier4" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "mission.json"
        assert main(["mission", "--laps", "2",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        document = json.loads(path.read_text())
        tiers = [row["tier"] for row in document["rows"]]
        assert tiers == sorted(tiers)  # ladder order preserved
        assert all(name in out for name in tiers)
        assert document["provenance"]["seed"] == 11
        for row in document["rows"]:
            assert "energy_j" in row and "safe_speed_m_s" in row


class TestFleetCommand:
    def test_monte_carlo_runs(self, capsys):
        assert main(["fleet", "--laps", "2", "--trials", "4"]) == 0
        out = capsys.readouterr().out
        assert "Fleet Monte Carlo" in out
        assert "best tier:" in out
        assert "batch-priced:" in out

    def test_json_and_trace_output(self, tmp_path, capsys):
        json_path = tmp_path / "fleet.json"
        trace_path = tmp_path / "fleet_trace.json"
        assert main(["fleet", "--laps", "2", "--trials", "4",
                     "--jobs", "2",
                     "--json", str(json_path),
                     "--trace-out", str(trace_path)]) == 0
        capsys.readouterr()
        document = json.loads(json_path.read_text())
        tiers = [row["tier"] for row in document["tiers"]]
        assert tiers == sorted(tiers)  # ladder order preserved
        assert document["rollouts"] == 4 * len(tiers)
        # The whole catalog ladder is SoA-priceable: no fallbacks.
        assert document["batch_priced"] == document["rollouts"]
        assert document["scalar_fallback"] == 0
        assert document["metrics"]["fleet.rollouts"]["value"] == \
            document["rollouts"]
        assert document["best_tier"] in tiers
        trace = json.loads(trace_path.read_text())
        assert any(event.get("name") == "fleet.run"
                   for event in trace["traceEvents"])

    def test_bad_trials_exits_nonzero(self, capsys):
        assert main(["fleet", "--trials", "0"]) == 2
        assert "--trials" in capsys.readouterr().err

    def test_bad_jobs_exits_nonzero(self, capsys):
        assert main(["fleet", "--jobs", "0"]) == 2
        assert "--jobs" in capsys.readouterr().err


class TestTraceCommand:
    def test_pipeline_trace_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["trace", "pipeline", "--duration", "0.5",
                     "--out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert all("ph" in e and "ts" in e and "name" in e
                   for e in events)
        assert any(e["ph"] == "X" for e in events)
        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["metrics"]["pipeline.emitted"]["value"] > 0

    def test_scheduler_trace(self, tmp_path, capsys):
        trace = tmp_path / "sched.json"
        assert main(["trace", "scheduler", "--policy", "edf",
                     "--duration", "0.5", "--overload",
                     "--out", str(trace)]) == 0
        document = json.loads(trace.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert "release" in names
        assert "miss" in names  # overload must miss deadlines

    def test_summary_of_exported_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["trace", "pipeline", "--duration", "0.5",
                     "--out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Span tracks" in out
        assert "stage:" in out

    def test_unknown_workload_exits_nonzero(self, tmp_path, capsys):
        assert main(["trace", "pipeline", "--workload", "nope",
                     "--out", str(tmp_path / "t.json")]) == 2
