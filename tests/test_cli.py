"""Unit tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("suite", "mission", "fig1"):
            args = parser.parse_args([command])
            assert args.command == command


class TestFig1Command:
    def test_prints_trend(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "2024" in out
        assert "CAGR" in out


class TestAuditCommand:
    def test_bad_plan_exits_nonzero(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "name": "naive",
            "accelerated_categories": ["gemm"],
            "metrics": ["throughput"],
        }))
        assert main(["audit", str(plan)]) == 1
        out = capsys.readouterr().out
        assert "score" in out
        assert "build-bridges" in out

    def test_clean_plan_exits_zero(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "name": "playbook",
            "accelerated_categories": ["gemm"],
            "metrics": ["success_rate", "mission_energy_j"],
            "evaluated_workloads": ["a", "b", "c"],
            "baseline_platforms": ["cpu", "gpu"],
            "end_to_end": True,
            "closed_loop": True,
            "expert_consultations": 2,
            "integrates_with_middleware": True,
            "system_budget_accounted": True,
            "shared_resource_analysis": True,
            "lifecycle_analysis": True,
        }))
        assert main(["audit", str(plan)]) == 0


class TestVerifyCommand:
    def test_feasible_pipeline(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\nstage a: harris(image_size=480)\n"
        )
        assert main(["verify", str(dsl)]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_infeasible_pipeline(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\n"
            "stage big: gemm(m=2048, n=2048, k=2048)\n"
        )
        assert main(["verify", str(dsl)]) == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_unknown_platform(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\nstage a: harris(image_size=64)\n"
        )
        assert main(["verify", str(dsl),
                     "--platform", "quantum"]) == 2


class TestSuiteCommand:
    def test_runs_and_ranks(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "Suite scores" in out
        assert "embedded-cpu" in out

    def test_json_output_matches_table(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["suite", "--json", str(path)]) == 0
        out = capsys.readouterr().out
        document = json.loads(path.read_text())
        # The results table has one line per row between its header
        # separator and the blank line before the scores table.
        table = out.split("Benchmark suite results")[1] \
            .split("Suite scores")[0]
        table_rows = [line for line in table.splitlines()
                      if " | " in line and "latency_ms" not in line]
        rows = document["rows"]
        assert len(rows) == len(table_rows)
        for row in rows:
            assert {"workload", "target", "latency_s", "energy_j",
                    "deadline_s", "wall_time_s",
                    "meets_deadline"} <= set(row)
        assert document["scores"]
        assert "provenance" in document
        assert document["metrics"]["suite.rows"]["value"] == len(rows)

    def test_trace_out_is_valid_chrome_trace(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        assert main(["suite", "--trace-out", str(path)]) == 0
        document = json.loads(path.read_text())
        events = document["traceEvents"]
        assert events
        assert all("ph" in e and "ts" in e and "name" in e
                   for e in events)


class TestMissionCommand:
    def test_sweep_runs(self, capsys):
        assert main(["mission", "--laps", "2"]) == 0
        out = capsys.readouterr().out
        assert "tier0" in out and "tier4" in out

    def test_json_output(self, tmp_path, capsys):
        path = tmp_path / "mission.json"
        assert main(["mission", "--laps", "2",
                     "--json", str(path)]) == 0
        out = capsys.readouterr().out
        document = json.loads(path.read_text())
        tiers = [row["tier"] for row in document["rows"]]
        assert tiers == sorted(tiers)  # ladder order preserved
        assert all(name in out for name in tiers)
        assert document["provenance"]["seed"] == 11
        for row in document["rows"]:
            assert "energy_j" in row and "safe_speed_m_s" in row


class TestTraceCommand:
    def test_pipeline_trace_round_trip(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        assert main(["trace", "pipeline", "--duration", "0.5",
                     "--out", str(trace),
                     "--metrics-out", str(metrics)]) == 0
        document = json.loads(trace.read_text())
        events = document["traceEvents"]
        assert all("ph" in e and "ts" in e and "name" in e
                   for e in events)
        assert any(e["ph"] == "X" for e in events)
        metrics_doc = json.loads(metrics.read_text())
        assert metrics_doc["metrics"]["pipeline.emitted"]["value"] > 0

    def test_scheduler_trace(self, tmp_path, capsys):
        trace = tmp_path / "sched.json"
        assert main(["trace", "scheduler", "--policy", "edf",
                     "--duration", "0.5", "--overload",
                     "--out", str(trace)]) == 0
        document = json.loads(trace.read_text())
        names = {e["name"] for e in document["traceEvents"]}
        assert "release" in names
        assert "miss" in names  # overload must miss deadlines

    def test_summary_of_exported_trace(self, tmp_path, capsys):
        trace = tmp_path / "trace.json"
        assert main(["trace", "pipeline", "--duration", "0.5",
                     "--out", str(trace)]) == 0
        capsys.readouterr()
        assert main(["trace", "summary", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "Span tracks" in out
        assert "stage:" in out

    def test_unknown_workload_exits_nonzero(self, tmp_path, capsys):
        assert main(["trace", "pipeline", "--workload", "nope",
                     "--out", str(tmp_path / "t.json")]) == 2
