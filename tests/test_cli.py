"""Unit tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for command in ("suite", "mission", "fig1"):
            args = parser.parse_args([command])
            assert args.command == command


class TestFig1Command:
    def test_prints_trend(self, capsys):
        assert main(["fig1"]) == 0
        out = capsys.readouterr().out
        assert "2024" in out
        assert "CAGR" in out


class TestAuditCommand:
    def test_bad_plan_exits_nonzero(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "name": "naive",
            "accelerated_categories": ["gemm"],
            "metrics": ["throughput"],
        }))
        assert main(["audit", str(plan)]) == 1
        out = capsys.readouterr().out
        assert "score" in out
        assert "build-bridges" in out

    def test_clean_plan_exits_zero(self, tmp_path, capsys):
        plan = tmp_path / "plan.json"
        plan.write_text(json.dumps({
            "name": "playbook",
            "accelerated_categories": ["gemm"],
            "metrics": ["success_rate", "mission_energy_j"],
            "evaluated_workloads": ["a", "b", "c"],
            "baseline_platforms": ["cpu", "gpu"],
            "end_to_end": True,
            "closed_loop": True,
            "expert_consultations": 2,
            "integrates_with_middleware": True,
            "system_budget_accounted": True,
            "shared_resource_analysis": True,
            "lifecycle_analysis": True,
        }))
        assert main(["audit", str(plan)]) == 0


class TestVerifyCommand:
    def test_feasible_pipeline(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\nstage a: harris(image_size=480)\n"
        )
        assert main(["verify", str(dsl)]) == 0
        assert "VERIFIED" in capsys.readouterr().out

    def test_infeasible_pipeline(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\n"
            "stage big: gemm(m=2048, n=2048, k=2048)\n"
        )
        assert main(["verify", str(dsl)]) == 1
        assert "REJECTED" in capsys.readouterr().out

    def test_unknown_platform(self, tmp_path, capsys):
        dsl = tmp_path / "p.dsl"
        dsl.write_text(
            "pipeline p @ 30Hz\nstage a: harris(image_size=64)\n"
        )
        assert main(["verify", str(dsl),
                     "--platform", "quantum"]) == 2


class TestSuiteCommand:
    def test_runs_and_ranks(self, capsys):
        assert main(["suite"]) == 0
        out = capsys.readouterr().out
        assert "Suite scores" in out
        assert "embedded-cpu" in out


class TestMissionCommand:
    def test_sweep_runs(self, capsys):
        assert main(["mission", "--laps", "2"]) == 0
        out = capsys.readouterr().out
        assert "tier0" in out and "tier4" in out
