"""Unit tests for the spec validation primitives (dotted-path errors)."""

import pytest

from repro.errors import SpecError
from repro.spec import schema


class TestPaths:
    def test_child_and_item_compose(self):
        path = schema.item(schema.child("$.suite", "targets"), 2)
        assert path == "$.suite.targets[2]"

    def test_type_name_null(self):
        assert schema.type_name(None) == "null"
        assert schema.type_name(1.5) == "float"


class TestScalars:
    def test_int_rejects_bool_and_float(self):
        assert schema.as_int(7, "$.x") == 7
        for bad in (True, 7.0, "7", None):
            with pytest.raises(SpecError, match=r"\$\.x: expected an"
                                                r" integer"):
                schema.as_int(bad, "$.x")

    def test_float_accepts_int_rejects_bool(self):
        assert schema.as_float(3, "$.y") == 3.0
        with pytest.raises(SpecError, match=r"\$\.y: expected a"
                                            r" number, got bool"):
            schema.as_float(True, "$.y")

    def test_str_and_bool(self):
        assert schema.as_str("s", "$") == "s"
        assert schema.as_bool(False, "$") is False
        with pytest.raises(SpecError, match="expected a string"):
            schema.as_str(3, "$")
        with pytest.raises(SpecError, match="expected a boolean"):
            schema.as_bool("yes", "$")

    def test_scalar_rejects_containers(self):
        assert schema.as_scalar(4, "$") == 4
        with pytest.raises(SpecError, match="expected a scalar"):
            schema.as_scalar([1], "$")


class TestContainers:
    def test_require_mapping_rejects_lists(self):
        with pytest.raises(SpecError, match=r"\$\.a: expected an"
                                            r" object, got list"):
            schema.require_mapping([1], "$.a")

    def test_require_mapping_rejects_non_string_keys(self):
        with pytest.raises(SpecError, match="keys must be strings"):
            schema.require_mapping({1: "x"}, "$")

    def test_sequence_rejects_strings_and_mappings(self):
        assert schema.as_sequence([1, 2], "$") == (1, 2)
        for bad in ("abc", {"a": 1}, 5):
            with pytest.raises(SpecError, match="expected a list"):
                schema.as_sequence(bad, "$")

    def test_sequence_min_items(self):
        with pytest.raises(SpecError, match="at least 1 item"):
            schema.as_sequence([], "$", min_items=1)

    def test_check_keys_reports_unknown_fields(self):
        with pytest.raises(SpecError, match=r"\$\.p: unknown"
                                            r" field\(s\) 'bogus'"):
            schema.check_keys({"bogus": 1, "kind": "x"}, ("a",),
                              "$.p")

    def test_check_keys_always_allows_kind(self):
        schema.check_keys({"kind": "cpu", "a": 1}, ("a",), "$")


class TestFields:
    def test_get_field_missing_is_error(self):
        with pytest.raises(SpecError, match=r"\$\.q: missing required"
                                            r" field 'name'"):
            schema.get_field({}, "name", "$.q")

    def test_get_field_default(self):
        assert schema.get_field({}, "name", "$", default=3) == 3

    def test_require_one_of(self):
        assert schema.require_one_of({"b": 1}, ("a", "b"), "$") == "b"
        with pytest.raises(SpecError, match="exactly one of"):
            schema.require_one_of({"a": 1, "b": 2}, ("a", "b"), "$")
        with pytest.raises(SpecError, match="got 0"):
            schema.require_one_of({}, ("a", "b"), "$")

    def test_optional_int(self):
        assert schema.optional_int({}, "n", "$", 4) == 4
        assert schema.optional_int({"n": 9}, "n", "$", 4) == 9
        with pytest.raises(SpecError, match=r"\$\.n: expected an"):
            schema.optional_int({"n": "x"}, "n", "$", 4)
