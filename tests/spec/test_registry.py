"""Unit tests for the named-builder registries."""

import pickle

import pytest

from repro.errors import SpecError
from repro.spec.registry import (
    OBJECTIVES,
    PLATFORMS,
    SPACES,
    TIERS,
    WORKLOADS,
    Registry,
)


class TestRegistryMechanics:
    def test_register_returns_builder_unchanged(self):
        reg = Registry("widget")

        @reg.register("w")
        def make_widget():
            """Builds the test widget."""
            return 42

        assert make_widget() == 42
        assert reg.build("w") == 42
        assert reg.entry("w").doc == "Builds the test widget."

    def test_duplicate_registration_rejected(self):
        reg = Registry("widget")
        reg.register("w", lambda: 1)
        with pytest.raises(SpecError, match="duplicate widget"):
            reg.register("w", lambda: 2)

    def test_unknown_ref_lists_registered(self):
        reg = Registry("widget")
        reg.register("alpha", lambda: 1)
        with pytest.raises(SpecError,
                           match=r"\$\.x: unknown widget ref 'beta';"
                                 r" registered: \['alpha'\]"):
            reg.entry("beta", "$.x")

    def test_build_kwargs_may_shadow_name(self):
        reg = Registry("widget")
        reg.register("w", lambda name="w": name)
        assert reg.build("w", "$", name="other") == "other"

    def test_build_rejected_arguments_have_path(self):
        reg = Registry("widget")
        reg.register("w", lambda: 1)
        with pytest.raises(SpecError,
                           match=r"\$\.y: widget ref 'w' rejected"
                                 r" arguments \['bogus'\]"):
            reg.build("w", "$.y", bogus=3)

    def test_registration_order_preserved(self):
        reg = Registry("widget")
        for name in ("c", "a", "b"):
            reg.register(name, lambda: None)
        assert reg.names() == ["c", "a", "b"]
        assert list(reg.as_dict()) == ["c", "a", "b"]
        assert [e.name for e in reg.entries()] == ["c", "a", "b"]

    def test_container_protocol(self):
        reg = Registry("widget")
        reg.register("w", lambda: 1)
        assert "w" in reg and "x" not in reg
        assert list(reg) == ["w"] and len(reg) == 1


class TestBuiltinRegistries:
    def test_platform_catalog_entries(self):
        assert PLATFORMS.names() == [
            "embedded-cpu", "desktop-cpu", "embedded-gpu",
            "datacenter-gpu", "midrange-fpga", "gemm-engine",
        ]
        assert PLATFORMS.entry("gemm-engine").meta == {
            "programmable": False}
        assert PLATFORMS.entry("embedded-cpu").meta == {}

    def test_platform_builders_accept_name_override(self):
        cpu = PLATFORMS.build("embedded-cpu", "$", name="renamed")
        assert cpu.name == "renamed"

    def test_workloads_match_legacy_dict(self):
        from repro.benchmarksuite.workloads import WORKLOAD_BUILDERS

        assert list(WORKLOAD_BUILDERS) == WORKLOADS.names()
        assert WORKLOADS.build("vio-navigation").name == \
            "vio-navigation"

    def test_objectives_are_picklable(self):
        for name in OBJECTIVES.names():
            fn = OBJECTIVES.get(name)
            assert pickle.loads(pickle.dumps(fn)) is fn

    def test_spaces_and_tiers(self):
        assert SPACES.build("codesign").size == 256
        ladder = TIERS.build("uav-ladder")
        assert [row[0] for row in ladder] == [
            "tier0", "tier1", "tier2", "tier3", "tier4"]
