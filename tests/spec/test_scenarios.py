"""Scenario codec, spec-file loader, and example-file validity tests."""

import json
from pathlib import Path

import pytest

from repro.engine.fingerprint import fingerprint
from repro.errors import SpecError
from repro.spec import (
    PLATFORMS,
    SPEC_VERSION,
    TIERS,
    DseScenario,
    FleetScenario,
    MissionScenario,
    Scenario,
    SuiteScenario,
    dump_spec,
    from_spec,
    load_scenario,
    load_spec,
    migrate_document,
    save_spec,
    to_spec,
)

from repro.system.fleet import FleetPerturbation

EXAMPLES = Path(__file__).resolve().parents[2] / "examples" / "scenarios"


def _dse_spec(**overrides):
    payload = {"space": {"ref": "codesign"}, "strategy": "random",
               "budget": 8, "seed": 3}
    payload.update(overrides)
    return {"kind": "scenario", "name": "s", "dse": payload}


class TestScenarioCodec:
    def test_dse_round_trip(self):
        scenario = from_spec(_dse_spec())
        assert isinstance(scenario, Scenario)
        run = scenario.run
        assert isinstance(run, DseScenario)
        assert (run.strategy, run.budget, run.seed) == ("random", 8, 3)
        assert run.objective == "suite_objective"
        clone = from_spec(json.loads(json.dumps(to_spec(scenario))))
        assert fingerprint(clone) == fingerprint(scenario)

    def test_objective_accepts_plain_string(self):
        run = from_spec(_dse_spec(objective="suite_latency")).run
        assert run.objective == "suite_latency"

    def test_suite_round_trip(self):
        scenario = from_spec({
            "kind": "scenario", "name": "s",
            "suite": {"targets": [{"ref": "embedded-cpu"},
                                  {"ref": "embedded-gpu"}]},
        })
        run = scenario.run
        assert isinstance(run, SuiteScenario)
        assert [t.name for t in run.targets] == ["embedded-cpu",
                                                 "embedded-gpu"]
        assert run.reference == "embedded-cpu"
        assert run.workloads is None and run.jobs == 1
        clone = from_spec(json.loads(json.dumps(to_spec(scenario))))
        assert fingerprint(clone) == fingerprint(scenario)

    def test_suite_explicit_workloads(self):
        run = from_spec({
            "kind": "scenario", "name": "s",
            "suite": {"targets": [{"ref": "embedded-cpu"}],
                      "workloads": [{"ref": "vio-navigation"}]},
        }).run
        assert [w.name for w in run.workloads] == ["vio-navigation"]

    def test_mission_round_trip(self):
        scenario = from_spec({
            "kind": "scenario", "name": "m",
            "mission": {
                "config": {
                    "kind": "mission",
                    "world": {"kind": "circle-world",
                              "random": {"n_obstacles": 4,
                                         "extent": 30.0, "seed": 1}},
                    "start": [1.0, 1.0], "goal": [28.0, 28.0],
                },
                "tiers": {"ref": "uav-ladder"},
                "seed": 1,
            },
        })
        run = scenario.run
        assert isinstance(run, MissionScenario)
        assert len(run.tiers) == len(TIERS.build("uav-ladder"))
        clone = from_spec(json.loads(json.dumps(to_spec(scenario))))
        assert fingerprint(clone) == fingerprint(scenario)

    def test_fleet_round_trip(self):
        scenario = from_spec(_fleet_spec())
        run = scenario.run
        assert isinstance(run, FleetScenario)
        assert (run.trials, run.seed, run.jobs) == (12, 7, 2)
        assert run.perturbation == FleetPerturbation(
            battery_capacity=0.05, payload_mass=0.1,
            sensor_rate=0.1, workload_scale=0.3)
        assert len(run.tiers) == len(TIERS.build("uav-ladder"))
        clone = from_spec(json.loads(json.dumps(to_spec(scenario))))
        assert fingerprint(clone) == fingerprint(scenario)

    def test_fleet_defaults(self):
        run = from_spec(_fleet_spec(trials=None, seed=None, jobs=None,
                                    perturbation=None)).run
        assert (run.trials, run.seed, run.jobs) == (64, 0, 1)
        assert run.perturbation == FleetPerturbation()

    def test_chunk_size_round_trips(self):
        run = from_spec(_fleet_spec(chunk_size=256)).run
        assert run.chunk_size == 256
        payload = to_spec(from_spec(_fleet_spec(chunk_size=256)))
        assert payload["fleet"]["chunk_size"] == 256
        dse = from_spec(_dse_spec(chunk_size=32)).run
        assert dse.chunk_size == 32
        assert to_spec(
            from_spec(_dse_spec(chunk_size=32)))["dse"]["chunk_size"] \
            == 32

    def test_chunk_size_defaults_to_none_and_is_omitted(self):
        assert from_spec(_fleet_spec()).run.chunk_size is None
        assert from_spec(_dse_spec()).run.chunk_size is None
        # Legacy documents stay legacy: no chunk_size key when unset.
        assert "chunk_size" not in to_spec(from_spec(_fleet_spec()))[
            "fleet"]
        assert "chunk_size" not in to_spec(from_spec(_dse_spec()))["dse"]

    def test_fleet_encode_emits_every_perturbation_axis(self):
        payload = to_spec(from_spec(_fleet_spec()))
        assert set(payload["fleet"]["perturbation"]) == {
            "battery_capacity", "payload_mass", "sensor_rate",
            "workload_scale"}

    def test_explicit_tier_list(self):
        run = from_spec({
            "kind": "scenario", "name": "m",
            "mission": {
                "config": {
                    "kind": "mission",
                    "world": {"kind": "circle-world",
                              "random": {"n_obstacles": 4,
                                         "extent": 30.0, "seed": 1}},
                    "start": [1.0, 1.0], "goal": [28.0, 28.0],
                },
                "tiers": [{"name": "t0",
                           "platform": {"ref": "embedded-cpu"},
                           "mass_kg": 0.1, "power_w": 5.0}],
            },
        }).run
        assert run.tiers[0][0] == "t0"
        assert run.tiers[0][1].name == "embedded-cpu"
        assert run.seed is None


def _fleet_spec(**overrides):
    payload = {
        "config": {
            "kind": "mission",
            "world": {"kind": "circle-world",
                      "random": {"n_obstacles": 4, "extent": 30.0,
                                 "seed": 1}},
            "start": [1.0, 1.0], "goal": [28.0, 28.0],
        },
        "tiers": {"ref": "uav-ladder"},
        "trials": 12, "seed": 7, "jobs": 2,
        "perturbation": {"battery_capacity": 0.05,
                         "payload_mass": 0.1,
                         "sensor_rate": 0.1,
                         "workload_scale": 0.3},
    }
    payload.update(overrides)
    payload = {key: value for key, value in payload.items()
               if value is not None}
    return {"kind": "scenario", "name": "f", "fleet": payload}


class TestScenarioValidation:
    def test_exactly_one_section(self):
        with pytest.raises(SpecError, match="exactly one of 'suite',"
                                            " 'mission', 'fleet',"
                                            " 'dse'"):
            from_spec({"kind": "scenario", "name": "s"})

    def test_bad_strategy(self):
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.strategy: expected one of"):
            from_spec(_dse_spec(strategy="annealing"))

    def test_unknown_objective(self):
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.objective: unknown"
                                 r" objective ref"):
            from_spec(_dse_spec(objective={"ref": "nope"}))

    def test_budget_and_jobs_must_be_positive(self):
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.budget: must be >= 1"):
            from_spec(_dse_spec(budget=0))
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.jobs: must be >= 1"):
            from_spec(_dse_spec(jobs=0))

    def test_chunk_size_must_be_positive(self):
        with pytest.raises(SpecError,
                           match=r"\$\.fleet\.chunk_size: must be"
                                 r" >= 1"):
            from_spec(_fleet_spec(chunk_size=0))
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.chunk_size: must be >= 1"):
            from_spec(_dse_spec(chunk_size=-4))

    def test_fleet_trials_must_be_positive(self):
        with pytest.raises(SpecError,
                           match=r"\$\.fleet\.trials: must be >= 1"):
            from_spec(_fleet_spec(trials=0))

    def test_fleet_perturbation_width_bounds(self):
        with pytest.raises(SpecError,
                           match=r"\$\.fleet\.perturbation: "
                                 r"battery_capacity width"):
            from_spec(_fleet_spec(
                perturbation={"battery_capacity": 1.5}))

    def test_fleet_perturbation_rejects_unknown_axis(self):
        with pytest.raises(SpecError,
                           match=r"\$\.fleet\.perturbation: unknown"
                                 r" field\(s\) 'wind'"):
            from_spec(_fleet_spec(perturbation={"wind": 0.1}))

    def test_reference_must_be_a_target(self):
        with pytest.raises(SpecError,
                           match=r"\$\.suite\.reference: 'gpu' is not"
                                 r" a target name"):
            from_spec({"kind": "scenario", "name": "s",
                       "suite": {"targets": [{"ref": "embedded-cpu"}],
                                 "reference": "gpu"}})

    def test_duplicate_targets_rejected(self):
        with pytest.raises(SpecError,
                           match=r"\$\.suite\.targets: duplicate"):
            from_spec({"kind": "scenario", "name": "s",
                       "suite": {"targets": [{"ref": "embedded-cpu"},
                                             {"ref": "embedded-cpu"}]}})


class TestLoader:
    def test_migrate_requires_version(self):
        with pytest.raises(SpecError,
                           match="missing required field"
                                 " 'spec_version'"):
            migrate_document({"kind": "battery"})

    def test_migrate_rejects_newer_versions(self):
        with pytest.raises(SpecError, match="newer version of repro"):
            migrate_document({"spec_version": SPEC_VERSION + 1,
                              "kind": "battery"})
        with pytest.raises(SpecError,
                           match=r"\$\.spec_version: must be >= 1"):
            migrate_document({"spec_version": 0, "kind": "battery"})

    def test_migrate_strips_stamp(self):
        assert migrate_document({"spec_version": 1, "kind": "battery"}) \
            == {"kind": "battery"}

    def test_save_and_load_spec(self, tmp_path):
        platform = PLATFORMS.build("midrange-fpga")
        path = tmp_path / "fpga.json"
        save_spec(platform, str(path))
        document = json.loads(path.read_text())
        assert document["spec_version"] == SPEC_VERSION
        clone = load_spec(str(path))
        assert fingerprint(clone) == fingerprint(platform)

    def test_dump_spec_stamps_version(self):
        document = dump_spec(PLATFORMS.build("embedded-cpu"))
        assert document["spec_version"] == SPEC_VERSION
        assert document["kind"] == "cpu"

    def test_load_document_errors(self, tmp_path):
        with pytest.raises(SpecError, match="cannot read spec file"):
            load_spec(str(tmp_path / "missing.json"))
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SpecError, match="not valid JSON"):
            load_spec(str(bad))

    def test_load_scenario_rejects_non_scenarios(self, tmp_path):
        path = tmp_path / "battery.json"
        save_spec(
            from_spec({"kind": "battery"}), str(path))
        with pytest.raises(SpecError,
                           match="expected a scenario spec,"
                                 " got kind 'battery'"):
            load_scenario(str(path))


class TestExampleScenarios:
    @pytest.mark.parametrize("filename", [
        "uav_codesign.json", "suite_catalog.json",
        "patrol_mission.json", "fleet_montecarlo.json",
        "funnel_dse.json",
    ])
    def test_example_loads(self, filename):
        scenario = load_scenario(str(EXAMPLES / filename))
        assert isinstance(scenario, Scenario)

    def test_examples_dir_is_exhaustive(self):
        assert sorted(p.name for p in EXAMPLES.glob("*.json")) == [
            "fleet_montecarlo.json", "funnel_dse.json",
            "patrol_mission.json", "suite_catalog.json",
            "uav_codesign.json",
        ]

    def test_funnel_dse_mirrors_programmatic_funnel(self):
        from repro.dse.funnel import PromotionGate
        from repro.dse.objectives import codesign_space_xl

        run = load_scenario(str(EXAMPLES / "funnel_dse.json")).run
        assert isinstance(run, DseScenario)
        assert run.space == codesign_space_xl()
        assert (run.objective, run.strategy, run.budget, run.seed) == \
            ("mission_objective", "funnel", 4000, 7)
        assert run.funnel is not None
        assert run.funnel.inner == "random"
        assert run.funnel.gates == (
            PromotionGate(top_fraction=0.05),
            PromotionGate(top_fraction=0.2, budget=64),
        )

    def test_uav_codesign_mirrors_programmatic_dse(self):
        from repro.dse.objectives import codesign_space

        run = load_scenario(str(EXAMPLES / "uav_codesign.json")).run
        assert isinstance(run, DseScenario)
        assert run.space == codesign_space()
        assert (run.objective, run.strategy, run.budget, run.seed) == \
            ("suite_objective", "random", 8, 3)

    def test_suite_catalog_mirrors_cli_targets(self):
        run = load_scenario(str(EXAMPLES / "suite_catalog.json")).run
        assert isinstance(run, SuiteScenario)
        assert [t.name for t in run.targets] == [
            "embedded-cpu", "desktop-cpu", "embedded-gpu",
            "midrange-fpga", "gemm-soc",
        ]
