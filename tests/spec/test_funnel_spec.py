"""Versioned ``funnel`` section of DSE scenarios: round-trips, dotted
error paths, and strategy coupling."""

import json

import pytest

from repro.dse.funnel import FunnelConfig, PromotionGate
from repro.engine.fingerprint import fingerprint
from repro.errors import SpecError
from repro.spec import from_spec, to_spec


def _funnel_spec(**overrides):
    payload = {
        "space": {"ref": "codesign"},
        "strategy": "funnel",
        "budget": 64,
        "seed": 3,
        "funnel": {
            "inner": "random",
            "gates": [{"top_fraction": 0.05},
                      {"threshold": 2.5, "budget": 4}],
        },
    }
    payload.update(overrides)
    return {"kind": "scenario", "name": "f", "dse": payload}


class TestFunnelRoundTrip:
    def test_round_trip_preserves_fingerprint(self):
        scenario = from_spec(_funnel_spec())
        run = scenario.run
        assert run.strategy == "funnel"
        assert isinstance(run.funnel, FunnelConfig)
        assert run.funnel.inner == "random"
        assert run.funnel.gates == (
            PromotionGate(top_fraction=0.05),
            PromotionGate(threshold=2.5, budget=4),
        )
        clone = from_spec(json.loads(json.dumps(to_spec(scenario))))
        assert fingerprint(clone) == fingerprint(scenario)

    def test_encoded_gates_only_carry_set_fields(self):
        payload = to_spec(from_spec(_funnel_spec()))["dse"]["funnel"]
        assert payload["gates"][0] == {"top_fraction": 0.05}
        assert payload["gates"][1] == {"threshold": 2.5, "budget": 4}

    def test_inner_defaults_to_random(self):
        run = from_spec(_funnel_spec(
            funnel={"gates": [{"top_fraction": 0.5}]})).run
        assert run.funnel.inner == "random"

    def test_funnel_strategy_without_section_is_valid(self):
        """Strategy "funnel" alone is fine — default gates apply."""
        spec = _funnel_spec()
        del spec["dse"]["funnel"]
        run = from_spec(spec).run
        assert run.strategy == "funnel"
        assert run.funnel is None

    def test_no_funnel_key_when_absent(self):
        spec = _funnel_spec()
        del spec["dse"]["funnel"]
        assert "funnel" not in to_spec(from_spec(spec))["dse"]


class TestFunnelSpecErrors:
    def test_funnel_requires_funnel_strategy(self):
        with pytest.raises(
                SpecError,
                match=r"\$\.dse\.funnel: only valid with strategy"
                      r" 'funnel'"):
            from_spec(_funnel_spec(strategy="random"))

    def test_unknown_inner(self):
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.funnel\.inner"):
            from_spec(_funnel_spec(
                funnel={"inner": "annealing",
                        "gates": [{"top_fraction": 0.5}]}))

    def test_unknown_gate_key(self):
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.funnel\.gates\[0\]"):
            from_spec(_funnel_spec(
                funnel={"gates": [{"fraction": 0.5}]}))

    def test_gate_needs_exactly_one_rule(self):
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.funnel\.gates\[1\]"):
            from_spec(_funnel_spec(
                funnel={"gates": [{"top_fraction": 0.5},
                                  {"top_fraction": 0.5,
                                   "threshold": 1.0}]}))

    def test_gates_must_be_non_empty(self):
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.funnel\.gates"):
            from_spec(_funnel_spec(funnel={"gates": []}))

    def test_bad_fraction_range(self):
        with pytest.raises(SpecError,
                           match=r"\$\.dse\.funnel\.gates\[0\]"):
            from_spec(_funnel_spec(
                funnel={"gates": [{"top_fraction": 1.5}]}))
