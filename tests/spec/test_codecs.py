"""Round-trip and malformed-spec tests for every registered codec.

The round-trip contract is two-sided: ``from_spec(to_spec(x))`` must
equal ``x`` where the domain type defines ``==``, and must always be
fingerprint-identical — the property that makes a spec file hit the
same engine cache entries as the programmatic object it describes.
"""

import json

import numpy as np
import pytest

from repro.benchmarksuite.runner import BenchmarkRow
from repro.core.profile import DivergenceClass
from repro.core.workload import Kernel, Stage, TaskGraph, Workload
from repro.dse.space import DesignSpace, Parameter
from repro.engine.fingerprint import fingerprint
from repro.errors import SpecError
from repro.hw.catalog import uav_compute_tiers
from repro.hw.mapping import HeterogeneousSoC, Interconnect
from repro.kernels.planning.occupancy import CircleWorld
from repro.spec import (
    PLATFORMS,
    WORKLOADS,
    decode_design_space,
    decode_platform,
    decode_workload,
    from_spec,
    known_kinds,
    to_spec,
)
from repro.system.mission import MissionConfig
from repro.system.robot import BatteryModel, UavPhysics


def roundtrip(obj):
    """Encode, push through real JSON, decode — like a scenario file."""
    spec = json.loads(json.dumps(to_spec(obj)))
    clone = from_spec(spec)
    assert fingerprint(clone) == fingerprint(obj)
    return clone


class TestCoreRoundTrips:
    def test_profile(self, gemm_profile_512):
        clone = roundtrip(gemm_profile_512)
        assert clone == gemm_profile_512
        assert clone.divergence is DivergenceClass.NONE

    def test_stage(self, streaming_profile):
        stage = Stage("s0", streaming_profile, deps=("s1",),
                      output_bytes=4096.0, rate_hz=30.0,
                      deadline_s=0.05)
        assert roundtrip(stage) == stage

    def test_static_kernel(self, gemm_profile_512):
        kernel = Kernel("gemm", category="linalg",
                        static_profile=gemm_profile_512,
                        tags=("dense",))
        assert roundtrip(kernel) == kernel

    def test_kernel_with_profile_fn_is_rejected(self, gemm_profile_512):
        kernel = Kernel("gemm", profile_fn=lambda **kw: gemm_profile_512)
        with pytest.raises(SpecError, match="profile_fn"):
            to_spec(kernel)

    def test_task_graph(self, gemm_profile_512, streaming_profile):
        graph = TaskGraph("g", [
            Stage("a", gemm_profile_512, rate_hz=30.0),
            Stage("b", streaming_profile, deps=("a",)),
        ])
        assert roundtrip(graph) == graph

    def test_benchmark_row(self):
        row = BenchmarkRow("w", "t", 0.01, 0.2, 0.033)
        assert roundtrip(row) == row

    @pytest.mark.parametrize("name", WORKLOADS.names())
    def test_every_catalog_workload(self, name):
        workload = WORKLOADS.build(name)
        assert roundtrip(workload) == workload

    def test_workload_ref_form(self):
        workload = decode_workload({"ref": "vio-navigation"})
        assert fingerprint(workload) == \
            fingerprint(WORKLOADS.build("vio-navigation"))


class TestPlatformRoundTrips:
    @pytest.mark.parametrize("name", PLATFORMS.names())
    def test_every_catalog_platform(self, name):
        platform = PLATFORMS.build(name)
        clone = roundtrip(platform)
        assert type(clone) is type(platform)
        assert clone.name == platform.name

    def test_soc_round_trip(self):
        soc = HeterogeneousSoC(
            "gemm-soc", PLATFORMS.build("embedded-cpu"),
            [PLATFORMS.build("gemm-engine")],
            interconnect=Interconnect(bandwidth=12e9, latency_s=8e-6),
        )
        clone = roundtrip(soc)
        assert isinstance(clone, HeterogeneousSoC)
        assert [a.name for a in clone.accelerators] == ["gemm-engine"]

    def test_platform_ref_with_builder_override(self):
        platform = decode_platform({"ref": "embedded-cpu",
                                    "name": "renamed"})
        assert platform.name == "renamed"

    def test_ref_form_rejects_soc_where_device_needed(self):
        spec = to_spec(HeterogeneousSoC(
            "s", PLATFORMS.build("embedded-cpu"), []))
        with pytest.raises(SpecError,
                           match=r"\$\.host: expected a device"
                                 r" platform, got an SoC"):
            decode_platform({"kind": "soc", "name": "outer",
                             "host": spec, "accelerators": []})

    def test_tier_platforms_round_trip(self):
        for _, platform, _, _ in uav_compute_tiers():
            roundtrip(platform)


class TestSystemRoundTrips:
    def test_uav_and_battery(self):
        assert roundtrip(UavPhysics()) == UavPhysics()
        battery = BatteryModel(capacity_wh=80.0)
        assert roundtrip(battery) == battery

    def test_circle_world_explicit(self):
        world = CircleWorld([0.0, 0.0], [10.0, 10.0],
                            centers=[[4.0, 5.0]], radii=[1.0])
        roundtrip(world)  # == raises on ndarrays; fingerprint covers it

    def test_circle_world_random_form(self):
        decoded = from_spec({
            "kind": "circle-world",
            "random": {"n_obstacles": 5, "extent": 20.0, "seed": 7},
        })
        expected = CircleWorld.random(n_obstacles=5, extent=20.0,
                                      seed=7)
        assert fingerprint(decoded) == fingerprint(expected)

    def test_mission_config(self):
        world = CircleWorld.random(n_obstacles=4, extent=30.0, seed=1)
        config = MissionConfig(world=world,
                               start=np.array([1.0, 1.0]),
                               goal=np.array([28.0, 28.0]), laps=2)
        roundtrip(config)


class TestDseRoundTrips:
    def test_parameter(self):
        parameter = Parameter("tier", (0, 1, 2))
        assert roundtrip(parameter) == parameter

    def test_design_space(self):
        space = DesignSpace([Parameter("a", (1, 2)),
                             Parameter("b", ("x", "y"))])
        assert roundtrip(space) == space

    def test_design_space_ref_form(self):
        from repro.dse.objectives import codesign_space

        space = decode_design_space({"ref": "codesign"})
        assert space == codesign_space()

    def test_int_values_stay_ints(self):
        space = DesignSpace([Parameter("n", (128, 256))])
        clone = from_spec(json.loads(json.dumps(to_spec(space))))
        assert all(isinstance(v, int)
                   for v in clone.parameters[0].values)


class TestMalformedSpecs:
    def test_unknown_kind_lists_known(self):
        with pytest.raises(SpecError,
                           match=r"\$\.kind: unknown kind 'mystery'"):
            from_spec({"kind": "mystery"})
        assert "cpu" in known_kinds() and "scenario" in known_kinds()

    def test_wrong_scalar_type_has_dotted_path(self):
        spec = to_spec(PLATFORMS.build("embedded-cpu"))
        spec["cores"] = "four"
        with pytest.raises(SpecError,
                           match=r"\$\.cores: expected an integer,"
                                 r" got str"):
            from_spec(spec)

    def test_nested_error_path(self, gemm_profile_512):
        graph = to_spec(TaskGraph("g", [Stage("a", gemm_profile_512)]))
        graph["stages"][0]["profile"]["flops"] = "lots"
        with pytest.raises(
                SpecError,
                match=r"\$\.stages\[0\]\.profile\.flops:"):
            from_spec(graph)

    def test_task_graph_cycle_is_spec_error(self, gemm_profile_512):
        graph = {
            "kind": "task-graph", "name": "g",
            "stages": [to_spec(Stage("a", gemm_profile_512,
                                     deps=("a",)))],
        }
        with pytest.raises(SpecError, match=r"\$: task graph"):
            from_spec(graph)

    def test_unknown_platform_ref(self):
        with pytest.raises(SpecError,
                           match=r"\$: unknown platform ref 'nope'"):
            decode_platform({"ref": "nope"})

    def test_platform_kind_requires_ref(self):
        with pytest.raises(SpecError, match="ref short form"):
            from_spec({"kind": "platform", "name": "x"})

    def test_ref_form_rejects_foreign_kind(self):
        with pytest.raises(SpecError,
                           match=r"\$\.kind: a ref-form platform"):
            decode_platform({"kind": "cpu", "ref": "embedded-cpu"})

    def test_radius_range_must_be_a_pair(self):
        with pytest.raises(
                SpecError,
                match=r"\$\.random\.radius_range: expected exactly 2"):
            from_spec({"kind": "circle-world",
                       "random": {"radius_range": [1.0, 2.0, 3.0]}})

    def test_unknown_field_rejected(self):
        spec = to_spec(BatteryModel())
        spec["volts"] = 12
        with pytest.raises(SpecError,
                           match=r"\$: unknown field\(s\) 'volts'"):
            from_spec(spec)

    def test_missing_required_field(self):
        with pytest.raises(SpecError,
                           match=r"\$: missing required field 'name'"):
            from_spec({"kind": "profile", "flops": 1.0})

    def test_non_mapping_spec(self):
        with pytest.raises(SpecError, match="expected an object"):
            from_spec([1, 2, 3])

    def test_spec_without_kind(self):
        with pytest.raises(SpecError, match="kind"):
            from_spec({"name": "x"})
