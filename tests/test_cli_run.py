"""E2E tests for ``repro run`` and ``repro spec``.

The load-bearing property: a scenario file reproduces the matching
programmatic CLI invocation *exactly* — same results, and same engine
cache keys, so a cache primed by the programmatic run is replayed with
zero oracle calls when the equivalent spec file runs.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

EXAMPLES = Path(__file__).resolve().parents[1] / "examples" / "scenarios"


def _load(path):
    with open(path) as handle:
        return json.load(handle)


def _canon(document, *drop):
    """A comparable form: strip measurement-only sections (provenance
    timestamps, wall-clock/cache-counter metrics) and canonicalize."""
    for key in ("provenance",) + drop:
        document.pop(key, None)
    return json.dumps(document, sort_keys=True)


class TestDseEquivalence:
    def test_scenario_replays_programmatic_cache(self, tmp_path,
                                                 capsys):
        cache = str(tmp_path / "cache")
        programmatic = tmp_path / "programmatic.json"
        replayed = tmp_path / "replayed.json"

        # Programmatic run primes the cache...
        assert main(["dse", "--strategy", "random", "--budget", "8",
                     "--seed", "3", "--cache", cache,
                     "--json", str(programmatic)]) == 0
        capsys.readouterr()

        # ...and the equivalent scenario file replays it entirely.
        assert main(["run", str(EXAMPLES / "uav_codesign.json"),
                     "--cache", cache, "--json", str(replayed)]) == 0
        out = capsys.readouterr().out
        assert "scenario 'uav-codesign'" in out
        assert "oracle calls: 0 (cache hits: 8, jobs: 1)" in out

        first, second = _load(programmatic), _load(replayed)
        # The engine section is cache-hit counters (0 hits cold, 8
        # warm) — a measurement, not a result.
        assert _canon(first, "engine") == _canon(second, "engine")
        assert first["best_config"] == second["best_config"]
        assert first["trace"] == second["trace"]


class TestSuiteEquivalence:
    def test_scenario_replays_programmatic_cache(self, tmp_path,
                                                 capsys):
        cache = str(tmp_path / "cache")
        programmatic = tmp_path / "programmatic.json"
        replayed = tmp_path / "replayed.json"

        assert main(["suite", "--cache", cache,
                     "--json", str(programmatic)]) == 0
        capsys.readouterr()

        assert main(["run", str(EXAMPLES / "suite_catalog.json"),
                     "--cache", cache, "--json", str(replayed)]) == 0
        out = capsys.readouterr().out
        rows = len(_load(programmatic)["rows"])
        assert (f"result cache: {rows} hit(s) ({rows} from disk),"
                " 0 miss(es)") in out

        first, second = _load(programmatic), _load(replayed)
        # Rows and scores are results and must match to the byte;
        # metrics hold wall-clock histograms and cache counters.
        assert json.dumps(first["rows"]) == json.dumps(second["rows"])
        assert json.dumps(first["scores"]) == \
            json.dumps(second["scores"])


class TestMissionEquivalence:
    def test_scenario_matches_programmatic_run(self, tmp_path, capsys):
        programmatic = tmp_path / "programmatic.json"
        replayed = tmp_path / "replayed.json"

        assert main(["mission", "--laps", "2", "--seed", "11",
                     "--json", str(programmatic)]) == 0
        assert main(["run", str(EXAMPLES / "patrol_mission.json"),
                     "--json", str(replayed)]) == 0
        capsys.readouterr()

        assert _canon(_load(programmatic)) == _canon(_load(replayed))


class TestFleetEquivalence:
    def test_scenario_matches_programmatic_run(self, tmp_path, capsys):
        programmatic = tmp_path / "programmatic.json"
        replayed = tmp_path / "replayed.json"

        assert main(["fleet", "--laps", "20", "--trials", "64",
                     "--seed", "0", "--world-seed", "11",
                     "--json", str(programmatic)]) == 0
        assert main(["run", str(EXAMPLES / "fleet_montecarlo.json"),
                     "--json", str(replayed)]) == 0
        out = capsys.readouterr().out
        assert "scenario 'fleet-montecarlo'" in out

        assert _canon(_load(programmatic)) == _canon(_load(replayed))


class TestRunCommand:
    def test_missing_file_is_a_clean_error(self, tmp_path, capsys):
        assert main(["run", str(tmp_path / "nope.json")]) == 2
        assert "cannot read spec file" in capsys.readouterr().err

    def test_non_scenario_spec_is_rejected(self, tmp_path, capsys):
        path = tmp_path / "battery.json"
        path.write_text('{"spec_version": 1, "kind": "battery"}\n')
        assert main(["run", str(path)]) == 2
        assert "expected a scenario spec" in capsys.readouterr().err

    def test_trace_out_noted_for_dse(self, tmp_path, capsys):
        assert main(["run", str(EXAMPLES / "uav_codesign.json"),
                     "--cache", str(tmp_path / "c"),
                     "--trace-out", str(tmp_path / "t.json")]) == 0
        assert "--trace-out is ignored for dse scenarios" in \
            capsys.readouterr().err


class TestSpecCommand:
    def test_validate_all_examples(self, capsys):
        files = sorted(str(p) for p in EXAMPLES.glob("*.json"))
        assert len(files) == 5
        assert main(["spec", "validate"] + files) == 0
        out = capsys.readouterr().out
        assert out.count("OK      ") == 5
        assert "(scenario)" in out

    def test_validate_reports_invalid_files(self, tmp_path, capsys):
        good = str(EXAMPLES / "uav_codesign.json")
        bad = tmp_path / "bad.json"
        bad.write_text('{"spec_version": 1, "kind": "cpu"}\n')
        assert main(["spec", "validate", good, str(bad)]) == 1
        out = capsys.readouterr().out
        assert "OK      " in out and f"INVALID {bad}" in out

    def test_show_normalizes_the_document(self, capsys):
        assert main(["spec", "show",
                     str(EXAMPLES / "suite_catalog.json")]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["spec_version"] == 1
        assert document["kind"] == "scenario"
        # Normalization fills defaults the author omitted.
        assert document["suite"]["reference"] == "embedded-cpu"

    def test_show_bad_file_exits_2(self, tmp_path, capsys):
        assert main(["spec", "show",
                     str(tmp_path / "nope.json")]) == 2
        assert "cannot read spec file" in capsys.readouterr().err


@pytest.mark.parametrize("filename", [
    "uav_codesign.json", "suite_catalog.json", "patrol_mission.json",
    "fleet_montecarlo.json",
])
def test_show_round_trips_examples(filename, capsys):
    """``spec show`` output is itself a valid, equivalent spec file."""
    from repro.engine.fingerprint import fingerprint
    from repro.spec import from_spec, load_spec, migrate_document

    assert main(["spec", "show", str(EXAMPLES / filename)]) == 0
    document = json.loads(capsys.readouterr().out)
    reparsed = from_spec(migrate_document(document))
    original = load_spec(str(EXAMPLES / filename))
    assert fingerprint(reparsed) == fingerprint(original)
