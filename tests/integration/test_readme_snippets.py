"""The README's code blocks must actually run (docs are a contract)."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parents[2] / "README.md"


def _python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_and_has_snippets():
    assert README.exists()
    assert len(_python_blocks()) >= 1


@pytest.mark.parametrize("index,block",
                         list(enumerate(_python_blocks())))
def test_readme_snippet_executes(index, block, capsys):
    exec(compile(block, f"README-snippet-{index}", "exec"), {})
    # The quickstart snippet prints platform estimates.
    out = capsys.readouterr().out
    assert out  # every snippet should show something


def test_readme_mentions_every_benchmark():
    text = README.read_text()
    bench_dir = Path(__file__).resolve().parents[2] / "benchmarks"
    named = {p.name for p in bench_dir.glob("bench_e*.py")}
    for name in named:
        assert name in text, f"README does not mention {name}"


def test_readme_mentions_every_example():
    text = README.read_text()
    examples_dir = Path(__file__).resolve().parents[2] / "examples"
    for path in examples_dir.glob("*.py"):
        assert f"examples/{path.name}" in text, path.name
