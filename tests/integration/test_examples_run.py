"""Every shipped example must run clean (examples are documentation)."""

import runpy
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

FAST_EXAMPLES = [
    "quickstart.py",
    "design_audit.py",
    "sustainability_fleet.py",
    "planner_acceleration.py",
    "pipeline_dsl.py",
]
SLOW_EXAMPLES = ["uav_codesign.py"]


def _run(name, capsys):
    runpy.run_path(str(EXAMPLES_DIR / name), run_name="__main__")
    return capsys.readouterr().out


@pytest.mark.parametrize("name", FAST_EXAMPLES)
def test_fast_example_runs(name, capsys):
    out = _run(name, capsys)
    assert len(out) > 100  # produced a real report


def test_examples_all_listed():
    on_disk = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert on_disk == set(FAST_EXAMPLES) | set(SLOW_EXAMPLES)


def test_quickstart_content(capsys):
    out = _run("quickstart.py", capsys)
    assert "EKF-SLAM" in out
    assert "Seven-Challenges audit" in out


def test_pipeline_dsl_closes_the_loop(capsys):
    out = _run("pipeline_dsl.py", capsys)
    assert "REJECTED" in out        # CPU alone cannot hold the rate
    assert "Generated accelerator" in out
    assert "stable" in out          # SoC after synthesis is stable


def test_uav_codesign_runs(capsys):
    out = _run("uav_codesign.py", capsys)
    assert "Best tier" in out
    assert "Surrogate DSE" in out
