"""The paper's whole methodology, end to end, as one test.

Characterize the domain suite → identify cross-cutting kernels →
synthesize an accelerator for the top class at the suite's rates →
attach it to an SoC → show the suite score improved → write the design
review the paper would demand → pass the Seven Challenges audit.
If this test passes, the framework's pieces compose the way DESIGN.md
claims they do.
"""

import math

import pytest

from repro.benchmarksuite import SuiteRunner, standard_suite
from repro.core import (
    DesignReview,
    EvaluationPlan,
    SevenChallengesAdvisor,
    characterize,
    find_crosscutting_kernels,
)
from repro.hw import (
    HeterogeneousSoC,
    SynthesisSpec,
    embedded_cpu,
    synthesize_accelerator,
)


@pytest.fixture(scope="module")
def suite():
    return standard_suite()


@pytest.fixture(scope="module")
def crosscut(suite):
    return find_crosscutting_kernels(suite, budget=2)


class TestMethodologyWalkthrough:
    def test_step1_characterization_finds_real_work(self, suite):
        reports = [characterize(w) for w in suite]
        assert all(r.hotspots for r in reports)
        # The suite spans enough classes that no single class covers it.
        all_classes = set()
        for report in reports:
            all_classes.update(report.op_class_shares)
        assert len(all_classes) >= 5

    def test_step2_crosscut_selection_is_broad(self, suite, crosscut):
        assert len(crosscut.selected) == 2
        assert crosscut.final_coverage > 0.35
        # Selected classes matter on several workloads each.
        for category in crosscut.selected:
            assert crosscut.per_category_breadth[category] >= 3

    def test_step3_synthesis_meets_the_suite_rate(self, suite,
                                                  crosscut):
        top_class = crosscut.selected[0]
        # Find the most demanding stage of that class across the suite.
        hungriest = None
        rate = 0.0
        for workload in suite:
            for stage in workload.graph.stages:
                if stage.profile.op_class != top_class:
                    continue
                if (hungriest is None
                        or stage.profile.total_ops
                        > hungriest.total_ops):
                    hungriest = stage.profile
                    rate = workload.target_rate_hz
        assert hungriest is not None
        extra = frozenset(crosscut.selected[1:])
        # Design for throughput headroom, not the bare deadline: an
        # accelerator sized to *exactly* the CPU-feasible rate is an
        # accelerator the mapper rightly ignores.
        headroom = 20.0
        report = synthesize_accelerator(SynthesisSpec(
            profile=hungriest,
            target_rate_hz=rate * headroom,
            area_budget_mm2=80.0,
            extra_op_classes=extra,
        ))
        assert report.achieved_rate_hz >= rate * headroom
        # Stash for the next step via module-level cache.
        TestMethodologyWalkthrough._synth = report

    def test_step4_soc_improves_suite_score(self, suite):
        report = TestMethodologyWalkthrough._synth
        runner = SuiteRunner(suite)
        host = embedded_cpu("host-cpu")
        soc = HeterogeneousSoC("methodology-soc",
                               embedded_cpu("soc-host"),
                               [report.accelerator])
        rows = runner.run([host, soc])
        scores = dict(runner.ranked_scores(rows, "host-cpu"))
        assert scores["methodology-soc"] > 1.1
        # Nothing regressed: the SoC is never slower than the host on
        # any workload (FASTEST mapping can always fall back).
        table = runner.latency_map(rows)
        for workload, host_latency in table["host-cpu"].items():
            if math.isfinite(host_latency):
                assert table["methodology-soc"][workload] \
                    <= host_latency * 1.001

    def test_step5_review_passes_the_audit(self, suite, crosscut):
        review = DesignReview(
            name="methodology-walkthrough",
            accelerated_categories=tuple(crosscut.selected),
            workload_suite=suite,
            expert_consultations=2,
            algorithm_vintage_years=(0.0,),
            integrates_with_middleware=True,
            system_budget_accounted=True,
            shared_resource_analysis=True,
            lifecycle_analysis=True,
            deployment_scale_units=10_000,
            evaluation=EvaluationPlan(
                metrics=("success_rate", "mission_energy_j",
                         "end_to_end_latency_s", "tops_per_watt"),
                evaluated_workloads=tuple(w.name for w in suite),
                baseline_platforms=("cpu", "gpu", "fpga"),
                end_to_end=True,
                closed_loop=True,
            ),
        )
        # On this 9-workload suite no single op class clears 5% of the
        # ops on most workloads, so the per-category breadth heuristic
        # is relaxed; the coverage evidence (>50% of suite ops across
        # the selected pair) is the §2.3 criterion that matters here.
        advisor = SevenChallengesAdvisor(widget_threshold=0.8)
        findings = advisor.audit(review)
        assert findings == []
        assert advisor.score(review) == 100.0
