"""Integration tests: full workflows across packages."""

import math

import numpy as np
import pytest

from repro.benchmarksuite import SuiteRunner
from repro.core import (
    DesignReview,
    EvaluationPlan,
    SevenChallengesAdvisor,
    characterize,
)
from repro.core.workload import linear_pipeline
from repro.dse import DesignSpace, Parameter, SurrogateSearch
from repro.hw import (
    HeterogeneousSoC,
    asic_gemm_engine,
    embedded_cpu,
    embedded_gpu,
    uav_compute_tiers,
)
from repro.kernels.planning import CircleWorld
from repro.kernels.slam import make_scenario
from repro.kernels.vision import VioConfig, run_vio
from repro.metrics.mission import rank_tiers, summarize_missions
from repro.system import MissionConfig, PipelineSimulation, run_mission
from repro.system.io_model import ros_like_middleware
from repro.system.mission import sweep_compute_tiers


class TestVioToPipeline:
    """Measured kernel profiles drive the system simulator."""

    def test_measured_profiles_price_onto_hardware(self):
        scenario = make_scenario(n_steps=15, n_landmarks=80,
                                 arena=20.0, speed=0.3, seed=21)
        result = run_vio(scenario, VioConfig(seed=21))
        cpu = embedded_cpu()
        for name, profile in result.stage_profiles.items():
            per_frame = profile.scaled(1.0 / scenario.n_steps)
            estimate = cpu.estimate(per_frame)
            assert 0 < estimate.latency_s < 1.0, name

    def test_vio_pipeline_simulation(self):
        scenario = make_scenario(n_steps=15, n_landmarks=80,
                                 arena=20.0, speed=0.3, seed=22)
        vio = run_vio(scenario, VioConfig(seed=22))
        cpu = embedded_cpu()
        stage_order = ["detect", "track", "estimate", "fuse"]
        profiles = []
        services = {}
        for name in stage_order:
            per_frame = vio.stage_profiles[name].scaled(
                1.0 / scenario.n_steps
            )
            profiles.append(per_frame)
            services[per_frame.name] = cpu.estimate(per_frame).latency_s
        graph = linear_pipeline("vio", profiles, rate_hz=30.0,
                                output_bytes=1e4)
        services = {s.name: services[s.profile.name]
                    for s in graph.stages}
        sim = PipelineSimulation(graph, services,
                                 io=ros_like_middleware())
        result = sim.run(3.0)
        assert result.samples_completed > 0
        assert result.mean_latency_s() < 1.0


class TestSuiteToAdvisor:
    def test_characterization_feeds_advisor(self):
        runner = SuiteRunner()
        suite = runner.workloads
        reports = [characterize(w) for w in suite]
        assert all(r.total_flops > 0 or r.total_int_ops > 0
                   for r in reports)

        review = DesignReview(
            name="widget-project",
            accelerated_categories=("sampling",),  # niche class
            workload_suite=suite,
            evaluation=EvaluationPlan(
                metrics=("tops_per_watt",),
                evaluated_workloads=("batch-planning",),
                baseline_platforms=(),
            ),
        )
        advisor = SevenChallengesAdvisor()
        findings = advisor.audit(review)
        # The naive widget project trips most of the seven checks.
        challenges = {f.challenge for f in findings}
        assert len(challenges) >= 5
        assert advisor.score(review) < 30.0


class TestMissionToDse:
    """The closed-loop simulator as a DSE oracle (E8 in miniature)."""

    @pytest.fixture(scope="class")
    def oracle(self):
        world = CircleWorld.random(dim=2, n_obstacles=25,
                                   extent=120.0,
                                   radius_range=(1.0, 3.0), seed=31,
                                   keep_corners_free=3.0)
        tiers = uav_compute_tiers()
        batteries = [30.0, 50.0, 80.0, 120.0]
        config_base = dict(
            world=world, start=np.array([1.0, 1.0]),
            goal=np.array([118.0, 118.0]), laps=12,
        )
        cache = {}

        def objective(config):
            key = (config["tier"], config["battery_wh"])
            if key in cache:
                return cache[key]
            from repro.system.robot import BatteryModel
            mission_config = MissionConfig(
                battery=BatteryModel.from_capacity(
                    config["battery_wh"]
                ),
                **config_base,
            )
            name, platform, mass, power = tiers[config["tier"]]
            result = run_mission(mission_config, platform, mass,
                                 power)
            value = result.energy_j if result.success else 1e9
            cache[key] = value
            return value

        space = DesignSpace([
            Parameter("tier", tuple(range(len(tiers)))),
            Parameter("battery_wh", tuple(batteries)),
        ])
        return space, objective

    def test_surrogate_search_finds_feasible_design(self, oracle):
        space, objective = oracle
        result = SurrogateSearch(space, n_initial=5,
                                 seed=1).run(objective, budget=12)
        assert result.best_value < 1e9  # found a successful design
        assert result.best_config["tier"] not in (0, 4)

    def test_matches_exhaustive_on_small_space(self, oracle):
        space, objective = oracle
        from repro.dse import grid_search
        exhaustive = grid_search(space, objective)
        guided = SurrogateSearch(space, n_initial=5,
                                 seed=2).run(objective, budget=14)
        assert guided.best_value <= 1.5 * exhaustive.best_value


class TestMissionMetrics:
    def test_summary_and_ranking(self):
        world = CircleWorld.random(dim=2, n_obstacles=25,
                                   extent=120.0,
                                   radius_range=(1.0, 3.0), seed=41,
                                   keep_corners_free=3.0)
        config = MissionConfig(world=world,
                               start=np.array([1.0, 1.0]),
                               goal=np.array([118.0, 118.0]),
                               laps=20)
        rows = sweep_compute_tiers(config, uav_compute_tiers())
        summary = summarize_missions([r for _, r in rows])
        assert 0.0 < summary.success_rate < 1.0
        ranking = rank_tiers(rows)
        # Failed tiers rank behind every successful tier.
        merits = dict(ranking)
        for name, result in rows:
            if not result.success:
                assert merits[name] == 0.0
        assert ranking[0][1] > 0.0


class TestSocOnSuite:
    def test_heterogeneous_soc_end_to_end(self):
        runner = SuiteRunner()
        host = embedded_cpu()
        soc = HeterogeneousSoC("asic-soc", embedded_cpu("soc-host"),
                               [asic_gemm_engine()])
        gpu = embedded_gpu()
        rows = runner.run([host, gpu, soc])
        assert all(math.isfinite(r.latency_s)
                   for r in rows if r.target != gpu.name or True)
        scores = dict(runner.ranked_scores(rows, host.name))
        assert scores["asic-soc"] >= scores[host.name]
