"""Sharded batch pricing: ``jobs=`` through the evaluate_batch path.

The elementwise contract that makes chunking value-neutral makes
sharding value-neutral too — these tests pin both the equivalence and
the dispatch policy (small windows stay in-process; unpicklable
objectives fall back transparently).
"""

import pytest

from repro.engine import Evaluator
from repro.errors import BatchFallback


class TripleObjective:
    """Module-level (hence picklable) batch toy: value == 3 * c."""

    def __call__(self, candidate):
        return candidate * 3

    def evaluate_batch(self, candidates):
        return [candidate * 3 for candidate in candidates]


class SeededTripleObjective:
    """Seeded variant: proves shards hand workers the right seeds."""

    def __call__(self, candidate, seed):
        return (candidate * 3, seed)

    def evaluate_batch(self, candidates, seeds):
        return [(candidate * 3, seed)
                for candidate, seed in zip(candidates, seeds)]


class RefusingObjective:
    """Declines every batch, even inside a shard worker."""

    def __call__(self, candidate):
        return candidate

    def evaluate_batch(self, candidates):
        raise BatchFallback("no vector path")


class ShortShardObjective:
    """Returns the wrong length from one shard."""

    def __call__(self, candidate):
        return candidate

    def evaluate_batch(self, candidates):
        return [0] * (len(candidates) - 1)


class TestShardedEquivalence:
    def test_sharded_matches_serial(self):
        candidates = list(range(80))
        serial = Evaluator(TripleObjective()).map_batch(candidates)
        sharded = Evaluator(TripleObjective(),
                            jobs=2).map_batch(candidates)
        assert [r.value for r in sharded] == \
            [r.value for r in serial]
        assert [r.key for r in sharded] == [r.key for r in serial]
        assert [r.seed for r in sharded] == [r.seed for r in serial]

    def test_sharded_counters(self):
        evaluator = Evaluator(TripleObjective(), jobs=2)
        evaluator.map_batch(list(range(80)))
        stats = evaluator.stats()
        assert stats["batch_shards"] == 2
        assert stats["batch_hits"] == 80

    def test_seeded_sharding_preserves_seeds(self):
        candidates = list(range(80))
        serial = Evaluator(SeededTripleObjective(),
                           seeded=True).map_batch(candidates)
        sharded = Evaluator(SeededTripleObjective(), seeded=True,
                            jobs=2).map_batch(candidates)
        assert [r.value for r in sharded] == \
            [r.value for r in serial]
        # Each value embeds the seed the worker saw.
        for result in sharded:
            assert result.value[1] == result.seed

    def test_three_way_split_covers_remainder(self):
        candidates = list(range(100))
        evaluator = Evaluator(TripleObjective(), jobs=3)
        results = evaluator.map_batch(candidates)
        assert [r.value for r in results] == \
            [c * 3 for c in candidates]
        assert evaluator.stats()["batch_shards"] == 3


class TestShardDispatchPolicy:
    def test_small_windows_stay_in_process(self):
        evaluator = Evaluator(TripleObjective(), jobs=2)
        evaluator.map_batch(list(range(8)))
        assert evaluator.stats()["batch_shards"] == 0

    def test_serial_evaluator_never_shards(self):
        evaluator = Evaluator(TripleObjective(), jobs=1)
        evaluator.map_batch(list(range(80)))
        assert evaluator.stats()["batch_shards"] == 0

    def test_chunking_composes_with_sharding(self):
        candidates = list(range(160))
        serial = Evaluator(TripleObjective()).map_batch(candidates)
        both = Evaluator(TripleObjective(), jobs=2,
                         chunk_size=80).map_batch(candidates)
        assert [r.value for r in both] == [r.value for r in serial]
        stats = Evaluator(TripleObjective(), jobs=2,
                          chunk_size=80)
        stats.map_batch(candidates)
        assert stats.stats()["chunks"] == 2
        assert stats.stats()["batch_shards"] == 4

    def test_metrics_counter_published(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        Evaluator(TripleObjective(), jobs=2,
                  metrics=registry).map_batch(list(range(80)))
        assert registry.snapshot()["engine.batch_shards"]["value"] \
            == 2


class TestShardFallbacks:
    def test_unpicklable_objective_falls_back_in_process(self):
        class Local:  # not picklable under spawn; fine under fork —
            def __call__(self, candidate):  # exercise the lambda path
                return candidate

        objective = Local()
        objective.evaluate_batch = lambda candidates: list(candidates)
        evaluator = Evaluator(objective, jobs=2)
        results = evaluator.map_batch(list(range(80)))
        assert [r.value for r in results] == list(range(80))
        # Priced in-process as one window, not sharded.
        assert evaluator.stats()["batch_shards"] == 0
        assert evaluator.stats()["batch_hits"] == 80

    def test_batch_fallback_inside_shard_reaches_scalar_path(self):
        evaluator = Evaluator(RefusingObjective(), jobs=2)
        results = evaluator.map_batch(list(range(80)))
        assert [r.value for r in results] == list(range(80))
        stats = evaluator.stats()
        assert stats["batch_shards"] == 0
        assert stats["batch_fallbacks"] == 80

    def test_wrong_length_shard_rejected(self):
        from repro.errors import EngineError

        evaluator = Evaluator(ShortShardObjective(), jobs=2)
        with pytest.raises(EngineError, match="shard returned"):
            evaluator.map_batch(list(range(80)))
