"""Fidelity-tier plumbing: ladder validation, per-tier caching, and
the tier-equivalence contract (funnel-primed caches replay direct
full-fidelity runs with zero oracle calls)."""

import pytest

from repro.engine.cache import ResultCache
from repro.engine.evaluator import Evaluator
from repro.engine.protocol import (FidelityTier, fidelity_tiers,
                                   supports_tiers)
from repro.errors import EngineError


def plain_objective(candidate):
    return (candidate["x"] - 3) ** 2


def cheap_screen(candidate):
    # Deliberately different from full fidelity: rank-correlated proxy.
    return abs(candidate["x"] - 3)


def cheap_screen_batch(candidates):
    return [cheap_screen(c) for c in candidates]


class TieredToy:
    """Minimal conforming TieredObjective for plumbing tests."""

    def __call__(self, candidate):
        return plain_objective(candidate)

    def evaluate_batch(self, candidates):
        return [self(c) for c in candidates]

    def fidelity_tiers(self):
        return (
            FidelityTier(name="screen", evaluate=cheap_screen,
                         evaluate_batch=cheap_screen_batch,
                         cost_hint=1.0),
            FidelityTier(name="full", evaluate=self,
                         evaluate_batch=self.evaluate_batch,
                         cost_hint=4.0),
        )


class TestFidelityTier:
    def test_rejects_empty_name(self):
        with pytest.raises(EngineError):
            FidelityTier(name="", evaluate=plain_objective)

    def test_rejects_non_callable_evaluate(self):
        with pytest.raises(EngineError):
            FidelityTier(name="t", evaluate=42)

    def test_rejects_non_callable_batch(self):
        with pytest.raises(EngineError):
            FidelityTier(name="t", evaluate=plain_objective,
                         evaluate_batch=42)

    def test_rejects_non_positive_cost(self):
        with pytest.raises(EngineError):
            FidelityTier(name="t", evaluate=plain_objective,
                         cost_hint=0.0)

    def test_batch_capable(self):
        assert not FidelityTier(
            name="t", evaluate=plain_objective).batch_capable
        assert FidelityTier(
            name="t", evaluate=plain_objective,
            evaluate_batch=cheap_screen_batch).batch_capable


class TestLadderValidation:
    def test_untiered_objective_gets_implicit_full_tier(self):
        assert not supports_tiers(plain_objective)
        tiers = fidelity_tiers(plain_objective)
        assert len(tiers) == 1
        assert tiers[0].name == "full"
        assert tiers[0].evaluate is plain_objective
        assert tiers[0].evaluate_batch is None

    def test_implicit_tier_picks_up_evaluate_batch(self):
        toy = TieredToy()

        class Untiered:
            __call__ = staticmethod(plain_objective)
            evaluate_batch = staticmethod(toy.evaluate_batch)

        (tier,) = fidelity_tiers(Untiered())
        assert tier.batch_capable

    def test_declared_ladder_passes(self):
        toy = TieredToy()
        tiers = fidelity_tiers(toy)
        assert [t.name for t in tiers] == ["screen", "full"]
        assert tiers[-1].evaluate is toy

    def test_empty_ladder_rejected(self):
        class Empty:
            def __call__(self, candidate):
                return 0.0

            def fidelity_tiers(self):
                return ()

        with pytest.raises(EngineError, match="empty ladder"):
            fidelity_tiers(Empty())

    def test_duplicate_names_rejected(self):
        class Dupes(TieredToy):
            def fidelity_tiers(self):
                tier = FidelityTier(name="full", evaluate=self)
                return (tier, tier)

        with pytest.raises(EngineError, match="duplicate tier names"):
            fidelity_tiers(Dupes())

    def test_cost_ordering_enforced(self):
        class Backwards(TieredToy):
            def fidelity_tiers(self):
                return (
                    FidelityTier(name="a", evaluate=cheap_screen,
                                 cost_hint=5.0),
                    FidelityTier(name="b", evaluate=self,
                                 cost_hint=1.0),
                )

        with pytest.raises(EngineError, match="cheapest-first"):
            fidelity_tiers(Backwards())

    def test_top_tier_must_be_objective(self):
        class Impostor(TieredToy):
            def fidelity_tiers(self):
                return (FidelityTier(name="full",
                                     evaluate=cheap_screen),)

        with pytest.raises(EngineError,
                           match="tier-equivalence violation"):
            fidelity_tiers(Impostor())

    def test_top_tier_bound_method_accepted(self):
        class BoundTop:
            def __call__(self, candidate):
                return plain_objective(candidate)

            def fidelity_tiers(self):
                return (FidelityTier(name="full",
                                     evaluate=self.__call__),)

        fidelity_tiers(BoundTop())  # does not raise


class TestEvaluatorTiers:
    def _candidates(self):
        return [{"x": x} for x in range(6)]

    def test_unknown_tier_rejected(self):
        ev = Evaluator(TieredToy(), context={"task": "tiers"})
        with pytest.raises(EngineError,
                           match="does not declare fidelity tier"):
            ev.map_batch(self._candidates(), tier="nope")

    def test_lower_tier_keys_are_namespaced(self):
        ev = Evaluator(TieredToy(), context={"task": "tiers"})
        candidate = {"x": 1}
        legacy = ev.key_for(candidate)
        assert ev.key_for(candidate, tier=None) == legacy
        assert ev.key_for(candidate, tier="screen") != legacy
        assert ev.key_for(candidate, tier="screen") \
            != ev.key_for(candidate, tier="other")

    def test_top_tier_keys_equal_legacy_keys(self):
        """The tier-equivalence contract at the key level."""
        ev = Evaluator(TieredToy(), context={"task": "tiers"})
        tiered = ev.map_batch(self._candidates(), tier="full")
        direct = ev.map_batch(self._candidates())
        assert [r.key for r in tiered] == [r.key for r in direct]
        assert [r.value for r in tiered] == [r.value for r in direct]
        # The second pass replayed the first from cache.
        assert all(r.cached for r in direct)

    def test_top_tier_primes_cache_for_fresh_evaluator(self):
        cache = ResultCache()
        warm = Evaluator(TieredToy(), cache=cache,
                         context={"task": "tiers"})
        warm.map_batch(self._candidates(), tier="full")
        replay = Evaluator(TieredToy(), cache=cache,
                           context={"task": "tiers"})
        results = replay.map_batch(self._candidates())
        assert all(r.cached for r in results)
        assert replay.oracle_calls == 0

    def test_lower_tiers_do_not_pollute_full_fidelity(self):
        cache = ResultCache()
        ev = Evaluator(TieredToy(), cache=cache,
                       context={"task": "tiers"})
        screen = ev.map_batch(self._candidates(), tier="screen")
        full = ev.map_batch(self._candidates())
        assert not any(r.cached for r in full)
        # Screen values really are the cheap proxy, not full fidelity.
        assert [r.value for r in screen] \
            == [cheap_screen(c) for c in self._candidates()]
        assert [r.value for r in full] \
            == [plain_objective(c) for c in self._candidates()]

    def test_tier_values_identical_scalar_vs_batch(self):
        class ScalarOnly(TieredToy):
            def fidelity_tiers(self):
                return tuple(
                    FidelityTier(name=t.name, evaluate=t.evaluate,
                                 cost_hint=t.cost_hint)
                    for t in super().fidelity_tiers())

        batchless = Evaluator(ScalarOnly(), context={"task": "tiers"})
        batched = Evaluator(TieredToy(), context={"task": "tiers"})
        for tier in ("screen", "full"):
            a = batchless.map_batch(self._candidates(), tier=tier)
            b = batched.map_batch(self._candidates(), tier=tier)
            assert [r.value for r in a] == [r.value for r in b]

    def test_tier_stats_counters(self):
        ev = Evaluator(TieredToy(), context={"task": "tiers"})
        ev.map_batch(self._candidates(), tier="screen")
        ev.map_batch(self._candidates(), tier="screen")
        ev.map_batch(self._candidates()[:2], tier="full")
        stats = ev.tier_stats()
        assert stats["screen"]["candidates"] == 12
        assert stats["screen"]["oracle_calls"] == 6
        assert stats["screen"]["cache_hits"] == 6
        assert stats["full"]["oracle_calls"] == 2
        # Legacy stats() keeps its shape (global counters only).
        assert ev.stats()["oracle_calls"] == 8
