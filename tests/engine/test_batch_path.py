"""Evaluator fast-path tests for batch-capable objectives."""

import pytest

from repro.engine import Evaluator, supports_batch
from repro.errors import BatchFallback, EngineError


class DoublingObjective:
    """Batch-capable toy objective: value == 2 * candidate."""

    def __init__(self):
        self.scalar_calls = 0
        self.batch_calls = 0

    def __call__(self, candidate):
        self.scalar_calls += 1
        return candidate * 2

    def evaluate_batch(self, candidates):
        self.batch_calls += 1
        return [candidate * 2 for candidate in candidates]


class DecliningObjective(DoublingObjective):
    """Declines every batch: the Evaluator must fall back to scalar."""

    def evaluate_batch(self, candidates):
        self.batch_calls += 1
        raise BatchFallback("cannot vectorize this batch")


class SeedEchoObjective:
    """Seeded batch objective: returns the seed it was handed, so the
    test can prove batch and scalar paths see identical seeds."""

    def __call__(self, candidate, seed):
        return seed

    def evaluate_batch(self, candidates, seeds):
        return list(seeds)


class WrongLengthObjective:
    def __call__(self, candidate):
        return candidate

    def evaluate_batch(self, candidates):
        return [0]


class TestSupportsBatch:
    def test_detection(self):
        assert supports_batch(DoublingObjective())
        assert not supports_batch(lambda candidate: candidate)


class TestBatchFastPath:
    def test_values_and_counters(self):
        objective = DoublingObjective()
        evaluator = Evaluator(objective)
        results = evaluator.map_batch([1, 2, 3])
        assert [r.value for r in results] == [2, 4, 6]
        assert objective.batch_calls == 1
        assert objective.scalar_calls == 0
        stats = evaluator.stats()
        assert stats["batch_hits"] == 3
        assert stats["batch_fallbacks"] == 0
        assert stats["oracle_calls"] == 3

    def test_matches_scalar_only_evaluator(self):
        batch = Evaluator(DoublingObjective()).map_batch([5, 7, 9])
        scalar = Evaluator(lambda c: c * 2).map_batch([5, 7, 9])
        assert [r.value for r in batch] == [r.value for r in scalar]
        assert [r.key for r in batch] == [r.key for r in scalar]

    def test_duplicates_priced_once(self):
        objective = DoublingObjective()
        evaluator = Evaluator(objective)
        results = evaluator.map_batch([4, 4, 4])
        assert [r.value for r in results] == [8, 8, 8]
        assert evaluator.stats()["batch_hits"] == 1
        assert [r.cached for r in results] == [False, True, True]

    def test_cache_absorbs_second_run(self):
        objective = DoublingObjective()
        evaluator = Evaluator(objective)
        evaluator.map_batch([1, 2])
        results = evaluator.map_batch([1, 2])
        assert all(r.cached for r in results)
        assert objective.batch_calls == 1
        assert evaluator.stats()["batch_hits"] == 2

    def test_fallback_reprices_through_scalar_path(self):
        objective = DecliningObjective()
        evaluator = Evaluator(objective)
        results = evaluator.map_batch([1, 2, 3])
        assert [r.value for r in results] == [2, 4, 6]
        assert objective.batch_calls == 1
        assert objective.scalar_calls == 3
        stats = evaluator.stats()
        assert stats["batch_hits"] == 0
        assert stats["batch_fallbacks"] == 3

    def test_seeds_flow_into_batch_path(self):
        seeded = Evaluator(SeedEchoObjective(), seeded=True, seed=11)
        results = seeded.map_batch(["a", "b"])
        assert [r.value for r in results] == [r.seed for r in results]

    def test_wrong_length_is_an_error(self):
        evaluator = Evaluator(WrongLengthObjective())
        with pytest.raises(EngineError):
            evaluator.map_batch([1, 2, 3])
