"""ResultCache: memory/disk round-trips, codecs, stats, corruption."""

import json

import pytest

from repro.engine import ResultCache
from repro.errors import EngineError


class TestMemoryLevel:
    def test_miss_then_hit(self):
        cache = ResultCache()
        hit, value = cache.get("k")
        assert not hit and value is None
        cache.put("k", 42.0)
        hit, value = cache.get("k")
        assert hit and value == 42.0
        assert cache.stats() == {"entries": 1, "hits": 1,
                                 "misses": 1, "disk_hits": 0}

    def test_clear(self):
        cache = ResultCache()
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0
        assert not cache.get("k")[0]


class TestDiskLevel:
    def test_round_trip_across_instances(self, tmp_path):
        first = ResultCache(str(tmp_path))
        first.put("deadbeef", {"v": 1.25})
        second = ResultCache(str(tmp_path))  # cold memory, warm disk
        hit, value = second.get("deadbeef")
        assert hit and value == {"v": 1.25}
        assert second.disk_hits == 1
        # Promoted: the next lookup stays in memory.
        second.get("deadbeef")
        assert second.disk_hits == 1 and second.hits == 2

    def test_infinity_round_trips(self, tmp_path):
        first = ResultCache(str(tmp_path))
        first.put("inf", float("inf"))
        hit, value = ResultCache(str(tmp_path)).get("inf")
        assert hit and value == float("inf")

    def test_codec(self, tmp_path):
        encode = lambda v: {"real": v.real, "imag": v.imag}  # noqa: E731
        decode = lambda d: complex(d["real"], d["imag"])  # noqa: E731
        first = ResultCache(str(tmp_path), encode=encode, decode=decode)
        first.put("z", complex(1, 2))
        second = ResultCache(str(tmp_path), encode=encode, decode=decode)
        hit, value = second.get("z")
        assert hit and value == complex(1, 2)

    def test_corrupt_entry_raises(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("bad", 1)
        (tmp_path / "bad.json").write_text("{not json")
        fresh = ResultCache(str(tmp_path))
        with pytest.raises(EngineError):
            fresh.get("bad")

    def test_disk_files_are_self_describing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("abc123", 7)
        document = json.loads((tmp_path / "abc123.json").read_text())
        assert document == {"key": "abc123", "value": 7}

    def test_clear_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", 1)
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.json"))
        assert not ResultCache(str(tmp_path)).get("k")[0]
