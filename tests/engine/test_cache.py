"""ResultCache: memory/disk round-trips, codecs, stats, corruption."""

import json

import pytest

from repro.engine import ResultCache
from repro.errors import EngineError


class TestMemoryLevel:
    def test_miss_then_hit(self):
        cache = ResultCache()
        hit, value = cache.get("k")
        assert not hit and value is None
        cache.put("k", 42.0)
        hit, value = cache.get("k")
        assert hit and value == 42.0
        assert cache.stats() == {"entries": 1, "hits": 1,
                                 "misses": 1, "disk_hits": 0,
                                 "evictions": 0}

    def test_clear(self):
        cache = ResultCache()
        cache.put("k", 1)
        cache.clear()
        assert len(cache) == 0
        assert not cache.get("k")[0]


class TestBoundedMemory:
    def test_lru_eviction_order(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")  # "a" is now most recently used
        cache.put("c", 3)  # evicts "b"
        assert cache.get("a")[0]
        assert not cache.get("b")[0]
        assert cache.get("c")[0]
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_put_refreshes_recency(self):
        cache = ResultCache(max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("a", 10)  # re-put refreshes "a", not a growth
        cache.put("c", 3)  # evicts "b"
        assert cache.get("a") == (True, 10)
        assert not cache.get("b")[0]

    def test_eviction_never_loses_disk_entries(self, tmp_path):
        cache = ResultCache(str(tmp_path), max_entries=1)
        cache.put("a", 1)
        cache.put("b", 2)  # "a" evicted from memory, not from disk
        assert cache.evictions == 1
        hit, value = cache.get("a")
        assert hit and value == 1
        assert cache.disk_hits == 1

    def test_invalid_bound_rejected(self):
        with pytest.raises(EngineError):
            ResultCache(max_entries=0)


class TestMetricsPublishing:
    def test_counters_emitted(self):
        from repro.telemetry import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResultCache(max_entries=1, metrics=registry)
        cache.get("a")  # miss
        cache.put("a", 1)
        cache.get("a")  # hit
        cache.put("b", 2)  # evicts "a"
        assert registry.counter("engine.cache.misses").value == 1
        assert registry.counter("engine.cache.hits").value == 1
        assert registry.counter("engine.cache.evictions").value == 1


class TestDiskLevel:
    def test_round_trip_across_instances(self, tmp_path):
        first = ResultCache(str(tmp_path))
        first.put("deadbeef", {"v": 1.25})
        second = ResultCache(str(tmp_path))  # cold memory, warm disk
        hit, value = second.get("deadbeef")
        assert hit and value == {"v": 1.25}
        assert second.disk_hits == 1
        # Promoted: the next lookup stays in memory.
        second.get("deadbeef")
        assert second.disk_hits == 1 and second.hits == 2

    def test_infinity_round_trips(self, tmp_path):
        first = ResultCache(str(tmp_path))
        first.put("inf", float("inf"))
        hit, value = ResultCache(str(tmp_path)).get("inf")
        assert hit and value == float("inf")

    def test_codec(self, tmp_path):
        encode = lambda v: {"real": v.real, "imag": v.imag}  # noqa: E731
        decode = lambda d: complex(d["real"], d["imag"])  # noqa: E731
        first = ResultCache(str(tmp_path), encode=encode, decode=decode)
        first.put("z", complex(1, 2))
        second = ResultCache(str(tmp_path), encode=encode, decode=decode)
        hit, value = second.get("z")
        assert hit and value == complex(1, 2)

    def test_corrupt_entry_raises(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("bad", 1)
        (tmp_path / "bad.json").write_text("{not json")
        fresh = ResultCache(str(tmp_path))
        with pytest.raises(EngineError):
            fresh.get("bad")

    def test_disk_files_are_self_describing(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("abc123", 7)
        document = json.loads((tmp_path / "abc123.json").read_text())
        assert document == {"key": "abc123", "value": 7}

    def test_clear_disk(self, tmp_path):
        cache = ResultCache(str(tmp_path))
        cache.put("k", 1)
        cache.clear(disk=True)
        assert not list(tmp_path.glob("*.json"))
        assert not ResultCache(str(tmp_path)).get("k")[0]
