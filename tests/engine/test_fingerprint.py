"""Canonical fingerprinting: stability is the entire contract."""

from concurrent.futures import ProcessPoolExecutor
from enum import Enum

import numpy as np
import pytest

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.engine import canonical_json, fingerprint
from repro.errors import EngineError


class Color(Enum):
    RED = 1
    BLUE = 2


def _fingerprint_in_subprocess(obj):
    return fingerprint(obj)


def _catalog_fingerprints():
    from repro.benchmarksuite.workloads import standard_suite
    from repro.hw.catalog import embedded_cpu, midrange_fpga
    from repro.hw.mapping import HeterogeneousSoC
    from repro.hw.catalog import asic_gemm_engine

    soc = HeterogeneousSoC("gemm-soc", embedded_cpu("soc-host"),
                           [asic_gemm_engine()])
    return [fingerprint(embedded_cpu()), fingerprint(midrange_fpga()),
            fingerprint(soc),
            fingerprint(standard_suite()[0])]


class TestCanonicalization:
    def test_dict_ordering_is_irrelevant(self):
        a = {"x": 1, "y": [2, 3], "z": {"p": 4, "q": 5}}
        b = {"z": {"q": 5, "p": 4}, "y": [2, 3], "x": 1}
        assert fingerprint(a) == fingerprint(b)

    def test_tuple_and_list_agree(self):
        assert fingerprint((1, 2, 3)) == fingerprint([1, 2, 3])

    def test_int_float_distinct(self):
        assert fingerprint(1) != fingerprint(1.0)

    def test_value_changes_change_the_key(self):
        assert fingerprint({"a": 1}) != fingerprint({"a": 2})
        assert fingerprint({"a": 1}) != fingerprint({"b": 1})

    def test_sets_are_order_free(self):
        assert fingerprint({3, 1, 2}) == fingerprint({1, 2, 3})
        assert fingerprint(frozenset({1, 2})) == fingerprint({1, 2})

    def test_enums(self):
        assert fingerprint(Color.RED) == fingerprint(Color.RED)
        assert fingerprint(Color.RED) != fingerprint(Color.BLUE)
        assert fingerprint(DivergenceClass.HIGH) \
            != fingerprint(DivergenceClass.LOW)

    def test_numpy_arrays_and_scalars(self):
        assert fingerprint(np.array([1.0, 2.0])) \
            == fingerprint(np.array([1.0, 2.0]))
        assert fingerprint(np.array([1.0, 2.0])) \
            != fingerprint(np.array([2.0, 1.0]))
        assert fingerprint(np.float64(1.5)) == fingerprint(1.5)

    def test_nan_is_representable(self):
        assert fingerprint(float("nan")) == fingerprint(float("nan"))
        assert fingerprint(float("inf")) != fingerprint(float("nan"))

    def test_dataclasses(self):
        profile = WorkloadProfile(name="k", flops=1e6)
        again = WorkloadProfile(name="k", flops=1e6)
        other = WorkloadProfile(name="k", flops=2e6)
        assert fingerprint(profile) == fingerprint(again)
        assert fingerprint(profile) != fingerprint(other)

    def test_unfingerprintable_raises(self):
        with pytest.raises(EngineError):
            fingerprint(lambda x: x)

    def test_canonical_json_is_deterministic_text(self):
        assert canonical_json({"b": 1, "a": 2}) \
            == canonical_json({"a": 2, "b": 1})


class TestDomainObjectHooks:
    def test_platforms_fingerprint_by_spec(self):
        from repro.hw.catalog import embedded_cpu, embedded_gpu

        assert fingerprint(embedded_cpu()) == fingerprint(embedded_cpu())
        assert fingerprint(embedded_cpu()) != fingerprint(embedded_gpu())
        assert fingerprint(embedded_cpu()) \
            != fingerprint(embedded_cpu("renamed"))

    def test_soc_and_workload_hooks(self):
        from repro.benchmarksuite.workloads import standard_suite
        from repro.hw.catalog import asic_gemm_engine, embedded_cpu
        from repro.hw.mapping import HeterogeneousSoC

        soc = lambda: HeterogeneousSoC(  # noqa: E731
            "gemm-soc", embedded_cpu("soc-host"), [asic_gemm_engine()])
        assert fingerprint(soc()) == fingerprint(soc())
        first, second = standard_suite(), standard_suite()
        for a, b in zip(first, second):
            assert fingerprint(a) == fingerprint(b)

    def test_process_boundary_stability(self):
        """Fingerprints computed in a worker process match the parent's
        — the property that makes a shared cache directory sound."""
        payloads = [
            {"alpha": 1, "beta": [1.5, {"g": (2, 3)}]},
            np.arange(6, dtype=float).reshape(2, 3),
            DivergenceClass.HIGH,
        ]
        local = [fingerprint(p) for p in payloads]
        with ProcessPoolExecutor(max_workers=2) as pool:
            remote = list(pool.map(_fingerprint_in_subprocess, payloads))
        assert local == remote

    def test_catalog_process_boundary_stability(self):
        """Platforms/SoCs/workloads rebuilt from scratch in another
        process fingerprint identically to this one's."""
        local = _catalog_fingerprints()
        with ProcessPoolExecutor(max_workers=1) as pool:
            remote = pool.submit(_catalog_fingerprints).result()
        assert local == remote
