"""Serial == parallel == cache-warm, for every strategy and the suite.

The engine's contract: evaluation mode is an operational choice, never a
semantic one.  Each test runs the same seeded search three ways — in
process, on a 4-worker pool, and replayed against a warm cache — and
requires identical histories/traces/results, with the warm replay
consuming zero oracle calls.
"""

import numpy as np

from repro.benchmarksuite import SuiteRunner, evaluate_pair, row_cache
from repro.dse import (
    EvolutionarySearch,
    SurrogateSearch,
    grid_search,
    multi_objective_search,
    random_search,
)
from repro.dse.space import DesignSpace, Parameter
from repro.engine import Evaluator, ResultCache
from repro.hw.catalog import embedded_cpu, embedded_gpu


def _space():
    return DesignSpace([
        Parameter("a", tuple(range(6))),
        Parameter("b", (0.5, 1.0, 2.0, 4.0)),
        Parameter("c", ("x", "y", "z")),
    ])


def synth_objective(config):
    bump = {"x": 0.0, "y": -0.5, "z": 0.25}[config["c"]]
    return (config["a"] - 3) ** 2 + (config["b"] - 1.0) ** 2 + bump


def synth_latency(config):
    return float(config["a"]) + config["b"]


def synth_energy(config):
    return (5.0 - config["a"]) ** 2 / (1.0 + config["b"])


def _assert_same(a, b):
    assert a.history == b.history
    assert a.trace == b.trace
    assert a.best_config == b.best_config
    assert a.best_value == b.best_value
    assert a.evaluations == b.evaluations


class TestStrategyEquivalence:
    def _three_ways(self, run):
        """``run(evaluator) -> SearchResult`` under the three modes."""
        serial = run(Evaluator(synth_objective))
        parallel = run(Evaluator(synth_objective, jobs=4))
        cache = ResultCache()
        run(Evaluator(synth_objective, cache=cache))
        warm = Evaluator(synth_objective, cache=cache)
        replay = run(warm)
        _assert_same(serial, parallel)
        _assert_same(serial, replay)
        assert warm.oracle_calls == 0

    def test_grid(self):
        self._three_ways(
            lambda ev: grid_search(_space(), evaluator=ev))

    def test_random(self):
        self._three_ways(
            lambda ev: random_search(_space(), budget=20, seed=5,
                                     evaluator=ev))

    def test_evolutionary(self):
        self._three_ways(
            lambda ev: EvolutionarySearch(
                _space(), population_size=8, seed=2,
            ).run(budget=18, evaluator=ev))

    def test_surrogate(self):
        self._three_ways(
            lambda ev: SurrogateSearch(
                _space(), n_initial=4, seed=1,
            ).run(budget=12, evaluator=ev))


class TestMultiObjectiveEquivalence:
    OBJECTIVES = {"latency": synth_latency, "energy": synth_energy}

    def _run(self, **kwargs):
        return multi_objective_search(
            _space(), dict(self.OBJECTIVES), budget_per_weight=8,
            n_weights=3, method="surrogate", seed=0, **kwargs)

    def test_parallel_matches_serial(self):
        serial = self._run()
        parallel = self._run(jobs=4)
        assert serial.front == parallel.front
        assert serial.evaluations == parallel.evaluations

    def test_warm_cache_replay(self):
        from repro.dse.multiobjective import VectorObjective

        cache = ResultCache()
        first = self._run(cache=cache)
        warm = Evaluator(VectorObjective(dict(self.OBJECTIVES)),
                         cache=cache)
        replay = self._run(evaluator=warm)
        assert warm.oracle_calls == 0
        assert first.front == replay.front
        assert first.evaluations == replay.evaluations


class TestSuiteEquivalence:
    def _targets(self):
        return [embedded_cpu(), embedded_gpu()]

    def test_serial_parallel_warm_identical(self, tmp_path):
        runner = SuiteRunner()
        serial = runner.run(self._targets())
        parallel = runner.run(self._targets(), jobs=4)
        assert serial == parallel

        cache = row_cache(str(tmp_path))
        primed = runner.run(self._targets(), cache=cache)
        # Fresh evaluator, fresh memory level: everything must come
        # from disk.  Context must match the one run() builds.
        from repro.hw.mapping import MappingPolicy
        warm = Evaluator(
            evaluate_pair, cache=row_cache(str(tmp_path)),
            context={"task": "benchmarksuite",
                     "policy": MappingPolicy.FASTEST})
        replay = runner.run(self._targets(), evaluator=warm)
        assert warm.oracle_calls == 0
        assert serial == primed == replay

    def test_engine_rows_have_zero_wall_time(self):
        rows = SuiteRunner().run(self._targets())
        assert all(row.wall_time_s == 0.0 for row in rows)

    def test_row_values_are_plain_floats(self):
        for row in SuiteRunner().run(self._targets(), jobs=2):
            assert isinstance(row.latency_s, float)
            assert not isinstance(row.latency_s, np.floating)
