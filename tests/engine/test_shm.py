"""ColumnBlock shared-memory transport: layout, round-trip, lifecycle."""

import numpy as np
import pytest

from repro.engine.shm import ColumnBlock, _layout, shm_available

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable")

SPECS = [
    ("flags", np.bool_, (5,)),
    ("values", np.float64, (5, 3)),
    ("counts", np.int64, (5,)),
]


class TestLayout:
    def test_offsets_are_aligned_and_disjoint(self):
        offsets, size = _layout(SPECS)
        spans = []
        for name, dtype, shape in SPECS:
            offset, dt, shp = offsets[name]
            assert offset % 8 == 0
            assert dt == np.dtype(dtype)
            assert shp == shape
            count = int(np.prod(shape))
            spans.append((offset, offset + count * dt.itemsize))
        spans.sort()
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end
        assert size >= max(end for _, end in spans)

    def test_empty_specs_still_allocate_a_segment(self):
        _, size = _layout([])
        assert size == 1


class TestColumnBlock:
    def test_round_trip_through_attach(self):
        parent = ColumnBlock.create(SPECS)
        try:
            parent.column("values")[:] = np.arange(15.0).reshape(5, 3)
            parent.column("flags")[:] = [True, False, True, False, True]
            parent.column("counts")[:] = np.arange(5)

            child = ColumnBlock.attach(parent.name, SPECS)
            got = child.column("values").copy()
            flags = child.column("flags").copy()
            child.close()
            assert got.tolist() == \
                np.arange(15.0).reshape(5, 3).tolist()
            assert flags.tolist() == [True, False, True, False, True]
        finally:
            parent.destroy()

    def test_writes_from_attachment_visible_to_owner(self):
        parent = ColumnBlock.create(SPECS)
        try:
            parent.column("counts")[:] = 0
            child = ColumnBlock.attach(parent.name, SPECS)
            child.column("counts")[2:4] = [7, 9]
            child.close()
            assert parent.column("counts").tolist() == [0, 0, 7, 9, 0]
        finally:
            parent.destroy()

    def test_float_bytes_preserved_exactly(self):
        specs = [("x", np.float64, (4,))]
        values = np.array([0.1, -0.0, np.pi, 1e-308])
        parent = ColumnBlock.create(specs)
        try:
            parent.column("x")[:] = values
            child = ColumnBlock.attach(parent.name, specs)
            got = child.column("x").copy()
            child.close()
            assert got.tobytes() == values.tobytes()
        finally:
            parent.destroy()

    def test_columns_lists_names(self):
        with ColumnBlock.create(SPECS) as block:
            assert block.columns() == ["flags", "values", "counts"]

    def test_destroy_is_idempotent(self):
        block = ColumnBlock.create(SPECS)
        block.destroy()
        block.destroy()  # second unlink swallowed (FileNotFoundError)

    def test_close_tolerates_live_views(self):
        block = ColumnBlock.create(SPECS)
        view = block.column("counts")
        block.close()  # BufferError swallowed; mapping freed later
        del view
        block.destroy()

    def test_context_manager_owner_destroys(self):
        from multiprocessing import shared_memory

        with ColumnBlock.create(SPECS) as block:
            name = block.name
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
