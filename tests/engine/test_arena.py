"""BatchArena / Workspace: ownership, growth, reuse, telemetry."""

import numpy as np
import pytest

from repro.engine.arena import BatchArena, Workspace
from repro.telemetry.profiling import measure_allocations


class TestBatchArena:
    def test_view_has_requested_shape_and_dtype(self):
        arena = BatchArena()
        view = arena.array("a", (3, 4))
        assert view.shape == (3, 4)
        assert view.dtype == np.float64
        view = arena.array("b", (5,), dtype=np.int8)
        assert view.dtype == np.int8

    def test_views_are_writable_and_contiguous(self):
        arena = BatchArena()
        view = arena.array("a", (8,))
        view[:] = np.arange(8.0)
        assert view.flags["C_CONTIGUOUS"]
        assert list(view) == list(np.arange(8.0))

    def test_same_name_reuses_backing_buffer(self):
        arena = BatchArena()
        first = arena.array("a", (16,))
        first[:] = 7.0
        second = arena.array("a", (8,))
        # Same memory: the shrunk view aliases the old buffer.
        assert second.base is first.base
        assert arena.grows == 1
        assert arena.reuses == 1

    def test_growth_at_least_doubles_capacity(self):
        arena = BatchArena()
        arena.array("a", (10,))
        assert arena.capacity_bytes == 10 * 8
        arena.array("a", (11,))  # 11 < 2*10 -> doubles
        assert arena.capacity_bytes == 20 * 8
        arena.array("a", (100,))  # 100 > 2*20 -> exact
        assert arena.capacity_bytes == 100 * 8
        assert arena.grows == 3

    def test_shrink_then_grow_within_capacity_never_reallocates(self):
        arena = BatchArena()
        arena.array("a", (64,))
        for n in (64, 3, 64, 1, 40):
            arena.array("a", (n,))
        assert arena.grows == 1
        assert arena.reuses == 5

    def test_distinct_names_and_dtypes_get_distinct_buffers(self):
        arena = BatchArena()
        a = arena.array("x", (4,))
        b = arena.array("y", (4,))
        c = arena.array("x", (4,), dtype=np.int8)
        assert a.base is not b.base
        assert a.base is not c.base
        assert len(arena._buffers) == 3

    def test_occupancy_tracks_last_generation(self):
        arena = BatchArena()
        assert arena.occupancy() == 0.0
        arena.array("a", (10,))
        assert arena.occupancy() == 1.0
        arena.array("a", (5,))
        assert arena.occupancy() == 0.5

    def test_clear_releases_buffers_but_keeps_counters(self):
        arena = BatchArena()
        arena.array("a", (10,))
        arena.clear()
        assert arena.capacity_bytes == 0
        assert arena.grows == 1
        arena.array("a", (10,))
        assert arena.grows == 2

    def test_stats_shape(self):
        arena = BatchArena()
        arena.array("a", (10,))
        arena.array("a", (4,))
        stats = arena.stats()
        assert stats["buffers"] == 1.0
        assert stats["grows"] == 1.0
        assert stats["reuses"] == 1.0
        assert stats["grow_bytes"] == 80.0
        assert stats["reused_bytes"] == 32.0
        assert stats["capacity_bytes"] == 80.0
        assert stats["occupancy"] == pytest.approx(0.4)

    def test_growth_metered_at_arena_site(self):
        arena = BatchArena()
        with measure_allocations() as meter:
            arena.array("a", (10,))   # grow: 80 B
            arena.array("a", (10,))   # reuse: not metered
            arena.array("a", (20,))   # grow: 2x -> 160 B
        sites = meter.snapshot()
        assert sites["engine.arena.grow"]["bytes"] == 80 + 160
        assert sites["engine.arena.grow"]["calls"] == 2

    def test_growth_not_metered_when_disabled(self):
        from repro.telemetry.profiling import get_alloc_meter

        before = dict(get_alloc_meter().snapshot())
        BatchArena().array("a", (10,))
        assert get_alloc_meter().snapshot() == before


class TestWorkspace:
    def test_without_arena_allocates_fresh(self):
        ws = Workspace(None, "k.")
        a = ws.out("a", (4,))
        b = ws.out("a", (4,))
        assert a.base is None and b.base is None
        assert a is not b

    def test_with_arena_routes_to_prefixed_names(self):
        arena = BatchArena()
        ws = Workspace(arena, "k.")
        ws.out("a", (4,))
        assert [name for name, _ in arena._buffers] == ["k.a"]

    def test_two_prefixes_share_one_arena_without_collision(self):
        arena = BatchArena()
        a = Workspace(arena, "one.").out("col", (4,))
        b = Workspace(arena, "two.").out("col", (4,))
        assert a.base is not b.base
        assert len(arena._buffers) == 2
