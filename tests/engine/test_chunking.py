"""Chunked streaming evaluation: values, order, seeds, telemetry.

The contract under test: ``chunk_size`` changes only the peak working
set, never the results — values, result order, cache keys, and
per-candidate seeds are identical to the unchunked run, and seeds are
fingerprint-derived so they are also invariant to transport (serial,
pickled process pool) and batch composition.
"""

import pytest

from repro.engine.evaluator import Evaluator
from repro.errors import EngineError
from repro.telemetry.metrics import MetricsRegistry


def _square(candidate):
    return candidate * candidate


def _seeded(candidate, seed):
    return (candidate, seed)


class _Batchable:
    """Batch objective that records the window sizes it was given."""

    def __init__(self):
        self.windows = []

    def __call__(self, candidate):
        return candidate * candidate

    def evaluate_batch(self, candidates):
        self.windows.append(len(candidates))
        return [c * c for c in candidates]


class TestChunkedValues:
    def test_chunked_results_identical_to_unchunked(self):
        candidates = list(range(17))
        plain = Evaluator(_square).map_batch(candidates)
        chunked = Evaluator(_square, chunk_size=5).map_batch(candidates)
        assert [r.value for r in chunked] == [r.value for r in plain]
        assert [r.key for r in chunked] == [r.key for r in plain]
        assert [r.seed for r in chunked] == [r.seed for r in plain]

    def test_chunking_windows_the_batch_objective(self):
        objective = _Batchable()
        evaluator = Evaluator(objective, chunk_size=4)
        results = evaluator.map_batch(list(range(10)))
        assert objective.windows == [4, 4, 2]
        assert [r.value for r in results] == [c * c for c in range(10)]
        assert evaluator.chunks == 3

    def test_chunk_size_larger_than_batch_is_one_chunk(self):
        evaluator = Evaluator(_square, chunk_size=100)
        evaluator.map_batch(list(range(5)))
        assert evaluator.chunks == 1

    def test_cached_candidates_do_not_consume_chunks(self):
        evaluator = Evaluator(_square, chunk_size=2)
        evaluator.map_batch([1, 2, 3, 4])
        chunks_before = evaluator.chunks
        evaluator.map_batch([1, 2, 3, 4])  # fully cache-warm
        assert evaluator.chunks == chunks_before

    def test_chunk_size_validation(self):
        with pytest.raises(EngineError):
            Evaluator(_square, chunk_size=0)
        with pytest.raises(EngineError):
            Evaluator(_square, chunk_size=-3)

    def test_stats_report_chunks(self):
        evaluator = Evaluator(_square, chunk_size=2)
        evaluator.map_batch([1, 2, 3])
        assert evaluator.stats()["chunks"] == 2


class TestChunkTelemetry:
    def test_counters_and_occupancy_published(self):
        metrics = MetricsRegistry()
        evaluator = Evaluator(_square, chunk_size=4, metrics=metrics)
        evaluator.map_batch(list(range(10)))
        snapshot = metrics.snapshot()
        assert snapshot["engine.chunks"]["value"] == 3
        occupancy = snapshot["engine.chunk_occupancy"]
        assert occupancy["count"] == 3
        # Windows of 4, 4, 2 -> occupancies 1.0, 1.0, 0.5.
        assert occupancy["mean"] == pytest.approx(2.5 / 3)
        assert occupancy["min"] == pytest.approx(0.5)
        assert occupancy["max"] == pytest.approx(1.0)

    def test_no_chunk_metrics_without_chunk_size(self):
        metrics = MetricsRegistry()
        Evaluator(_square, metrics=metrics).map_batch([1, 2, 3])
        assert "engine.chunks" not in metrics.snapshot()


class TestSeedTransportInvariance:
    """Satellite (f): per-candidate seeds are a pure function of
    (base seed, content fingerprint) — never batch position — so they
    are identical across chunking, process-pool sharding, and
    transport."""

    def test_seed_is_fingerprint_derived(self):
        evaluator = Evaluator(_square, seed=42)
        key = evaluator.key_for(7)
        expected = (42 ^ int(key[:16], 16)) & ((1 << 63) - 1)
        assert evaluator.seed_for(key) == expected

    def test_seeds_identical_across_batch_composition(self):
        one = Evaluator(_square, seed=9)
        other = Evaluator(_square, seed=9)
        alone = one.map_batch([5])[0]
        crowded = other.map_batch([1, 2, 3, 4, 5])[-1]
        assert alone.seed == crowded.seed

    def test_seeds_identical_serial_parallel_and_chunked(self):
        candidates = list(range(8))
        serial = Evaluator(_seeded, seeded=True, seed=3)
        pooled = Evaluator(_seeded, seeded=True, seed=3, jobs=2)
        chunked = Evaluator(_seeded, seeded=True, seed=3, chunk_size=3)
        a = serial.map_batch(candidates)
        b = pooled.map_batch(candidates)
        c = chunked.map_batch(candidates)
        assert [r.seed for r in a] == [r.seed for r in b] \
            == [r.seed for r in c]
        # The seeded objective echoes its seed: the *values* prove the
        # workers actually used the same per-candidate seeds.
        assert [r.value for r in a] == [r.value for r in b] \
            == [r.value for r in c]
