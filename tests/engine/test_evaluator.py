"""Evaluator semantics: ordering, dedup, caching, parallel identity."""

import numpy as np
import pytest

from repro.engine import EvalResult, Evaluator, ResultCache
from repro.errors import EngineError
from repro.telemetry import MetricsRegistry

CALLS = []


def _square(candidate):
    CALLS.append(candidate["x"])
    return float(candidate["x"]) ** 2


def _seeded(candidate, seed):
    rng = np.random.default_rng(seed)
    return float(candidate["x"]) + float(rng.random())


def _cand(*xs):
    return [{"x": x} for x in xs]


class TestBasics:
    def setup_method(self):
        CALLS.clear()

    def test_results_in_input_order(self):
        ev = Evaluator(_square)
        results = ev.map_batch(_cand(3, 1, 2))
        assert [r.value for r in results] == [9.0, 1.0, 4.0]
        assert [r.candidate["x"] for r in results] == [3, 1, 2]
        assert all(isinstance(r, EvalResult) for r in results)

    def test_in_batch_dedup(self):
        ev = Evaluator(_square)
        results = ev.map_batch(_cand(2, 2, 2))
        assert [r.value for r in results] == [4.0, 4.0, 4.0]
        assert [r.cached for r in results] == [False, True, True]
        assert CALLS == [2]
        assert ev.oracle_calls == 1

    def test_cross_batch_cache(self):
        ev = Evaluator(_square)
        ev.map_batch(_cand(1, 2))
        results = ev.map_batch(_cand(2, 3))
        assert [r.cached for r in results] == [True, False]
        assert ev.oracle_calls == 3

    def test_warm_cache_means_zero_oracle_calls(self):
        cache = ResultCache()
        first = Evaluator(_square, cache=cache)
        a = first.map_batch(_cand(1, 2, 3))
        CALLS.clear()
        second = Evaluator(_square, cache=cache)
        b = second.map_batch(_cand(1, 2, 3))
        assert CALLS == []
        assert second.oracle_calls == 0
        assert [r.value for r in a] == [r.value for r in b]

    def test_jobs_must_be_positive(self):
        with pytest.raises(EngineError):
            Evaluator(_square, jobs=0)

    def test_evaluate_single(self):
        assert Evaluator(_square).evaluate({"x": 4}) == 16.0


class TestDeterminism:
    def test_parallel_matches_serial(self):
        serial = Evaluator(_square).map_batch(_cand(*range(8)))
        parallel = Evaluator(_square, jobs=4).map_batch(_cand(*range(8)))
        assert [r.value for r in serial] == [r.value for r in parallel]
        assert [r.key for r in serial] == [r.key for r in parallel]

    def test_seeds_are_order_independent(self):
        ev = Evaluator(_seeded, seeded=True, seed=7)
        forward = ev.map_batch(_cand(1, 2, 3))
        fresh = Evaluator(_seeded, seeded=True, seed=7)
        backward = fresh.map_batch(_cand(3, 2, 1))
        by_x_fwd = {r.candidate["x"]: (r.seed, r.value) for r in forward}
        by_x_bwd = {r.candidate["x"]: (r.seed, r.value) for r in backward}
        assert by_x_fwd == by_x_bwd

    def test_seeded_parallel_matches_serial(self):
        serial = Evaluator(_seeded, seeded=True, seed=3)
        parallel = Evaluator(_seeded, seeded=True, seed=3, jobs=4)
        a = serial.map_batch(_cand(*range(6)))
        b = parallel.map_batch(_cand(*range(6)))
        assert [r.value for r in a] == [r.value for r in b]

    def test_base_seed_changes_derived_seeds(self):
        a = Evaluator(_square, seed=0)
        b = Evaluator(_square, seed=1)
        key = a.key_for({"x": 5})
        assert a.seed_for(key) != b.seed_for(key)

    def test_context_partitions_the_cache(self):
        a = Evaluator(_square, context={"objective": "a"})
        b = Evaluator(_square, context={"objective": "b"})
        assert a.key_for({"x": 1}) != b.key_for({"x": 1})


class TestParallelErrors:
    def test_unpicklable_objective_raises_engine_error(self):
        ev = Evaluator(lambda c: c["x"], jobs=2)
        with pytest.raises(EngineError):
            ev.map_batch(_cand(1, 2))


class TestTelemetry:
    def test_metrics_published(self):
        metrics = MetricsRegistry()
        ev = Evaluator(_square, metrics=metrics)
        ev.map_batch(_cand(1, 2, 2))
        snapshot = metrics.snapshot()
        assert snapshot["engine.batches"]["value"] == 1
        assert snapshot["engine.candidates"]["value"] == 3
        assert snapshot["engine.oracle_calls"]["value"] == 2
        assert snapshot["engine.cache_hits"]["value"] == 1
        assert snapshot["engine.eval_wall_s"]["count"] == 2
