"""CLI tests for ``repro bench`` and ``repro fleet --profile-out``.

These drive the performance observatory end to end through ``main``:
registered benchmarks run, provenance-stamped records land in the
ledger, the regression gate flips the exit code, and the span-scoped
fleet profile reports per-phase hotspots plus exact allocation
counters.
"""

import json

import pytest

from repro.bench import baselines_from_records, write_baselines
from repro.cli import build_parser, main


def _run_bench(tmp_path, *extra):
    """One tiny batch_pricing run against throwaway artifacts."""
    ledger = tmp_path / "ledger.jsonl"
    argv = ["bench", "--filter", "batch_pricing", "--sizes", "8",
            "--ledger", str(ledger), *extra]
    return main(argv), ledger


class TestBenchParser:
    def test_defaults(self):
        args = build_parser().parse_args(["bench"])
        assert args.filter == ""
        assert args.ledger == "BENCH_LEDGER.jsonl"
        assert args.baselines == "BENCH_BASELINES.json"
        assert args.threshold == 0.15
        assert not args.check and not args.full


class TestBenchList:
    def test_lists_registered_entries(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        for name in ("batch_pricing", "fleet_missions",
                     "engine_parallel", "obs_overhead"):
            assert name in out

    def test_filter_narrows_listing(self, capsys):
        assert main(["bench", "--list", "--filter", "fleet"]) == 0
        out = capsys.readouterr().out
        assert "fleet_missions" in out
        assert "batch_pricing" not in out


class TestBenchRun:
    def test_appends_provenance_stamped_ledger_records(
            self, tmp_path, capsys):
        json_path = tmp_path / "run.json"
        code, ledger = _run_bench(tmp_path, "--seed", "3",
                                  "--json", str(json_path))
        assert code == 0
        out = capsys.readouterr().out
        assert "batch_pricing" in out and "speedup" in out

        lines = [json.loads(line) for line in
                 ledger.read_text().splitlines()]
        assert len(lines) == 1
        record = lines[0]
        assert record["schema"] == "repro-bench-ledger/1"
        assert record["benchmark"] == "batch_pricing"
        assert record["size"] == 8
        assert record["metrics"]["speedup"] > 0
        assert record["wall_time_s"] > 0
        assert record["peak_rss_kb"] is None or \
            record["peak_rss_kb"] > 0
        provenance = record["provenance"]
        assert provenance["seed"] == 3
        assert provenance["git_sha"]
        assert provenance["python"] and provenance["numpy"]
        assert "hostname_sha" in provenance["machine"]

        document = json.loads(json_path.read_text())
        assert document["schema"] == "repro-bench-run/1"
        assert document["records"][0]["benchmark"] == "batch_pricing"

    def test_no_ledger_skips_append(self, tmp_path, capsys):
        code, ledger = _run_bench(tmp_path, "--no-ledger")
        assert code == 0
        assert not ledger.exists()

    def test_unknown_filter_exits_2(self, tmp_path, capsys):
        code, _ = _run_bench(tmp_path)  # warm: proves filter works
        assert code == 0
        assert main(["bench", "--filter", "no_such_bench"]) == 2
        assert "no benchmark matches" in capsys.readouterr().err

    def test_bad_sizes_exit_2(self, capsys):
        assert main(["bench", "--sizes", "ten"]) == 2
        assert "--sizes" in capsys.readouterr().err


class TestBenchCheck:
    def _baselines(self, tmp_path, speedup):
        """A baselines file claiming batch_pricing@8 hit ``speedup``."""
        path = tmp_path / "baselines.json"
        write_baselines(str(path), baselines_from_records([{
            "benchmark": "batch_pricing",
            "size": 8,
            "metrics": {"speedup": speedup},
        }]))
        return path

    def test_check_passes_against_modest_baseline(
            self, tmp_path, capsys):
        baselines = self._baselines(tmp_path, speedup=0.1)
        code, _ = _run_bench(tmp_path, "--check",
                             "--baselines", str(baselines))
        assert code == 0
        assert "[ok]" in capsys.readouterr().out

    def test_check_fails_on_regression(self, tmp_path, capsys):
        baselines = self._baselines(tmp_path, speedup=10_000.0)
        code, _ = _run_bench(tmp_path, "--check",
                             "--baselines", str(baselines))
        assert code == 1
        captured = capsys.readouterr()
        assert "[REGRESSION]" in captured.out
        assert "regression(s)" in captured.err

    def test_warn_only_reports_but_exits_zero(self, tmp_path, capsys):
        baselines = self._baselines(tmp_path, speedup=10_000.0)
        code, _ = _run_bench(tmp_path, "--check", "--warn-only",
                             "--baselines", str(baselines))
        assert code == 0
        assert "[REGRESSION]" in capsys.readouterr().out

    def test_update_baselines_then_check_is_clean(
            self, tmp_path, capsys):
        baselines = tmp_path / "baselines.json"
        code, _ = _run_bench(tmp_path, "--update-baselines",
                             "--baselines", str(baselines))
        assert code == 0
        assert baselines.exists()
        # relative drift between two back-to-back runs stays far
        # inside a permissive threshold
        code, _ = _run_bench(tmp_path, "--check", "--threshold", "5.0",
                             "--baselines", str(baselines))
        assert code == 0


class TestBenchMonotoneGate:
    """The same-run monotonicity gate: machine-independent, so it must
    hard-fail even under ``--warn-only`` (unlike baseline deltas)."""

    def _register(self, speedups):
        from repro.bench import REGISTRY, Benchmark, Metric

        REGISTRY.register(Benchmark(
            name="toy_sweep",
            description="toy monotone sweep",
            sizes=tuple(sorted(speedups)),
            smoke_sizes=(min(speedups),),
            metrics=(Metric("speedup", unit="x", monotone=True),),
            runner=lambda size: {"speedup": speedups[size]},
        ))

    @pytest.fixture(autouse=True)
    def _cleanup(self):
        from repro.bench import REGISTRY

        yield
        REGISTRY._entries.pop("toy_sweep", None)

    def _run(self, tmp_path, speedups, *extra):
        self._register(speedups)
        return main(["bench", "--check", "--filter", "toy_sweep",
                     "--full", "--ledger",
                     str(tmp_path / "ledger.jsonl"), *extra])

    def test_monotone_sweep_passes(self, tmp_path, capsys):
        code = self._run(tmp_path, {8: 5.0, 64: 6.0})
        assert code == 0
        assert "[NON-MONOTONE]" not in capsys.readouterr().out

    def test_collapse_fails_even_with_warn_only(self, tmp_path,
                                                capsys):
        code = self._run(tmp_path, {8: 25.0, 64: 19.0}, "--warn-only")
        assert code == 1
        captured = capsys.readouterr()
        assert "[NON-MONOTONE]" in captured.out
        assert "monotonicity violation" in captured.err

    def test_tolerance_flag_loosens_the_floor(self, tmp_path):
        assert self._run(tmp_path, {8: 25.0, 64: 19.0},
                         "--monotone-tolerance", "0.5") == 0

    def test_violations_land_in_json_report(self, tmp_path):
        report = tmp_path / "report.json"
        self._run(tmp_path, {8: 25.0, 64: 19.0},
                  "--json", str(report))
        document = json.loads(report.read_text())
        assert document["monotone_violations"] == 1
        checks = document["monotone_checks"]
        assert checks[0]["violated"] is True
        assert (checks[0]["prev_size"], checks[0]["size"]) == (8, 64)


class TestBenchMigrate:
    def test_migrates_legacy_file_into_ledger_and_baselines(
            self, tmp_path, capsys):
        legacy = tmp_path / "BENCH_batch_pricing.json"
        legacy.write_text(json.dumps({
            "benchmark": "batch_pricing",
            "rows": [{"candidates": 1000, "scalar_per_s": 700.0,
                      "batch_per_s": 8400.0, "speedup": 12.0}],
        }))
        ledger = tmp_path / "ledger.jsonl"
        baselines = tmp_path / "baselines.json"
        assert main(["bench", "--migrate", str(legacy),
                     "--ledger", str(ledger),
                     "--baselines", str(baselines),
                     "--update-baselines"]) == 0
        record = json.loads(ledger.read_text().splitlines()[0])
        assert record["benchmark"] == "batch_pricing"
        assert record["migrated_from"] == "BENCH_batch_pricing.json"
        document = json.loads(baselines.read_text())
        assert document["entries"][0]["source"] == "migrated"

    def test_migrate_missing_file_exits_2(self, tmp_path, capsys):
        assert main(["bench", "--migrate",
                     str(tmp_path / "nope.json")]) == 2


class TestFleetProfileOut:
    def test_profile_reports_phases_and_alloc_counters(
            self, tmp_path, capsys):
        profile_path = tmp_path / "fleet_profile.json"
        assert main(["fleet", "--laps", "2", "--trials", "4",
                     "--profile-out", str(profile_path)]) == 0
        out = capsys.readouterr().out
        assert "Per-phase profile" in out
        assert "Merged hotspots" in out
        assert "B/rollout" in out

        document = json.loads(profile_path.read_text())
        assert document["schema"] == "repro-profile/1"
        names = [r["name"] for r in document["profile"]["records"]]
        assert names == ["fleet.plan", "fleet.gather", "fleet.price",
                         "fleet.solve", "fleet.emit"]
        # every phase span timed; at least one owns a cProfile capture
        assert all(r["wall_s"] >= 0 for r in
                   document["profile"]["records"])
        assert any(r["cpu_captured"] for r in
                   document["profile"]["records"])
        assert document["profile"]["hotspots"]
        # exact allocation accounting from both instrumented kernels
        sites = document["alloc_sites"]
        assert sites["system.fleet.run_fleet"]["bytes"] > 0
        assert sites["hw.batch.batch_estimate"]["bytes"] > 0
        assert document["alloc_bytes"] > 0
        assert document["alloc_bytes_per_rollout"] > 0
        assert document["provenance"]["git_sha"]
