"""Unit tests for SO(3)/SE(3) geometry."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.geometry import (
    SE3,
    exp_so3,
    log_so3,
    quat_conjugate,
    quat_integrate,
    quat_multiply,
    quat_normalize,
    quat_to_rotation,
    rotation_to_quat,
    rotation_x,
    rotation_y,
    rotation_z,
    skew,
    wrap_angle,
)


class TestSkew:
    def test_cross_product_equivalence(self, rng):
        v = rng.normal(size=3)
        u = rng.normal(size=3)
        assert np.allclose(skew(v) @ u, np.cross(v, u))

    def test_antisymmetry(self, rng):
        v = rng.normal(size=3)
        s = skew(v)
        assert np.allclose(s, -s.T)

    def test_bad_shape(self):
        with pytest.raises(ConfigurationError):
            skew(np.zeros(4))


class TestExpLog:
    def test_round_trip(self, rng):
        for _ in range(10):
            omega = rng.normal(size=3)
            omega = omega / np.linalg.norm(omega) \
                * rng.uniform(0.01, 3.0)
            assert np.allclose(log_so3(exp_so3(omega)), omega,
                               atol=1e-8)

    def test_small_angle(self):
        omega = np.array([1e-9, 0, 0])
        r = exp_so3(omega)
        assert np.allclose(r, np.eye(3) + skew(omega), atol=1e-12)

    def test_rotation_is_orthonormal(self, rng):
        r = exp_so3(rng.normal(size=3))
        assert np.allclose(r @ r.T, np.eye(3), atol=1e-12)
        assert np.linalg.det(r) == pytest.approx(1.0)

    def test_axis_rotations_match_exp(self):
        angle = 0.7
        assert np.allclose(rotation_x(angle),
                           exp_so3(np.array([angle, 0, 0])))
        assert np.allclose(rotation_y(angle),
                           exp_so3(np.array([0, angle, 0])))
        assert np.allclose(rotation_z(angle),
                           exp_so3(np.array([0, 0, angle])))


class TestQuaternions:
    def test_normalize_canonical_sign(self):
        q = quat_normalize(np.array([-1.0, 0.0, 0.0, 0.0]))
        assert q[0] >= 0

    def test_zero_rejected(self):
        with pytest.raises(ConfigurationError):
            quat_normalize(np.zeros(4))

    def test_multiply_identity(self, rng):
        q = quat_normalize(rng.normal(size=4))
        identity = np.array([1.0, 0, 0, 0])
        assert np.allclose(quat_multiply(identity, q), q)

    def test_conjugate_inverts(self, rng):
        q = quat_normalize(rng.normal(size=4))
        product = quat_multiply(q, quat_conjugate(q))
        assert np.allclose(product, [1, 0, 0, 0], atol=1e-12)

    def test_rotation_round_trip(self, rng):
        for _ in range(10):
            q = quat_normalize(rng.normal(size=4))
            assert np.allclose(rotation_to_quat(quat_to_rotation(q)),
                               q, atol=1e-8)

    def test_multiply_matches_matrix_product(self, rng):
        q1 = quat_normalize(rng.normal(size=4))
        q2 = quat_normalize(rng.normal(size=4))
        lhs = quat_to_rotation(quat_multiply(q1, q2))
        rhs = quat_to_rotation(q1) @ quat_to_rotation(q2)
        assert np.allclose(lhs, rhs, atol=1e-10)

    def test_integration_matches_exp(self):
        q = np.array([1.0, 0, 0, 0])
        omega = np.array([0.0, 0.0, 1.0])
        q_new = quat_integrate(q, omega, dt=0.5)
        assert np.allclose(quat_to_rotation(q_new), rotation_z(0.5),
                           atol=1e-10)


class TestSE3:
    def test_compose_inverse_is_identity(self, rng):
        t = SE3(exp_so3(rng.normal(size=3)), rng.normal(size=3))
        identity = t.compose(t.inverse())
        assert np.allclose(identity.rotation, np.eye(3), atol=1e-12)
        assert np.allclose(identity.translation, 0.0, atol=1e-12)

    def test_apply_matches_matrix(self, rng):
        t = SE3(exp_so3(rng.normal(size=3)), rng.normal(size=3))
        points = rng.normal(size=(5, 3))
        homogeneous = np.c_[points, np.ones(5)]
        expected = (t.matrix() @ homogeneous.T).T[:, :3]
        assert np.allclose(t.apply(points), expected)

    def test_apply_single_point(self, rng):
        t = SE3.identity()
        p = rng.normal(size=3)
        assert np.allclose(t.apply(p), p)

    def test_distance_zero_to_self(self, rng):
        t = SE3(exp_so3(rng.normal(size=3)), rng.normal(size=3))
        assert t.distance(t) == pytest.approx(0.0, abs=1e-9)

    def test_bad_shapes(self):
        with pytest.raises(ConfigurationError):
            SE3(np.eye(4), np.zeros(3))


class TestWrapAngle:
    def test_wraps_into_range(self):
        assert wrap_angle(3 * np.pi) == pytest.approx(np.pi)
        assert wrap_angle(-3 * np.pi) == pytest.approx(np.pi)
        assert wrap_angle(0.5) == pytest.approx(0.5)

    def test_pi_maps_to_pi(self):
        assert wrap_angle(np.pi) == pytest.approx(np.pi)
