"""Unit tests for rigid-body dynamics (RNEA/CRBA)."""

import numpy as np
import pytest

from repro.core.profile import OpCounter
from repro.errors import ConfigurationError
from repro.kernels.dynamics import (
    KinematicChain,
    Link,
    mass_matrix_profile,
    rnea_profile,
    serial_arm,
    spatial_inertia,
)


@pytest.fixture
def arm():
    return serial_arm(5)


class TestConstruction:
    def test_bad_axis(self):
        with pytest.raises(ConfigurationError):
            Link(joint_axis="w")

    def test_empty_chain(self):
        with pytest.raises(ConfigurationError):
            KinematicChain([])

    def test_negative_mass(self):
        with pytest.raises(ConfigurationError):
            spatial_inertia(-1.0, np.zeros(3), np.eye(3))

    def test_state_shape_checked(self, arm):
        with pytest.raises(ConfigurationError):
            arm.rnea(np.zeros(3), np.zeros(5), np.zeros(5))


class TestRnea:
    def test_pendulum_gravity_torque(self):
        # A single revolute-y link, COM 0.5 m along +x, held at q=0:
        # gravity torque is -m g c about +y.
        pendulum = KinematicChain([Link(
            joint_axis="y", mass=2.0, com=(0.5, 0.0, 0.0),
            inertia_diag=(0.01, 0.01, 0.01),
        )])
        tau = pendulum.rnea(np.zeros(1), np.zeros(1), np.zeros(1))
        assert tau[0] == pytest.approx(-2.0 * 9.81 * 0.5)

    def test_zero_gravity_static_equilibrium(self, rng):
        arm = serial_arm(4)
        weightless = KinematicChain(arm.links, gravity=0.0)
        q = rng.uniform(-1, 1, 4)
        tau = weightless.rnea(q, np.zeros(4), np.zeros(4))
        assert np.allclose(tau, 0.0, atol=1e-10)

    def test_external_force_changes_torque(self, arm, rng):
        q = rng.uniform(-1, 1, 5)
        base = arm.rnea(q, np.zeros(5), np.zeros(5))
        pushed = arm.rnea(q, np.zeros(5), np.zeros(5),
                          external_force=np.array([0, 0, 0, 10.0, 0, 0]))
        assert not np.allclose(base, pushed)

    def test_counter_scales_with_links(self):
        counter3 = OpCounter(name="a")
        counter6 = OpCounter(name="b")
        serial_arm(3).rnea(np.zeros(3), np.zeros(3), np.zeros(3),
                           counter=counter3)
        serial_arm(6).rnea(np.zeros(6), np.zeros(6), np.zeros(6),
                           counter=counter6)
        assert counter6.flops == pytest.approx(2.0 * counter3.flops)


class TestMassMatrix:
    def test_matches_rnea_columns(self, arm, rng):
        q = rng.uniform(-1, 1, 5)
        m = arm.mass_matrix(q)
        bias = arm.bias_forces(q, np.zeros(5))
        for i, unit in enumerate(np.eye(5)):
            column = arm.rnea(q, np.zeros(5), unit) - bias
            assert np.allclose(m[:, i], column, atol=1e-10)

    def test_symmetric_positive_definite(self, arm, rng):
        q = rng.uniform(-1, 1, 5)
        m = arm.mass_matrix(q)
        assert np.allclose(m, m.T, atol=1e-12)
        assert np.linalg.eigvalsh(m).min() > 0


class TestForwardDynamics:
    def test_inverse_of_rnea(self, arm, rng):
        q = rng.uniform(-1, 1, 5)
        qd = rng.uniform(-1, 1, 5)
        qdd = rng.uniform(-1, 1, 5)
        tau = arm.rnea(q, qd, qdd)
        recovered = arm.forward_dynamics(q, qd, tau)
        assert np.allclose(recovered, qdd, atol=1e-9)

    def test_energy_conservation(self):
        arm = serial_arm(3)
        q = np.array([0.3, -0.4, 0.2])
        qd = np.array([0.1, 0.2, -0.1])
        initial = arm.total_energy(q, qd)
        dt = 5e-5
        for _ in range(2000):
            qdd = arm.forward_dynamics(q, qd, np.zeros(3))
            qd = qd + dt * qdd
            q = q + dt * qd
        drift = abs(arm.total_energy(q, qd) - initial)
        assert drift < 5e-3


class TestProfiles:
    def test_rnea_profile_linear_in_links(self):
        assert rnea_profile(14).flops == pytest.approx(
            2.0 * rnea_profile(7).flops
        )

    def test_crba_profile_quadratic_growth(self):
        small = mass_matrix_profile(4).flops
        large = mass_matrix_profile(8).flops
        assert large > 2.0 * small  # superlinear

    def test_profiles_are_dynamics_class(self):
        assert rnea_profile(7).op_class == "dynamics"
        assert mass_matrix_profile(7).op_class == "dynamics"
