"""Unit tests for data association (greedy vs Hungarian)."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.vision.association import (
    assignment_cost,
    association_profile,
    greedy_assignment,
    optimal_assignment,
)


class TestGreedy:
    def test_obvious_diagonal(self):
        cost = np.array([[0.1, 9.0], [9.0, 0.2]])
        assert greedy_assignment(cost) == [(0, 0), (1, 1)]

    def test_gating(self):
        cost = np.array([[0.1, 9.0], [9.0, 8.0]])
        matches = greedy_assignment(cost, max_cost=1.0)
        assert matches == [(0, 0)]

    def test_rectangular(self):
        cost = np.array([[1.0, 0.1, 5.0]])
        assert greedy_assignment(cost) == [(0, 1)]

    def test_each_row_col_once(self, rng):
        cost = rng.random((6, 8))
        matches = greedy_assignment(cost)
        rows = [r for r, _ in matches]
        cols = [c for _, c in matches]
        assert len(set(rows)) == len(rows) == 6
        assert len(set(cols)) == len(cols)

    def test_invalid_matrix(self):
        with pytest.raises(ConfigurationError):
            greedy_assignment(np.zeros((0, 3)))
        with pytest.raises(ConfigurationError):
            greedy_assignment(np.array([[np.nan]]))


class TestOptimal:
    def test_beats_greedy_on_adversarial_case(self):
        # Greedy grabs (0,0)=1 and is forced into (1,1)=100;
        # optimal takes 2 + 2 = 4.
        cost = np.array([[1.0, 2.0], [2.0, 100.0]])
        greedy = greedy_assignment(cost)
        optimal = optimal_assignment(cost)
        assert assignment_cost(cost, optimal) \
            < assignment_cost(cost, greedy)
        assert optimal == [(0, 1), (1, 0)]

    def test_never_worse_than_greedy(self, rng):
        for _ in range(20):
            cost = rng.random((7, 7))
            greedy_cost = assignment_cost(cost,
                                          greedy_assignment(cost))
            optimal_cost = assignment_cost(cost,
                                           optimal_assignment(cost))
            assert optimal_cost <= greedy_cost + 1e-12

    def test_gating_after_optimum(self):
        cost = np.array([[0.1, 9.0], [9.0, 8.0]])
        matches = optimal_assignment(cost, max_cost=1.0)
        assert matches == [(0, 0)]

    def test_agrees_with_greedy_on_well_separated(self, rng):
        # Near-diagonal costs: both should find the diagonal.
        n = 8
        cost = rng.random((n, n)) + 10.0
        cost[np.arange(n), np.arange(n)] = rng.random(n)
        assert greedy_assignment(cost) == optimal_assignment(cost)


class TestProfiles:
    def test_optimal_costs_more_ops(self):
        greedy = association_profile(50, 50, optimal=False)
        hungarian = association_profile(50, 50, optimal=True)
        assert hungarian.int_ops > greedy.int_ops

    def test_search_class(self):
        assert association_profile(10, 10).op_class == "search"

    def test_invalid(self):
        with pytest.raises(ConfigurationError):
            association_profile(0, 5)
