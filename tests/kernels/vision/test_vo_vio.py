"""Unit tests for rigid motion estimation and the VIO pipeline."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.slam import ate_rmse, make_scenario
from repro.kernels.vision import (
    VioConfig,
    CameraModel,
    estimate_rigid_2d,
    ransac_rigid_2d,
    run_vio,
)
from repro.kernels.vision.vo import rigid_residuals


def _random_rigid(rng):
    angle = rng.uniform(-np.pi, np.pi)
    c, s = np.cos(angle), np.sin(angle)
    rotation = np.array([[c, -s], [s, c]])
    translation = rng.uniform(-2, 2, size=2)
    return rotation, translation


class TestEstimateRigid:
    def test_exact_recovery(self, rng):
        rotation, translation = _random_rigid(rng)
        src = rng.normal(size=(20, 2))
        dst = src @ rotation.T + translation
        r_est, t_est = estimate_rigid_2d(src, dst)
        assert np.allclose(r_est, rotation, atol=1e-9)
        assert np.allclose(t_est, translation, atol=1e-9)

    def test_noisy_recovery(self, rng):
        rotation, translation = _random_rigid(rng)
        src = rng.normal(size=(50, 2))
        dst = src @ rotation.T + translation \
            + rng.normal(0, 0.01, size=(50, 2))
        r_est, t_est = estimate_rigid_2d(src, dst)
        assert np.allclose(r_est, rotation, atol=0.02)
        assert np.allclose(t_est, translation, atol=0.02)

    def test_rotation_is_proper(self, rng):
        src = rng.normal(size=(10, 2))
        dst = rng.normal(size=(10, 2))  # arbitrary correspondence
        r_est, _ = estimate_rigid_2d(src, dst)
        assert np.linalg.det(r_est) == pytest.approx(1.0)

    def test_too_few_points(self):
        with pytest.raises(ConfigurationError):
            estimate_rigid_2d(np.zeros((1, 2)), np.zeros((1, 2)))


class TestRansac:
    def test_rejects_outliers(self, rng):
        rotation, translation = _random_rigid(rng)
        src = rng.normal(size=(40, 2))
        dst = src @ rotation.T + translation
        # Corrupt 25% of the matches.
        dst[:10] += rng.uniform(3, 5, size=(10, 2))
        r_est, t_est, inliers = ransac_rigid_2d(
            src, dst, inlier_threshold=0.05, iterations=100, seed=0
        )
        assert inliers.sum() >= 28
        assert not inliers[:10].any()
        assert np.allclose(r_est, rotation, atol=1e-6)

    def test_residuals(self, rng):
        rotation, translation = _random_rigid(rng)
        src = rng.normal(size=(5, 2))
        dst = src @ rotation.T + translation
        res = rigid_residuals(src, dst, rotation, translation)
        assert np.allclose(res, 0.0, atol=1e-12)


class TestVioPipeline:
    @pytest.fixture(scope="class")
    def scenario(self):
        return make_scenario(n_steps=30, n_landmarks=120, arena=20.0,
                             speed=0.3, turn_rate=0.08,
                             motion_noise=(0.15, 0.05), seed=9)

    def test_tracks_trajectory(self, scenario):
        config = VioConfig(
            camera=CameraModel(image_size=96, pixels_per_meter=8.0),
            seed=1,
        )
        result = run_vio(scenario, config)
        err = ate_rmse(result.trajectory, scenario.true_poses)
        assert err < 1.0
        assert result.trajectory.shape == scenario.true_poses.shape

    def test_beats_noisy_dead_reckoning(self, scenario):
        """With poor odometry, vision should dominate (the VIO value
        proposition)."""
        from repro.kernels.slam import dead_reckoning
        result = run_vio(scenario, VioConfig(seed=2))
        vio_err = ate_rmse(result.trajectory, scenario.true_poses)
        dr_err = ate_rmse(dead_reckoning(scenario),
                          scenario.true_poses)
        assert vio_err < dr_err

    def test_stage_profiles_present(self, scenario):
        result = run_vio(scenario, VioConfig(seed=3))
        assert set(result.stage_profiles) == {
            "detect", "track", "estimate", "fuse"
        }
        assert result.stage_profiles["detect"].flops > 0
        assert result.stage_profiles["track"].flops > 0

    def test_tracked_counts_recorded(self, scenario):
        result = run_vio(scenario, VioConfig(seed=4))
        assert len(result.tracked_counts) == scenario.n_steps
