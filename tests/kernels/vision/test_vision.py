"""Unit tests for synthetic imaging, features, flow, and stereo."""

import numpy as np
import pytest

from repro.core.profile import OpCounter
from repro.errors import ConfigurationError
from repro.kernels.vision import (
    CameraModel,
    block_matching_disparity,
    harris_corners,
    lucas_kanade,
    render_landmark_image,
    visible_landmarks,
)
from repro.kernels.vision.features import harris_profile
from repro.kernels.vision.optical_flow import lk_profile
from repro.kernels.vision.stereo import stereo_profile


@pytest.fixture
def camera():
    return CameraModel(image_size=64, pixels_per_meter=8.0,
                       noise_std=0.005)


class TestCameraModel:
    def test_projection_round_trip(self, camera):
        pose = np.array([3.0, 4.0, 0.7])
        point = np.array([3.5, 4.5])
        pixel = camera.world_to_pixel(pose, point)
        body = camera.pixel_to_body(pixel)
        # Body coordinates should rotate/translate back to the point.
        c, s = np.cos(pose[2]), np.sin(pose[2])
        world = pose[:2] + np.array([c * body[0] - s * body[1],
                                     s * body[0] + c * body[1]])
        assert np.allclose(world, point, atol=1e-9)

    def test_robot_at_center(self, camera):
        pose = np.array([1.0, 2.0, 0.3])
        pixel = camera.world_to_pixel(pose, pose[:2])
        assert np.allclose(pixel, [32.0, 32.0])

    def test_visible_landmarks_filtering(self, camera):
        pose = np.array([0.0, 0.0, 0.0])
        landmarks = np.array([[0.5, 0.5], [100.0, 100.0]])
        visible = visible_landmarks(camera, pose, landmarks)
        assert [lm_id for lm_id, _ in visible] == [0]

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            CameraModel(image_size=4)


class TestRendering:
    def test_blob_at_landmark(self, camera):
        pose = np.array([0.0, 0.0, 0.0])
        landmarks = np.array([[1.0, 0.0]])
        image = render_landmark_image(camera, pose, landmarks, seed=0)
        pixel = camera.world_to_pixel(pose, landmarks[0])
        px, py = int(round(pixel[0])), int(round(pixel[1]))
        assert image[py, px] > 0.5
        assert image[5, 5] < 0.2  # background


class TestHarris:
    def test_detects_rendered_landmarks(self, camera):
        pose = np.array([0.0, 0.0, 0.0])
        landmarks = np.array([[1.0, 1.0], [-2.0, 0.5], [0.5, -2.0]])
        image = render_landmark_image(camera, pose, landmarks, seed=1)
        corners = harris_corners(image, max_corners=10)
        assert corners.shape[0] >= 3
        # Each landmark projection should be near a detected corner.
        for lm in landmarks:
            pixel = camera.world_to_pixel(pose, lm)
            dists = np.linalg.norm(corners - pixel, axis=1)
            assert dists.min() < 3.0

    def test_blank_image_no_corners(self):
        corners = harris_corners(np.zeros((32, 32)))
        assert corners.shape == (0, 2)

    def test_max_corners_respected(self, camera, rng):
        image = rng.random((64, 64))
        corners = harris_corners(image, max_corners=5)
        assert corners.shape[0] <= 5

    def test_counter_scales_with_pixels(self):
        c1, c2 = OpCounter(name="a"), OpCounter(name="b")
        harris_corners(np.zeros((32, 32)) + 0.0, counter=c1)
        harris_corners(np.zeros((64, 64)) + 0.0, counter=c2)
        assert c2.flops == pytest.approx(4.0 * c1.flops)

    def test_profile_is_stencil(self):
        assert harris_profile(64).op_class == "stencil"


class TestLucasKanade:
    def test_recovers_known_shift(self, camera):
        pose1 = np.array([0.0, 0.0, 0.0])
        pose2 = np.array([0.25, 0.0, 0.0])  # 2 px shift at 8 px/m
        landmarks = np.array([[1.0, 1.0], [-1.5, 0.5], [0.5, -1.5]])
        img1 = render_landmark_image(camera, pose1, landmarks, seed=2)
        img2 = render_landmark_image(camera, pose2, landmarks, seed=3)
        corners = harris_corners(img1, max_corners=5)
        tracked, status = lucas_kanade(img1, img2, corners)
        moved = tracked[status] - corners[status]
        # Forward robot motion (+x body) shifts blobs by -2 px in x.
        assert np.allclose(moved[:, 0].mean(), -2.0, atol=0.5)
        assert np.allclose(moved[:, 1].mean(), 0.0, atol=0.5)

    def test_border_points_fail_status(self):
        img = np.random.default_rng(0).random((32, 32))
        tracked, status = lucas_kanade(img, img,
                                       np.array([[1.0, 1.0]]))
        assert not status[0]

    def test_zero_motion(self, camera):
        pose = np.array([0.0, 0.0, 0.0])
        landmarks = np.array([[1.0, 1.0]])
        img = render_landmark_image(camera, pose, landmarks, seed=4)
        corners = harris_corners(img, max_corners=3)
        tracked, status = lucas_kanade(img, img, corners)
        assert np.allclose(tracked[status], corners[status],
                           atol=0.1)

    def test_shape_mismatch(self):
        with pytest.raises(ConfigurationError):
            lucas_kanade(np.zeros((10, 10)), np.zeros((12, 12)),
                         np.array([[5.0, 5.0]]))

    def test_profile(self):
        assert lk_profile(100).op_class == "stencil"


class TestStereo:
    def test_recovers_uniform_disparity(self, rng):
        left = rng.random((40, 80))
        shift = 5
        right = np.roll(left, -shift, axis=1)
        disparity = block_matching_disparity(left, right,
                                             max_disparity=10)
        interior = disparity[10:-10, 15:-15]
        # Majority of interior pixels recover the true shift.
        assert np.median(interior) == shift

    def test_zero_disparity_for_identical(self, rng):
        img = rng.random((30, 60))
        disparity = block_matching_disparity(img, img,
                                             max_disparity=8)
        assert np.median(disparity[5:-5, 10:-10]) == 0

    def test_too_small_image_rejected(self):
        with pytest.raises(ConfigurationError):
            block_matching_disparity(np.zeros((10, 10)),
                                     np.zeros((10, 10)),
                                     max_disparity=16)

    def test_profile_integer_heavy(self):
        p = stereo_profile(128)
        assert p.int_ops > p.flops
