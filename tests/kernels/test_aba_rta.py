"""Unit tests for the ABA forward dynamics and response-time analysis."""

import numpy as np
import pytest

from repro.core.profile import OpCounter
from repro.errors import ConfigurationError
from repro.kernels.dynamics import serial_arm
from repro.system.scheduler import (
    PeriodicTask,
    SchedulerPolicy,
    response_time_analysis,
    simulate_scheduler,
)


class TestAba:
    @pytest.mark.parametrize("n_links", [1, 3, 6, 10])
    def test_matches_mass_matrix_method(self, n_links, rng):
        arm = serial_arm(n_links)
        q = rng.uniform(-1.5, 1.5, n_links)
        qd = rng.uniform(-1.0, 1.0, n_links)
        tau = rng.uniform(-3.0, 3.0, n_links)
        via_crba = arm.forward_dynamics(q, qd, tau)
        via_aba = arm.aba(q, qd, tau)
        assert np.allclose(via_aba, via_crba, atol=1e-10)

    def test_inverse_of_rnea(self, rng):
        arm = serial_arm(5)
        q = rng.uniform(-1, 1, 5)
        qd = rng.uniform(-1, 1, 5)
        qdd = rng.uniform(-1, 1, 5)
        tau = arm.rnea(q, qd, qdd)
        assert np.allclose(arm.aba(q, qd, tau), qdd, atol=1e-9)

    def test_gravity_only_free_fall(self):
        arm = serial_arm(2)
        qdd = arm.aba(np.zeros(2), np.zeros(2), np.zeros(2))
        # With gravity and zero torque, the arm accelerates.
        assert np.abs(qdd).max() > 0.1

    def test_counter_linear_in_links(self):
        c3, c6 = OpCounter(name="a"), OpCounter(name="b")
        serial_arm(3).aba(np.zeros(3), np.zeros(3), np.zeros(3),
                          counter=c3)
        serial_arm(6).aba(np.zeros(6), np.zeros(6), np.zeros(6),
                          counter=c6)
        assert c6.flops == pytest.approx(2.0 * c3.flops)

    def test_state_shape_validated(self):
        arm = serial_arm(3)
        with pytest.raises(ConfigurationError):
            arm.aba(np.zeros(2), np.zeros(3), np.zeros(3))


class TestResponseTimeAnalysis:
    def _tasks(self, scale=1.0):
        return [
            PeriodicTask("hi", period_s=0.01, wcet_s=0.002 * scale,
                         priority=0),
            PeriodicTask("mid", period_s=0.05, wcet_s=0.010 * scale,
                         priority=1),
            PeriodicTask("lo", period_s=0.1, wcet_s=0.020 * scale,
                         priority=2),
        ]

    def test_highest_priority_response_is_own_wcet(self):
        response = response_time_analysis(self._tasks())
        assert response["hi"] == pytest.approx(0.002)

    def test_interference_accumulates_downward(self):
        response = response_time_analysis(self._tasks())
        assert response["mid"] > 0.010
        assert response["lo"] > response["mid"]

    def test_exact_recurrence_value(self):
        # lo: R = 0.02 + ceil(R/0.01)*0.002 + ceil(R/0.05)*0.01
        # fixed point: R = 0.038 -> ceil(3.8)=4, ceil(0.76)=1
        #   0.02 + 4*0.002 + 1*0.01 = 0.038  (consistent)
        response = response_time_analysis(self._tasks())
        assert response["lo"] == pytest.approx(0.038)

    def test_schedulable_set_passes_and_simulation_agrees(self):
        tasks = self._tasks()
        response = response_time_analysis(tasks)
        assert all(response[t.name] <= t.period_s for t in tasks)
        outcome = simulate_scheduler(tasks,
                                     SchedulerPolicy.FIXED_PRIORITY,
                                     duration_s=1.0,
                                     time_step_s=1e-4)
        assert outcome.miss_rate == 0.0

    def test_unschedulable_set_detected_and_simulation_agrees(self):
        tasks = self._tasks(scale=2.5)
        response = response_time_analysis(tasks)
        assert response["lo"] == float("inf")
        outcome = simulate_scheduler(tasks,
                                     SchedulerPolicy.FIXED_PRIORITY,
                                     duration_s=1.0,
                                     time_step_s=1e-4)
        assert outcome.per_task_misses["lo"] > 0

    def test_simulated_response_never_exceeds_analysis(self):
        """RTA is the *worst case*: simulation can do better, never
        worse (on the synchronous release pattern we simulate)."""
        tasks = self._tasks()
        response = response_time_analysis(tasks)
        outcome = simulate_scheduler(tasks,
                                     SchedulerPolicy.FIXED_PRIORITY,
                                     duration_s=1.0,
                                     time_step_s=1e-4)
        assert outcome.max_lateness_s == 0.0
        assert all(np.isfinite(response[t.name]) for t in tasks)

    def test_empty_tasks_rejected(self):
        with pytest.raises(ConfigurationError):
            response_time_analysis([])
