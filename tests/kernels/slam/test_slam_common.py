"""Unit tests for SLAM scenario generation and metrics."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.slam.common import (
    ate_rmse,
    dead_reckoning,
    make_scenario,
    motion_model,
    observe,
)


class TestMotionModel:
    def test_straight_line(self):
        pose = motion_model(np.array([0.0, 0.0, 0.0]),
                            np.array([1.0, 0.0]))
        assert np.allclose(pose, [1.0, 0.0, 0.0])

    def test_turn_in_place(self):
        pose = motion_model(np.array([0.0, 0.0, 0.0]),
                            np.array([0.0, np.pi / 2]))
        assert pose[2] == pytest.approx(np.pi / 2)

    def test_heading_wraps(self):
        pose = motion_model(np.array([0.0, 0.0, 3.0]),
                            np.array([0.0, 1.0]))
        assert -np.pi < pose[2] <= np.pi


class TestObserve:
    def test_range_and_bearing(self):
        rng_m, bearing = observe(np.array([0.0, 0.0, 0.0]),
                                 np.array([3.0, 4.0]))
        assert rng_m == pytest.approx(5.0)
        assert bearing == pytest.approx(np.arctan2(4.0, 3.0))

    def test_bearing_relative_to_heading(self):
        _, bearing = observe(np.array([0.0, 0.0, np.pi / 2]),
                             np.array([0.0, 5.0]))
        assert bearing == pytest.approx(0.0)


class TestScenario:
    def test_shapes(self):
        sc = make_scenario(n_steps=30, n_landmarks=10, seed=1)
        assert sc.true_poses.shape == (31, 3)
        assert sc.odometry.shape == (30, 2)
        assert len(sc.observations) == 30
        assert sc.n_landmarks == 10

    def test_observations_within_range(self):
        sc = make_scenario(n_steps=30, n_landmarks=10, max_range=5.0,
                           seed=2)
        for step, obs_list in enumerate(sc.observations):
            pose = sc.true_poses[step + 1]
            for obs in obs_list:
                true_range, _ = observe(pose,
                                        sc.landmarks[obs.landmark_id])
                assert true_range <= 5.0

    def test_reproducible(self):
        a = make_scenario(n_steps=10, seed=3)
        b = make_scenario(n_steps=10, seed=3)
        assert np.allclose(a.odometry, b.odometry)
        assert np.allclose(a.true_poses, b.true_poses)

    def test_invalid_args(self):
        with pytest.raises(ConfigurationError):
            make_scenario(n_steps=0)


class TestAte:
    def test_zero_for_identical(self):
        traj = np.random.default_rng(0).normal(size=(10, 3))
        assert ate_rmse(traj, traj) == 0.0

    def test_known_offset(self):
        truth = np.zeros((5, 3))
        shifted = truth.copy()
        shifted[:, 0] = 3.0
        shifted[:, 1] = 4.0
        assert ate_rmse(shifted, truth) == pytest.approx(5.0)

    def test_length_mismatch(self):
        with pytest.raises(ConfigurationError):
            ate_rmse(np.zeros((5, 3)), np.zeros((6, 3)))


class TestDeadReckoning:
    def test_drifts_with_noise(self):
        sc = make_scenario(n_steps=100, seed=4)
        dr = dead_reckoning(sc)
        assert dr.shape == sc.true_poses.shape
        assert ate_rmse(dr, sc.true_poses) > 0.01
