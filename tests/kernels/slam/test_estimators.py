"""Unit tests for the three SLAM estimators (EKF, FastSLAM, graph)."""

import numpy as np
import pytest

from repro.kernels.slam import (
    EkfSlam,
    FastSlam,
    GraphSlam,
    ate_rmse,
    build_pose_graph,
    dead_reckoning,
    make_scenario,
)
from repro.kernels.slam.graph_slam import PoseGraph


@pytest.fixture(scope="module")
def scenario():
    return make_scenario(n_steps=80, n_landmarks=15, seed=1)


class TestEkfSlam:
    def test_beats_dead_reckoning(self, scenario):
        ekf = EkfSlam(scenario.true_poses[0],
                      motion_noise=scenario.motion_noise,
                      measurement_noise=scenario.measurement_noise)
        traj = ekf.run(scenario)
        dr_err = ate_rmse(dead_reckoning(scenario),
                          scenario.true_poses)
        assert ate_rmse(traj, scenario.true_poses) < dr_err

    def test_landmarks_converge(self, scenario):
        ekf = EkfSlam(scenario.true_poses[0],
                      motion_noise=scenario.motion_noise,
                      measurement_noise=scenario.measurement_noise)
        ekf.run(scenario)
        # Every mapped landmark should be within 1 m of truth.
        for lm_id in ekf.landmark_index:
            err = np.linalg.norm(ekf.landmark(lm_id)
                                 - scenario.landmarks[lm_id])
            assert err < 1.0

    def test_covariance_stays_symmetric(self, scenario):
        ekf = EkfSlam(scenario.true_poses[0])
        ekf.run(scenario)
        assert np.allclose(ekf.cov, ekf.cov.T, atol=1e-9)

    def test_profile_is_gemm_class(self, scenario):
        ekf = EkfSlam(scenario.true_poses[0])
        ekf.run(scenario)
        profile = ekf.profile()
        assert profile.op_class == "gemm"
        assert profile.flops > 0


class TestFastSlam:
    def test_beats_dead_reckoning(self, scenario):
        fs = FastSlam(scenario.true_poses[0], n_particles=40,
                      motion_noise=scenario.motion_noise,
                      measurement_noise=scenario.measurement_noise,
                      seed=2)
        traj = fs.run(scenario)
        dr_err = ate_rmse(dead_reckoning(scenario),
                          scenario.true_poses)
        assert ate_rmse(traj, scenario.true_poses) < dr_err

    def test_weights_normalized(self, scenario):
        fs = FastSlam(scenario.true_poses[0], n_particles=20, seed=3)
        fs.predict(scenario.odometry[0])
        fs.update(scenario.observations[0])
        total = sum(p.weight for p in fs.particles)
        assert total == pytest.approx(1.0)

    def test_more_particles_no_worse(self, scenario):
        few = FastSlam(scenario.true_poses[0], n_particles=5,
                       motion_noise=scenario.motion_noise,
                       measurement_noise=scenario.measurement_noise,
                       seed=4).run(scenario)
        many = FastSlam(scenario.true_poses[0], n_particles=60,
                        motion_noise=scenario.motion_noise,
                        measurement_noise=scenario.measurement_noise,
                        seed=4).run(scenario)
        few_err = ate_rmse(few, scenario.true_poses)
        many_err = ate_rmse(many, scenario.true_poses)
        assert many_err < few_err * 1.5  # at least not much worse

    def test_profile_divergent(self, scenario):
        fs = FastSlam(scenario.true_poses[0], n_particles=10, seed=5)
        fs.run(scenario)
        from repro.core.profile import DivergenceClass
        assert fs.profile().divergence == DivergenceClass.HIGH


class TestGraphSlam:
    def test_chi2_decreases(self, scenario):
        graph = build_pose_graph(scenario)
        trace = GraphSlam(graph).optimize(iterations=10)
        assert trace[-1] < trace[0]

    def test_improves_dead_reckoning(self, scenario):
        graph = build_pose_graph(scenario)
        before = ate_rmse(graph.poses, scenario.true_poses)
        GraphSlam(graph).optimize(iterations=15)
        after = ate_rmse(graph.poses, scenario.true_poses)
        assert after < before

    def test_relative_pose_round_trip(self, rng):
        a = np.array([1.0, 2.0, 0.5])
        b = np.array([2.0, 1.0, -0.7])
        rel = PoseGraph.relative_pose(a, b)
        # Composing a with rel must give b.
        c, s = np.cos(a[2]), np.sin(a[2])
        xy = a[:2] + np.array([c * rel[0] - s * rel[1],
                               s * rel[0] + c * rel[1]])
        assert np.allclose(xy, b[:2])
        assert (a[2] + rel[2]) == pytest.approx(b[2])

    def test_perfect_edges_zero_chi2(self):
        poses = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0],
                          [2.0, 0.0, 0.0]])
        graph = PoseGraph(poses)
        graph.add_edge(0, 1, PoseGraph.relative_pose(poses[0],
                                                     poses[1]))
        graph.add_edge(1, 2, PoseGraph.relative_pose(poses[1],
                                                     poses[2]))
        assert graph.chi2() == pytest.approx(0.0, abs=1e-12)

    def test_graph_slam_is_most_accurate(self, scenario):
        """The E1 backbone: the modern method wins on task quality."""
        ekf = EkfSlam(scenario.true_poses[0],
                      motion_noise=scenario.motion_noise,
                      measurement_noise=scenario.measurement_noise)
        ekf_err = ate_rmse(ekf.run(scenario), scenario.true_poses)
        graph = build_pose_graph(scenario)
        GraphSlam(graph).optimize(iterations=15)
        graph_err = ate_rmse(graph.poses, scenario.true_poses)
        assert graph_err < ekf_err
