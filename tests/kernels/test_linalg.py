"""Unit tests for instrumented linear algebra."""

import numpy as np
import pytest

from repro.core.profile import OpCounter
from repro.errors import ConfigurationError
from repro.kernels.linalg import (
    cholesky,
    cholesky_profile,
    gemm_profile,
    gemv_profile,
    matmul,
    matvec,
    qr_decomposition,
    solve_spd,
    solve_triangular,
)


@pytest.fixture
def spd():
    rng = np.random.default_rng(0)
    a = rng.normal(size=(8, 8))
    return a @ a.T + 8 * np.eye(8)


class TestMatmul:
    def test_correctness(self, rng):
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(6, 3))
        assert np.allclose(matmul(a, b), a @ b)

    def test_counts_flops(self, rng):
        a = rng.normal(size=(4, 6))
        b = rng.normal(size=(6, 3))
        counter = OpCounter(name="m")
        matmul(a, b, counter=counter)
        assert counter.flops == 2 * 4 * 3 * 6

    def test_shape_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            matmul(rng.normal(size=(3, 3)), rng.normal(size=(4, 4)))

    def test_matvec(self, rng):
        a = rng.normal(size=(5, 4))
        x = rng.normal(size=4)
        counter = OpCounter(name="mv")
        assert np.allclose(matvec(a, x, counter=counter), a @ x)
        assert counter.flops == 2 * 5 * 4


class TestCholesky:
    def test_factor_reconstructs(self, spd):
        low = cholesky(spd)
        assert np.allclose(low @ low.T, spd)

    def test_counts(self, spd):
        counter = OpCounter(name="c")
        cholesky(spd, counter=counter)
        n = spd.shape[0]
        assert counter.flops == pytest.approx(n ** 3 / 3 + n ** 2)

    def test_non_square_rejected(self, rng):
        with pytest.raises(ConfigurationError):
            cholesky(rng.normal(size=(3, 4)))


class TestTriangularSolve:
    def test_lower(self, spd):
        low = cholesky(spd)
        b = np.arange(8, dtype=float)
        x = solve_triangular(low, b, lower=True)
        assert np.allclose(low @ x, b)

    def test_upper(self, spd):
        low = cholesky(spd)
        b = np.arange(8, dtype=float)
        x = solve_triangular(low.T, b, lower=False)
        assert np.allclose(low.T @ x, b)

    def test_singular_rejected(self):
        singular = np.zeros((3, 3))
        with pytest.raises(ConfigurationError):
            solve_triangular(singular, np.ones(3))

    def test_solve_spd_full(self, spd):
        b = np.arange(8, dtype=float)
        x = solve_spd(spd, b)
        assert np.allclose(spd @ x, b)


class TestQr:
    def test_orthogonality(self, rng):
        a = rng.normal(size=(10, 6))
        q, r = qr_decomposition(a)
        assert np.allclose(q.T @ q, np.eye(6), atol=1e-10)
        assert np.allclose(q @ r, a)


class TestClosedFormProfiles:
    def test_gemm_profile_matches_counter(self):
        p = gemm_profile(64, 32, 16)
        assert p.flops == 2 * 64 * 32 * 16
        assert p.op_class == "gemm"
        assert p.parallel_fraction == 1.0

    def test_cholesky_profile_parallelism_grows(self):
        small = cholesky_profile(4)
        large = cholesky_profile(400)
        assert large.parallel_fraction > small.parallel_fraction

    def test_cholesky_profile_invalid(self):
        with pytest.raises(ConfigurationError):
            cholesky_profile(0)

    def test_gemv_is_memory_bound_shape(self):
        p = gemv_profile(1000, 1000)
        assert p.arithmetic_intensity < 1.0
