"""Unit tests for worlds, grids, and the two collision checkers."""

import numpy as np
import pytest

from repro.core.profile import DivergenceClass
from repro.errors import ConfigurationError
from repro.kernels.planning import (
    BatchCollisionChecker,
    CircleWorld,
    OccupancyGrid,
    ScalarCollisionChecker,
    collision_profile,
)


class TestCircleWorld:
    def test_clearance(self):
        world = CircleWorld([0, 0], [10, 10],
                            centers=[[5.0, 5.0]], radii=[1.0])
        assert world.clearance(np.array([5.0, 7.0])) \
            == pytest.approx(1.0)
        assert world.clearance(np.array([5.0, 5.0])) \
            == pytest.approx(-1.0)

    def test_no_obstacles_infinite_clearance(self):
        world = CircleWorld([0, 0], [1, 1])
        assert world.clearance(np.array([0.5, 0.5])) == float("inf")

    def test_contains(self):
        world = CircleWorld([0, 0], [10, 10])
        assert world.contains(np.array([5.0, 5.0]))[0]
        assert not world.contains(np.array([-1.0, 5.0]))[0]

    def test_random_reproducible(self):
        a = CircleWorld.random(seed=5)
        b = CircleWorld.random(seed=5)
        assert np.allclose(a.centers, b.centers)

    def test_corners_kept_free(self):
        world = CircleWorld.random(n_obstacles=100, seed=6,
                                   keep_corners_free=1.0)
        assert world.clearance(world.lower) > 1.0
        assert world.clearance(world.upper) > 1.0

    def test_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            CircleWorld([0, 0], [0, 0])

    def test_sample_free(self, small_world, rng):
        point = small_world.sample_free(rng)
        assert small_world.clearance(point) > 0


class TestCheckersAgree:
    """The central E5 precondition: the two implementations are
    functionally identical."""

    def test_point_agreement(self, small_world, rng):
        scalar = ScalarCollisionChecker(small_world)
        batch = BatchCollisionChecker(small_world)
        points = rng.uniform(0, 10, size=(200, 2))
        scalar_results = [scalar.point_free(p) for p in points]
        batch_results = batch.points_free(points)
        assert list(batch_results) == scalar_results

    def test_segment_agreement(self, small_world, rng):
        scalar = ScalarCollisionChecker(small_world)
        batch = BatchCollisionChecker(small_world)
        for _ in range(30):
            a = rng.uniform(0, 10, size=2)
            b = rng.uniform(0, 10, size=2)
            assert (scalar.segment_free(a, b)
                    == batch.segment_free(a, b))

    def test_batch_segments_match_loop(self, small_world, rng):
        batch = BatchCollisionChecker(small_world)
        starts = rng.uniform(0, 10, size=(20, 2))
        ends = rng.uniform(0, 10, size=(20, 2))
        vectorized = batch.segments_free(starts, ends)
        looped = [batch.segment_free(s, e)
                  for s, e in zip(starts, ends)]
        assert list(vectorized) == looped


class TestCheckerProfiles:
    def test_scalar_profile_divergent(self, small_world):
        checker = ScalarCollisionChecker(small_world)
        checker.point_free(np.array([5.0, 5.0]))
        profile = checker.profile()
        assert profile.divergence == DivergenceClass.HIGH
        assert profile.parallel_fraction < 0.5

    def test_batch_profile_dense(self, small_world):
        checker = BatchCollisionChecker(small_world)
        checker.points_free(np.random.default_rng(0)
                            .uniform(0, 10, size=(50, 2)))
        profile = checker.profile()
        assert profile.divergence == DivergenceClass.NONE
        assert profile.parallel_fraction > 0.99

    def test_batch_does_more_raw_work(self, small_world, rng):
        """No early exit: the vectorized kernel counts more flops —
        and still wins on hardware.  That asymmetry is the experiment."""
        points = rng.uniform(0, 10, size=(100, 2))
        scalar = ScalarCollisionChecker(small_world)
        batch = BatchCollisionChecker(small_world)
        for p in points:
            scalar.point_free(p)
        batch.points_free(points)
        assert batch.counter.flops >= scalar.counter.flops

    def test_closed_form_profile(self):
        vec = collision_profile(1000, 50, vectorized=True)
        ser = collision_profile(1000, 50, vectorized=False)
        assert vec.flops > ser.flops
        assert vec.divergence == DivergenceClass.NONE
        assert ser.divergence == DivergenceClass.HIGH

    def test_closed_form_invalid(self):
        with pytest.raises(ConfigurationError):
            collision_profile(-1, 10)


class TestOccupancyGrid:
    def test_world_cell_round_trip(self):
        grid = OccupancyGrid(100, 50, resolution=0.1)
        row, col = grid.world_to_cell([5.05, 2.55])
        assert (row, col) == (25, 50)
        world = grid.cell_to_world(25, 50)
        assert np.allclose(world, [5.05, 2.55])

    def test_out_of_bounds(self):
        grid = OccupancyGrid(10, 10, resolution=1.0)
        with pytest.raises(ConfigurationError):
            grid.world_to_cell([100.0, 0.0])

    def test_add_circle_occupies(self):
        grid = OccupancyGrid(100, 100, resolution=0.1)
        grid.add_circle([5.0, 5.0], 1.0)
        assert not grid.is_free(*grid.world_to_cell([5.0, 5.0]))
        assert grid.is_free(*grid.world_to_cell([9.0, 9.0]))
        assert 0.0 < grid.occupancy_fraction() < 0.1

    def test_inflate_grows_obstacles(self):
        grid = OccupancyGrid(100, 100, resolution=0.1)
        grid.add_circle([5.0, 5.0], 0.5)
        inflated = grid.inflate(0.5)
        assert (inflated.occupancy_fraction()
                > grid.occupancy_fraction())
        # Original grid untouched: a point 0.9 m out is free before
        # inflation and occupied after (0.5 m radius + 0.5 m inflation).
        assert grid.is_free(*grid.world_to_cell([5.0, 5.9]))
        assert not inflated.is_free(*grid.world_to_cell([5.0, 5.9]))

    def test_from_world_matches_clearance(self, small_world):
        grid = OccupancyGrid.from_world(small_world, resolution=0.1)
        free_point = small_world.lower + 0.1
        row, col = grid.world_to_cell(free_point)
        assert grid.is_free(row, col)

    def test_is_free_out_of_bounds_false(self):
        grid = OccupancyGrid(10, 10)
        assert not grid.is_free(-1, 0)
        assert not grid.is_free(0, 100)
