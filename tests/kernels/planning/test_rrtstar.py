"""Unit tests for RRT* (asymptotic optimality, tree invariants)."""

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.kernels.planning import (
    BatchCollisionChecker,
    CircleWorld,
    RrtPlanner,
    RrtStarPlanner,
    ScalarCollisionChecker,
)


@pytest.fixture
def endpoints():
    return np.array([0.3, 0.3]), np.array([9.7, 9.7])


class TestRrtStar:
    def test_finds_path(self, small_world, endpoints):
        start, goal = endpoints
        checker = BatchCollisionChecker(small_world)
        result = RrtStarPlanner(small_world, checker, seed=1,
                                max_iterations=800).plan(start, goal)
        assert result.found
        assert np.allclose(result.path[0], start)
        assert np.allclose(result.path[-1], goal)

    def test_path_collision_free(self, small_world, endpoints):
        start, goal = endpoints
        checker = BatchCollisionChecker(small_world)
        result = RrtStarPlanner(small_world, checker, seed=2,
                                max_iterations=800).plan(start, goal)
        verify = BatchCollisionChecker(small_world)
        for a, b in zip(result.path, result.path[1:]):
            assert verify.segment_free(a, b, resolution=0.02)

    def test_shorter_than_rrt(self, small_world, endpoints):
        """The algorithm's contract: rewiring buys path quality."""
        start, goal = endpoints
        star = RrtStarPlanner(
            small_world, BatchCollisionChecker(small_world),
            seed=4, max_iterations=1500,
        ).plan(start, goal)
        plain = RrtPlanner(
            small_world, BatchCollisionChecker(small_world),
            seed=4, max_iterations=3000,
        ).plan(start, goal)
        assert star.found and plain.found
        assert star.length() < plain.length()

    def test_near_straight_line_in_easy_world(self, small_world,
                                              endpoints):
        start, goal = endpoints
        result = RrtStarPlanner(
            small_world, BatchCollisionChecker(small_world),
            seed=4, max_iterations=2500,
        ).plan(start, goal)
        straight = float(np.linalg.norm(goal - start))
        assert result.length() < 1.1 * straight

    def test_more_iterations_never_longer(self, small_world,
                                          endpoints):
        start, goal = endpoints
        lengths = []
        for iterations in (400, 2000):
            result = RrtStarPlanner(
                small_world, BatchCollisionChecker(small_world),
                seed=7, max_iterations=iterations,
            ).plan(start, goal)
            assert result.found
            lengths.append(result.length())
        assert lengths[1] <= lengths[0] + 1e-9

    def test_works_with_scalar_checker(self, small_world, endpoints):
        start, goal = endpoints
        checker = ScalarCollisionChecker(small_world)
        result = RrtStarPlanner(small_world, checker, seed=5,
                                max_iterations=400).plan(start, goal)
        assert result.found

    def test_colliding_start_raises(self, small_world):
        checker = BatchCollisionChecker(small_world)
        planner = RrtStarPlanner(small_world, checker)
        with pytest.raises(PlanningError):
            planner.plan(small_world.centers[0],
                         np.array([9.7, 9.7]))

    def test_invalid_rewire_factor(self, small_world):
        checker = BatchCollisionChecker(small_world)
        with pytest.raises(PlanningError):
            RrtStarPlanner(small_world, checker, rewire_factor=0.0)

    def test_budget_exhaustion_not_found(self, endpoints):
        # A wall world with a tiny budget.
        world = CircleWorld(
            [0, 0], [10, 10],
            centers=[[5.0, y] for y in np.linspace(0.5, 9.5, 12)],
            radii=[0.7] * 12,
        )
        checker = BatchCollisionChecker(world)
        result = RrtStarPlanner(world, checker, seed=6,
                                max_iterations=5).plan(*endpoints)
        assert not result.found
