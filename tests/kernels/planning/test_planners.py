"""Unit tests for A*, RRT, RRT-Connect, PRM, and shortcutting."""

import numpy as np
import pytest

from repro.errors import PlanningError
from repro.kernels.planning import (
    BatchCollisionChecker,
    CircleWorld,
    GridPlanner,
    OccupancyGrid,
    PrmPlanner,
    RrtConnectPlanner,
    RrtPlanner,
    ScalarCollisionChecker,
    astar,
    path_length,
    shortcut_path,
)
from repro.kernels.planning.postprocess import path_length_ratio


@pytest.fixture
def start():
    return np.array([0.3, 0.3])


@pytest.fixture
def goal():
    return np.array([9.7, 9.7])


class TestAstar:
    def test_empty_grid_is_near_straight(self):
        grid = OccupancyGrid(50, 50, resolution=0.2)
        result = astar(grid, (0, 0), (49, 49))
        assert result.found
        # Octile-optimal diagonal path.
        assert result.cost == pytest.approx(49 * np.sqrt(2.0))

    def test_wall_forces_detour(self):
        grid = OccupancyGrid(20, 20, resolution=1.0)
        grid.cells[5, :15] = 1  # wall with a gap on the right
        blocked = astar(grid, (0, 0), (19, 0))
        empty_grid = OccupancyGrid(20, 20, resolution=1.0)
        free = astar(empty_grid, (0, 0), (19, 0))
        assert blocked.found
        assert blocked.cost > free.cost

    def test_unreachable(self):
        grid = OccupancyGrid(10, 10, resolution=1.0)
        grid.cells[5, :] = 1  # full wall
        result = astar(grid, (0, 0), (9, 0))
        assert not result.found
        assert result.cost == float("inf")

    def test_occupied_start_raises(self):
        grid = OccupancyGrid(10, 10, resolution=1.0)
        grid.cells[0, 0] = 1
        with pytest.raises(PlanningError):
            astar(grid, (0, 0), (5, 5))

    def test_no_corner_cutting(self):
        grid = OccupancyGrid(3, 3, resolution=1.0)
        grid.cells[0, 1] = 1
        grid.cells[1, 0] = 1
        result = astar(grid, (0, 0), (2, 2))
        # The diagonal through (1,1) requires cutting a blocked corner;
        # with both orthogonal neighbors blocked, no path exists.
        assert not result.found

    def test_grid_planner_world_coordinates(self, small_world,
                                            start, goal):
        grid = OccupancyGrid.from_world(small_world, resolution=0.1)
        planner = GridPlanner(grid, robot_radius=0.05)
        result = planner.plan(start, goal)
        assert result.found
        world_path = planner.path_to_world(result)
        assert np.linalg.norm(world_path[0] - start) < 0.2
        assert np.linalg.norm(world_path[-1] - goal) < 0.2


class TestRrt:
    def test_finds_path(self, small_world, start, goal):
        checker = BatchCollisionChecker(small_world)
        result = RrtPlanner(small_world, checker, seed=1,
                            max_iterations=8000).plan(start, goal)
        assert result.found
        assert np.allclose(result.path[0], start)
        assert np.allclose(result.path[-1], goal)

    def test_path_edges_collision_free(self, small_world, start, goal):
        checker = BatchCollisionChecker(small_world)
        result = RrtPlanner(small_world, checker, seed=2,
                            max_iterations=8000).plan(start, goal)
        verify = BatchCollisionChecker(small_world)
        for a, b in zip(result.path, result.path[1:]):
            assert verify.segment_free(a, b, resolution=0.02)

    def test_colliding_start_raises(self, small_world):
        checker = BatchCollisionChecker(small_world)
        inside = small_world.centers[0]
        with pytest.raises(PlanningError):
            RrtPlanner(small_world, checker).plan(
                inside, np.array([9.7, 9.7])
            )

    def test_budget_exhaustion_returns_not_found(self, small_world,
                                                 start, goal):
        checker = BatchCollisionChecker(small_world)
        result = RrtPlanner(small_world, checker, seed=3,
                            max_iterations=2).plan(start, goal)
        assert not result.found
        assert result.length() == float("inf")

    def test_deterministic_given_seed(self, small_world, start, goal):
        def run():
            checker = BatchCollisionChecker(small_world)
            return RrtPlanner(small_world, checker, seed=9,
                              max_iterations=5000).plan(start, goal)
        a, b = run(), run()
        assert a.iterations == b.iterations
        assert np.allclose(a.path, b.path)


class TestRrtConnect:
    def test_finds_path_faster_than_rrt(self, small_world, start,
                                        goal):
        checker1 = BatchCollisionChecker(small_world)
        connect = RrtConnectPlanner(small_world, checker1,
                                    seed=4).plan(start, goal)
        checker2 = BatchCollisionChecker(small_world)
        rrt = RrtPlanner(small_world, checker2, seed=4,
                         max_iterations=8000).plan(start, goal)
        assert connect.found
        assert connect.iterations <= rrt.iterations

    def test_works_with_scalar_checker(self, small_world, start,
                                       goal):
        checker = ScalarCollisionChecker(small_world)
        result = RrtConnectPlanner(small_world, checker,
                                   seed=5).plan(start, goal)
        assert result.found

    def test_path_endpoints(self, small_world, start, goal):
        checker = BatchCollisionChecker(small_world)
        result = RrtConnectPlanner(small_world, checker,
                                   seed=6).plan(start, goal)
        assert np.allclose(result.path[0], start, atol=1e-9)
        assert np.allclose(result.path[-1], goal, atol=1e-9)


class TestPrm:
    def test_multi_query(self, small_world, start, goal):
        checker = BatchCollisionChecker(small_world)
        prm = PrmPlanner(small_world, checker, n_samples=250, seed=7)
        prm.build()
        first = prm.query(start, goal)
        second = prm.query(goal, start)
        assert first.found and second.found
        assert first.cost == pytest.approx(second.cost, rel=0.3)

    def test_roadmap_nodes_free(self, small_world):
        checker = BatchCollisionChecker(small_world)
        prm = PrmPlanner(small_world, checker, n_samples=100, seed=8)
        prm.build()
        assert prm.nodes is not None
        assert all(checker.points_free(prm.nodes))


class TestShortcut:
    def test_never_longer(self, small_world, start, goal):
        checker = BatchCollisionChecker(small_world)
        result = RrtPlanner(small_world, checker, seed=10,
                            max_iterations=8000).plan(start, goal)
        smoothed = shortcut_path(result.path, checker, attempts=200,
                                 seed=0)
        assert path_length(smoothed) <= path_length(result.path) + 1e-9

    def test_endpoints_preserved(self, small_world, start, goal):
        checker = BatchCollisionChecker(small_world)
        result = RrtConnectPlanner(small_world, checker,
                                   seed=11).plan(start, goal)
        smoothed = shortcut_path(result.path, checker, seed=0)
        assert np.allclose(smoothed[0], result.path[0])
        assert np.allclose(smoothed[-1], result.path[-1])

    def test_straight_line_in_empty_world(self):
        world = CircleWorld([0, 0], [10, 10])
        checker = BatchCollisionChecker(world)
        zigzag = np.array([[0.0, 0.0], [5.0, 9.0], [9.0, 1.0],
                           [10.0, 10.0]])
        smoothed = shortcut_path(zigzag, checker, attempts=100,
                                 seed=1)
        assert path_length_ratio(smoothed) == pytest.approx(1.0,
                                                            abs=0.01)

    def test_path_length_helpers(self):
        path = np.array([[0.0, 0.0], [3.0, 4.0]])
        assert path_length(path) == pytest.approx(5.0)
        assert path_length(np.zeros((1, 2))) == 0.0
