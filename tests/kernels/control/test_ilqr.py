"""Unit tests for the iLQR trajectory optimizer."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.control import double_integrator
from repro.kernels.control.ilqr import (
    IlqrProblem,
    IlqrSolver,
    finite_difference_jacobians,
    unicycle_dynamics,
)


def _unicycle_problem(goal=(2.0, 1.0, 0.0), horizon=40):
    return IlqrProblem(
        dynamics=unicycle_dynamics(0.1),
        state_dim=3, control_dim=2,
        q=np.diag([1.0, 1.0, 0.1]),
        r=np.diag([0.1, 0.05]),
        q_terminal=np.diag([100.0, 100.0, 10.0]),
        x_goal=np.array(goal),
        horizon=horizon,
    )


class TestJacobians:
    def test_linear_system_exact(self):
        a, b = double_integrator(0.05)

        def dyn(x, u):
            return a @ x + b @ u

        ja, jb = finite_difference_jacobians(dyn, np.array([1.0, 2.0]),
                                             np.array([0.5]))
        assert np.allclose(ja, a, atol=1e-6)
        assert np.allclose(jb, b, atol=1e-6)

    def test_unicycle_heading_coupling(self):
        dyn = unicycle_dynamics(0.1)
        x = np.array([0.0, 0.0, np.pi / 2])
        u = np.array([1.0, 0.0])
        ja, jb = finite_difference_jacobians(dyn, x, u)
        # At theta = pi/2, dx/dtheta = -dt * v * sin(theta) = -0.1.
        assert ja[0, 2] == pytest.approx(-0.1, abs=1e-5)
        assert jb[1, 0] == pytest.approx(0.1, abs=1e-5)  # dy/dv


class TestIlqr:
    def test_unicycle_parks_at_goal(self):
        problem = _unicycle_problem()
        result = IlqrSolver(problem, max_iterations=60).solve(
            np.zeros(3)
        )
        assert np.linalg.norm(result.states[-1][:2]
                              - problem.x_goal[:2]) < 0.05
        assert result.converged

    def test_cost_monotone_decreasing(self):
        result = IlqrSolver(_unicycle_problem(),
                            max_iterations=60).solve(np.zeros(3))
        trace = result.cost_trace
        assert all(b <= a + 1e-9 for a, b in zip(trace, trace[1:]))
        assert trace[-1] < 0.1 * trace[0]

    def test_linear_problem_matches_lqr_behavior(self):
        a, b = double_integrator(0.05)

        def dyn(x, u):
            return a @ x + b @ u

        problem = IlqrProblem(
            dynamics=dyn, state_dim=2, control_dim=1,
            q=np.eye(2), r=np.array([[1.0]]),
            q_terminal=10.0 * np.eye(2),
            x_goal=np.zeros(2), horizon=80,
        )
        result = IlqrSolver(problem).solve(np.array([1.0, 0.0]))
        # Regulates to near the origin, like the LQR it reduces to.
        assert np.linalg.norm(result.states[-1]) < 0.1
        # On a linear-quadratic problem iLQR is Newton: few iterations.
        assert len(result.cost_trace) <= 6

    def test_reverse_parking_uses_negative_velocity(self):
        problem = _unicycle_problem(goal=(-1.0, 0.0, 0.0))
        result = IlqrSolver(problem, max_iterations=60).solve(
            np.zeros(3)
        )
        assert result.states[-1][0] == pytest.approx(-1.0, abs=0.1)

    def test_bad_x0_shape(self):
        solver = IlqrSolver(_unicycle_problem())
        with pytest.raises(ConfigurationError):
            solver.solve(np.zeros(2))

    def test_profile_is_linalg(self):
        solver = IlqrSolver(_unicycle_problem(horizon=10),
                            max_iterations=5)
        solver.solve(np.zeros(3))
        profile = solver.profile()
        assert profile.op_class == "linalg"
        assert profile.flops > 0

    def test_problem_validation(self):
        with pytest.raises(ConfigurationError):
            IlqrProblem(dynamics=unicycle_dynamics(), state_dim=3,
                        control_dim=2, q=np.eye(2), r=np.eye(2),
                        q_terminal=np.eye(3),
                        x_goal=np.zeros(3), horizon=10)
