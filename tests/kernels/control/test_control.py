"""Unit tests for PID, LQR, and MPC controllers."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.kernels.control import (
    LinearMpc,
    MpcConfig,
    PidController,
    dlqr,
    double_integrator,
    lqr_profile,
)
from repro.kernels.control.mpc import mpc_profile


class TestPid:
    def test_proportional_only(self):
        pid = PidController(kp=2.0)
        assert pid.update(3.0, dt=0.1) == pytest.approx(6.0)

    def test_integral_accumulates(self):
        pid = PidController(kp=0.0, ki=1.0)
        pid.update(1.0, dt=0.5)
        assert pid.update(1.0, dt=0.5) == pytest.approx(1.0)

    def test_derivative_needs_two_samples(self):
        pid = PidController(kp=0.0, kd=1.0)
        assert pid.update(1.0, dt=0.1) == 0.0
        assert pid.update(2.0, dt=0.1) == pytest.approx(10.0)

    def test_output_saturation(self):
        pid = PidController(kp=100.0, output_limit=5.0)
        assert pid.update(10.0, dt=0.1) == 5.0
        assert pid.update(-10.0, dt=0.1) == -5.0

    def test_anti_windup(self):
        pid = PidController(kp=0.0, ki=1.0, output_limit=0.1)
        for _ in range(100):
            pid.update(10.0, dt=0.1)
        pid_free = PidController(kp=0.0, ki=1.0)
        for _ in range(100):
            pid_free.update(10.0, dt=0.1)
        # Saturated controller's integral must not have run away.
        assert abs(pid._integral) < abs(pid_free._integral)

    def test_reset(self):
        pid = PidController(kp=0.0, ki=1.0)
        pid.update(5.0, dt=1.0)
        pid.reset()
        assert pid.update(0.0, dt=1.0) == 0.0

    def test_invalid_dt(self):
        with pytest.raises(ConfigurationError):
            PidController().update(1.0, dt=0.0)

    def test_closed_loop_regulates_double_integrator(self):
        a, b = double_integrator(dt=0.05)
        pid = PidController(kp=4.0, kd=4.0, output_limit=10.0)
        x = np.array([1.0, 0.0])
        for _ in range(400):
            u = pid.update(-x[0], dt=0.05)
            x = a @ x + b.ravel() * u
        assert abs(x[0]) < 0.05


class TestLqr:
    def test_stabilizes_double_integrator(self):
        a, b = double_integrator()
        k, p = dlqr(a, b, np.eye(2), np.array([[1.0]]))
        x = np.array([1.0, 0.0])
        for _ in range(300):
            x = a @ x + b @ (-k @ x)
        assert np.linalg.norm(x) < 1e-3

    def test_value_matrix_positive_definite(self):
        a, b = double_integrator()
        _, p = dlqr(a, b, np.eye(2), np.array([[1.0]]))
        assert np.linalg.eigvalsh(p).min() > 0

    def test_riccati_fixed_point(self):
        a, b = double_integrator()
        k, p = dlqr(a, b, np.eye(2), np.array([[1.0]]))
        closed = a - b @ k
        # P must satisfy the DARE at the fixed point.
        residual = (a.T @ p @ closed + np.eye(2) - p)
        assert np.allclose(residual, 0.0, atol=1e-6)

    def test_higher_control_cost_gives_smaller_gain(self):
        a, b = double_integrator()
        k_cheap, _ = dlqr(a, b, np.eye(2), np.array([[0.1]]))
        k_dear, _ = dlqr(a, b, np.eye(2), np.array([[10.0]]))
        assert np.linalg.norm(k_dear) < np.linalg.norm(k_cheap)

    def test_shape_validation(self):
        a, b = double_integrator()
        with pytest.raises(ConfigurationError):
            dlqr(a, b, np.eye(3), np.array([[1.0]]))

    def test_unstabilizable_raises(self):
        # B = 0: no control authority on an unstable plant.
        a = np.array([[2.0]])
        b = np.array([[0.0]])
        with pytest.raises(ConfigurationError):
            dlqr(a, b, np.eye(1), np.eye(1), iterations=50)

    def test_profile(self):
        p = lqr_profile(12, 4)
        assert p.op_class == "gemm"
        assert p.flops > 0


class TestMpc:
    def _mpc(self, **overrides):
        a, b = double_integrator()
        defaults = dict(a=a, b=b, q=np.eye(2), r=np.array([[0.1]]),
                        horizon=15, u_min=-1.0, u_max=1.0,
                        solver_iterations=200)
        defaults.update(overrides)
        return LinearMpc(MpcConfig(**defaults))

    def test_regulates_to_origin(self):
        a, b = double_integrator()
        mpc = self._mpc()
        x = np.array([1.0, 0.0])
        for _ in range(300):
            x = a @ x + b @ mpc.control(x)
        assert np.linalg.norm(x) < 0.02

    def test_respects_input_constraints(self):
        mpc = self._mpc()
        sequence = mpc.solve(np.array([10.0, 0.0]))
        assert np.all(sequence >= -1.0 - 1e-9)
        assert np.all(sequence <= 1.0 + 1e-9)

    def test_tracks_reference(self):
        a, b = double_integrator()
        mpc = self._mpc(q=np.diag([10.0, 1.0]))
        x = np.array([0.0, 0.0])
        reference = np.array([2.0, 0.0])
        for _ in range(400):
            x = a @ x + b @ mpc.control(x, x_ref=reference)
        assert abs(x[0] - 2.0) < 0.1

    def test_unconstrained_matches_lqr_direction(self):
        a, b = double_integrator()
        # A finite horizon with no terminal cost converges to the
        # infinite-horizon LQR law as the horizon grows.
        mpc = self._mpc(u_min=-np.inf, u_max=np.inf, horizon=100,
                        solver_iterations=2000, r=np.array([[1.0]]))
        k, _ = dlqr(a, b, np.eye(2), np.array([[1.0]]))
        x = np.array([1.0, 0.5])
        u_mpc = float(mpc.control(x)[0])
        u_lqr = float((-k @ x)[0])
        assert u_mpc == pytest.approx(u_lqr, rel=0.05)

    def test_bad_config(self):
        a, b = double_integrator()
        with pytest.raises(ConfigurationError):
            MpcConfig(a=a, b=b, q=np.eye(2), r=np.eye(1), horizon=0)
        with pytest.raises(ConfigurationError):
            MpcConfig(a=a, b=b, q=np.eye(2), r=np.eye(1),
                      u_min=1.0, u_max=-1.0)

    def test_wrong_state_shape(self):
        mpc = self._mpc()
        with pytest.raises(ConfigurationError):
            mpc.solve(np.zeros(3))

    def test_profile_scales_with_horizon(self):
        short = mpc_profile(2, 1, horizon=5)
        long = mpc_profile(2, 1, horizon=20)
        assert long.flops > short.flops
