"""Unit tests for ML kernels: tensors, network, training, quantization."""

import numpy as np
import pytest

from repro.core.profile import OpCounter
from repro.errors import ConfigurationError
from repro.kernels.ml import (
    Mlp,
    MlpConfig,
    SgdTrainer,
    conv2d,
    make_blobs,
    make_moons,
    max_pool2d,
    quantization_error,
    quantize,
    relu,
    softmax,
)
from repro.kernels.ml.data import train_test_split
from repro.kernels.ml.quantize import throughput_multiplier
from repro.kernels.ml.tensor import cross_entropy, im2col


class TestTensorOps:
    def test_conv2d_matches_direct(self, rng):
        x = rng.normal(size=(2, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        out = conv2d(x, w)
        # Direct convolution at one output location.
        patch = x[1, :, 2:5, 3:6]
        expected = float((patch * w[2]).sum())
        assert out[1, 2, 2, 3] == pytest.approx(expected)

    def test_conv2d_bias(self, rng):
        x = rng.normal(size=(1, 1, 5, 5))
        w = np.zeros((2, 1, 3, 3))
        out = conv2d(x, w, bias=np.array([1.5, -0.5]))
        assert np.allclose(out[0, 0], 1.5)
        assert np.allclose(out[0, 1], -0.5)

    def test_conv2d_counts_gemm(self, rng):
        x = rng.normal(size=(1, 3, 8, 8))
        w = rng.normal(size=(4, 3, 3, 3))
        counter = OpCounter(name="c")
        conv2d(x, w, counter=counter)
        assert counter.flops == 2 * 4 * (1 * 6 * 6) * 27

    def test_conv2d_channel_mismatch(self, rng):
        with pytest.raises(ConfigurationError):
            conv2d(rng.normal(size=(1, 2, 5, 5)),
                   rng.normal(size=(4, 3, 3, 3)))

    def test_im2col_shape(self, rng):
        x = rng.normal(size=(2, 3, 6, 6))
        cols = im2col(x, kernel=3)
        assert cols.shape == (27, 2 * 4 * 4)

    def test_max_pool(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        pooled = max_pool2d(x, size=2)
        assert pooled.shape == (1, 1, 2, 2)
        assert pooled[0, 0, 0, 0] == 5.0
        assert pooled[0, 0, 1, 1] == 15.0

    def test_max_pool_indivisible(self):
        with pytest.raises(ConfigurationError):
            max_pool2d(np.zeros((1, 1, 5, 5)), size=2)

    def test_relu(self):
        assert np.allclose(relu(np.array([-1.0, 0.0, 2.0])),
                           [0.0, 0.0, 2.0])

    def test_softmax_rows_sum_to_one(self, rng):
        probs = softmax(rng.normal(size=(5, 4)) * 100)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_cross_entropy_perfect_prediction(self):
        probs = np.array([[1.0, 0.0], [0.0, 1.0]])
        assert cross_entropy(probs, np.array([0, 1])) \
            == pytest.approx(0.0, abs=1e-9)


class TestQuantize:
    def test_round_trip_at_high_bits_is_tight(self, rng):
        x = rng.normal(size=100)
        assert quantization_error(x, 16) < 1e-3

    def test_error_grows_as_bits_shrink(self, rng):
        x = rng.normal(size=1000)
        errors = [quantization_error(x, b) for b in (8, 4, 2)]
        assert errors[0] < errors[1] < errors[2]

    def test_zero_array(self):
        assert quantization_error(np.zeros(10), 4) == 0.0

    def test_idempotent(self, rng):
        x = rng.normal(size=50)
        q = quantize(x, 5)
        assert np.allclose(quantize(q, 5), q)

    def test_invalid_bits(self):
        with pytest.raises(ConfigurationError):
            quantize(np.ones(3), 1)

    def test_throughput_multiplier(self):
        assert throughput_multiplier(8) == pytest.approx(4.0)
        with pytest.raises(ConfigurationError):
            throughput_multiplier(64)


class TestData:
    def test_blobs_shapes(self):
        x, y = make_blobs(n_samples=120, n_classes=4)
        assert x.shape == (120, 2)
        assert set(np.unique(y)) <= set(range(4))

    def test_moons_binary(self):
        x, y = make_moons(n_samples=100)
        assert sorted(np.unique(y)) == [0, 1]

    def test_split_partitions(self):
        x, y = make_blobs(n_samples=100)
        xtr, ytr, xte, yte = train_test_split(x, y,
                                              test_fraction=0.25)
        assert xtr.shape[0] + xte.shape[0] == 100
        assert xte.shape[0] == 25


class TestMlp:
    def test_gradient_check(self, rng):
        """Backprop matches finite differences."""
        model = Mlp(MlpConfig(layer_sizes=[3, 5, 2], seed=0))
        x = rng.normal(size=(4, 3))
        y = np.array([0, 1, 0, 1])
        grads_w, _, _ = model.gradients(x, y)
        eps = 1e-6
        w = model.weights[0]
        for index in [(0, 0), (1, 2), (2, 4)]:
            original = w[index]
            w[index] = original + eps
            loss_plus = model.loss(x, y)
            w[index] = original - eps
            loss_minus = model.loss(x, y)
            w[index] = original
            numeric = (loss_plus - loss_minus) / (2 * eps)
            assert grads_w[0][index] == pytest.approx(numeric,
                                                      abs=1e-4)

    def test_training_improves_accuracy(self):
        x, y = make_blobs(n_samples=300, n_classes=3, seed=1)
        xtr, ytr, xte, yte = train_test_split(x, y, seed=1)
        model = Mlp(MlpConfig(layer_sizes=[2, 32, 3], seed=1))
        before = model.accuracy(xte, yte)
        result = SgdTrainer(model, seed=1).fit(xtr, ytr, xte, yte,
                                               epochs=15)
        assert result.final_accuracy() > max(before, 0.8)

    def test_loss_decreases(self):
        x, y = make_moons(n_samples=200, seed=2)
        xtr, ytr, xte, yte = train_test_split(x, y, seed=2)
        model = Mlp(MlpConfig(layer_sizes=[2, 16, 2], seed=2))
        result = SgdTrainer(model, seed=2).fit(xtr, ytr, xte, yte,
                                               epochs=10)
        assert result.epoch_losses[-1] < result.epoch_losses[0]

    def test_quantized_training_learns_slower(self):
        """The E2 mechanism: aggressive gradient quantization hurts
        per-step progress."""
        x, y = make_blobs(n_samples=300, n_classes=3, seed=3)
        xtr, ytr, xte, yte = train_test_split(x, y, seed=3)
        full = Mlp(MlpConfig(layer_sizes=[2, 32, 3], seed=3))
        quant = Mlp(MlpConfig(layer_sizes=[2, 32, 3], seed=3,
                              gradient_bits=2, activation_bits=2))
        r_full = SgdTrainer(full, seed=3).fit(xtr, ytr, xte, yte,
                                              epochs=12)
        r_quant = SgdTrainer(quant, seed=3).fit(xtr, ytr, xte, yte,
                                                epochs=12)
        assert r_full.final_accuracy() > r_quant.final_accuracy()

    def test_parameter_count(self):
        model = Mlp(MlpConfig(layer_sizes=[2, 10, 3]))
        assert model.n_parameters == 2 * 10 + 10 + 10 * 3 + 3

    def test_profile_is_gemm(self):
        model = Mlp(MlpConfig(layer_sizes=[2, 8, 2]))
        model.forward(np.zeros((4, 2)))
        assert model.profile().op_class == "gemm"


class TestTrainingResult:
    def test_time_to_accuracy(self):
        x, y = make_blobs(n_samples=200, n_classes=2, seed=4)
        xtr, ytr, xte, yte = train_test_split(x, y, seed=4)
        model = Mlp(MlpConfig(layer_sizes=[2, 16, 2], seed=4))
        result = SgdTrainer(model, step_latency_s=1e-3,
                            seed=4).fit(xtr, ytr, xte, yte, epochs=10)
        tta = result.time_to_accuracy(0.5)
        assert tta < result.modeled_time_s
        assert result.time_to_accuracy(1.01) == float("inf")

    def test_throughput(self):
        from repro.kernels.ml.training import TrainingResult
        r = TrainingResult(step_latency_s=0.01)
        assert r.throughput_steps_per_s() == pytest.approx(100.0)

    def test_invalid_trainer_args(self):
        model = Mlp(MlpConfig())
        with pytest.raises(ConfigurationError):
            SgdTrainer(model, learning_rate=0.0)
