"""Unit tests for the CNN inference network and its systolic lowering."""

import numpy as np
import pytest

from repro.core.profile import OpCounter
from repro.errors import ConfigurationError
from repro.hw.systolic import SystolicArrayModel
from repro.kernels.ml.cnn import Cnn, ConvLayer, DenseLayer, small_detector


@pytest.fixture
def net():
    return small_detector(seed=1)


class TestForward:
    def test_output_is_distribution(self, net, rng):
        x = rng.normal(size=(3, 1, 28, 28))
        probs = net.forward(x)
        assert probs.shape == (3, 10)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_deterministic_given_seed(self, rng):
        x = rng.normal(size=(2, 1, 28, 28))
        a = small_detector(seed=5).forward(x)
        b = small_detector(seed=5).forward(x)
        assert np.allclose(a, b)

    def test_wrong_input_shape(self, net):
        with pytest.raises(ConfigurationError):
            net.forward(np.zeros((1, 3, 28, 28)))

    def test_dense_before_conv_rejected(self):
        with pytest.raises(ConfigurationError):
            Cnn(input_shape=(1, 28, 28),
                layers=[DenseLayer(8), ConvLayer(4)])

    def test_kernel_too_big_rejected(self):
        with pytest.raises(ConfigurationError):
            Cnn(input_shape=(1, 4, 4), layers=[ConvLayer(4, kernel=7)])


class TestCounting:
    def test_forward_counter_matches_closed_form(self, net, rng):
        counter = OpCounter(name="c")
        net.forward(rng.normal(size=(1, 1, 28, 28)), counter=counter)
        profile = net.inference_profile(batch=1)
        assert counter.flops == pytest.approx(profile.flops)

    def test_profile_scales_with_batch(self, net):
        single = net.inference_profile(batch=1)
        batched = net.inference_profile(batch=8)
        assert batched.flops == pytest.approx(8.0 * single.flops,
                                              rel=1e-12)

    def test_parameter_count_positive(self, net):
        assert net.n_parameters > 1000


class TestSystolicLowering:
    def test_shapes_cover_all_weight_layers(self, net):
        shapes = net.gemm_shapes()
        # 2 convs + 2 dense (hidden + output head).
        assert len(shapes) == 4
        names = [name for name, *_ in shapes]
        assert names == ["conv0", "conv1", "dense0", "dense1"]

    def test_flops_consistency(self, net):
        total = sum(2.0 * m * n * k
                    for _, m, n, k in net.gemm_shapes())
        assert total == pytest.approx(net.inference_profile().flops)

    def test_batching_improves_dense_utilization(self, net):
        array = SystolicArrayModel(rows=32, cols=32)
        single = dict(
            (name, util) for name, _, util
            in net.systolic_latency_s(array, batch=1)
        )
        batched = dict(
            (name, util) for name, _, util
            in net.systolic_latency_s(array, batch=64)
        )
        # Dense layers are skinny at batch 1 and fill the array when
        # batched — the classic inference-serving insight.
        assert batched["dense0"] > 5.0 * single["dense0"]

    def test_latencies_positive_and_finite(self, net):
        array = SystolicArrayModel(rows=16, cols=16)
        for name, latency, util in net.systolic_latency_s(array):
            assert latency > 0
            assert 0 < util <= 1
