"""Agile design tools (§3.1): DSL in, verified accelerator out.

A domain expert writes the pipeline in six lines of DSL; the framework
verifies it against a CPU (and fails it honestly when the CPU can't
keep up), then *synthesizes* a fixed-function accelerator that provably
meets the rate inside an area budget, attaches it to the SoC, and
re-verifies.  The paper's agile-design loop, end to end.

Run:  python examples/pipeline_dsl.py
"""

from repro.core import format_table
from repro.core.dsl import parse_pipeline, verify_pipeline
from repro.hw import (
    HeterogeneousSoC,
    SynthesisSpec,
    embedded_cpu,
    synthesize_accelerator,
)
from repro.hw.mapping import MappingPolicy

SOURCE = """
# written by the roboticist, not the architect
pipeline cargo-drone-perception @ 30Hz
stage detect:  harris(image_size=480) -> 200000B
stage depth:   stereo(image_size=320, max_disparity=32) after detect -> 400000B
stage backbone: gemm(m=256, n=4096, k=800) after depth -> 100000B
stage fuse:    cholesky(n=90) after backbone -> 2000B
stage control: lqr(state_dim=12, control_dim=4) after fuse
"""


def _print_report(report):
    status = "VERIFIED" if report.verified else "REJECTED"
    print(f"[{status}] {report.workload} on {report.platform}"
          f" (critical path {report.critical_path_s * 1e3:.2f} ms,"
          f" period {report.period_s * 1e3:.2f} ms)")
    for violation in report.violations:
        print(f"    {violation.check}"
              f"{' @ ' + violation.stage if violation.stage else ''}:"
              f" {violation.detail}")


def main() -> None:
    workload = parse_pipeline(SOURCE)
    cpu = embedded_cpu()

    # Step 1: static verification against the CPU.
    report = _verify = verify_pipeline(workload, cpu)
    _print_report(report)

    # Step 2: the verifier names the overloaded stage; synthesize an
    # accelerator for exactly that stage's measured profile.
    overloaded = [v.stage for v in report.violations
                  if v.check == "stability"]
    if overloaded:
        stage = workload.graph.stage(overloaded[0])
        print(f"\nSynthesizing an accelerator for {stage.name!r}"
              f" ({stage.profile.op_class})...")
        synthesis = synthesize_accelerator(SynthesisSpec(
            profile=stage.profile,
            target_rate_hz=workload.target_rate_hz,
            area_budget_mm2=30.0,
        ))
        print(format_table(
            ["peak (TFLOP/s)", "SRAM (MB)", "area (mm^2)",
             "verified rate (Hz)", "binding constraint"],
            [[synthesis.peak_flops / 1e12,
              synthesis.sram_bytes / 1e6,
              synthesis.area_mm2,
              synthesis.achieved_rate_hz,
              synthesis.binding_constraint]],
            title="Generated accelerator",
        ))

        # Step 3: attach it and re-verify on the heterogeneous SoC.
        soc = HeterogeneousSoC("drone-soc", embedded_cpu("soc-host"),
                               [synthesis.accelerator])
        mapping = soc.map_graph(workload.graph,
                                policy=MappingPolicy.FASTEST)
        services = {name: m.estimate.latency_s
                    for name, m in mapping.items()}
        rows = [[name, m.device, m.estimate.latency_s * 1e3,
                 services[name] * workload.target_rate_hz]
                for name, m in mapping.items()]
        print()
        print(format_table(
            ["stage", "mapped to", "latency (ms)", "utilization"],
            rows, title="SoC mapping after synthesis",
        ))
        worst = max(services[name] * workload.target_rate_hz
                    for name in services)
        verdict = "stable" if worst < 1 else "STILL overloaded"
        print(f"\nWorst stage utilization: {worst:.2f}"
              f" -> pipeline is {verdict}"
              f" at {workload.target_rate_hz:g} Hz")


if __name__ == "__main__":
    main()
