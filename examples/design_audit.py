"""The Seven Challenges advisor on three archetypal projects (§2).

Audits (1) a classic "widget" project, (2) a throughput-chasing ML
accelerator, and (3) a project that follows the paper's playbook —
showing which checks fire, with the paper's remedies attached.  Also
demonstrates the cross-cutting analysis that check 3 uses internally.

Run:  python examples/design_audit.py
"""

from repro.benchmarksuite import standard_suite
from repro.core import (
    DesignReview,
    EvaluationPlan,
    SevenChallengesAdvisor,
    find_crosscutting_kernels,
    format_table,
)


def _reviews(suite):
    widget = DesignReview(
        name="one-kernel-asic",
        accelerated_categories=("sampling",),
        workload_suite=suite,
        evaluation=EvaluationPlan(
            metrics=("throughput", "tops_per_watt"),
            evaluated_workloads=("the-one-kernel",),
            baseline_platforms=(),
        ),
    )
    throughput_chaser = DesignReview(
        name="tops-maximizer",
        accelerated_categories=("gemm",),
        workload_suite=suite,
        expert_consultations=1,
        integrates_with_middleware=True,
        evaluation=EvaluationPlan(
            metrics=("tops", "tops_per_watt",
                     "energy_delay_product"),
            evaluated_workloads=("resnet", "bert", "detector"),
            baseline_platforms=("gpu",),
            end_to_end=False,
        ),
        system_budget_accounted=True,
        shared_resource_analysis=True,
    )
    by_the_book = DesignReview(
        name="paper-playbook",
        accelerated_categories=("gemm", "collision"),
        workload_suite=suite,
        expert_consultations=3,
        algorithm_vintage_years=(0.0, 1.0),
        integrates_with_middleware=True,
        system_budget_accounted=True,
        shared_resource_analysis=True,
        lifecycle_analysis=True,
        deployment_scale_units=100_000,
        evaluation=EvaluationPlan(
            metrics=("success_rate", "mission_energy_j",
                     "end_to_end_latency_s", "tops_per_watt"),
            evaluated_workloads=tuple(w.name for w in suite),
            baseline_platforms=("cpu", "gpu", "fpga"),
            end_to_end=True,
            closed_loop=True,
        ),
    )
    return [widget, throughput_chaser, by_the_book]


def main() -> None:
    suite = standard_suite()
    advisor = SevenChallengesAdvisor()

    rows = []
    for review in _reviews(suite):
        findings = advisor.audit(review)
        criticals = sum(1 for f in findings
                        if f.severity.value == "critical")
        rows.append([review.name, advisor.score(review),
                     len(findings), criticals])
    print(format_table(
        ["project", "score /100", "findings", "critical"],
        rows, title="Seven Challenges audit",
    ))

    print("\nWorst project in detail:")
    worst = _reviews(suite)[0]
    for finding in advisor.audit(worst):
        print(f"  [{finding.severity.value:8s}]"
              f" {finding.challenge.value}: {finding.message}")
        print(f"             remedy: {finding.recommendation}")

    crosscut = find_crosscutting_kernels(suite, budget=4)
    print("\nWhat SHOULD be accelerated (greedy cross-cutting"
          " selection over the suite):")
    for rank, category in enumerate(crosscut.selected, start=1):
        print(f"  {rank}. {category}"
              f"  (suite coverage after pick:"
              f" {crosscut.coverage_curve[rank - 1]:.0%})")


if __name__ == "__main__":
    main()
