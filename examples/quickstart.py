"""Quickstart: profile a workload, price it on hardware, check the plan.

Walks the framework's spine in ~60 lines:

1. run a real instrumented kernel (EKF-SLAM) and get its *measured*
   workload profile;
2. price that profile on four platform models (CPU / GPU / FPGA / ASIC);
3. characterize a whole pipeline and read its Amdahl ceilings;
4. audit a design plan against the paper's Seven Challenges.

Run:  python examples/quickstart.py
"""

from repro.core import (
    DesignReview,
    EvaluationPlan,
    SevenChallengesAdvisor,
    characterize,
    format_table,
)
from repro.hw import (
    asic_gemm_engine,
    embedded_cpu,
    embedded_gpu,
    midrange_fpga,
)
from repro.benchmarksuite import build_workload
from repro.kernels.slam import EkfSlam, ate_rmse, make_scenario


def main() -> None:
    # 1. Run a real kernel; its profile is measured, not asserted.
    scenario = make_scenario(n_steps=60, n_landmarks=12, seed=0)
    ekf = EkfSlam(scenario.true_poses[0],
                  motion_noise=scenario.motion_noise,
                  measurement_noise=scenario.measurement_noise)
    trajectory = ekf.run(scenario)
    profile = ekf.profile()
    print(f"EKF-SLAM: ATE {ate_rmse(trajectory, scenario.true_poses):.3f} m,"
          f" measured {profile.flops / 1e6:.1f} MFLOP,"
          f" intensity {profile.arithmetic_intensity:.1f} op/B")

    # 2. Price it on four kinds of hardware.
    platforms = [embedded_cpu(), embedded_gpu(), midrange_fpga(),
                 asic_gemm_engine()]
    rows = []
    for platform in platforms:
        if not platform.supports(profile):
            rows.append([platform.name, "unsupported", "-", "-"])
            continue
        estimate = platform.estimate(profile)
        rows.append([platform.name, estimate.latency_s * 1e3,
                     estimate.energy_j * 1e3, estimate.bound])
    print()
    print(format_table(
        ["platform", "latency (ms)", "energy (mJ)", "bound"],
        rows, title="The same measured kernel on four platforms",
    ))

    # 3. Characterize a whole pipeline: where would acceleration help?
    workload = build_workload("vio-navigation")
    report = characterize(workload)
    print()
    print(format_table(
        ["stage", "op share", "Amdahl ceiling"],
        [[name, share, report.amdahl_ceilings[name]]
         for name, share in report.hotspots],
        title=f"{workload.name}: hotspots and end-to-end ceilings",
    ))

    # 4. Audit a (deliberately naive) accelerator plan.
    advisor = SevenChallengesAdvisor()
    review = DesignReview(
        name="my-first-accelerator",
        accelerated_categories=("gemm",),
        evaluation=EvaluationPlan(metrics=("throughput",),
                                  evaluated_workloads=("one-kernel",)),
    )
    print(f"\nSeven-Challenges audit of a naive plan:"
          f" score {advisor.score(review):.0f}/100")
    for finding in advisor.audit(review)[:3]:
        print(f"  [{finding.severity.value}] {finding.challenge.value}:"
              f" {finding.message}")


if __name__ == "__main__":
    main()
