"""Design Global (§2.7): datacenters on wheels, and lifecycle choices.

Projects autonomous-fleet compute against global datacenter power,
compares edge-vs-cloud training carbon, and runs a lifecycle assessment
contrasting a short-lived widget against a long-lived cross-cutting
accelerator (including the chiplet-vs-monolith manufacturing choice).

Run:  python examples/sustainability_fleet.py
"""

from repro.core import format_table
from repro.sustainability import (
    FleetScenario,
    LifecycleInputs,
    ProcessNode,
    fleet_vs_datacenters,
)
from repro.sustainability.embodied import chiplet_vs_monolithic_kg
from repro.sustainability.fleet import (
    crossover_year,
    datacenter_equivalents,
    fleet_power_w,
)
from repro.sustainability.lca import compare_designs
from repro.sustainability.operational import edge_vs_cloud_training


def main() -> None:
    # Datacenters on wheels.
    fleet = FleetScenario("early-av-fleet", n_vehicles=10e6,
                          annual_growth=0.3)
    rows = [[year, power / 1e9, fraction]
            for year, power, fraction
            in fleet_vs_datacenters(fleet, years=15)]
    print(format_table(
        ["year", "fleet compute (GW)", "x global datacenters"],
        rows,
        title="10M AVs at 840 W, growing 30%/yr",
    ))
    mature = FleetScenario("mature", n_vehicles=1e8)
    print(f"A mature 100M-vehicle fleet ="
          f" {fleet_power_w(mature) / 1e9:.1f} GW ="
          f" {datacenter_equivalents(mature):.0f} hyperscale"
          f" datacenters; projected crossover of global DC power in"
          f" year {crossover_year(fleet)}\n")

    # Edge vs cloud training carbon.
    job = edge_vs_cloud_training(1e18)
    print(f"Training 1e18 FLOPs: edge {job['edge_kg']:.1f} kgCO2e vs"
          f" cloud {job['cloud_kg']:.1f} kgCO2e"
          f" ({job['ratio']:.0f}x worse on-device)\n")

    # Lifecycle: disposable widget vs durable cross-cutting design.
    designs = compare_designs({
        "disposable widget (2 yr)": LifecycleInputs(
            name="widget", die_area_mm2=60.0, node=ProcessNode.N5,
            average_power_w=2.0, duty_cycle=0.1,
            lifetime_years=2.0, units=1_000_000,
        ),
        "durable cross-cutting (8 yr)": LifecycleInputs(
            name="crosscut", die_area_mm2=90.0, node=ProcessNode.N5,
            average_power_w=4.0, duty_cycle=0.4,
            lifetime_years=8.0, units=1_000_000,
        ),
    })
    table = []
    for name, assessment in designs.items():
        table.append([name, assessment.embodied_kg,
                      assessment.operational_kg, assessment.total_kg,
                      assessment.fleet_total_kg / 1e6])
    print(format_table(
        ["design", "embodied kg", "operational kg", "net kg/unit",
         "fleet ktCO2e"],
        table, title="Lifecycle assessment at 1M units",
    ))

    # Chiplets help the embodied side at advanced nodes.
    split = chiplet_vs_monolithic_kg(800.0, ProcessNode.N5,
                                     n_chiplets=4)
    print(f"\n800 mm^2 of 5nm logic: monolithic"
          f" {split['monolithic_kg']:.1f} kg vs 4-chiplet"
          f" {split['chiplet_kg']:.1f} kg embodied CO2e per package")


if __name__ == "__main__":
    main()
