"""Motion-planning acceleration: software first (§2.5).

Runs the *same* RRT-Connect planner with the scalar and the vectorized
collision checker (functionally identical, measurably different work
shapes), then prices both measured profiles across the platform catalog
— showing that tuned software on the CPU you already have closes most
of the gap to dedicated hardware.

Run:  python examples/planner_acceleration.py
"""

import numpy as np

from repro.core import format_table
from repro.hw import desktop_cpu, embedded_gpu, midrange_fpga
from repro.hw.asic import widget_asic
from repro.hw.cpu import CpuModel
from repro.kernels.planning import (
    BatchCollisionChecker,
    CircleWorld,
    RrtConnectPlanner,
    ScalarCollisionChecker,
    shortcut_path,
)
from repro.kernels.planning.postprocess import path_length


def main() -> None:
    world = CircleWorld.random(dim=2, n_obstacles=35, extent=12.0,
                               seed=3, keep_corners_free=1.5)
    start = np.array([0.3, 0.3])
    goal = np.array([11.7, 11.7])

    # The same planner, two checker implementations.
    checkers = {
        "scalar (early exit)": ScalarCollisionChecker(world),
        "vectorized (batch)": BatchCollisionChecker(world),
    }
    profiles = {}
    for label, checker in checkers.items():
        planner = RrtConnectPlanner(world, checker, seed=7)
        result = planner.plan(start, goal)
        smoothed = shortcut_path(result.path, checker, seed=7)
        profiles[label] = checker.profile()
        print(f"{label}: found={result.found}"
              f" iterations={result.iterations}"
              f" path {path_length(result.path):.2f} m ->"
              f" {path_length(smoothed):.2f} m after shortcutting")

    print()
    rows = []
    for label, profile in profiles.items():
        rows.append([label, profile.total_ops / 1e6,
                     profile.parallel_fraction,
                     profile.divergence.value])
    print(format_table(
        ["checker", "measured Mops", "parallel fraction",
         "divergence"],
        rows,
        title="Identical planning query, different work shapes",
    ))

    # Price the measured vectorized profile across the catalog.
    batch_profile = profiles["vectorized (batch)"]
    cpu = desktop_cpu()
    platforms = [
        ("1-core scalar CPU",
         CpuModel(cpu.cpu.scalar_variant().single_core_variant())),
        ("vectorized desktop CPU", cpu),
        ("embedded GPU", embedded_gpu()),
        ("midrange FPGA", midrange_fpga()),
        ("collision ASIC", widget_asic("collision")),
    ]
    rows = []
    baseline = None
    for label, platform in platforms:
        latency = platform.estimate(batch_profile).latency_s
        if baseline is None:
            baseline = latency
        rows.append([label, latency * 1e6, baseline / latency])
    print()
    print(format_table(
        ["platform", "latency (us)", "speedup vs scalar core"],
        rows,
        title="The measured collision workload across the platform"
              " catalog (§2.5: don't skip the software rung)",
    ))


if __name__ == "__main__":
    main()
