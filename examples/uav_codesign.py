"""UAV compute co-design: the §2.4 + §3.1 workflow, end to end.

Sweeps the onboard-compute ladder through a closed-loop patrol mission
(showing the over-provisioning U-shape), then lets the GP-surrogate
design-space explorer find the best (tier, battery, sensor-rate) combo
with a fraction of the simulator runs exhaustive search would need.

Run:  python examples/uav_codesign.py
"""

import numpy as np

from repro.core import format_table
from repro.dse import DesignSpace, Parameter, SurrogateSearch
from repro.hw import uav_compute_tiers
from repro.kernels.planning import CircleWorld
from repro.metrics.mission import rank_tiers
from repro.system import MissionConfig, run_mission, sweep_compute_tiers
from repro.system.robot import BatteryModel


def main() -> None:
    world = CircleWorld.random(dim=2, n_obstacles=40, extent=120.0,
                               radius_range=(1.0, 3.0), seed=11,
                               keep_corners_free=3.0)
    config = MissionConfig(world=world, start=np.array([1.0, 1.0]),
                           goal=np.array([118.0, 118.0]), laps=20)
    tiers = uav_compute_tiers()

    # Part 1: the compute ladder, closed loop.
    rows = sweep_compute_tiers(config, tiers)
    print(format_table(
        ["tier", "outcome", "safe speed (m/s)", "endurance (s)",
         "mission energy (kJ)"],
        [[name,
          "success" if r.success else f"FAIL ({r.failure_reason})",
          r.safe_speed_m_s, r.endurance_s, r.energy_j / 1e3]
         for name, r in rows],
        title="Patrol mission vs. onboard compute"
              " (more is not better)",
    ))
    print(f"Best tier by mission merit: {rank_tiers(rows)[0][0]}\n")

    # Part 2: co-design with the ML surrogate (compute x battery x
    # sensor rate), using the mission simulator as the oracle.
    cache = {}

    def objective(design):
        key = tuple(sorted(design.items()))
        if key in cache:
            return cache[key]
        mission = MissionConfig(
            world=world, start=np.array([1.0, 1.0]),
            goal=np.array([118.0, 118.0]), laps=20,
            sensor_rate_hz=design["sensor_rate_hz"],
            battery=BatteryModel.from_capacity(design["battery_wh"]),
        )
        _, platform, mass, power = tiers[design["tier"]]
        result = run_mission(mission, platform, mass, power)
        value = result.energy_j if result.success else 1e9
        cache[key] = value
        return value

    space = DesignSpace([
        Parameter("tier", tuple(range(len(tiers)))),
        Parameter("battery_wh", (30.0, 50.0, 80.0, 120.0)),
        Parameter("sensor_rate_hz", (15.0, 30.0, 60.0)),
    ])
    search = SurrogateSearch(space, n_initial=6, seed=0)
    result = search.run(objective, budget=18)
    print(f"Surrogate DSE: {result.evaluations} simulator runs over a"
          f" {space.size}-point space")
    print(f"  best design: {result.best_config}")
    print(f"  mission energy: {result.best_value / 1e3:.1f} kJ")


if __name__ == "__main__":
    main()
