"""FIG1: publication-trend reproduction (paper Fig. 1).

Paper: "Mention of accelerators for autonomous systems in top-tier
computing and robotics venues, from Google Scholar" — a rapidly growing
per-year count through the 2010s into the 2020s.

Here: the same query/aggregation pipeline over the synthetic corpus
(offline substitution; see DESIGN.md), asserting the growth shape.
"""

from repro.biblio import TOP_VENUES, fig1_series, generate_corpus
from repro.core.report import ascii_bar_chart, format_series


def _run():
    corpus = generate_corpus(start_year=2010, end_year=2024, seed=0)
    return fig1_series(corpus, venues=TOP_VENUES)


def test_fig1_mentions_grow_rapidly(benchmark, report):
    trend = benchmark(_run)

    report(format_series(
        "year", "mentions", trend.series,
        title="FIG1: autonomy-accelerator mentions per year"
        " (synthetic corpus)",
    ))
    report(ascii_bar_chart(
        [str(year) for year, _ in trend.series],
        [float(count) for _, count in trend.series],
        title="FIG1 (bar view)",
    ))
    report(f"total={trend.total}  CAGR={trend.growth_rate:.2%}"
           f"  peak year={trend.peak_year}")

    counts = dict(trend.series)
    early = sum(counts.get(y, 0) for y in range(2010, 2014))
    late = sum(counts.get(y, 0) for y in range(2020, 2024))
    # Shape: order-of-magnitude growth from early 2010s to early 2020s,
    # sustained positive CAGR, recent peak.
    assert late > 10 * max(early, 1)
    assert trend.growth_rate > 0.2
    assert trend.peak_year >= 2020
