"""A1 (ablation, §2.4): scheduler policy vs. deadline misses.

The paper's point that accelerators "introduce complexities in system
scheduling" presumes scheduling *matters*; this ablation quantifies it.
A feasible autonomy task set (control/perception/planning rates) meets
every deadline under preemptive EDF and rate-monotonic scheduling, yet
misses deadlines under naive non-preemptive FIFO — and under overload,
fixed priorities protect the safety-critical task while EDF degrades
everyone (the classic EDF domino effect).
"""

from repro.core.report import format_table
from repro.system.scheduler import (
    PeriodicTask,
    SchedulerPolicy,
    rm_utilization_bound,
    simulate_scheduler,
)


def _autonomy_task_set(overloaded: bool):
    scale = 2.0 if overloaded else 1.0
    return [
        PeriodicTask("control", period_s=0.01,
                     wcet_s=0.002 * scale, priority=0),
        PeriodicTask("perception", period_s=0.033,
                     wcet_s=0.010 * scale, priority=1),
        PeriodicTask("planning", period_s=0.1,
                     wcet_s=0.025 * scale, priority=2),
    ]


def _run_ablation():
    results = {}
    for label, overloaded in (("feasible", False), ("overload", True)):
        tasks = _autonomy_task_set(overloaded)
        for policy in SchedulerPolicy:
            outcome = simulate_scheduler(tasks, policy,
                                         duration_s=2.0,
                                         time_step_s=1e-4)
            results[(label, policy)] = outcome
    return results


def test_a1_scheduler_policy_ablation(benchmark, report):
    results = benchmark(_run_ablation)

    rows = []
    for (label, policy), outcome in results.items():
        rows.append([
            label, policy.value, outcome.utilization,
            outcome.miss_rate,
            outcome.per_task_misses["control"],
        ])
    report(format_table(
        ["load", "policy", "utilization", "miss rate",
         "control-task misses"],
        rows,
        title="A1: scheduling policy vs. deadline misses"
              " (control 100 Hz / perception 30 Hz / planning 10 Hz)",
    ))
    bound = rm_utilization_bound(3)
    feasible_util = results[("feasible",
                             SchedulerPolicy.EDF)].utilization
    report(f"A1: feasible-set utilization {feasible_util:.2f} vs."
           f" Liu-Layland bound {bound:.2f}")

    feasible = {policy: results[("feasible", policy)]
                for policy in SchedulerPolicy}
    overload = {policy: results[("overload", policy)]
                for policy in SchedulerPolicy}

    # Shape 1: under feasible load, preemptive EDF and RM are clean;
    # non-preemptive FIFO is not.
    assert feasible[SchedulerPolicy.EDF].miss_rate == 0.0
    assert feasible[SchedulerPolicy.RATE_MONOTONIC].miss_rate == 0.0
    assert feasible[SchedulerPolicy.FIFO].miss_rate > 0.0

    # Shape 2: the feasible set is inside the RM utilization bound
    # (the analytical cross-check agrees with the simulation).
    assert feasible_util < bound

    # Shape 3: under overload, fixed priority protects the
    # safety-critical control task; EDF spreads misses onto it.
    fp = overload[SchedulerPolicy.FIXED_PRIORITY]
    edf = overload[SchedulerPolicy.EDF]
    assert fp.per_task_misses["control"] == 0
    assert edf.per_task_misses["control"] > 0
    assert edf.miss_rate > 0.2
