"""A2 (ablation, §3.1): does the closed-form roofline agree with the
discrete-event simulator?

The end-to-end methodology stacks an analytical platform model under a
queued DES.  This ablation validates the stack against itself at both
ends: (1) the closed-form roofline latency matches the platform model
within its known extras (launch overhead, Amdahl serial term) across
four decades of arithmetic intensity; (2) the DES pipeline's measured
idle-pipeline latency matches the analytical critical path to within a
few percent.
"""


from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.core.report import format_table
from repro.core.workload import linear_pipeline
from repro.hw import RooflineModel, embedded_cpu
from repro.system.io_model import IoModel
from repro.system.pipeline import PipelineSimulation

INTENSITIES = (0.1, 1.0, 10.0, 100.0, 1000.0)
TRAFFIC_BYTES = 8e6


def _profile_at_intensity(intensity):
    return WorkloadProfile(
        name=f"ai-{intensity:g}",
        flops=intensity * TRAFFIC_BYTES,
        bytes_read=TRAFFIC_BYTES * 0.75,
        bytes_written=TRAFFIC_BYTES * 0.25,
        working_set_bytes=TRAFFIC_BYTES,  # spills L2: off-chip regime
        parallel_fraction=1.0,
        divergence=DivergenceClass.NONE,
        op_class="stencil",
    )


def _run_validation():
    cpu = embedded_cpu()
    roofline = RooflineModel.from_platform(cpu)
    sweep = []
    for intensity in INTENSITIES:
        profile = _profile_at_intensity(intensity)
        analytical = roofline.latency_s(profile)
        modeled = cpu.estimate(profile).latency_s
        sweep.append((intensity, analytical, modeled))

    profiles = [_profile_at_intensity(ai) for ai in (1.0, 10.0, 50.0)]
    graph = linear_pipeline("chain", profiles, rate_hz=2.0)
    services = {s.name: cpu.estimate(s.profile).latency_s
                for s in graph.stages}
    io = IoModel()  # free transport: isolates the queueing model
    predicted, _ = graph.critical_path(services)
    measured = PipelineSimulation(graph, services,
                                  io=io).run(10.0).mean_latency_s()
    return roofline, sweep, predicted, measured


def test_a2_roofline_vs_simulation(benchmark, report):
    roofline, sweep, predicted, measured = benchmark(_run_validation)

    rows = [[ai, analytical * 1e3, modeled * 1e3,
             modeled / analytical]
            for ai, analytical, modeled in sweep]
    report(format_table(
        ["arithmetic intensity (op/B)", "roofline (ms)",
         "platform model (ms)", "ratio"],
        rows,
        title=f"A2: closed-form roofline vs. platform model"
              f" (ridge at {roofline.ridge_intensity:.1f} op/B)",
    ))
    report(f"A2: DES idle-pipeline latency {measured * 1e3:.3f} ms vs."
           f" analytical critical path {predicted * 1e3:.3f} ms")

    # Shape 1: agreement within 2x everywhere, tight in the
    # memory-bound regime (where the roofline has no missing terms).
    for ai, analytical, modeled in sweep:
        assert modeled <= 2.0 * analytical
        assert modeled >= 0.95 * analytical  # model adds, never removes
        if roofline.is_memory_bound(ai):
            assert abs(modeled - analytical) / analytical < 0.2
    # Shape 2: both models agree on where the ridge is.  Traffic is
    # held constant, so latency is flat while memory-bound (ai 0.1 and
    # 1.0) and rises linearly with intensity once compute-bound.
    latencies = [modeled for _, __, modeled in sweep]
    assert abs(latencies[0] - latencies[1]) < 0.05 * latencies[0]
    assert latencies[3] > 5.0 * latencies[2]
    assert latencies[4] > 5.0 * latencies[3]

    # Shape 3: the DES agrees with the closed form when queues are idle.
    assert abs(measured - predicted) / predicted < 0.05
