"""E3 (§2.3, Widgetism): a single-algorithm widget vs. a cross-cutting
kernel accelerator, judged on a representative suite.

Paper claim: picking one slow algorithm and lowering it to an ASIC
produces high-performance "widgets" overfit to one task; the remedy is
to accelerate *cross-cutting kernels* (e.g. sparse/dense tensor algebra,
collision checking) that serve many tasks.

Experiment: the standard 7-workload autonomy suite is run on three
SoCs — host only, host + widget ASIC (rigid-body dynamics only), and
host + cross-cutting ASIC (GEMM/stencil/collision).  The widget wins its
pet workload by a larger margin but the cross-cutting design wins the
suite geomean; the cross-cutting analysis module picks the same
categories from first principles.
"""

from repro.benchmarksuite import SuiteRunner, standard_suite
from repro.core.crosscut import find_crosscutting_kernels
from repro.core.report import format_table
from repro.hw import HeterogeneousSoC, embedded_cpu
from repro.hw.asic import crosscutting_asic, widget_asic

WIDGET_CLASS = "dynamics"
CROSSCUT_CLASSES = ("gemm", "stencil", "collision")


def _build_targets():
    host = embedded_cpu("host-cpu")
    widget_soc = HeterogeneousSoC(
        "widget-soc", embedded_cpu("widget-host"),
        [widget_asic(WIDGET_CLASS)],
    )
    crosscut_soc = HeterogeneousSoC(
        "crosscut-soc", embedded_cpu("crosscut-host"),
        [crosscutting_asic(CROSSCUT_CLASSES)],
    )
    return host, widget_soc, crosscut_soc


def _run_suite():
    runner = SuiteRunner()
    host, widget_soc, crosscut_soc = _build_targets()
    rows = runner.run([host, widget_soc, crosscut_soc])
    return runner, rows


def test_e3_crosscutting_beats_widget_on_suite(benchmark, report):
    runner, rows = benchmark(_run_suite)

    table = runner.latency_map(rows)
    host_lat = table["host-cpu"]
    per_workload = []
    for workload in sorted(host_lat):
        per_workload.append([
            workload,
            host_lat[workload] * 1e3,
            host_lat[workload] / table["widget-soc"][workload],
            host_lat[workload] / table["crosscut-soc"][workload],
        ])
    report(format_table(
        ["workload", "host latency (ms)", "widget speedup",
         "crosscut speedup"],
        per_workload,
        title="E3: per-workload speedup over the host CPU",
    ))

    scores = dict(runner.ranked_scores(rows, "host-cpu"))
    report(format_table(
        ["target", "suite geomean speedup"],
        sorted(scores.items(), key=lambda kv: -kv[1]),
        title="E3: suite-level scores",
    ))

    # Shape 1: the widget wins its pet workload by more than the
    # cross-cutting design does.
    pet = "manipulation-control"
    widget_pet = host_lat[pet] / table["widget-soc"][pet]
    crosscut_pet = host_lat[pet] / table["crosscut-soc"][pet]
    assert widget_pet > crosscut_pet
    assert widget_pet > 1.5

    # Shape 2: across the suite, the cross-cutting accelerator wins
    # the geometric mean and the widget barely moves it.
    assert scores["crosscut-soc"] > scores["widget-soc"]
    assert scores["crosscut-soc"] > 1.15
    assert scores["widget-soc"] < 1.3

    # Shape 3: first-principles analysis picks the cross-cutting
    # categories (not the widget's) from the workload suite itself.
    crosscut = find_crosscutting_kernels(standard_suite(), budget=3)
    report(f"E3 analysis: greedy cross-cutting selection ="
           f" {crosscut.selected} (coverage"
           f" {crosscut.final_coverage:.0%})")
    assert set(crosscut.selected) <= set(CROSSCUT_CLASSES) | {"linalg"}
    assert WIDGET_CLASS not in crosscut.selected
