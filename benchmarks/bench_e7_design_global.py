"""E7 (§2.7, Design Global): datacenters on wheels, and edge-vs-cloud
training carbon.

Paper claims reproduced:

(a) Sudhakar et al. — autonomous vehicles are "datacenters on wheels":
    a global-scale AV fleet's onboard compute rivals global datacenter
    power, and under fleet growth it crosses it within decades.

(b) Patterson et al. — "choosing to train ML models on edge devices can
    lead to a greater increase in carbon emissions" than cloud
    training, because cloud accelerators are ~10x more energy-
    efficient and hyperscale regions run cleaner grids.

Plus the §3.3 corollary: lifecycle analysis punishes short-lifespan
over-specialized hardware.
"""

from repro.core.report import format_table
from repro.sustainability import (
    FleetScenario,
    LifecycleInputs,
    ProcessNode,
    fleet_vs_datacenters,
)
from repro.sustainability.fleet import (
    crossover_year,
    datacenter_equivalents,
    fleet_energy_twh_per_year,
    fleet_power_w,
)
from repro.sustainability.lca import amortized_kg_per_year, assess
from repro.sustainability.operational import edge_vs_cloud_training

TRAINING_FLOPS = 1e18  # a modest on-robot adaptation job


def _run_all():
    fleet_today = FleetScenario("us-fleet-scale", n_vehicles=1e8)
    fleet_growing = FleetScenario("early-deployment", n_vehicles=1e7,
                                  annual_growth=0.3)
    projection = fleet_vs_datacenters(fleet_growing, years=15)
    training = {
        "defaults": edge_vs_cloud_training(TRAINING_FLOPS),
        "dirty-edge-grid": edge_vs_cloud_training(
            TRAINING_FLOPS, edge_grid="coal-heavy"),
        "clean-edge-grid": edge_vs_cloud_training(
            TRAINING_FLOPS, edge_grid="hydro-nordic"),
    }
    return fleet_today, fleet_growing, projection, training


def test_e7a_datacenters_on_wheels(benchmark, report):
    fleet_today, fleet_growing, projection, _ = benchmark(_run_all)

    report(format_table(
        ["year", "fleet power (GW)", "fraction of global DC power"],
        [[year, power / 1e9, fraction]
         for year, power, fraction in projection],
        title="E7a: AV fleet compute vs. global datacenter power"
              " (10M vehicles, 30%/yr growth)",
    ))
    equivalents = datacenter_equivalents(fleet_today)
    energy = fleet_energy_twh_per_year(fleet_today)
    report(f"E7a: a 100M-vehicle fleet draws"
           f" {fleet_power_w(fleet_today) / 1e9:.1f} GW ="
           f" {equivalents:.0f} hyperscale datacenters"
           f" = {energy:.0f} TWh/yr")

    # Shape 1: car-fleet scale compute is datacenter scale.
    assert equivalents > 100.0
    assert energy > 10.0
    # Shape 2: with sustained growth, fleet compute crosses *global*
    # datacenter power within a couple of decades.
    year = crossover_year(fleet_growing)
    report(f"E7a: projected crossover in year {year}")
    assert 5 < year <= 25
    # Shape 3: the projection is monotone under positive growth.
    fractions = [fraction for _, __, fraction in projection]
    assert fractions == sorted(fractions)


def test_e7b_edge_training_emits_more(benchmark, report):
    _, __, ___, training = benchmark(_run_all)

    report(format_table(
        ["scenario", "edge kgCO2e", "cloud kgCO2e", "edge/cloud"],
        [[name, r["edge_kg"], r["cloud_kg"], r["ratio"]]
         for name, r in training.items()],
        title=f"E7b: one {TRAINING_FLOPS:.0e}-FLOP training job,"
              " edge vs. cloud",
    ))

    # Shape: on-device training emits more CO2 than cloud training
    # under representative assumptions; the gap widens on dirty grids
    # and persists (through the efficiency gap) even on clean ones.
    assert training["defaults"]["ratio"] > 3.0
    assert (training["dirty-edge-grid"]["ratio"]
            > training["defaults"]["ratio"])
    assert training["clean-edge-grid"]["edge_kg"] > 0.0


def test_e7c_short_lifespans_waste_embodied_carbon(benchmark, report):
    def run():
        # An over-specialized widget is also *under-used*: it burns its
        # embodied carbon up front and then mostly sits idle (low duty
        # cycle, low average power) — so lifetime dominates its
        # amortized footprint.
        def widget(years):
            return LifecycleInputs(
                name=f"widget-{years}y", die_area_mm2=100.0,
                node=ProcessNode.N5, average_power_w=2.0,
                duty_cycle=0.1, lifetime_years=years,
                units=100_000,
            )
        return {years: (assess(widget(years)),
                        amortized_kg_per_year(widget(years)))
                for years in (1.0, 2.0, 5.0, 10.0)}

    results = benchmark(run)
    report(format_table(
        ["lifetime (yr)", "embodied kg", "operational kg",
         "net kg/unit", "kg per unit-year"],
        [[years, a.embodied_kg, a.operational_kg, a.total_kg, rate]
         for years, (a, rate) in sorted(results.items())],
        title="E7c: lifecycle cost of short-lifespan accelerators",
    ))

    rates = [rate for _, rate in
             (results[y] for y in sorted(results))]
    # Shape: amortized footprint falls monotonically with lifetime —
    # the §3.3 argument against disposable widgets.
    assert rates == sorted(rates, reverse=True)
    one_year = results[1.0][1]
    ten_year = results[10.0][1]
    assert one_year > 3.0 * ten_year
