"""E6 (§2.6, Forest vs. Trees): kernel speedups evaporate end to end.

Paper claim: optimizing kernels without the end-to-end system (sensors,
I/O, data marshalling — the "AI tax") yields DSAs that improve
theoretical performance but fail to deliver real-world benefits.

Experiment: a VIO pipeline (camera capture → detect → track → estimate
→ fuse → control) runs on the queued pipeline simulator with ROS-class
inter-stage transport.  The detect kernel is accelerated 2x...1000x.
Kernel speedup grows unboundedly; the *measured sensor-to-actuator
latency* saturates at the Amdahl ceiling set by the unaccelerated
stages and the I/O tax — and the ceiling computed by
``repro.core.characterize`` predicts the measured saturation.
"""

from repro.core.characterize import max_amdahl_speedup
from repro.core.report import format_table
from repro.core.workload import Stage, TaskGraph
from repro.hw import embedded_cpu
from repro.kernels.control.lqr import lqr_profile
from repro.kernels.linalg import cholesky_profile
from repro.kernels.vision.features import harris_profile
from repro.kernels.vision.optical_flow import lk_profile
from repro.system.io_model import ros_like_middleware
from repro.system.pipeline import PipelineSimulation

FRAME_BYTES = 640 * 480 * 2.0
SPEEDUPS = (1.0, 2.0, 5.0, 10.0, 100.0, 1000.0)


def _vio_graph():
    detect = harris_profile(480, name="detect")
    track = lk_profile(150, name="track")
    estimate = cholesky_profile(90, name="estimate")
    fuse = cholesky_profile(40, name="fuse")
    control = lqr_profile(12, 4, riccati_iterations=20, name="control")
    return TaskGraph("vio-e2e", [
        Stage("detect", detect, rate_hz=30.0,
              output_bytes=FRAME_BYTES / 4),
        Stage("track", track, deps=("detect",), output_bytes=4800.0),
        Stage("estimate", estimate, deps=("track",),
              output_bytes=1024.0),
        Stage("fuse", fuse, deps=("estimate",), output_bytes=256.0),
        Stage("control", control, deps=("fuse",), output_bytes=64.0),
    ])


def _run_sweep():
    graph = _vio_graph()
    cpu = embedded_cpu()
    io = ros_like_middleware()
    base_services = {
        stage.name: cpu.estimate(stage.profile).latency_s
        for stage in graph.stages
    }
    # The camera payload hop into the pipeline is part of every
    # sample's latency: model it as extra service on the source stage
    # (capture DMA + deserialization).
    capture_tax = io.transfer_time_s(FRAME_BYTES)

    results = []
    for speedup in SPEEDUPS:
        services = dict(base_services)
        services["detect"] = (base_services["detect"] / speedup
                              + capture_tax)
        sim = PipelineSimulation(graph, services, io=io)
        outcome = sim.run(5.0)
        results.append((speedup, outcome.mean_latency_s()))
    return base_services, capture_tax, results


def test_e6_kernel_speedup_evaporates(benchmark, report):
    base_services, capture_tax, results = benchmark(_run_sweep)

    base_latency = results[0][1]
    table = []
    for speedup, latency in results:
        table.append([f"{speedup:g}x", latency * 1e3,
                      base_latency / latency])
    report(format_table(
        ["detect kernel speedup", "end-to-end latency (ms)",
         "end-to-end speedup"],
        table,
        title="E6: accelerating one kernel in a sensor-to-actuator"
              " pipeline",
    ))

    # Analytical ceiling: the detect *compute* share of one
    # activation's total latency (everything else, I/O tax included,
    # does not accelerate).
    io_total = base_latency - sum(base_services.values()) - capture_tax
    accelerable = base_services["detect"]
    fraction = accelerable / base_latency
    ceiling = max_amdahl_speedup(fraction)
    report(f"E6: detect is {fraction:.0%} of end-to-end time ->"
           f" Amdahl ceiling {ceiling:.2f}x"
           f" (I/O tax alone: {(capture_tax + io_total) * 1e3:.2f} ms"
           f" per frame)")

    e2e = {speedup: base_latency / latency
           for speedup, latency in results}

    # Shape 1: end-to-end speedup saturates far below kernel speedup.
    assert e2e[1000.0] < 5.0
    assert e2e[1000.0] < ceiling * 1.05
    # Shape 2: most of the achievable gain is in by 10x; 100x and
    # 1000x are nearly indistinguishable (the flat tail).
    assert e2e[10.0] > 0.7 * e2e[1000.0]
    assert e2e[1000.0] - e2e[100.0] < 0.05 * e2e[1000.0]
    # Shape 3: gains are monotone (sanity).
    ordered = [e2e[s] for s in SPEEDUPS]
    assert all(b >= a - 1e-9 for a, b in zip(ordered, ordered[1:]))
