"""Evaluation engine: parallel speedup and cache hit-rate.

The engine's pitch is operational, so the certification is too:

1. **Parallel speedup** — a batch of expensive candidates priced on a
   4-worker process pool must beat the serial run by a clear margin
   while producing identical values (the ask/tell refactor's whole
   point is that this is safe).
2. **Cache economics** — a warm :class:`~repro.engine.ResultCache`
   must answer a repeat batch with a 100% hit rate, zero oracle calls,
   and a large wall-clock win.

The oracle is the suite-priced co-design objective scaled up by
repetition to emulate the expensive simulators the engine exists for
(a real candidate evaluation is a closed-loop mission or RTL run, not
a 0.2 ms roofline pass).

The parallel measurement lives in the benchmark registry
(:func:`repro.bench.builtin.run_engine_parallel` — the same runner
``repro bench --filter engine_parallel`` executes); running this file
directly appends the result to ``BENCH_LEDGER.jsonl``.
"""

import os
import sys
import time

import pytest

from repro.bench import append_records, get_benchmark, ledger_record
from repro.dse.objectives import codesign_space, suite_objective
from repro.engine import Evaluator, ResultCache

REPS = 120          # oracle weight: ~30 ms per candidate
BATCH = 24          # candidates per run
JOBS = 4
ATTEMPTS = 3        # re-measure on a noisy machine before failing
MIN_SPEEDUP = 1.5   # required parallel win (4 workers, conservative)


def heavy_objective(candidate):
    """An artificially expensive oracle (module-level: picklable)."""
    value = 0.0
    for _ in range(REPS):
        value = suite_objective(candidate)
    return value


def _candidates():
    space = codesign_space()
    step = max(1, space.size // BATCH)
    return [space.config_at(i * step) for i in range(BATCH)]


def _timed(evaluator, candidates):
    started = time.perf_counter()
    results = evaluator.map_batch(candidates)
    return time.perf_counter() - started, [r.value for r in results]


def _available_cpus():
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def test_parallel_speedup_and_identity(report):
    # Runs through the registered entry (which asserts serial ==
    # parallel values internally) so this certification and
    # ``repro bench`` measure the same code.
    entry = get_benchmark("engine_parallel")
    best = None
    for _ in range(ATTEMPTS):
        metrics = entry.run(BATCH)
        speedup = metrics["speedup"]
        best = max(best, speedup) if best is not None else speedup
        if best >= MIN_SPEEDUP:
            break
    report(f"engine parallel bench: {BATCH} candidates,"
           f" serial {metrics['serial_per_s']:.2f}/s,"
           f" jobs={JOBS} {metrics['parallel_per_s']:.2f}/s,"
           f" speedup {speedup:.2f}x (best {best:.2f}x)")
    # Identity (above) holds on any machine; the wall-clock win needs
    # actual parallel hardware.
    if _available_cpus() < 2:
        pytest.skip(f"single-CPU allotment: speedup was {best:.2f}x,"
                    " identity verified")
    assert best >= MIN_SPEEDUP, (
        f"parallel evaluation only {best:.2f}x faster"
    )


def test_cache_hit_rate_and_replay_cost(report):
    candidates = _candidates()
    cache = ResultCache()
    cold = Evaluator(heavy_objective, cache=cache)
    cold_s, cold_values = _timed(cold, candidates)
    before = cache.stats()
    warm = Evaluator(heavy_objective, cache=cache)
    warm_s, warm_values = _timed(warm, candidates)

    # The cache's counters span both runs; the warm-run hit rate is
    # the delta.
    after = cache.stats()
    lookups = (after["hits"] - before["hits"]
               + after["misses"] - before["misses"])
    hit_rate = (after["hits"] - before["hits"]) / lookups
    report(f"engine cache bench: cold {cold_s * 1e3:.0f} ms"
           f" ({cold.oracle_calls} oracle calls), warm"
           f" {warm_s * 1e3:.1f} ms ({warm.oracle_calls} oracle"
           f" calls), hit rate {hit_rate:.0%},"
           f" replay win {cold_s / max(warm_s, 1e-9):.0f}x")
    assert warm_values == cold_values
    assert warm.oracle_calls == 0
    assert hit_rate == 1.0
    assert warm_s < cold_s / 10


def main(ledger_path="BENCH_LEDGER.jsonl"):
    entry = get_benchmark("engine_parallel")
    records = []
    for size in entry.sizes:
        started = time.perf_counter()
        metrics = entry.run(size)
        records.append(ledger_record(
            entry.name, size, metrics,
            time.perf_counter() - started,
            config={"script": "bench_engine_parallel.py"}))
        print(f"{size:>6} candidates:"
              f" serial {metrics['serial_per_s']:.2f}/s,"
              f" parallel {metrics['parallel_per_s']:.2f}/s,"
              f" speedup {metrics['speedup']:.2f}x")
    append_records(ledger_path, records)
    print(f"appended {len(records)} record(s) to {ledger_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
