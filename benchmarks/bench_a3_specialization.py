"""A3 (ablation, §2.3): how narrow is too narrow?

The widget/cross-cutting dichotomy of E3, swept continuously: an ASIC's
supported-class set grows from 1 (pure widget) to 6, paying a
generality penalty in peak throughput and area at every step.  Suite
performance (geomean over the 7-workload suite) climbs steeply for the
first added classes and flattens as the penalty eats the gains — the
sweet spot is a *few* cross-cutting classes, not one and not all.
"""

from repro.benchmarksuite import SuiteRunner
from repro.core.report import format_table
from repro.hw import HeterogeneousSoC, embedded_cpu
from repro.hw.asic import AsicAccelerator, AsicConfig

# Classes ordered by suite-wide op share (see E3's greedy selection).
CLASS_ORDER = ("gemm", "stencil", "collision", "linalg",
               "dynamics", "sampling")


def _soc_with_classes(n_classes: int) -> HeterogeneousSoC:
    classes = frozenset(CLASS_ORDER[:n_classes])
    asic = AsicAccelerator(AsicConfig(
        name=f"asic-{n_classes}c",
        supported_op_classes=classes,
        generality_penalty=0.2,
    ))
    return HeterogeneousSoC(f"soc-{n_classes}c",
                            embedded_cpu(f"host-{n_classes}c"),
                            [asic])


def _run_sweep():
    runner = SuiteRunner()
    reference = embedded_cpu("host-cpu")
    targets = [reference] + [_soc_with_classes(k)
                             for k in range(1, len(CLASS_ORDER) + 1)]
    rows = runner.run(targets)
    scores = dict(runner.ranked_scores(rows, "host-cpu"))
    areas = {
        f"soc-{k}c": _soc_with_classes(k).accelerators[0]
        .asic.effective_area_mm2
        for k in range(1, len(CLASS_ORDER) + 1)
    }
    peaks = {
        f"soc-{k}c": _soc_with_classes(k).accelerators[0]
        .asic.effective_peak_flops
        for k in range(1, len(CLASS_ORDER) + 1)
    }
    return scores, areas, peaks


def test_a3_specialization_degree(benchmark, report):
    scores, areas, peaks = benchmark(_run_sweep)

    ks = range(1, len(CLASS_ORDER) + 1)
    table = [[k, CLASS_ORDER[k - 1], peaks[f"soc-{k}c"] / 1e12,
              areas[f"soc-{k}c"], scores[f"soc-{k}c"],
              scores[f"soc-{k}c"] / areas[f"soc-{k}c"]]
             for k in ks]
    report(format_table(
        ["classes", "added class", "peak (TFLOP/s)", "area (mm^2)",
         "suite geomean speedup", "speedup per mm^2"],
        table,
        title="A3: accelerator specialization-degree sweep"
              " (20% generality penalty per added class)",
    ))

    series = [scores[f"soc-{k}c"] for k in ks]

    # Shape 1: broadening past the pure widget helps a lot at first.
    assert series[1] > series[0]
    assert series[2] > series[0]

    # Shape 2: diminishing returns — the last class adds less than the
    # second class did.
    gain_second = series[1] - series[0]
    gain_last = series[-1] - series[-2]
    assert gain_last < 0.5 * gain_second

    # Shape 3: efficiency (speedup per area) peaks at a *small* class
    # count, not at maximum generality — the quantitative version of
    # "avoid over-specialization, but don't rebuild a GPU either."
    efficiency = [scores[f"soc-{k}c"] / areas[f"soc-{k}c"] for k in ks]
    best_k = ks[efficiency.index(max(efficiency))]
    assert best_k <= 3

    # Shape 4: everything beats the host baseline.
    assert all(s > 1.0 for s in series)
