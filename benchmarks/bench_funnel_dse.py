"""Multi-fidelity funnel DSE: speedup sweep + S7 rank-fidelity report.

The tentpole claim for :mod:`repro.dse.funnel`: screening a search
stream through the objective's fidelity ladder — batch pricing first,
full closed-loop DES only for gate survivors — beats paying full
fidelity for every candidate by an order of magnitude (>= 10x on the
high-resolution patrol setting), while landing on the *same* optimum
(screen regret 0, certified per run by the registered runner).

The measurement lives in the benchmark registry
(:func:`repro.bench.builtin.run_funnel_dse` — the same runner
``repro bench --filter funnel_dse`` executes), so this script, the
CLI, and the perf ledger can never measure different things.

This script additionally computes the S7 *rank-fidelity* analysis the
speedup rests on: the Spearman correlation between cheap-tier and
full-fidelity scores, and where the true optimum lands in the screen's
ordering (if the screen ranked it below the gate's keep-fraction, the
funnel would kill the best design before ever pricing it honestly).

Two entry points:

- ``pytest benchmarks/bench_funnel_dse.py`` — small-scale smoke: the
  funnel must not lose to single-fidelity search, the screen must be
  rank-faithful, and the default gates must keep the true optimum;
- ``python benchmarks/bench_funnel_dse.py`` — the full sweep plus the
  S7 table, printed, written to ``BENCH_funnel_dse.json``, and
  appended to ``BENCH_LEDGER.jsonl`` as provenance-stamped records.
"""

import json
import sys
import time

import numpy as np

from repro.bench import append_records, get_benchmark, ledger_record

SIZES = (4_000, 20_000)
SMOKE_SIZE = 256
ATTEMPTS = 3        # re-measure on a noisy machine before failing
TARGET_SPEEDUP = 10.0   # the EXPERIMENTS.md claim, at full sizes


def spearman(a, b):
    """Spearman rank correlation via double-argsort ranks + Pearson
    (no scipy dependency; ties broken by position, which is exactly
    the funnel's own deterministic tie rule)."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    ranks_a = np.empty(len(a))
    ranks_a[np.argsort(a, kind="stable")] = np.arange(len(a))
    ranks_b = np.empty(len(b))
    ranks_b[np.argsort(b, kind="stable")] = np.arange(len(b))
    ranks_a = (ranks_a - ranks_a.mean()) / ranks_a.std()
    ranks_b = (ranks_b - ranks_b.mean()) / ranks_b.std()
    return float((ranks_a * ranks_b).mean())


def rank_fidelity(screen_values, full_values):
    """S7 row: how faithfully a cheap tier ranks what the top tier
    scores — Spearman rho, the screen's rank of the true optimum, and
    the smallest keep-fraction that still promotes it."""
    screen = np.asarray(screen_values, dtype=np.float64)
    full = np.asarray(full_values, dtype=np.float64)
    true_best = int(np.argmin(full))
    screen_order = np.argsort(screen, kind="stable")
    screen_rank = int(np.nonzero(screen_order == true_best)[0][0])
    return {
        "n": len(screen),
        "spearman": round(spearman(screen, full), 4),
        "optimum_screen_rank": screen_rank,
        "min_keep_fraction": round((screen_rank + 1) / len(screen), 4),
    }


def s7_report(mission_sample=512, seed=7):
    """Rank fidelity for both declared ladders: the suite objective's
    roofline screen over the *fully enumerated* codesign space, and
    the mission objective's pricing screen over a seeded sample of the
    million-point space (full DES on every sampled candidate)."""
    from repro.dse.objectives import (codesign_space, codesign_space_xl,
                                      mission_objective, suite_objective)

    space = codesign_space()
    configs = [space.config_at(i) for i in range(space.size)]
    suite_row = rank_fidelity(
        suite_objective.roofline_screen_batch(configs),
        suite_objective.evaluate_batch(configs))

    sample = codesign_space_xl().sample(
        np.random.default_rng(seed), mission_sample)
    mission_row = rank_fidelity(
        mission_objective.pricing_screen_batch(sample),
        [mission_objective(config) for config in sample])
    return {"suite_roofline_vs_full": suite_row,
            "mission_pricing_vs_des": mission_row}


def sweep(sizes=SIZES):
    """Measure each search budget through the registered entry (the
    runner certifies tier-equivalence replay and screen regret >= 0
    before any rate is reported)."""
    entry = get_benchmark("funnel_dse")
    records = []
    for n in sizes:
        started = time.perf_counter()
        metrics = entry.run(n)
        records.append(ledger_record(
            entry.name, n, metrics,
            time.perf_counter() - started,
            config={"script": "bench_funnel_dse.py"}))
    return records


def test_funnel_not_slower_than_full_fidelity(report=None):
    """CI smoke: even at a small budget the funnel must not lose to
    pricing every candidate at full fidelity, and its best config must
    be the one the full-fidelity stream would have found."""
    entry = get_benchmark("funnel_dse")
    best = None
    for _ in range(ATTEMPTS):
        metrics = entry.run(SMOKE_SIZE)
        assert metrics["screen_regret"] == 0.0, (
            f"funnel missed the stream optimum by"
            f" {metrics['screen_regret']}")
        if best is None or metrics["speedup"] > best["speedup"]:
            best = metrics
        if best["speedup"] >= 1.0:
            break
    assert best["speedup"] >= 1.0, (
        f"funnel slower than full fidelity at n={SMOKE_SIZE}:"
        f" {best['speedup']:.2f}x")
    assert best["top_tier_frac"] <= 0.05, (
        f"gate leaked {best['top_tier_frac']:.1%} to the top tier")


def test_screens_are_rank_faithful():
    """CI smoke (S7): both cheap tiers must rank candidates nearly as
    the top tier scores them, and the default gates' keep-fractions
    must retain the true optimum."""
    report = s7_report(mission_sample=192)
    suite_row = report["suite_roofline_vs_full"]
    mission_row = report["mission_pricing_vs_des"]
    assert suite_row["spearman"] >= 0.95, suite_row
    assert mission_row["spearman"] >= 0.95, mission_row
    # Single-boundary suite ladder keeps 1%; mission ladder's first
    # gate keeps 5% — the optimum must sit inside both.
    assert suite_row["min_keep_fraction"] <= 0.01, suite_row
    assert mission_row["min_keep_fraction"] <= 0.05, mission_row


def main(out_path="BENCH_funnel_dse.json",
         ledger_path="BENCH_LEDGER.jsonl"):
    records = sweep()
    rows = [{"budget": record["size"], **record["metrics"]}
            for record in records]
    header = (f"{'budget':>7} {'full/s':>9} {'funnel/s':>10} "
              f"{'speedup':>8} {'top-tier':>9} {'regret':>7}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['budget']:>7} {row['full_fidelity_per_s']:>9.1f} "
              f"{row['funnel_per_s']:>10.1f} {row['speedup']:>7.2f}x "
              f"{row['top_tier_frac']:>8.2%} {row['screen_regret']:>7}")

    report = s7_report()
    print("\nS7 rank fidelity (cheap tier vs. full fidelity)")
    for name, row in report.items():
        print(f"  {name}: n={row['n']} spearman={row['spearman']}"
              f" optimum screen rank={row['optimum_screen_rank']}"
              f" (keep >= {row['min_keep_fraction']:.2%})")

    with open(out_path, "w") as handle:
        json.dump({"benchmark": "funnel_dse",
                   "objective": "mission_objective"
                                " (laps=4, time_step_s=0.01)",
                   "space": "codesign_xl",
                   "rows": rows, "rank_fidelity": report},
                  handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    append_records(ledger_path, records)
    print(f"appended {len(records)} record(s) to {ledger_path}")
    slowest = min(row["speedup"] for row in rows)
    if slowest < TARGET_SPEEDUP:
        print(f"WARNING: funnel speedup ({slowest:.1f}x) below the"
              f" {TARGET_SPEEDUP:.0f}x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
