"""Observability overhead: pipeline-sim throughput, tracing off vs. on.

The telemetry layer's contract is that *disabled* instrumentation is
free enough to leave compiled in: every emit site in the pipeline hot
path is guarded by one hoisted ``tracer.enabled`` bool test, so the
off path differs from the pre-telemetry baseline only by those dead
branches.  This bench certifies the budget two ways:

1. An A/A check on the off path — interleaved repetitions must agree
   within the 5% budget, which bounds both measurement noise and any
   hidden per-run cost of the disabled guards.
2. The off/on comparison — enabling a real tracer may legitimately
   cost more (it records every service span, queue sample, and drop),
   but the off path must never be slower than the on path.
"""

import sys
import time

from repro.bench import append_records, get_benchmark, ledger_record
from repro.core.profile import WorkloadProfile
from repro.core.workload import Stage, TaskGraph
from repro.system.pipeline import PipelineSimulation
from repro.telemetry import Tracer

DURATION_S = 60.0
REPS = 5
ATTEMPTS = 3  # re-measure on a noisy machine before failing

# The *opt-in* profiled path (tracer + SpanProfiler cProfile capture)
# instruments every Python call, so it is expected to cost an integer
# multiple of the uninstrumented run — measured ~4-5x on this pipeline.
# The budget is deliberately generous: it exists to catch the profiled
# path becoming pathological (capture work leaking into the steady
# state, nested captures stacking), not to promise cheap profiling.
# The *disabled* path stays under the 5% budget certified above.
PROFILED_BUDGET = 8.0
PROFILE_DURATION_S = 5.0  # registry smoke size: plenty of samples


def _graph():
    def profile(name):
        return WorkloadProfile(name=name, flops=1e6, bytes_read=1e4,
                               bytes_written=1e4,
                               working_set_bytes=1e4)

    return TaskGraph("obs-bench", [
        Stage("sense", profile("sense"), rate_hz=200.0,
              output_bytes=1e3),
        Stage("track", profile("track"), deps=("sense",),
              output_bytes=1e3),
        Stage("plan", profile("plan"), deps=("track",),
              output_bytes=1e3),
        Stage("act", profile("act"), deps=("plan",)),
    ])


def _run_once(tracer):
    graph = _graph()
    service = {"sense": 1e-3, "track": 2e-3, "plan": 3e-3,
               "act": 1e-3}
    simulation = PipelineSimulation(graph, service, tracer=tracer)
    started = time.perf_counter()
    result = simulation.run(DURATION_S)
    elapsed = time.perf_counter() - started
    return elapsed, result


def _measure():
    """One full interleaved measurement: min-of-N per configuration."""
    off_a, off_b, on = [], [], []
    completed = None
    tracer = None
    _run_once(None)  # warmup
    for _ in range(REPS):
        elapsed, result = _run_once(None)  # global no-op default
        off_a.append(elapsed)
        tracer = Tracer()
        elapsed, traced_result = _run_once(tracer)
        on.append(elapsed)
        elapsed, _ = _run_once(None)
        off_b.append(elapsed)
        completed = result.samples_completed
        # Instrumentation must not change simulation results.
        assert traced_result.samples_completed == completed
        assert traced_result.end_to_end_latencies == \
            result.end_to_end_latencies
    return min(off_a), min(off_b), min(on), completed, tracer


def test_obs_overhead_budget(report):
    # Interleave configurations so drift (frequency scaling, GC) hits
    # all of them equally; min-of-N is the standard noise floor.  A
    # noisy host gets a bounded number of full re-measurements before
    # the budget counts as blown.
    for attempt in range(ATTEMPTS):
        off_a_s, off_b_s, on_s, completed, tracer = _measure()
        aa_ratio = max(off_a_s, off_b_s) / min(off_a_s, off_b_s)
        if aa_ratio <= 1.05:
            break

    off_s = min(off_a_s, off_b_s)
    on_ratio = on_s / off_s
    events = int(tracer.event_count())

    report(
        f"Observability overhead ({completed} samples,"
        f" {DURATION_S:.0f}s sim, min of {REPS}):\n"
        f"  tracing off:  {off_s * 1e3:8.2f} ms"
        f"  ({completed / off_s:,.0f} samples/s)\n"
        f"  tracing on:   {on_s * 1e3:8.2f} ms"
        f"  ({completed / on_s:,.0f} samples/s,"
        f" {events} events recorded)\n"
        f"  off-path A/A slowdown: {(aa_ratio - 1) * 100:.2f}%"
        f"  (budget 5%)\n"
        f"  on/off ratio: {on_ratio:.2f}x"
    )

    # The disabled hot path must fit the <=5% budget vs. baseline;
    # the A/A comparison measures exactly that code with exactly that
    # noise floor.
    assert aa_ratio <= 1.05, (
        f"off-path repetitions disagree by {(aa_ratio - 1) * 100:.1f}%"
    )
    # Recording real telemetry costs something, but off must never be
    # the slower configuration.
    assert off_s <= on_s * 1.05
    assert events > 0


def test_profiling_overhead_budget(report):
    """The enabled-with-profiling path must stay within its documented
    (generous) budget.  Runs through the registered entry — the same
    runner ``repro bench --filter obs_overhead`` executes — which
    interleaves off/on/profiled and asserts identical simulation
    results on all three paths."""
    entry = get_benchmark("obs_overhead")
    best = None
    for _ in range(ATTEMPTS):
        metrics = entry.run(int(PROFILE_DURATION_S))
        ratio = metrics["profiled_off_ratio"]
        best = min(best, ratio) if best is not None else ratio
        if best <= PROFILED_BUDGET:
            break
    report(f"profiled-path overhead: {best:.2f}x"
           f" (budget {PROFILED_BUDGET:.0f}x;"
           f" tracing-only on/off {metrics['on_off_ratio']:.2f}x)")
    assert best <= PROFILED_BUDGET, (
        f"profiled path {best:.2f}x over the uninstrumented run"
        f" (budget {PROFILED_BUDGET:.0f}x)")


def main(ledger_path="BENCH_LEDGER.jsonl"):
    entry = get_benchmark("obs_overhead")
    records = []
    for size in entry.sizes:
        started = time.perf_counter()
        metrics = entry.run(size)
        records.append(ledger_record(
            entry.name, size, metrics,
            time.perf_counter() - started,
            config={"script": "bench_obs_overhead.py"}))
        print(f"{size:>4}s sim: {metrics['samples_per_s']:.0f}"
              f" samples/s off, on/off"
              f" {metrics['on_off_ratio']:.2f}x, profiled/off"
              f" {metrics['profiled_off_ratio']:.2f}x")
    append_records(ledger_path, records)
    print(f"appended {len(records)} record(s) to {ledger_path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
