"""S1 (§3.2, Standardized Benchmarks): the suite table itself.

The paper calls for "widely-accepted, standardized benchmarks and
metrics" that evaluate "not only domain performance, but also energy
efficiency, cost, and other key characteristics."  This bench *is* that
artifact: the 9-workload autonomy suite across the platform catalog,
reported as latency, energy, deadline coverage, and geomean score —
plus the regression pin that keeps the numbers honest over time
(§2.3's evaluation-drift guard).
"""

import math

from repro.benchmarksuite import SuiteRunner
from repro.benchmarksuite.reference import (
    check_against_reference,
    compute_reference,
)
from repro.benchmarksuite.scoring import coverage_score
from repro.core.report import format_table
from repro.hw import (
    HeterogeneousSoC,
    asic_gemm_engine,
    desktop_cpu,
    embedded_cpu,
    embedded_gpu,
    midrange_fpga,
)


def _targets():
    return [
        embedded_cpu(),
        desktop_cpu(),
        embedded_gpu(),
        midrange_fpga(),
        HeterogeneousSoC("gemm-soc", embedded_cpu("soc-host"),
                         [asic_gemm_engine()]),
    ]


def _run():
    runner = SuiteRunner()
    rows = runner.run(_targets())
    scores = dict(runner.ranked_scores(rows, "embedded-cpu"))
    table = runner.latency_map(rows)
    deadlines = {w.name: w.deadline_s() for w in runner.workloads}
    coverage = {
        target: coverage_score(latencies, deadlines)
        for target, latencies in table.items()
    }
    reference = compute_reference()
    drift = check_against_reference(table["embedded-cpu"], reference)
    return runner, rows, scores, coverage, drift


def test_s1_standardized_suite_table(benchmark, report):
    runner, rows, scores, coverage, drift = benchmark(_run)

    report(runner.report(rows))
    report(format_table(
        ["target", "geomean speedup", "deadline coverage"],
        [[name, scores[name], coverage[name]]
         for name in sorted(scores, key=lambda n: -scores[n])],
        title="S1: suite scores across the platform catalog",
    ))

    # Shape 1: every workload runs on every programmable target.
    assert all(math.isfinite(r.latency_s) for r in rows)

    # Shape 2: the desktop CPU outruns the embedded parts on geomean;
    # the heterogeneous SoC beats its own host.
    assert scores["desktop-cpu"] > scores["embedded-cpu"]
    assert scores["gemm-soc"] > 1.0

    # Shape 3: deadline coverage is the §2.3 counterweight — every
    # catalog platform must hold most of the suite's rates.
    assert all(value >= 0.5 for value in coverage.values())
    assert coverage["desktop-cpu"] == 1.0

    # Shape 4: the regression pin holds (the suite's reference device
    # reproduces its pinned numbers exactly — analytical determinism).
    assert drift == []
