"""E4 (§2.4, Pump the Brakes): over-provisioning compute can be
disastrous for the whole system.

Paper claim (Krishnan et al.): for overall UAV mission performance,
compute must be balanced against sensor rates — "over-provisioning
compute could have disastrous effects on the weight and battery life of
the total system."

Experiment: a closed-loop patrol mission flown with five onboard-compute
tiers.  The weakest tier crawls (latency-limited safe speed) and drains
the battery before finishing; the strongest tiers fly fast but their
mass and power kill endurance; an interior tier wins.  The result is a
U-shape in mission merit, not the monotone improvement a kernel
benchmark would predict.
"""

import numpy as np

from repro.core.report import format_table
from repro.hw import uav_compute_tiers
from repro.kernels.planning import CircleWorld
from repro.metrics.mission import rank_tiers, summarize_missions
from repro.system import MissionConfig, sweep_compute_tiers


def _mission_config():
    world = CircleWorld.random(dim=2, n_obstacles=40, extent=120.0,
                               radius_range=(1.0, 3.0), seed=11,
                               keep_corners_free=3.0)
    return MissionConfig(
        world=world,
        start=np.array([1.0, 1.0]),
        goal=np.array([118.0, 118.0]),
        laps=20,
    )


def _run_sweep():
    return sweep_compute_tiers(_mission_config(), uav_compute_tiers())


def test_e4_overprovisioning_is_disastrous(benchmark, report):
    rows = benchmark(_run_sweep)

    table = []
    for name, result in rows:
        table.append([
            name,
            "yes" if result.success else f"NO ({result.failure_reason})",
            result.pipeline_latency_s * 1e3,
            result.safe_speed_m_s,
            result.total_mass_kg,
            result.hover_power_w + result.compute_power_w,
            result.endurance_s,
            result.energy_j / 1e3,
        ])
    report(format_table(
        ["tier", "mission", "latency (ms)", "safe speed (m/s)",
         "mass (kg)", "power (W)", "endurance (s)", "energy (kJ)"],
        table,
        title="E4: UAV patrol mission across the onboard-compute ladder",
    ))

    results = dict(rows)
    names = [name for name, _ in rows]

    # Shape 1: under-provisioned compute fails — too slow to finish on
    # one charge (the compute/sensor balance point).
    weakest = results[names[0]]
    assert not weakest.success
    assert weakest.safe_speed_m_s < 3.0

    # Shape 2: over-provisioned compute fails — mass and power destroy
    # endurance despite top speed (the disastrous effect).
    strongest = results[names[-1]]
    assert not strongest.success
    assert strongest.failure_reason == "battery"
    assert strongest.safe_speed_m_s > 9.0
    assert strongest.endurance_s < 0.3 * weakest.endurance_s

    # Shape 3: an interior tier wins, and mission merit is a U-shape.
    ranking = rank_tiers(rows)
    best_tier = ranking[0][0]
    assert best_tier not in (names[0], names[-1])
    assert ranking[0][1] > 0.0

    # Shape 4: speed saturates long before the ladder tops out —
    # kernel-level "more compute" stops buying mission-level anything.
    speeds = [results[n].safe_speed_m_s for n in names]
    assert speeds[2] > 0.95 * speeds[-1]

    summary = summarize_missions([r for _, r in rows])
    report(f"E4 summary: success rate {summary.success_rate:.0%},"
           f" best tier {best_tier},"
           f" energy/m of successes"
           f" {summary.energy_per_meter_j:.1f} J/m")
