"""Scalar-vs-SoA batch pricing throughput.

The tentpole claim for :mod:`repro.hw.batch`: pricing a whole DSE
population through one structure-of-arrays roofline pass beats the
per-candidate scalar loop by an order of magnitude at population sizes
a search actually uses (>= 10x at 1k candidates), while returning
**bit-identical** values.

Two entry points:

- ``pytest benchmarks/bench_batch_pricing.py`` — small-scale smoke:
  batch must not lose to scalar, and values must match exactly (run in
  CI, where absolute throughput is noisy but the ordering is not);
- ``python benchmarks/bench_batch_pricing.py`` — the full sweep at
  10/100/1k/10k candidates, printed as a table and written to
  ``BENCH_batch_pricing.json`` (the numbers quoted in EXPERIMENTS.md).
"""

import json
import sys
import time

from repro.dse.objectives import codesign_space, suite_objective

SIZES = (10, 100, 1_000, 10_000)
SMOKE_SIZE = 64
ATTEMPTS = 3        # re-measure on a noisy machine before failing
TARGET_SPEEDUP = 10.0   # the EXPERIMENTS.md claim, at >= 1k candidates


def _population(n):
    """n co-design candidates cycling the 256-point space (repetition
    is fine: throughput here is per-candidate work, not cache play)."""
    space = codesign_space()
    return [space.config_at(i % space.size) for i in range(n)]


def _scalar_rate(configs):
    started = time.perf_counter()
    values = [suite_objective(config) for config in configs]
    return len(configs) / (time.perf_counter() - started), values


def _batch_rate(configs):
    started = time.perf_counter()
    values = suite_objective.evaluate_batch(configs)
    return len(configs) / (time.perf_counter() - started), values


def _warmup():
    """Build the process-global suite/SoA state and trigger numpy's
    lazy imports so the first measured row is not a cold start."""
    configs = _population(4)
    assert suite_objective.evaluate_batch(configs) \
        == [suite_objective(config) for config in configs]


def sweep(sizes=SIZES):
    """Measure both paths at each population size."""
    _warmup()
    rows = []
    for n in sizes:
        configs = _population(n)
        scalar_per_s, scalar_values = _scalar_rate(configs)
        batch_per_s, batch_values = _batch_rate(configs)
        assert batch_values == scalar_values, (
            f"batch values diverged from scalar at n={n}")
        rows.append({
            "candidates": n,
            "scalar_per_s": round(scalar_per_s, 1),
            "batch_per_s": round(batch_per_s, 1),
            "speedup": round(batch_per_s / scalar_per_s, 2),
        })
    return rows


def test_batch_at_least_matches_scalar_throughput(report=None):
    """CI smoke: at a small population the batch path must price at
    least as fast as the scalar loop — and identically."""
    _warmup()
    configs = _population(SMOKE_SIZE)
    best = 0.0
    for _ in range(ATTEMPTS):
        scalar_per_s, scalar_values = _scalar_rate(configs)
        batch_per_s, batch_values = _batch_rate(configs)
        assert batch_values == scalar_values
        best = max(best, batch_per_s / scalar_per_s)
        if best >= 1.0:
            break
    assert best >= 1.0, (
        f"batch path slower than scalar at n={SMOKE_SIZE}:"
        f" {best:.2f}x")


def main(out_path="BENCH_batch_pricing.json"):
    rows = sweep()
    header = f"{'candidates':>10} {'scalar/s':>10} {'batch/s':>12} " \
             f"{'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['candidates']:>10} {row['scalar_per_s']:>10.1f} "
              f"{row['batch_per_s']:>12.1f} {row['speedup']:>7.2f}x")
    with open(out_path, "w") as handle:
        json.dump({"benchmark": "batch_pricing",
                   "objective": "suite_objective",
                   "suite_stages": 26, "rows": rows}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    at_1k = next(r for r in rows if r["candidates"] == 1_000)
    if at_1k["speedup"] < TARGET_SPEEDUP:
        print(f"WARNING: speedup at 1k candidates"
              f" ({at_1k['speedup']:.1f}x) below the"
              f" {TARGET_SPEEDUP:.0f}x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
