"""Scalar-vs-SoA batch pricing throughput.

The tentpole claim for :mod:`repro.hw.batch`: pricing a whole DSE
population through one structure-of-arrays roofline pass beats the
per-candidate scalar loop by an order of magnitude at population sizes
a search actually uses (>= 10x at 1k candidates), while returning
**bit-identical** values.

The measurement itself lives in the benchmark registry
(:func:`repro.bench.builtin.run_batch_pricing` — the same runner
``repro bench --filter batch_pricing`` executes), so this script, the
CLI, and the perf ledger can never measure different things.

Two entry points:

- ``pytest benchmarks/bench_batch_pricing.py`` — small-scale smoke:
  batch must not lose to scalar, and values must match exactly (run in
  CI, where absolute throughput is noisy but the ordering is not);
- ``python benchmarks/bench_batch_pricing.py`` — the full sweep at
  10/100/1k/10k candidates, printed as a table, written to
  ``BENCH_batch_pricing.json`` (the numbers quoted in EXPERIMENTS.md),
  and appended to ``BENCH_LEDGER.jsonl`` as provenance-stamped
  records.
"""

import json
import sys
import time

from repro.bench import append_records, get_benchmark, ledger_record

SIZES = (10, 100, 1_000, 10_000)
SMOKE_SIZE = 64
ATTEMPTS = 3        # re-measure on a noisy machine before failing
TARGET_SPEEDUP = 10.0   # the EXPERIMENTS.md claim, at >= 1k candidates


def sweep(sizes=SIZES):
    """Measure each population size through the registered entry;
    returns one ledger record per size (the runner asserts batch ==
    scalar values before any rate is reported)."""
    entry = get_benchmark("batch_pricing")
    records = []
    for n in sizes:
        started = time.perf_counter()
        metrics = entry.run(n)
        records.append(ledger_record(
            entry.name, n, metrics,
            time.perf_counter() - started,
            config={"script": "bench_batch_pricing.py"}))
    return records


def test_batch_at_least_matches_scalar_throughput(report=None):
    """CI smoke: at a small population the batch path must price at
    least as fast as the scalar loop — and identically (the registered
    runner asserts value equality internally)."""
    entry = get_benchmark("batch_pricing")
    best = 0.0
    for _ in range(ATTEMPTS):
        best = max(best, entry.run(SMOKE_SIZE)["speedup"])
        if best >= 1.0:
            break
    assert best >= 1.0, (
        f"batch path slower than scalar at n={SMOKE_SIZE}:"
        f" {best:.2f}x")


def main(out_path="BENCH_batch_pricing.json",
         ledger_path="BENCH_LEDGER.jsonl"):
    records = sweep()
    rows = [{"candidates": record["size"], **record["metrics"]}
            for record in records]
    header = f"{'candidates':>10} {'scalar/s':>10} {'batch/s':>12} " \
             f"{'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['candidates']:>10} {row['scalar_per_s']:>10.1f} "
              f"{row['batch_per_s']:>12.1f} {row['speedup']:>7.2f}x")
    with open(out_path, "w") as handle:
        json.dump({"benchmark": "batch_pricing",
                   "objective": "suite_objective",
                   "suite_stages": 26, "rows": rows}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    append_records(ledger_path, records)
    print(f"appended {len(records)} record(s) to {ledger_path}")
    at_1k = next(r for r in rows if r["candidates"] == 1_000)
    if at_1k["speedup"] < TARGET_SPEEDUP:
        print(f"WARNING: speedup at 1k candidates"
              f" ({at_1k['speedup']:.1f}x) below the"
              f" {TARGET_SPEEDUP:.0f}x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
