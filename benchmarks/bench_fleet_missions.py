"""Scalar-vs-vectorized fleet mission throughput.

The tentpole claim for :mod:`repro.system.fleet`: evaluating a rollout
population (tiers × Monte Carlo perturbations) through the closed-form
batch engine beats per-rollout ``run_mission`` by well over an order of
magnitude at population sizes a study actually uses (>= 20x at 1k
rollouts), while returning **exactly equal** :class:`MissionResult`
values, field for field.

Both paths get precomputed courses (planning is hoisted and shared —
see ``plan_course``), so the speedup measured here is pure simulation:
the dt-stepped Python chase loop versus three fused-numpy step counts.

Two entry points:

- ``pytest benchmarks/bench_fleet_missions.py`` — small-scale smoke:
  batch must not lose to scalar, and results must match exactly (run
  in CI, where absolute throughput is noisy but the ordering is not);
- ``python benchmarks/bench_fleet_missions.py`` — the full sweep at
  10/100/1k/10k rollouts, printed as a table and written to
  ``BENCH_fleet_missions.json`` (the numbers quoted in EXPERIMENTS.md).
"""

import json
import sys
import time

import numpy as np

from repro.hw.catalog import uav_compute_tiers
from repro.kernels.planning.occupancy import CircleWorld
from repro.system.fleet import FleetStudy, ensure_course, run_fleet
from repro.system.mission import MissionConfig, run_mission

SIZES = (10, 100, 1_000, 10_000)
SMOKE_SIZE = 64
ATTEMPTS = 3        # re-measure on a noisy machine before failing
TARGET_SPEEDUP = 20.0   # the EXPERIMENTS.md claim, at >= 1k rollouts

_CONFIG = None


def _config():
    """A compact two-lap patrol (built once: the world and its plan are
    shared by every population size)."""
    global _CONFIG
    if _CONFIG is None:
        world = CircleWorld.random(
            dim=2, n_obstacles=24, extent=60.0,
            radius_range=(1.0, 2.5), seed=5, keep_corners_free=3.0)
        _CONFIG = MissionConfig(
            world=world,
            start=np.array([1.0, 1.0]),
            goal=np.array([58.0, 58.0]),
            laps=2,
        )
    return _CONFIG


def _population(n):
    """n fleet rollouts: the compute ladder flown through seeded Monte
    Carlo perturbations, truncated to exactly n."""
    tiers = uav_compute_tiers()
    trials = (n + len(tiers) - 1) // len(tiers)
    study = FleetStudy(config=_config(), tiers=tiers, trials=trials,
                       seed=0)
    return study.rollouts()[:n]


def _scalar_rate(rollouts, cache):
    started = time.perf_counter()
    results = [
        run_mission(r.config, r.platform, r.compute_mass_kg,
                    r.compute_power_w,
                    course=ensure_course(r.config, cache))
        for r in rollouts
    ]
    return len(rollouts) / (time.perf_counter() - started), results


def _batch_rate(rollouts, cache):
    started = time.perf_counter()
    fleet = run_fleet(rollouts, course_cache=cache)
    rate = len(rollouts) / (time.perf_counter() - started)
    return rate, list(fleet.results)


def _warmup():
    """Plan the shared course, build the SoA state, and trigger numpy's
    lazy imports so the first measured row is not a cold start."""
    cache = {}
    rollouts = _population(4)
    _, batch = _batch_rate(rollouts, cache)
    _, scalar = _scalar_rate(rollouts, cache)
    assert batch == scalar
    return cache


def sweep(sizes=SIZES):
    """Measure both paths at each population size."""
    cache = _warmup()
    rows = []
    for n in sizes:
        rollouts = _population(n)
        scalar_per_s, scalar_results = _scalar_rate(rollouts, cache)
        batch_per_s, batch_results = _batch_rate(rollouts, cache)
        assert batch_results == scalar_results, (
            f"batch results diverged from scalar at n={n}")
        rows.append({
            "rollouts": n,
            "scalar_per_s": round(scalar_per_s, 1),
            "batch_per_s": round(batch_per_s, 1),
            "speedup": round(batch_per_s / scalar_per_s, 2),
        })
    return rows


def test_batch_equals_scalar_and_at_least_matches_throughput():
    """CI smoke: at a small population the fleet engine must simulate
    at least as fast as per-rollout run_mission — and identically."""
    cache = _warmup()
    rollouts = _population(SMOKE_SIZE)
    best = 0.0
    for _ in range(ATTEMPTS):
        scalar_per_s, scalar_results = _scalar_rate(rollouts, cache)
        batch_per_s, batch_results = _batch_rate(rollouts, cache)
        assert batch_results == scalar_results
        best = max(best, batch_per_s / scalar_per_s)
        if best >= 1.0:
            break
    assert best >= 1.0, (
        f"fleet engine slower than scalar at n={SMOKE_SIZE}:"
        f" {best:.2f}x")


def main(out_path="BENCH_fleet_missions.json"):
    rows = sweep()
    header = f"{'rollouts':>10} {'scalar/s':>10} {'batch/s':>12} " \
             f"{'speedup':>8}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['rollouts']:>10} {row['scalar_per_s']:>10.1f} "
              f"{row['batch_per_s']:>12.1f} {row['speedup']:>7.2f}x")
    with open(out_path, "w") as handle:
        json.dump({"benchmark": "fleet_missions",
                   "mission": "60m patrol, 2 laps, 5-tier ladder",
                   "rows": rows}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    at_1k = next(r for r in rows if r["rollouts"] == 1_000)
    if at_1k["speedup"] < TARGET_SPEEDUP:
        print(f"WARNING: speedup at 1k rollouts"
              f" ({at_1k['speedup']:.1f}x) below the"
              f" {TARGET_SPEEDUP:.0f}x target", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
