"""Scalar-vs-vectorized fleet mission throughput.

The tentpole claim for :mod:`repro.system.fleet`: evaluating a rollout
population (tiers × Monte Carlo perturbations) through the closed-form
batch engine beats per-rollout ``run_mission`` by well over an order of
magnitude at population sizes a study actually uses (>= 20x at 1k
rollouts), while returning **exactly equal** :class:`MissionResult`
values, field for field.

Both paths get precomputed courses (planning is hoisted and shared —
see ``plan_course``), so the speedup measured here is pure simulation:
the dt-stepped Python chase loop versus three fused-numpy step counts.

The measurement itself lives in the benchmark registry
(:func:`repro.bench.builtin.run_fleet_missions` — the same runner
``repro bench --filter fleet_missions`` executes); each record also
carries the engine's exact ``alloc_bytes_per_rollout``, the
allocation-tax instrument from EXPERIMENTS.md S5.

Two entry points:

- ``pytest benchmarks/bench_fleet_missions.py`` — small-scale smoke:
  batch must not lose to scalar, and results must match exactly (run
  in CI, where absolute throughput is noisy but the ordering is not);
- ``python benchmarks/bench_fleet_missions.py`` — the full sweep at
  10/100/1k/10k/100k rollouts, printed as a table, written to
  ``BENCH_fleet_missions.json`` (the numbers quoted in
  EXPERIMENTS.md), and appended to ``BENCH_LEDGER.jsonl`` as
  provenance-stamped records.  The sweep also asserts the S6
  monotonicity claim: the arena-backed batch speedup must not collapse
  as the population grows (each size's speedup >= 0.9x the previous
  size's — the allocation-tax signature this PR's arena removes).
"""

import json
import sys
import time

from repro.bench import append_records, get_benchmark, ledger_record

SIZES = (10, 100, 1_000, 10_000, 100_000)
SMOKE_SIZE = 64
ATTEMPTS = 3        # re-measure on a noisy machine before failing
TARGET_SPEEDUP = 20.0   # the EXPERIMENTS.md claim, at >= 1k rollouts
MONOTONE_FLOOR = 0.9    # speedup(N+1) >= 0.9 * speedup(N) (S6)


def sweep(sizes=SIZES):
    """Measure each population size through the registered entry;
    returns one ledger record per size (the runner asserts exact
    result equality before any rate is reported)."""
    entry = get_benchmark("fleet_missions")
    records = []
    for n in sizes:
        started = time.perf_counter()
        metrics = entry.run(n)
        records.append(ledger_record(
            entry.name, n, metrics,
            time.perf_counter() - started,
            config={"script": "bench_fleet_missions.py"}))
    return records


def test_batch_equals_scalar_and_at_least_matches_throughput():
    """CI smoke: at a small population the fleet engine must simulate
    at least as fast as per-rollout run_mission — and identically (the
    registered runner asserts result equality internally)."""
    entry = get_benchmark("fleet_missions")
    best = 0.0
    for _ in range(ATTEMPTS):
        best = max(best, entry.run(SMOKE_SIZE)["speedup"])
        if best >= 1.0:
            break
    assert best >= 1.0, (
        f"fleet engine slower than scalar at n={SMOKE_SIZE}:"
        f" {best:.2f}x")


def main(out_path="BENCH_fleet_missions.json",
         ledger_path="BENCH_LEDGER.jsonl"):
    records = sweep()
    rows = [{"rollouts": record["size"], **record["metrics"]}
            for record in records]
    header = f"{'rollouts':>10} {'scalar/s':>10} {'batch/s':>12} " \
             f"{'speedup':>8} {'B/rollout':>10}"
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['rollouts']:>10} {row['scalar_per_s']:>10.1f} "
              f"{row['batch_per_s']:>12.1f} {row['speedup']:>7.2f}x "
              f"{row['alloc_bytes_per_rollout']:>10.0f}")
    with open(out_path, "w") as handle:
        json.dump({"benchmark": "fleet_missions",
                   "mission": "60m patrol, 2 laps, 5-tier ladder",
                   "rows": rows}, handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    append_records(ledger_path, records)
    print(f"appended {len(records)} record(s) to {ledger_path}")
    at_1k = next(r for r in rows if r["rollouts"] == 1_000)
    status = 0
    if at_1k["speedup"] < TARGET_SPEEDUP:
        print(f"WARNING: speedup at 1k rollouts"
              f" ({at_1k['speedup']:.1f}x) below the"
              f" {TARGET_SPEEDUP:.0f}x target", file=sys.stderr)
        status = 1
    # S6: the batch advantage must be monotone (within tolerance)
    # across the sweep — a collapse at large N means the memory layer
    # regressed.  Same-run comparison, so it holds on any machine;
    # ``repro bench --check --filter fleet`` applies the same floor.
    # A violating pair is re-measured (best-of) before failing — the
    # same noisy-machine idiom as the smoke test's ATTEMPTS loop.
    entry = get_benchmark("fleet_missions")
    for prev, row in zip(rows, rows[1:]):
        for _ in range(ATTEMPTS):
            if row["speedup"] >= MONOTONE_FLOOR * prev["speedup"]:
                break
            prev["speedup"] = max(
                prev["speedup"],
                entry.run(prev["rollouts"])["speedup"])
            row["speedup"] = max(
                row["speedup"], entry.run(row["rollouts"])["speedup"])
        assert row["speedup"] >= MONOTONE_FLOOR * prev["speedup"], (
            f"speedup collapsed: {row['speedup']:.2f}x at"
            f" {row['rollouts']} rollouts < {MONOTONE_FLOOR:g}x the"
            f" {prev['speedup']:.2f}x at {prev['rollouts']}")
    return status


if __name__ == "__main__":
    sys.exit(main())
