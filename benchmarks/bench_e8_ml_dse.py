"""E8 (§3.1, ML for System Design): surrogate-guided full-system DSE.

Paper claim: "an ML model can be trained to search the space of possible
hardware configurations and identify the most promising candidates
considering the full-system" — i.e. guided search should reach
near-optimal full-system designs with far fewer expensive simulator
evaluations than unguided baselines.

Experiment: the design space is (compute tier x battery capacity x
sensor rate), 60 points; the oracle is the closed-loop mission
simulator of E4 (success required, energy minimized).  Exhaustive grid
search establishes the true optimum; random, evolutionary, and
GP-guided searches get the same small budget.
"""

import numpy as np

from repro.core.report import format_table
from repro.dse import (
    DesignSpace,
    EvolutionarySearch,
    Parameter,
    SurrogateSearch,
    grid_search,
    random_search,
)
from repro.hw import uav_compute_tiers
from repro.kernels.planning import CircleWorld
from repro.system import MissionConfig, run_mission
from repro.system.robot import BatteryModel

BUDGET = 18
FAIL_PENALTY = 1e9


def _make_oracle():
    world = CircleWorld.random(dim=2, n_obstacles=30, extent=100.0,
                               radius_range=(1.0, 3.0), seed=51,
                               keep_corners_free=3.0)
    tiers = uav_compute_tiers()
    cache = {}

    def objective(config):
        key = (config["tier"], config["battery_wh"],
               config["sensor_rate_hz"])
        if key in cache:
            return cache[key]
        mission = MissionConfig(
            world=world,
            start=np.array([1.0, 1.0]),
            goal=np.array([98.0, 98.0]),
            laps=16,
            sensor_rate_hz=config["sensor_rate_hz"],
            battery=BatteryModel.from_capacity(config["battery_wh"]),
        )
        _, platform, mass, power = tiers[config["tier"]]
        result = run_mission(mission, platform, mass, power)
        value = result.energy_j if result.success else FAIL_PENALTY
        cache[key] = value
        return value

    space = DesignSpace([
        Parameter("tier", tuple(range(len(tiers)))),
        Parameter("battery_wh", (30.0, 50.0, 80.0, 120.0)),
        Parameter("sensor_rate_hz", (15.0, 30.0, 60.0)),
    ])
    return space, objective


def _run_comparison():
    space, objective = _make_oracle()
    optimum = grid_search(space, objective)
    searches = {
        "random": random_search(space, objective, budget=BUDGET,
                                seed=3),
        "evolutionary": EvolutionarySearch(
            space, population_size=8, seed=3
        ).run(objective, BUDGET),
        "gp-surrogate": SurrogateSearch(
            space, n_initial=6, seed=3
        ).run(objective, BUDGET),
    }
    return space, optimum, searches


def test_e8_surrogate_guided_dse(benchmark, report):
    space, optimum, searches = benchmark(_run_comparison)

    rows = [["exhaustive grid", space.size, optimum.best_value / 1e3,
             1.0]]
    for name, result in searches.items():
        rows.append([
            name, result.evaluations, result.best_value / 1e3,
            result.best_value / optimum.best_value,
        ])
    report(format_table(
        ["strategy", "simulator runs", "best mission energy (kJ)",
         "vs optimum"],
        rows,
        title=f"E8: full-system co-design, {space.size}-point space,"
              f" budget {BUDGET}",
    ))
    trace_rows = []
    for n in (6, 10, 14, 18):
        trace_rows.append([
            n,
            searches["random"].best_after(n) / 1e3,
            searches["evolutionary"].best_after(n) / 1e3,
            searches["gp-surrogate"].best_after(n) / 1e3,
        ])
    report(format_table(
        ["runs", "random best (kJ)", "evolutionary best (kJ)",
         "gp-surrogate best (kJ)"],
        trace_rows,
        title="E8: best-so-far traces (sample efficiency)",
    ))

    gp = searches["gp-surrogate"]
    rnd = searches["random"]

    # Shape 1: every strategy found *a* feasible design, and the GP's
    # is near-optimal with ~3x fewer runs than exhaustive.
    assert gp.best_value < FAIL_PENALTY
    assert gp.best_value <= 1.2 * optimum.best_value
    assert gp.evaluations <= BUDGET < space.size / 3

    # Shape 2: guided search dominates random at equal budget.
    assert gp.best_value <= rnd.best_value

    # Shape 3: the optimum is an interior design (neither the weakest
    # nor the strongest tier) — the E4 lesson carried into DSE.
    assert optimum.best_config["tier"] not in (0, 4)
