"""A5 (ablation, §2.4): accelerators consume shared resources.

Paper claim: "Accelerators, while powerful, are not free: they consume
shared resources and can introduce complexities in system scheduling
and resource allocation."

Experiment: a memory-bound CPU task (occupancy-grid fusion) shares a
15 GB/s SoC memory system with a GEMM accelerator.  Alone, the CPU task
comfortably meets its 10 Hz deadline.  Switch the accelerator on and —
without touching the CPU task at all — its latency inflates past the
deadline: the accelerator "speedup" was partly paid for by a co-resident
victim.  A deadline-aware allocation (throttling the accelerator's
grant) restores the CPU task at a modest accelerator cost — sometimes
pumping the brakes *is* the optimization.
"""

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.core.report import format_table
from repro.hw import (
    ContendedPlatform,
    SharedMemorySystem,
    asic_gemm_engine,
    co_run,
    embedded_cpu,
)
from repro.kernels.linalg import gemm_profile

CPU_TASK_RATE_HZ = 10.0
CPU_DEADLINE_S = 1.0 / CPU_TASK_RATE_HZ


def _cpu_task():
    """Occupancy-grid fusion: streaming, memory-bound."""
    return WorkloadProfile(
        name="grid-fusion", flops=2e8, bytes_read=500e6,
        bytes_written=220e6, working_set_bytes=300e6,
        parallel_fraction=0.98, divergence=DivergenceClass.NONE,
        op_class="stencil",
    )


def _run():
    memory = SharedMemorySystem(total_bandwidth=15e9,
                                contention_efficiency=0.85)
    cpu = embedded_cpu()
    asic = asic_gemm_engine()
    task = _cpu_task()
    gemm = gemm_profile(2048, 2048, 2048)

    alone = co_run(memory, [("cpu", cpu, task, CPU_TASK_RATE_HZ)])
    contended = co_run(memory, [
        ("cpu", cpu, task, CPU_TASK_RATE_HZ),
        ("asic", asic, gemm, 30.0),
    ])
    # Deadline-aware repair: cap the accelerator's grant so the CPU
    # task keeps the bandwidth its deadline requires.
    required_bw = task.total_bytes / (CPU_DEADLINE_S * 0.9)
    pool = (memory.total_bandwidth
            * memory.contention_efficiency)
    asic_grant = max(1e9, pool - required_bw)
    repaired = {
        "cpu": ContendedPlatform(cpu, required_bw).estimate(task),
        "asic": ContendedPlatform(asic, asic_grant).estimate(gemm),
    }
    asic_alone = asic.estimate(gemm)
    return alone, contended, repaired, asic_alone


def test_a5_accelerators_are_not_free(benchmark, report):
    alone, contended, repaired, asic_alone = benchmark(_run)

    rows = [
        ["CPU task alone", alone["cpu"].latency_s * 1e3, "-",
         "yes" if alone["cpu"].latency_s < CPU_DEADLINE_S else "NO"],
        ["+ accelerator (naive)", contended["cpu"].latency_s * 1e3,
         contended["asic"].latency_s * 1e3,
         "yes" if contended["cpu"].latency_s < CPU_DEADLINE_S
         else "NO"],
        ["+ accelerator (throttled)", repaired["cpu"].latency_s * 1e3,
         repaired["asic"].latency_s * 1e3,
         "yes" if repaired["cpu"].latency_s < CPU_DEADLINE_S
         else "NO"],
    ]
    report(format_table(
        ["configuration", "CPU task latency (ms)",
         "accelerator latency (ms)",
         f"CPU meets {CPU_TASK_RATE_HZ:g} Hz deadline"],
        rows,
        title="A5: a co-resident accelerator vs. a memory-bound CPU"
              " task on a 15 GB/s SoC",
    ))

    # Shape 1: alone, the CPU task meets its deadline with margin.
    assert alone["cpu"].latency_s < 0.8 * CPU_DEADLINE_S
    # Shape 2: the naive accelerator pushes it over the deadline.
    assert contended["cpu"].latency_s > CPU_DEADLINE_S
    assert contended["cpu"].latency_s > 1.3 * alone["cpu"].latency_s
    # Shape 3: throttling the accelerator restores the deadline at a
    # bounded accelerator cost.
    assert repaired["cpu"].latency_s < CPU_DEADLINE_S
    assert repaired["asic"].latency_s < 20.0 * asic_alone.latency_s
