"""E2 (§2.2, Metrics Matter): throughput vs. time-to-accuracy, and
TOPS/W vs. system-level metrics.

Paper claims reproduced:

(a) MLPerf lesson — "systems people increased throughput but at the
    expense of accuracy ... it's time-to-accuracy, not time overall": a
    low-precision accelerator multiplies training throughput, yet the
    quantization noise it introduces slows (or prevents) reaching the
    accuracy target, so time-to-accuracy moves the *other way*.

(b) Sze et al. — TOPS/W in isolation from system-level metrics (off-
    chip bandwidth) is misleading: the accelerator with the better
    *peak* TOPS/W loses on achieved latency, energy, and achieved
    TOPS/W once its starved memory system meets a real working set.
"""

import math

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.core.report import format_table
from repro.hw.asic import AsicAccelerator, AsicConfig
from repro.kernels.ml import Mlp, MlpConfig, SgdTrainer, make_blobs
from repro.kernels.ml.data import train_test_split
from repro.kernels.ml.quantize import throughput_multiplier
from repro.metrics import tops_per_watt

TARGET_ACCURACY = 0.90
BASE_STEP_LATENCY_S = 1e-3


def _train(gradient_bits, activation_bits, step_latency_s):
    x, y = make_blobs(n_samples=400, n_classes=3, spread=0.5, seed=5)
    xtr, ytr, xte, yte = train_test_split(x, y, seed=5)
    model = Mlp(MlpConfig(layer_sizes=[2, 32, 3], seed=5,
                          gradient_bits=gradient_bits,
                          activation_bits=activation_bits))
    trainer = SgdTrainer(model, learning_rate=0.05,
                         step_latency_s=step_latency_s, seed=5)
    return trainer.fit(xtr, ytr, xte, yte, epochs=20)


def _run_training_comparison():
    fp32 = _train(None, None, BASE_STEP_LATENCY_S)
    bits = 2
    speedup = throughput_multiplier(bits)
    quant = _train(bits, bits, BASE_STEP_LATENCY_S / speedup)
    return fp32, quant, speedup


def test_e2a_throughput_vs_time_to_accuracy(benchmark, report):
    fp32, quant, hw_speedup = benchmark(_run_training_comparison)

    rows = [
        ["fp32 baseline", fp32.throughput_steps_per_s(),
         fp32.final_accuracy(),
         fp32.time_to_accuracy(TARGET_ACCURACY)],
        ["2-bit 'fast' accelerator", quant.throughput_steps_per_s(),
         quant.final_accuracy(),
         quant.time_to_accuracy(TARGET_ACCURACY)],
    ]
    report(format_table(
        ["system", "throughput (steps/s)", "final accuracy",
         f"time-to-{TARGET_ACCURACY:.0%} (s)"],
        rows,
        title="E2a: the throughput metric and the task metric disagree",
    ))

    # Shape: the quantized accelerator wins big on throughput...
    assert (quant.throughput_steps_per_s()
            > 5.0 * fp32.throughput_steps_per_s())
    # ...but loses on time-to-accuracy (never reaching the target, or
    # reaching it later despite faster steps).
    tta_fp32 = fp32.time_to_accuracy(TARGET_ACCURACY)
    tta_quant = quant.time_to_accuracy(TARGET_ACCURACY)
    assert math.isfinite(tta_fp32)
    assert tta_quant > tta_fp32


def _specsheet_accelerators():
    """Two GEMM engines: a peak-TOPS/W hero with a starved memory
    system, and a balanced design."""
    hero = AsicAccelerator(AsicConfig(
        name="peak-hero",
        supported_op_classes=frozenset({"gemm"}),
        peak_flops=8e12,
        energy_per_flop=0.5e-12,  # spec-sheet star
        onchip_bytes=256e3,       # tiny SRAM...
        offchip_bw=5e9,           # ...and a straw for DRAM
        static_power_w=0.3,
    ))
    balanced = AsicAccelerator(AsicConfig(
        name="balanced",
        supported_op_classes=frozenset({"gemm"}),
        peak_flops=2e12,
        energy_per_flop=1.0e-12,
        onchip_bytes=16e6,
        offchip_bw=60e9,
        static_power_w=0.5,
    ))
    return hero, balanced


def _real_workload():
    """A perception-inference GEMM whose working set spills small SRAMs
    (the realistic case §2.2 says spec sheets hide)."""
    return WorkloadProfile(
        name="detector-layer",
        flops=4e9,
        bytes_read=60e6,
        bytes_written=20e6,
        working_set_bytes=40e6,
        parallel_fraction=1.0,
        divergence=DivergenceClass.NONE,
        op_class="gemm",
    )


def test_e2b_tops_per_watt_ranking_inverts(benchmark, report):
    hero, balanced = _specsheet_accelerators()
    profile = _real_workload()

    def run():
        return hero.estimate(profile), balanced.estimate(profile)

    hero_est, balanced_est = benchmark(run)

    peak_tpw_hero = (hero.asic.peak_flops
                     / (hero.asic.peak_flops
                        * hero.asic.energy_per_flop)) / 1e12
    peak_tpw_bal = (balanced.asic.peak_flops
                    / (balanced.asic.peak_flops
                       * balanced.asic.energy_per_flop)) / 1e12
    rows = [
        ["peak-hero", peak_tpw_hero,
         tops_per_watt(profile, hero_est),
         hero_est.latency_s * 1e3, hero_est.energy_j * 1e3,
         hero_est.bound],
        ["balanced", peak_tpw_bal,
         tops_per_watt(profile, balanced_est),
         balanced_est.latency_s * 1e3, balanced_est.energy_j * 1e3,
         balanced_est.bound],
    ]
    report(format_table(
        ["accelerator", "peak TOPS/W", "achieved TOPS/W",
         "latency (ms)", "energy (mJ)", "bound"],
        rows,
        title="E2b: spec-sheet TOPS/W vs. delivered performance"
              " (Sze et al.)",
    ))

    # Shape: spec-sheet ranking says hero wins...
    assert peak_tpw_hero > peak_tpw_bal
    # ...but the memory system inverts every delivered metric.
    assert balanced_est.latency_s < hero_est.latency_s
    assert (tops_per_watt(profile, balanced_est)
            > tops_per_watt(profile, hero_est))
    assert hero_est.bound == "memory"
