"""E1 (§2.1, Build Bridges): accelerating an obsolete SLAM algorithm.

Paper claim: without domain-expert input, an obsolete algorithm may be
accelerated — a technically impressive artifact that does not help the
task.  SLAM alone had 24 representative "active" approaches in 2023.

Experiment: run three generations of SLAM on the same scenario.  A
widget ASIC for the classic EKF-SLAM dense-update kernel achieves a
large *kernel* speedup — but the modern pose-graph method on a plain
CPU is more accurate, so the accelerated legacy stack loses on the
metric domain experts care about (ATE).  The Seven Challenges advisor
flags the project.
"""


from repro.core import DesignReview, EvaluationPlan, SevenChallengesAdvisor
from repro.core.report import format_table
from repro.hw import embedded_cpu
from repro.hw.asic import widget_asic
from repro.kernels.slam import (
    EkfSlam,
    FastSlam,
    GraphSlam,
    ate_rmse,
    build_pose_graph,
    make_scenario,
)


def _run_slam_generations():
    scenario = make_scenario(n_steps=80, n_landmarks=15, seed=1)
    results = {}

    ekf = EkfSlam(scenario.true_poses[0],
                  motion_noise=scenario.motion_noise,
                  measurement_noise=scenario.measurement_noise)
    traj = ekf.run(scenario)
    results["ekf-slam (2002)"] = (
        ate_rmse(traj, scenario.true_poses), ekf.profile()
    )

    fast = FastSlam(scenario.true_poses[0], n_particles=40,
                    motion_noise=scenario.motion_noise,
                    measurement_noise=scenario.measurement_noise,
                    seed=2)
    traj = fast.run(scenario)
    results["fastslam (2005)"] = (
        ate_rmse(traj, scenario.true_poses), fast.profile()
    )

    graph = build_pose_graph(scenario)
    solver = GraphSlam(graph)
    solver.optimize(iterations=15)
    results["pose-graph (2020s)"] = (
        ate_rmse(graph.poses, scenario.true_poses), solver.profile()
    )
    return results


def test_e1_wrong_algorithm_accelerated(benchmark, report):
    results = benchmark(_run_slam_generations)

    cpu = embedded_cpu()
    rows = []
    speedups = {}
    for name, (ate, profile) in results.items():
        cpu_latency = cpu.estimate(profile).latency_s
        asic = widget_asic(profile.op_class,
                           name=f"widget-{profile.op_class}-{name}")
        if asic.supports(profile):
            asic_latency = asic.estimate(profile).latency_s
            speedup = cpu_latency / asic_latency
        else:
            speedup = float("nan")
        speedups[name] = speedup
        rows.append([name, profile.op_class, ate,
                     cpu_latency * 1e3, speedup])

    report(format_table(
        ["algorithm", "kernel class", "ATE RMSE (m)",
         "CPU latency (ms)", "widget-ASIC kernel speedup"],
        rows,
        title="E1: three SLAM generations — kernel speedup vs. task"
              " quality",
    ))

    ate_ekf = results["ekf-slam (2002)"][0]
    ate_fast = results["fastslam (2005)"][0]
    ate_graph = results["pose-graph (2020s)"][0]

    # Shape 1: the legacy dense-EKF kernel accelerates well — the
    # "technically impressive" widget.
    assert speedups["ekf-slam (2002)"] > 5.0
    # Shape 2: the branchy particle filter accelerates far worse on the
    # same ASIC template (divergence + serial resampling).
    assert speedups["fastslam (2005)"] < speedups["ekf-slam (2002)"]
    # Shape 3: the expert-preferred modern method wins on the metric
    # the domain cares about — with no accelerator at all.
    assert ate_graph < ate_ekf
    assert ate_graph < ate_fast

    # The advisor catches this project from its plan alone.
    advisor = SevenChallengesAdvisor()
    review = DesignReview(
        name="ekf-widget-2024",
        accelerated_categories=("gemm",),
        expert_consultations=0,
        algorithm_vintage_years=(20.0,),
        evaluation=EvaluationPlan(
            metrics=("throughput",),
            evaluated_workloads=("ekf-slam",),
            baseline_platforms=("cpu",),
        ),
    )
    findings = advisor.audit(review)
    messages = " ".join(f.message for f in findings)
    assert "state of the art" in messages
    assert "domain-expert" in messages
    report(f"E1 advisor: {len(findings)} findings,"
           f" score {advisor.score(review):.0f}/100")
