"""Shared helpers for the experiment benchmarks.

Every module under ``benchmarks/`` regenerates one table/figure/claim
from the paper (see the experiment index in DESIGN.md).  Run with::

    pytest benchmarks/ --benchmark-only -s

``-s`` shows the regenerated paper-style tables; each test also asserts
the *shape* of its result (who wins, direction of effects, crossovers),
so a silent pass already certifies the reproduction.
"""

import sys

import pytest


def emit(text: str) -> None:
    """Print a regenerated table so it survives pytest capture."""
    sys.stdout.write("\n" + text + "\n")


@pytest.fixture
def report():
    """Fixture returning the table printer."""
    return emit
