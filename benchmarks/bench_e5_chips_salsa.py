"""E5 (§2.5, Chips and Salsa): software vectorization delivers
orders-of-magnitude motion-planning speedups — no ASIC required.

Paper claim (Thomason et al. 2023): "software-only optimizations that
leveraged vectorization on the CPU achieved up to 500x speedups over
state-of-the-art for certain motion planning problems."

Experiment: batch collision checking for a 7-DoF arm (the kernel that
dominates sampling-based planning) is priced four ways:

- *library baseline*: one configuration at a time, early exit, single
  scalar core, plus OMPL-class per-check validation overhead (virtual
  dispatch, interpolation allocation — ~0.5 us/check, the published
  per-motion-validation order);
- *vectorized software*: the same chip, all cores + SIMD, dense batch
  evaluation with no per-check overhead;
- *embedded GPU* and a *collision ASIC* for the heterogeneity context.

The speedup of vectorized software over the library baseline is largest
on obstacle-sparse problems (overhead-dominated) and decays as arithmetic
grows — "up to" hundreds-fold, exactly the claim's shape.
"""

from repro.core.report import format_table
from repro.hw import desktop_cpu, embedded_gpu
from repro.hw.asic import widget_asic
from repro.hw.cpu import CpuModel
from repro.kernels.planning.collision import collision_profile

N_CHECKS = 100_000
DIM = 7
LIBRARY_OVERHEAD_PER_CHECK_S = 0.5e-6
OBSTACLE_SWEEP = (50, 100, 200, 400)


def _platforms():
    vector_cpu = desktop_cpu("desktop-cpu")
    scalar_core = CpuModel(
        vector_cpu.cpu.scalar_variant().single_core_variant()
    )
    gpu = embedded_gpu()
    asic = widget_asic("collision", name="collision-asic")
    return scalar_core, vector_cpu, gpu, asic


def _sweep():
    scalar_core, vector_cpu, gpu, asic = _platforms()
    rows = []
    for n_obstacles in OBSTACLE_SWEEP:
        scalar_profile = collision_profile(
            N_CHECKS, n_obstacles, dim=DIM, vectorized=False,
            name=f"scalar-{n_obstacles}",
        )
        batch_profile = collision_profile(
            N_CHECKS, n_obstacles, dim=DIM, vectorized=True,
            name=f"batch-{n_obstacles}",
        )
        baseline = (scalar_core.estimate(scalar_profile).latency_s
                    + N_CHECKS * LIBRARY_OVERHEAD_PER_CHECK_S)
        vectorized = vector_cpu.estimate(batch_profile).latency_s
        gpu_latency = gpu.estimate(batch_profile).latency_s
        asic_latency = asic.estimate(batch_profile).latency_s
        rows.append((n_obstacles, baseline, vectorized, gpu_latency,
                     asic_latency))
    return rows


def test_e5_vectorized_software_speedup(benchmark, report):
    rows = benchmark(_sweep)

    table = []
    ratios = []
    for n_obstacles, base, vec, gpu_lat, asic_lat in rows:
        ratio = base / vec
        ratios.append(ratio)
        table.append([n_obstacles, base * 1e3, vec * 1e3,
                      ratio, gpu_lat * 1e3, asic_lat * 1e3])
    report(format_table(
        ["obstacles", "library baseline (ms)",
         "vectorized CPU (ms)", "CPU speedup",
         "embedded GPU (ms)", "collision ASIC (ms)"],
        table,
        title=f"E5: {N_CHECKS} collision checks, {DIM}-DoF arm",
    ))
    report(f"E5: software vectorization speedup up to"
           f" {max(ratios):.0f}x (paper: up to ~500x)")

    # Shape 1: orders of magnitude, peaking in the hundreds.
    assert 200.0 < max(ratios) < 800.0
    assert min(ratios) > 30.0

    # Shape 2: the "up to" structure — the advantage shrinks as
    # arithmetic (obstacle count) grows and overhead amortizes.
    assert ratios == sorted(ratios, reverse=True)

    # Shape 3: tuned software is competitive with "real" accelerators —
    # the vectorized CPU beats the embedded GPU on at least one
    # problem, and the ASIC's edge over software is small next to the
    # software-vs-software gap.
    vec_beats_gpu = any(vec < gpu_lat
                        for _, __, vec, gpu_lat, ___ in rows)
    assert vec_beats_gpu
    for _, base, vec, __, asic_lat in rows:
        asic_gain = vec / asic_lat
        software_gain = base / vec
        assert software_gain > asic_gain
