"""A4 (ablation, §4): Amdahl's law is a moving target.

Paper conclusion: "Amdahl's Law is a moving target ... anticipating the
future needs of a domain requires a constant re-examination of the
fundamental benchmarks ... Incorporating feedback mechanisms into the
design process ensures that useful contributions continue to be made."

Experiment: the domain's perception mix drifts over a decade from
classical CV (stencil-dominated) to deep learning (GEMM-dominated) —
the shift that actually happened ~2012-2020.  A stencil accelerator
taped out at year 0 with a genuine 10x kernel speedup watches its
end-to-end value decay from 2.7x toward 1.1x; the feedback mechanism
flags the design as stale mid-decade and names the new bottleneck.
"""

from repro.core import (
    WorkloadSnapshot,
    WorkloadTimeline,
    accelerator_value_over_time,
    redesign_recommendation,
)
from repro.core.profile import WorkloadProfile
from repro.core.report import format_table
from repro.core.workload import Stage, TaskGraph, Workload

#: (year, op-class shares): classical CV -> DNN perception drift.
DRIFT = (
    (2012, {"stencil": 0.70, "gemm": 0.10, "search": 0.12,
            "linalg": 0.08}),
    (2015, {"stencil": 0.55, "gemm": 0.28, "search": 0.10,
            "linalg": 0.07}),
    (2018, {"stencil": 0.35, "gemm": 0.50, "search": 0.08,
            "linalg": 0.07}),
    (2021, {"stencil": 0.20, "gemm": 0.66, "search": 0.07,
            "linalg": 0.07}),
    (2024, {"stencil": 0.10, "gemm": 0.78, "search": 0.06,
            "linalg": 0.06}),
)

KERNEL_SPEEDUP = 10.0


def _snapshot(year, shares):
    stages, prev = [], None
    for i, (op_class, share) in enumerate(shares.items()):
        stage = Stage(
            f"s{i}",
            WorkloadProfile(name=f"s{i}", flops=share * 1e9,
                            op_class=op_class),
            deps=(prev,) if prev else (),
            rate_hz=30.0 if prev is None else None,
        )
        stages.append(stage)
        prev = stage.name
    return WorkloadSnapshot(
        year,
        Workload(name=f"perception-{year}",
                 graph=TaskGraph(f"g{year}", stages)),
    )


def _run():
    timeline = WorkloadTimeline(
        [_snapshot(year, shares) for year, shares in DRIFT]
    )
    stale_design = accelerator_value_over_time(
        timeline, ["stencil"], kernel_speedup=KERNEL_SPEEDUP,
        stale_threshold=0.3,
    )
    refreshed = accelerator_value_over_time(
        timeline, ["stencil", "gemm"], kernel_speedup=KERNEL_SPEEDUP,
        stale_threshold=0.3,
    )
    return timeline, stale_design, refreshed


def test_a4_amdahl_is_a_moving_target(benchmark, report):
    timeline, stale_design, refreshed = benchmark(_run)

    rows = []
    for year in timeline.years():
        rows.append([
            year,
            timeline.bottleneck_class(year),
            stale_design.coverage_by_year[year],
            stale_design.end_to_end_speedup_by_year[year],
            refreshed.end_to_end_speedup_by_year[year],
        ])
    report(format_table(
        ["year", "bottleneck class", "2012-ASIC coverage",
         "2012-ASIC end-to-end speedup",
         "cross-cutting-design speedup"],
        rows,
        title=f"A4: a {KERNEL_SPEEDUP:g}x stencil ASIC vs. a decade of"
              " workload drift",
    ))
    report(f"A4: feedback flags the design stale in"
           f" {stale_design.stale_year}; recommendation:"
           f" accelerate {redesign_recommendation(timeline, stale_design)!r}")

    speedups = [stale_design.end_to_end_speedup_by_year[y]
                for y in timeline.years()]

    # Shape 1: the design starts genuinely valuable...
    assert speedups[0] > 2.0
    # ...and decays monotonically to near-worthless.
    assert speedups == sorted(speedups, reverse=True)
    assert speedups[-1] < 1.15

    # Shape 2: the feedback mechanism fires mid-decade, before the
    # value hits bottom, and names the new bottleneck.
    assert stale_design.stale_year is not None
    assert timeline.years()[0] < stale_design.stale_year \
        < timeline.years()[-1]
    assert redesign_recommendation(timeline, stale_design) == "gemm"

    # Shape 3: the cross-cutting design (stencil + gemm) holds its
    # value across the whole decade.
    refreshed_speedups = [refreshed.end_to_end_speedup_by_year[y]
                          for y in timeline.years()]
    assert min(refreshed_speedups) > 3.0
    assert redesign_recommendation(timeline, refreshed) is None
