"""Evaluation daemon: cross-client batch coalescing throughput.

The tentpole claim for :mod:`repro.serve`: when concurrent clients
submit sub-critical requests (here: every candidate its own pipelined
request — the worst case the daemon exists for), the coalescer merges
all tenants' cache misses into shared SoA batches and the aggregate
throughput beats per-request pricing by >= 3x, with mean flushed-batch
occupancy >= 512 at the full 8-clients x 128-candidates setting.
Values are certified identical to direct pricing in every run (the
registered runner asserts it before reporting any rate).

The measurement lives in the benchmark registry
(:func:`repro.bench.builtin.run_serve_coalesce` — the same runner
``repro bench --filter serve_coalesce`` executes), so this script, the
CLI, and the perf ledger can never measure different things.

Two entry points:

- ``pytest benchmarks/bench_serve.py`` — small-scale smoke: coalesced
  batches must form across clients and must not lose to per-request
  pricing;
- ``python benchmarks/bench_serve.py`` — the full 8x128 measurement,
  printed, written to ``BENCH_serve.json``, and appended to
  ``BENCH_LEDGER.jsonl`` as provenance-stamped records.
"""

import json
import sys
import time

from repro.bench import append_records, get_benchmark, ledger_record

SIZES = (1_024,)
SMOKE_SIZE = 128
ATTEMPTS = 3            # re-measure on a noisy machine before failing
TARGET_SPEEDUP = 3.0    # the acceptance gate, at the full size
TARGET_OCCUPANCY = 512.0


def sweep(sizes=SIZES):
    """Measure each traffic size through the registered entry (the
    runner certifies served == direct values before any rate is
    reported)."""
    entry = get_benchmark("serve_coalesce")
    records = []
    for n in sizes:
        started = time.perf_counter()
        metrics = entry.run(n)
        records.append(ledger_record(
            entry.name, n, metrics,
            time.perf_counter() - started,
            config={"script": "bench_serve.py"}))
    return records


def test_coalescing_beats_per_request_pricing():
    """CI smoke: even at a small population with 4 clients, merging
    cross-client misses into shared batches must beat pricing each
    request alone, and at least one flush must actually coalesce."""
    entry = get_benchmark("serve_coalesce")
    best = None
    for _ in range(ATTEMPTS):
        metrics = entry.run(SMOKE_SIZE)
        if best is None or metrics["speedup"] > best["speedup"]:
            best = metrics
        if best["speedup"] >= 1.5:
            break
    assert best["coalesced_batches"] >= 1, best
    assert best["mean_flush_occupancy"] >= SMOKE_SIZE / 4, best
    assert best["speedup"] >= 1.5, (
        f"coalescing barely helps at n={SMOKE_SIZE}:"
        f" {best['speedup']:.2f}x")


def main(out_path="BENCH_serve.json",
         ledger_path="BENCH_LEDGER.jsonl"):
    records = sweep()
    rows = [{"candidates": record["size"], **record["metrics"]}
            for record in records]
    header = (f"{'cand':>6} {'baseline/s':>11} {'coalesced/s':>12} "
              f"{'speedup':>8} {'occupancy':>10} {'merged':>7}")
    print(header)
    print("-" * len(header))
    for row in rows:
        print(f"{row['candidates']:>6} {row['baseline_per_s']:>11.1f} "
              f"{row['coalesced_per_s']:>12.1f} "
              f"{row['speedup']:>7.2f}x "
              f"{row['mean_flush_occupancy']:>10.1f} "
              f"{row['coalesced_batches']:>7.0f}")

    with open(out_path, "w") as handle:
        json.dump({"benchmark": "serve_coalesce",
                   "objective": "suite_objective",
                   "clients": 8,
                   "traffic": "single-candidate pipelined requests",
                   "rows": rows},
                  handle, indent=2)
        handle.write("\n")
    print(f"wrote {out_path}")
    append_records(ledger_path, records)
    print(f"appended {len(records)} record(s) to {ledger_path}")

    worst = min(row["speedup"] for row in rows)
    thinnest = min(row["mean_flush_occupancy"] for row in rows)
    status = 0
    if worst < TARGET_SPEEDUP:
        print(f"WARNING: coalescing speedup ({worst:.1f}x) below the"
              f" {TARGET_SPEEDUP:.0f}x target", file=sys.stderr)
        status = 1
    if thinnest < TARGET_OCCUPANCY:
        print(f"WARNING: mean flush occupancy ({thinnest:.0f}) below"
              f" the {TARGET_OCCUPANCY:.0f} target", file=sys.stderr)
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
