"""Wire protocol of the evaluation daemon: JSON lines over a socket.

Each message is one JSON object on one ``\\n``-terminated line (UTF-8,
no embedded newlines — ``json.dumps`` never emits raw ones).  Requests
carry an ``op``; responses echo it back with ``ok: true`` plus the
op-specific payload, or ``ok: false`` with an ``error`` code and a
human-readable ``detail``:

========== ==========================================================
op         request fields
========== ==========================================================
ping       —
submit     ``objective`` (OBJECTIVES ref, default
           ``suite_objective``), candidates as either ``candidates``
           (a list of config mappings) or ``space`` (SPACES ref) +
           ``indices`` (design indices into it), optional ``tenant``
           label and ``no_coalesce`` flag
stats      —
shutdown   — (graceful: drain pending batches, then stop)
========== ==========================================================

Error codes the server emits: ``bad_request`` (malformed message —
the dotted-path detail pinpoints the field), ``overloaded`` (admission
control rejected the submission; retry after ``retry_after_ms``),
``draining`` (server is shutting down), ``internal`` (the oracle
raised).

Candidate decoding goes through the same spec registries as the CLI
(:data:`~repro.spec.registry.OBJECTIVES`,
:data:`~repro.spec.registry.SPACES`), and the server prices through an
:class:`~repro.engine.evaluator.Evaluator` built with the CLI's
``dse-codesign`` context — so a submission, a ``repro dse`` run, and a
``repro run`` scenario replay all resolve to identical cache keys.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import SpecError
from repro.spec import schema

__all__ = ["MAX_LINE_BYTES", "Submission", "decode_line",
           "decode_submission", "encode_line", "error_response",
           "evaluator_context"]

#: Upper bound on one wire line; a client streaming more than this is
#: malformed (or malicious) and gets a ``bad_request``, not a swelling
#: server buffer.  Generous enough for ~10k 4-knob candidates.
MAX_LINE_BYTES = 8 * 1024 * 1024

_OPS = ("ping", "submit", "stats", "shutdown")

_SUBMIT_KEYS = ("op", "objective", "candidates", "space", "indices",
                "tenant", "no_coalesce")


def evaluator_context(objective_name: str) -> Dict[str, str]:
    """The evaluator context of the CLI's DSE path, verbatim.

    Key-compatibility is the serve layer's core contract: this must
    stay byte-identical to what ``repro dse`` / ``repro run`` build, so
    a server-primed cache replays them with zero oracle calls
    (``tests/serve/test_serve.py`` enforces it end to end).
    """
    return {"task": "dse-codesign", "objective": objective_name}


@dataclass
class Submission:
    """One decoded ``submit`` request.

    Attributes:
        objective: Registry name of the objective to price under.
        candidates: Decoded candidate configs, in request order.
        tenant: Client-chosen label for per-tenant accounting.
        no_coalesce: Price this request's misses as their own batch
            instead of joining the shared pending set (the benchmark
            baseline; values and cache keys are unchanged).
    """

    objective: str
    candidates: List[Mapping[str, Any]] = field(default_factory=list)
    tenant: str = "anonymous"
    no_coalesce: bool = False


def decode_line(raw: bytes) -> Mapping[str, Any]:
    """One wire line -> request mapping (validates op)."""
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise SpecError(f"$: not a JSON line: {error}") from None
    payload = schema.require_mapping(payload, "$")
    op = schema.as_str(schema.get_field(payload, "op", "$"), "$.op")
    if op not in _OPS:
        raise SpecError(
            f"$.op: unknown operation {op!r}; expected one of"
            f" {sorted(_OPS)}")
    return payload


def encode_line(message: Mapping[str, Any]) -> bytes:
    """One response/request mapping -> wire line (newline included)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode(
        "utf-8")


def error_response(op: str, code: str, detail: str,
                   **extra: Any) -> Dict[str, Any]:
    """A failure envelope: ``{"ok": false, "error": code, ...}``."""
    return {"ok": False, "op": op, "error": code, "detail": detail,
            **extra}


def decode_submission(payload: Mapping[str, Any]) -> Submission:
    """Validate and decode a ``submit`` request.

    Candidates come either inline (``candidates``: config mappings) or
    by reference (``space`` + ``indices``: design indices resolved
    through the SPACES registry) — both land on the exact config dicts
    the registries produce, so fingerprints match programmatic runs.
    """
    from repro.spec.registry import OBJECTIVES, SPACES

    schema.check_keys(payload, _SUBMIT_KEYS, "$")
    objective = schema.as_str(
        payload.get("objective", "suite_objective"), "$.objective")
    OBJECTIVES.entry(objective, "$.objective")
    tenant = schema.as_str(
        payload.get("tenant", "anonymous"), "$.tenant")
    no_coalesce = schema.as_bool(
        payload.get("no_coalesce", False), "$.no_coalesce")
    has_inline = "candidates" in payload
    has_ref = "space" in payload or "indices" in payload
    if has_inline == has_ref:
        raise SpecError(
            "$: a submission carries either 'candidates' or"
            " 'space' + 'indices', not "
            + ("both" if has_inline else "neither"))
    if has_inline:
        candidates = [
            dict(schema.require_mapping(
                candidate, schema.item("$.candidates", i)))
            for i, candidate in enumerate(schema.as_sequence(
                payload["candidates"], "$.candidates"))
        ]
    else:
        space_name = schema.as_str(
            schema.get_field(payload, "space", "$"), "$.space")
        space = SPACES.build(space_name, "$.space")
        indices = schema.as_sequence(
            schema.get_field(payload, "indices", "$"), "$.indices")
        candidates = []
        for i, index in enumerate(indices):
            path = schema.item("$.indices", i)
            index = schema.as_int(index, path)
            if not 0 <= index < space.size:
                raise SpecError(
                    f"{path}: index {index} outside space"
                    f" {space_name!r} (size {space.size})")
            candidates.append(space.config_at(index))
    if not candidates:
        raise SpecError("$: a submission must carry at least one"
                        " candidate")
    return Submission(objective=objective, candidates=candidates,
                      tenant=tenant, no_coalesce=no_coalesce)


def read_frame(handle: Any) -> Optional[bytes]:
    """Read one wire line from a file-like object (None on EOF).

    Shared by the blocking client; the asyncio server uses
    ``StreamReader.readline`` with the same :data:`MAX_LINE_BYTES`
    bound.
    """
    line = handle.readline(MAX_LINE_BYTES + 1)
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise SpecError(
            f"$: wire line exceeds {MAX_LINE_BYTES} bytes")
    return line


def split_results(results: List[Mapping[str, Any]]
                  ) -> Tuple[int, int]:
    """(cache hits, fresh evaluations) of a submit response body."""
    hits = sum(1 for result in results if result["cached"])
    return hits, len(results) - hits
