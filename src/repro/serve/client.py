"""Blocking client for the evaluation daemon.

One :class:`ServeClient` wraps one TCP connection and speaks the
JSON-lines protocol of :mod:`repro.serve.protocol` with a single
outstanding request at a time (the server answers in order, so no
request ids are needed).  It is deliberately synchronous — the callers
are CLI verbs, tests, and benchmark worker threads; concurrency comes
from running many clients, which is exactly the traffic shape the
server's coalescer exists for.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Mapping, Optional, Sequence

from repro.errors import ServeError
from repro.serve.protocol import decode_line, encode_line, read_frame

__all__ = ["ServeClient"]


class ServeClient:
    """A connection to a running ``repro serve`` daemon.

    Args:
        host: Daemon address.
        port: Daemon port.
        timeout: Per-request socket timeout in seconds (``None`` =
            block forever; keep it comfortably above the daemon's
            ``max_wait_ms`` plus one oracle batch).

    Usable as a context manager; :meth:`close` is idempotent.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 timeout: Optional[float] = 60.0):
        try:
            self._sock = socket.create_connection((host, port),
                                                  timeout=timeout)
        except OSError as error:
            raise ServeError(
                f"cannot reach daemon at {host}:{port}: {error}"
            ) from error
        self._file = self._sock.makefile("rb")
        self._closed = False

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *_: Any) -> None:
        self.close()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._file.close()
            self._sock.close()
        except OSError:
            pass

    # -- wire ---------------------------------------------------------

    def request(self, message: Mapping[str, Any]) -> Dict[str, Any]:
        """Send one request and block for its response envelope.

        Transport failures raise :class:`ServeError`; protocol-level
        failures (``ok: false`` — e.g. ``overloaded``) come back as
        the envelope for the caller to inspect.
        """
        if self._closed:
            raise ServeError("client is closed")
        try:
            self._sock.sendall(encode_line(message))
            line = read_frame(self._file)
        except OSError as error:
            raise ServeError(f"daemon connection lost: {error}"
                             ) from error
        if line is None:
            raise ServeError("daemon closed the connection"
                             " mid-request")
        return dict(decode_line(line))

    def pipeline(self, messages: Sequence[Mapping[str, Any]]
                 ) -> List[Dict[str, Any]]:
        """Send many requests before reading any response.

        The server dispatches pipelined requests concurrently and
        replies in request order, so a client can park its whole
        working set on the coalescer in one burst instead of paying a
        flush round-trip per request.  Returns one envelope per
        request, in order.
        """
        if self._closed:
            raise ServeError("client is closed")
        if not messages:
            return []
        try:
            self._sock.sendall(b"".join(
                encode_line(message) for message in messages))
            frames = [read_frame(self._file) for _ in messages]
        except OSError as error:
            raise ServeError(f"daemon connection lost: {error}"
                             ) from error
        if any(frame is None for frame in frames):
            raise ServeError("daemon closed the connection"
                             " mid-pipeline")
        return [dict(decode_line(frame)) for frame in frames]

    # -- operations ---------------------------------------------------

    def ping(self) -> bool:
        """True iff the daemon answers."""
        return bool(self.request({"op": "ping"}).get("ok"))

    @staticmethod
    def submit_message(candidates: Optional[
            Sequence[Mapping[str, Any]]] = None, *,
            objective: str = "suite_objective",
            space: Optional[str] = None,
            indices: Optional[Sequence[int]] = None,
            tenant: str = "anonymous",
            no_coalesce: bool = False) -> Dict[str, Any]:
        """Build one ``submit`` request payload (for :meth:`submit` or
        a :meth:`pipeline` burst)."""
        message: Dict[str, Any] = {"op": "submit",
                                   "objective": objective,
                                   "tenant": tenant}
        if no_coalesce:
            message["no_coalesce"] = True
        if candidates is not None:
            message["candidates"] = [dict(candidate)
                                     for candidate in candidates]
        if space is not None:
            message["space"] = space
        if indices is not None:
            message["indices"] = list(indices)
        return message

    def submit(self, candidates: Optional[Sequence[Mapping[str, Any]]]
               = None, *, objective: str = "suite_objective",
               space: Optional[str] = None,
               indices: Optional[Sequence[int]] = None,
               tenant: str = "anonymous",
               no_coalesce: bool = False) -> Dict[str, Any]:
        """Submit candidates for pricing; returns the raw envelope.

        Pass either ``candidates`` (config mappings) or ``space`` +
        ``indices`` (design indices decoded server-side through the
        SPACES registry).  The envelope carries ``ok`` and, on
        success, ``results`` (candidate/value/key/cached per input, in
        order); on admission rejection, ``error: "overloaded"``.
        """
        return self.request(self.submit_message(
            candidates, objective=objective, space=space,
            indices=indices, tenant=tenant, no_coalesce=no_coalesce))

    def submit_values(self, *args: Any, **kwargs: Any) -> List[Any]:
        """:meth:`submit`, unwrapped to the value list; raises
        :class:`ServeError` on any non-ok envelope (including
        backpressure — callers wanting to handle ``overloaded``
        themselves should use :meth:`submit`)."""
        envelope = self.submit(*args, **kwargs)
        if not envelope.get("ok"):
            raise ServeError(
                f"submit failed: {envelope.get('error', 'unknown')}"
                f" ({envelope.get('detail', 'no detail')})")
        return [result["value"] for result in envelope["results"]]

    def stats(self) -> Dict[str, Any]:
        """The daemon's dashboard snapshot (see ``EvalServer.stats``)."""
        envelope = self.request({"op": "stats"})
        if not envelope.get("ok"):
            raise ServeError(f"stats failed: {envelope}")
        return envelope

    def shutdown(self) -> bool:
        """Ask the daemon to drain and exit; True once acknowledged."""
        acknowledged = bool(
            self.request({"op": "shutdown"}).get("ok"))
        self.close()
        return acknowledged
