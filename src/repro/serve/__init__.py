"""DSE-as-a-service: a coalescing evaluation daemon and its client.

``repro serve`` turns the evaluation engine into a long-running
service: concurrent clients submit candidates over a JSON-lines
socket, the daemon answers cache hits immediately and merges every
tenant's misses into shared SoA oracle batches (see
:mod:`repro.serve.server` for the coalescer and its equivalence
contract).  ``repro submit`` and :class:`ServeClient` are the client
sides.
"""

from repro.serve.client import ServeClient
from repro.serve.protocol import Submission, evaluator_context
from repro.serve.server import EvalServer, ServeConfig

__all__ = ["EvalServer", "ServeClient", "ServeConfig", "Submission",
           "evaluator_context"]
