"""The evaluation daemon: cross-client batch coalescing over asyncio.

The paper's continuous-DSE argument (§3.1) needs pricing to be a
*service*, not a one-shot job: the SoA kernels amortize best at batch
sizes no single interactive client reaches (12x+ at 1k candidates per
``BENCH_LEDGER``), so the server's job is to manufacture those batches
out of many small requests.

One :class:`EvalServer` owns, per objective, a :class:`Lane` — an
:class:`~repro.engine.evaluator.Evaluator` built with the CLI's exact
``dse-codesign`` context plus a *pending set* keyed by cache key.  A
``submit`` answers cache hits immediately and parks each miss as a
waiter on the pending entry for its key (entries dedup across clients:
two tenants asking for the same candidate share one oracle slot).  The
pending set flushes as one ``map_batch`` call when it reaches
``max_batch`` occupancy or when the oldest entry has waited
``max_wait_ms`` — ten clients asking for 100 candidates each get
priced as one 1k-candidate kernel call instead of ten sub-critical
ones.

Equivalence contract: the server changes *when* and *with whom*
candidates are priced, never *what* is priced.  Keys come from the
lane evaluator's ``key_for`` (CLI-identical context), seeds are
fingerprint-derived, and batch objectives are elementwise, so served
values — and the cache entries they leave behind — are byte-identical
to a serial ``repro dse`` run; a server-primed cache replays ``repro
run`` with zero oracle calls.

Backpressure: admission control rejects (never queues unboundedly) —
``overloaded`` when a tenant exceeds its in-flight candidate cap or
the pending set would exceed ``max_queue``, ``draining`` once shutdown
has begun.  All oracle work runs on a single worker thread: flushes
from every lane serialize there, which both bounds CPU pressure and
keeps the per-process scratch arena of the batch objectives
single-threaded.

Dashboard (one shared :class:`~repro.telemetry.MetricsRegistry`):
``serve.queue_depth`` gauge, ``serve.batch_occupancy`` histogram,
``serve.flushes`` / ``serve.coalesced_batches`` counters,
``serve.request_latency_s`` histogram (p50/p99 via ``summary()``),
``engine.cache.*`` totals from the shared cache, and
``engine.cache.tenant.<label>.hits`` / ``.misses`` per tenant.
"""

from __future__ import annotations

import asyncio
import itertools
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Set

from repro.engine import Evaluator, ResultCache
from repro.errors import ReproError, ServeError, SpecError
from repro.serve.protocol import (
    MAX_LINE_BYTES,
    Submission,
    decode_line,
    decode_submission,
    encode_line,
    error_response,
    evaluator_context,
)
from repro.telemetry import MetricsRegistry

__all__ = ["ServeConfig", "EvalServer"]


@dataclass(frozen=True)
class ServeConfig:
    """Daemon tuning knobs.

    Attributes:
        host: Bind address.
        port: Bind port (0 = ephemeral; read the bound port back from
            :attr:`EvalServer.port`).
        max_batch: Flush the pending set at this occupancy.
        max_wait_ms: Flush a non-empty pending set after the oldest
            entry has waited this long (the latency bound a candidate
            pays for the chance to coalesce).
        max_queue: Admission bound on pending candidates per lane;
            submissions that would exceed it get ``overloaded``.
        max_inflight: Per-tenant bound on candidates submitted but not
            yet answered.
        cache_dir: Optional on-disk cache directory (what makes the
            server a cache *primer* for later ``repro run`` replays).
        cache_max_entries: In-memory cache bound (LRU eviction) for
            long-lived daemons.
        jobs: Evaluator process-pool width for flushes.
        chunk_size: Evaluator chunk size (bounds flush working set).
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_batch: int = 1024
    max_wait_ms: float = 50.0
    max_queue: int = 8192
    max_inflight: int = 4096
    cache_dir: Optional[str] = None
    cache_max_entries: Optional[int] = None
    jobs: int = 1
    chunk_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ServeError(
                f"max_batch must be >= 1 (got {self.max_batch})")
        if self.max_wait_ms < 0:
            raise ServeError(
                f"max_wait_ms must be >= 0 (got {self.max_wait_ms})")
        if self.max_queue < 1:
            raise ServeError(
                f"max_queue must be >= 1 (got {self.max_queue})")
        if self.max_inflight < 1:
            raise ServeError(
                f"max_inflight must be >= 1 (got {self.max_inflight})")


@dataclass
class _Pending:
    """One parked cache miss: the candidate plus everyone waiting on
    it.  Waiter futures are per-request, so a disconnected tenant's
    future going unread never blocks the batch completing for the
    rest."""

    candidate: Mapping[str, Any]
    waiters: List["asyncio.Future[Any]"] = field(default_factory=list)
    sources: Set[int] = field(default_factory=set)


class Lane:
    """Per-objective pricing lane: evaluator + pending set + deadline."""

    def __init__(self, objective_name: str, evaluator: Evaluator):
        self.objective_name = objective_name
        self.evaluator = evaluator
        self.pending: Dict[str, _Pending] = {}
        self.timer: Optional[asyncio.TimerHandle] = None


class EvalServer:
    """The daemon.  Construct, then ``await run()`` (or drive
    :meth:`start` / :meth:`drain` yourself from tests)."""

    def __init__(self, config: ServeConfig = ServeConfig(), *,
                 metrics: Optional[MetricsRegistry] = None):
        self.config = config
        self.metrics = metrics if metrics is not None \
            else MetricsRegistry()
        self.cache = ResultCache(
            config.cache_dir,
            max_entries=config.cache_max_entries,
            metrics=self.metrics)
        self._lanes: Dict[str, Lane] = {}
        self._inflight: Dict[str, int] = {}
        self._submissions = itertools.count()
        self._oracle = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="serve-oracle")
        self._flushes: Set["asyncio.Task[None]"] = set()
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopped: Optional[asyncio.Event] = None
        self.draining = False
        self.port: Optional[int] = None

    # -- lanes --------------------------------------------------------

    def lane(self, objective_name: str) -> Lane:
        """The lane for an objective (created on first use).  Every
        lane shares the server cache; contexts embed the objective
        name, so keys cannot collide across lanes."""
        existing = self._lanes.get(objective_name)
        if existing is not None:
            return existing
        from repro.spec.registry import OBJECTIVES

        evaluator = Evaluator(
            OBJECTIVES.get(objective_name),
            jobs=self.config.jobs,
            cache=self.cache,
            chunk_size=self.config.chunk_size,
            context=evaluator_context(objective_name),
            metrics=self.metrics,
        )
        created = Lane(objective_name, evaluator)
        self._lanes[objective_name] = created
        return created

    def _queue_depth(self) -> int:
        return sum(len(lane.pending) for lane in self._lanes.values())

    def _set_queue_gauge(self) -> None:
        self.metrics.gauge("serve.queue_depth").set(
            self._queue_depth())

    # -- lifecycle ----------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections."""
        self._stopped = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host,
            self.config.port, limit=MAX_LINE_BYTES)
        self.port = self._server.sockets[0].getsockname()[1]

    async def run(self) -> None:
        """Serve until :meth:`request_stop` (or a ``shutdown`` op),
        then drain and close."""
        if self._server is None:
            await self.start()
        assert self._stopped is not None
        try:
            await self._stopped.wait()
        finally:
            await self.aclose()

    def request_stop(self) -> None:
        """Ask :meth:`run` to drain and exit (signal-handler safe)."""
        if self._stopped is not None:
            self._stopped.set()

    async def drain(self) -> None:
        """Stop admitting, flush every lane, wait for in-flight work."""
        self.draining = True
        for lane in self._lanes.values():
            if lane.timer is not None:
                lane.timer.cancel()
                lane.timer = None
            while lane.pending:
                await self._flush(lane)
        while self._flushes:
            await asyncio.gather(*list(self._flushes),
                                 return_exceptions=True)

    async def aclose(self) -> None:
        """Graceful shutdown: drain, close the listener, stop the
        oracle thread."""
        await self.drain()
        # One scheduling breath so handlers whose waiters the drain
        # just resolved can deliver their responses before the loop
        # shuts down under them.
        await asyncio.sleep(0.05)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        self._oracle.shutdown(wait=True)

    # -- connection handling ------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        """One connection: requests may be pipelined (a client can
        write many lines before reading), each is dispatched as its
        own task, and responses are delivered in request order.
        Pipelining is what lets a single client park many sub-critical
        submissions on the coalescer at once instead of paying one
        flush round-trip per request."""
        loop = asyncio.get_running_loop()
        queue: "asyncio.Queue[Optional[asyncio.Task]]" = asyncio.Queue()
        closing = asyncio.Event()

        async def deliver() -> None:
            while True:
                task = await queue.get()
                if task is None:
                    break
                response = await task
                delivered = await self._reply(writer, response)
                if not delivered or response.get("op") == "shutdown":
                    closing.set()
                    break

        delivery = loop.create_task(deliver())
        try:
            while not closing.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    future: "asyncio.Future[Dict[str, Any]]" = \
                        loop.create_future()
                    future.set_result(error_response(
                        "?", "bad_request",
                        f"wire line exceeds {MAX_LINE_BYTES} bytes"))
                    queue.put_nowait(future)  # type: ignore[arg-type]
                    break
                if not line:
                    break
                queue.put_nowait(loop.create_task(
                    self._dispatch(line)))
        except ConnectionError:
            pass
        finally:
            queue.put_nowait(None)
            try:
                await delivery
            except ConnectionError:
                pass
            while not queue.empty():  # undelivered after shutdown
                leftover = queue.get_nowait()
                if leftover is not None:
                    leftover.cancel()
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _reply(self, writer: asyncio.StreamWriter,
                     response: Mapping[str, Any]) -> bool:
        """Write one response line; a disconnected peer's response is
        counted and dropped (its batch results are already cached for
        everyone else)."""
        try:
            writer.write(encode_line(response))
            await writer.drain()
            return True
        except (ConnectionError, OSError):
            self.metrics.counter("serve.dropped_responses").inc()
            return False

    async def _dispatch(self, line: bytes) -> Dict[str, Any]:
        try:
            payload = decode_line(line)
        except SpecError as error:
            return error_response("?", "bad_request", str(error))
        op = payload["op"]
        if op == "ping":
            return {"ok": True, "op": "ping"}
        if op == "stats":
            return {"ok": True, "op": "stats", **self.stats()}
        if op == "shutdown":
            self.request_stop()
            return {"ok": True, "op": "shutdown"}
        try:
            submission = decode_submission(payload)
        except SpecError as error:
            return error_response("submit", "bad_request", str(error))
        return await self._submit(submission)

    # -- the coalescer ------------------------------------------------

    async def _submit(self, submission: Submission) -> Dict[str, Any]:
        loop = asyncio.get_running_loop()
        arrival = loop.time()
        if self.draining:
            return error_response("submit", "draining",
                                  "server is shutting down")
        tenant = submission.tenant
        count = len(submission.candidates)
        inflight = self._inflight.get(tenant, 0)
        if inflight + count > self.config.max_inflight:
            return error_response(
                "submit", "overloaded",
                f"tenant {tenant!r} would have {inflight + count}"
                f" candidates in flight"
                f" (cap {self.config.max_inflight})",
                retry_after_ms=self.config.max_wait_ms)
        lane = self.lane(submission.objective)
        # Classify before admitting: hits answer immediately whatever
        # the queue looks like; only genuinely new misses count
        # against the queue bound.
        keys = [lane.evaluator.key_for(candidate)
                for candidate in submission.candidates]
        resolved: Dict[str, Any] = {}
        new_keys: List[str] = []
        for key, candidate in zip(keys, submission.candidates):
            if key in resolved or key in lane.pending:
                continue
            hit, value = self.cache.get(key)
            if hit:
                resolved[key] = value
            else:
                new_keys.append(key)
        if new_keys and not submission.no_coalesce \
                and self._queue_depth() + len(new_keys) \
                > self.config.max_queue:
            return error_response(
                "submit", "overloaded",
                f"pending queue would exceed {self.config.max_queue}"
                f" candidates",
                retry_after_ms=self.config.max_wait_ms)
        hits = sum(1 for key in keys if key in resolved)
        self._tenant_count(tenant, "hits", hits)
        self._tenant_count(tenant, "misses", len(keys) - hits)
        self._inflight[tenant] = inflight + count
        try:
            if submission.no_coalesce:
                fresh = await self._price_direct(lane, submission,
                                                 keys, resolved)
            else:
                fresh = await self._price_coalesced(lane, submission,
                                                    keys, resolved)
        except ReproError as error:
            return error_response("submit", "internal", str(error))
        finally:
            remaining = self._inflight.get(tenant, 0) - count
            if remaining > 0:
                self._inflight[tenant] = remaining
            else:
                self._inflight.pop(tenant, None)
        results = []
        for key, candidate in zip(keys, submission.candidates):
            if key in fresh:  # first occurrence: freshly priced
                value = resolved[key] = fresh.pop(key)
                cached = False
            else:
                value, cached = resolved[key], True
            results.append({"candidate": dict(candidate),
                            "value": value, "key": key,
                            "cached": cached})
        self.metrics.histogram("serve.request_latency_s").record(
            loop.time() - arrival)
        self.metrics.counter("serve.requests").inc()
        self.metrics.counter("serve.candidates").inc(count)
        return {"ok": True, "op": "submit",
                "objective": submission.objective,
                "tenant": tenant, "results": results}

    async def _price_direct(self, lane: Lane, submission: Submission,
                            keys: List[str],
                            resolved: Mapping[str, Any]
                            ) -> Dict[str, Any]:
        """Coalescing disabled: price this request's misses as their
        own batch (the benchmark baseline — keys and values are
        unchanged, only the batch population shrinks)."""
        misses: Dict[str, Any] = {}
        for key, candidate in zip(keys, submission.candidates):
            if key not in resolved and key not in misses:
                misses[key] = candidate
        if not misses:
            return {}
        loop = asyncio.get_running_loop()
        outcomes = await loop.run_in_executor(
            self._oracle, lane.evaluator.map_batch,
            list(misses.values()))
        self.metrics.counter("serve.flushes").inc()
        self.metrics.histogram("serve.batch_occupancy").record(
            len(misses))
        return {key: outcome.value
                for key, outcome in zip(misses, outcomes)}

    async def _price_coalesced(self, lane: Lane,
                               submission: Submission,
                               keys: List[str],
                               resolved: Mapping[str, Any]
                               ) -> Dict[str, Any]:
        """Park this request's misses on the shared pending set and
        wait for the flush(es) that price them."""
        loop = asyncio.get_running_loop()
        source = next(self._submissions)
        waiters: Dict[str, "asyncio.Future[Any]"] = {}
        for key, candidate in zip(keys, submission.candidates):
            if key in resolved or key in waiters:
                continue
            entry = lane.pending.get(key)
            if entry is None:
                entry = _Pending(candidate=candidate)
                lane.pending[key] = entry
            entry.sources.add(source)
            future: "asyncio.Future[Any]" = loop.create_future()
            entry.waiters.append(future)
            waiters[key] = future
        if not waiters:
            return {}
        self._set_queue_gauge()
        if len(lane.pending) >= self.config.max_batch:
            self._schedule_flush(lane)
        elif lane.timer is None:
            lane.timer = loop.call_later(
                self.config.max_wait_ms / 1000.0,
                self._schedule_flush, lane)
        values = await asyncio.gather(*waiters.values())
        return dict(zip(waiters, values))

    def _schedule_flush(self, lane: Lane) -> None:
        if lane.timer is not None:
            lane.timer.cancel()
            lane.timer = None
        task = asyncio.get_running_loop().create_task(
            self._flush(lane))
        self._flushes.add(task)
        task.add_done_callback(self._flushes.discard)

    async def _flush(self, lane: Lane) -> None:
        """Price up to ``max_batch`` pending entries as one oracle
        batch and wake every (still-listening) waiter."""
        if lane.timer is not None:
            lane.timer.cancel()
            lane.timer = None
        if not lane.pending:
            return
        taken = list(lane.pending.items())[:self.config.max_batch]
        for key, _ in taken:
            del lane.pending[key]
        self._set_queue_gauge()
        entries = [entry for _, entry in taken]
        self.metrics.counter("serve.flushes").inc()
        self.metrics.histogram("serve.batch_occupancy").record(
            len(entries))
        sources: Set[int] = set()
        for entry in entries:
            sources |= entry.sources
        if len(sources) > 1:
            self.metrics.counter("serve.coalesced_batches").inc()
            self.metrics.counter("serve.coalesced_candidates").inc(
                len(entries))
        loop = asyncio.get_running_loop()
        try:
            outcomes = await loop.run_in_executor(
                self._oracle, lane.evaluator.map_batch,
                [entry.candidate for entry in entries])
        except ReproError as error:
            failure = ServeError(f"oracle failed: {error}")
            for entry in entries:
                for future in entry.waiters:
                    if not future.done():
                        future.set_exception(failure)
            return
        for entry, outcome in zip(entries, outcomes):
            for future in entry.waiters:
                if not future.done():
                    future.set_result(outcome.value)
        if len(lane.pending) >= self.config.max_batch:
            self._schedule_flush(lane)

    # -- accounting ---------------------------------------------------

    def _tenant_count(self, tenant: str, name: str,
                      amount: int) -> None:
        if amount:
            self.metrics.counter(
                f"engine.cache.tenant.{tenant}.{name}").inc(amount)

    def tenant_stats(self) -> Dict[str, Dict[str, float]]:
        """Per-tenant cache counters, recovered from the namespaced
        metrics (``engine.cache.tenant.<label>.<counter>``) — the
        registry IS the store; there is no parallel tree."""
        prefix = "engine.cache.tenant."
        tenants: Dict[str, Dict[str, float]] = {}
        snapshot = self.metrics.snapshot()
        for name, fields in snapshot.items():
            if not name.startswith(prefix):
                continue
            tenant, _, counter = name[len(prefix):].rpartition(".")
            tenants.setdefault(tenant, {})[counter] = fields["value"]
        return tenants

    def stats(self) -> Dict[str, Any]:
        """The dashboard snapshot the ``stats`` op returns."""
        snapshot = self.metrics.snapshot()

        def _value(name: str) -> float:
            return snapshot.get(name, {}).get("value", 0.0)

        latency = self.metrics.histogram(
            "serve.request_latency_s").summary()
        occupancy = self.metrics.histogram(
            "serve.batch_occupancy").summary()
        return {
            "serve": {
                "requests": _value("serve.requests"),
                "candidates": _value("serve.candidates"),
                "flushes": _value("serve.flushes"),
                "coalesced_batches": _value(
                    "serve.coalesced_batches"),
                "coalesced_candidates": _value(
                    "serve.coalesced_candidates"),
                "dropped_responses": _value(
                    "serve.dropped_responses"),
                "queue_depth": self._queue_depth(),
                "request_latency_s": latency,
                "batch_occupancy": occupancy,
            },
            "cache": self.cache.stats(),
            "tenants": self.tenant_stats(),
            "lanes": {name: lane.evaluator.stats()
                      for name, lane in self._lanes.items()},
        }
