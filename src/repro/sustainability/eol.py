"""End-of-life management: recycling recovery and e-waste accounting."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class EolPlan:
    """What happens to a device at end of life.

    Attributes:
        collection_rate: Fraction of retired units that enter a recycling
            stream at all (global e-waste collection is ~20%).
        material_recovery: Fraction of recoverable material value
            actually reclaimed from collected units.
        hazardous_fraction: Mass fraction requiring special disposal.
    """

    collection_rate: float = 0.2
    material_recovery: float = 0.5
    hazardous_fraction: float = 0.05

    def __post_init__(self) -> None:
        for attr in ("collection_rate", "material_recovery",
                     "hazardous_fraction"):
            value = getattr(self, attr)
            if not 0.0 <= value <= 1.0:
                raise ConfigurationError(
                    f"{attr} must be in [0, 1], got {value}"
                )


def recovery_credit_kg(plan: EolPlan, embodied_kg: float,
                       recoverable_fraction: float = 0.3) -> float:
    """Carbon credit from recovered materials.

    Only a fraction of embodied emissions is recoverable even in
    principle (metals, substrate — not the wafer processing energy), and
    only collected * recovered units realize it.
    """
    if embodied_kg < 0:
        raise ConfigurationError("embodied_kg must be >= 0")
    if not 0.0 <= recoverable_fraction <= 1.0:
        raise ConfigurationError(
            "recoverable_fraction must be in [0, 1]"
        )
    return (embodied_kg * recoverable_fraction
            * plan.collection_rate * plan.material_recovery)


def ewaste_mass_kg(units: int, unit_mass_kg: float,
                   plan: EolPlan) -> float:
    """Uncollected device mass entering the waste stream."""
    if units < 0 or unit_mass_kg < 0:
        raise ConfigurationError("units and mass must be >= 0")
    return units * unit_mass_kg * (1.0 - plan.collection_rate)
