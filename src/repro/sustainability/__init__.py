"""Sustainability modeling: carbon, lifecycle analysis, fleet projection.

§2.7 "Design Global" turned into models:

- :mod:`~repro.sustainability.embodied`    — manufacturing carbon
  (ACT-style per-mm² factors by process node);
- :mod:`~repro.sustainability.operational` — use-phase carbon by grid;
- :mod:`~repro.sustainability.lca`         — full lifecycle assessment;
- :mod:`~repro.sustainability.fleet`       — "datacenters on wheels"
  fleet-scale projection (Sudhakar et al.);
- :mod:`~repro.sustainability.eol`         — end-of-life recovery.

Coefficients are public-order (ACT, Patterson et al., grid-intensity
tables); experiments built on them reproduce directional claims, not
audited footprints.
"""

from repro.sustainability.embodied import (
    ProcessNode,
    embodied_carbon_kg,
    packaging_carbon_kg,
)
from repro.sustainability.eol import EolPlan, recovery_credit_kg
from repro.sustainability.fleet import (
    FleetScenario,
    fleet_power_w,
    fleet_vs_datacenters,
)
from repro.sustainability.lca import LifecycleAssessment, LifecycleInputs
from repro.sustainability.operational import (
    GRID_INTENSITY_G_PER_KWH,
    operational_carbon_kg,
)

__all__ = [
    "EolPlan",
    "FleetScenario",
    "GRID_INTENSITY_G_PER_KWH",
    "LifecycleAssessment",
    "LifecycleInputs",
    "ProcessNode",
    "embodied_carbon_kg",
    "fleet_power_w",
    "fleet_vs_datacenters",
    "operational_carbon_kg",
    "packaging_carbon_kg",
    "recovery_credit_kg",
]
