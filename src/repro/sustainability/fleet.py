"""Fleet-scale projection: "datacenters on wheels" (Sudhakar et al.).

The §2.7 claim: if every vehicle in a global autonomous fleet carries a
~kilowatt-class computer, the fleet's compute draw rivals today's
datacenters.  This module does that arithmetic transparently, with a
growth model so the crossover year is a computed output, not an
assertion.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import ConfigurationError

#: Rough global datacenter IT power, ~2023 (public-order): ~30 GW.
GLOBAL_DATACENTER_POWER_W = 30e9
#: A representative large hyperscale facility: ~30 MW IT load.
LARGE_DATACENTER_POWER_W = 30e6


@dataclass(frozen=True)
class FleetScenario:
    """An autonomous-vehicle fleet compute scenario.

    Attributes:
        name: Scenario label.
        n_vehicles: Fleet size.
        compute_power_w: Average onboard compute power while driving.
        hours_per_day: Operating hours per vehicle per day.
        annual_growth: Fleet-size growth rate per year (e.g. 0.3 = 30%).
    """

    name: str
    n_vehicles: float
    compute_power_w: float = 840.0  # Sudhakar et al.'s nominal AV load
    hours_per_day: float = 2.2  # average US vehicle-hours/day
    annual_growth: float = 0.0

    def __post_init__(self) -> None:
        if self.n_vehicles < 0 or self.compute_power_w < 0:
            raise ConfigurationError(
                "n_vehicles and compute_power_w must be >= 0"
            )
        if not 0.0 <= self.hours_per_day <= 24.0:
            raise ConfigurationError("hours_per_day must be in [0, 24]")
        if self.annual_growth < -1.0:
            raise ConfigurationError("annual_growth must be >= -1")


def fleet_power_w(scenario: FleetScenario) -> float:
    """Time-averaged fleet compute power (duty-cycled by driving hours)."""
    duty = scenario.hours_per_day / 24.0
    return scenario.n_vehicles * scenario.compute_power_w * duty


def fleet_energy_twh_per_year(scenario: FleetScenario) -> float:
    """Annual fleet compute energy in TWh."""
    return fleet_power_w(scenario) * 8760.0 / 1e12


def datacenter_equivalents(scenario: FleetScenario) -> float:
    """How many large hyperscale datacenters the fleet equals."""
    return fleet_power_w(scenario) / LARGE_DATACENTER_POWER_W


def fleet_vs_datacenters(scenario: FleetScenario,
                         years: int = 15
                         ) -> List[Tuple[int, float, float]]:
    """Project fleet compute power against global datacenter power.

    Returns:
        ``(year_offset, fleet_power_w, fraction_of_global_datacenters)``
        rows; the year the fraction crosses 1.0 is the paper's headline
        moment.
    """
    if years < 1:
        raise ConfigurationError("years must be >= 1")
    rows: List[Tuple[int, float, float]] = []
    vehicles = scenario.n_vehicles
    for year in range(years + 1):
        grown = FleetScenario(
            name=scenario.name,
            n_vehicles=vehicles,
            compute_power_w=scenario.compute_power_w,
            hours_per_day=scenario.hours_per_day,
        )
        power = fleet_power_w(grown)
        rows.append((year, power, power / GLOBAL_DATACENTER_POWER_W))
        vehicles *= (1.0 + scenario.annual_growth)
    return rows


def crossover_year(scenario: FleetScenario,
                   horizon_years: int = 50) -> int:
    """First projected year the fleet exceeds global datacenter power.

    Returns -1 if it never crosses within the horizon (e.g. zero
    growth and a small fleet).
    """
    for year, _, fraction in fleet_vs_datacenters(scenario,
                                                  years=horizon_years):
        if fraction >= 1.0:
            return year
    return -1
