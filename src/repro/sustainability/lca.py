"""Lifecycle assessment: embodied + operational + end-of-life, per unit
and at deployment scale.

The §2.7/§3.3 synthesis: a design's footprint is decided jointly by how
it is made (node, area), how it runs (power, grid, lifetime), how many
are deployed, and what happens at end of life.  Short-lifespan
over-specialized widgets lose here even when their operational power
looks great — the e-waste argument, quantified.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError
from repro.sustainability.embodied import (
    ProcessNode,
    embodied_carbon_kg,
    packaging_carbon_kg,
)
from repro.sustainability.eol import EolPlan, recovery_credit_kg
from repro.sustainability.operational import operational_carbon_kg


@dataclass(frozen=True)
class LifecycleInputs:
    """Everything needed to assess one deployed device.

    Attributes:
        name: Design name.
        die_area_mm2: Accelerator die area.
        node: Process node.
        average_power_w: Mean device power in operation.
        duty_cycle: Fraction of wall-clock time operating.
        lifetime_years: Service life before replacement.
        grid: Operating grid key.
        units: Deployment scale (number of devices).
        eol: End-of-life plan.
    """

    name: str
    die_area_mm2: float
    node: ProcessNode
    average_power_w: float
    duty_cycle: float = 0.3
    lifetime_years: float = 5.0
    grid: str = "world-average"
    units: int = 1
    eol: EolPlan = field(default_factory=lambda: EolPlan())

    def __post_init__(self) -> None:
        if self.average_power_w < 0:
            raise ConfigurationError("average_power_w must be >= 0")
        if not 0.0 <= self.duty_cycle <= 1.0:
            raise ConfigurationError("duty_cycle must be in [0, 1]")
        if self.lifetime_years <= 0:
            raise ConfigurationError("lifetime_years must be > 0")
        if self.units < 1:
            raise ConfigurationError("units must be >= 1")


@dataclass(frozen=True)
class LifecycleAssessment:
    """Per-unit and fleet-scale footprint breakdown (kgCO2e).

    Attributes:
        embodied_kg: Manufacturing (die + package), per unit.
        operational_kg: Use phase over the lifetime, per unit.
        eol_credit_kg: Recovery credit (negative contribution), per unit.
        total_kg: Net per-unit footprint.
        fleet_total_kg: Net footprint across all units.
        operational_fraction: Operational share of gross per-unit
            emissions — the knob §2.7 says dominates at scale.
    """

    embodied_kg: float
    operational_kg: float
    eol_credit_kg: float
    total_kg: float
    fleet_total_kg: float
    operational_fraction: float


def assess(inputs: LifecycleInputs) -> LifecycleAssessment:
    """Run the LCA for one design."""
    embodied = (embodied_carbon_kg(inputs.die_area_mm2, inputs.node)
                + packaging_carbon_kg())
    hours = inputs.lifetime_years * 365.0 * 24.0 * inputs.duty_cycle
    energy_kwh = inputs.average_power_w * hours / 1000.0
    operational = operational_carbon_kg(energy_kwh, inputs.grid)
    credit = recovery_credit_kg(inputs.eol, embodied)
    total = embodied + operational - credit
    gross = embodied + operational
    return LifecycleAssessment(
        embodied_kg=embodied,
        operational_kg=operational,
        eol_credit_kg=credit,
        total_kg=total,
        fleet_total_kg=total * inputs.units,
        operational_fraction=operational / gross if gross > 0 else 0.0,
    )


def amortized_kg_per_year(inputs: LifecycleInputs) -> float:
    """Net footprint per unit-year — the metric that punishes short
    lifespans: halving lifetime nearly doubles the embodied share."""
    assessment = assess(inputs)
    return assessment.total_kg / inputs.lifetime_years


def compare_designs(designs: Dict[str, LifecycleInputs]
                    ) -> Dict[str, LifecycleAssessment]:
    """Assess several designs under identical assumptions."""
    if not designs:
        raise ConfigurationError("need >= 1 design")
    return {name: assess(inputs) for name, inputs in designs.items()}
