"""Embodied (manufacturing) carbon for silicon, ACT-style.

Per-area carbon intensity of wafer processing rises sharply at advanced
nodes (more masks, more EUV, more energy per wafer).  Factors below are
public-order values consistent with the ACT model (Gupta et al., ISCA'22)
— suitable for the directional comparisons the paper calls for.
"""

from __future__ import annotations

import enum
from typing import Dict

from repro.errors import ConfigurationError


class ProcessNode(enum.Enum):
    """Supported logic nodes."""

    N28 = "28nm"
    N14 = "14nm"
    N7 = "7nm"
    N5 = "5nm"
    N3 = "3nm"


#: kgCO2e per mm^2 of finished die, by node (wafer processing, ACT-order).
CARBON_PER_MM2_KG: Dict[ProcessNode, float] = {
    ProcessNode.N28: 0.010,
    ProcessNode.N14: 0.016,
    ProcessNode.N7: 0.024,
    ProcessNode.N5: 0.030,
    ProcessNode.N3: 0.038,
}

#: Typical parametric+defect yield by node (drives effective area).
TYPICAL_YIELD: Dict[ProcessNode, float] = {
    ProcessNode.N28: 0.92,
    ProcessNode.N14: 0.90,
    ProcessNode.N7: 0.85,
    ProcessNode.N5: 0.80,
    ProcessNode.N3: 0.72,
}


def embodied_carbon_kg(die_area_mm2: float, node: ProcessNode,
                       yield_fraction: float = 0.0) -> float:
    """Manufacturing carbon of one good die.

    Args:
        die_area_mm2: Die area.
        node: Process node.
        yield_fraction: Die yield; 0 selects the node-typical value.

    Returns:
        kgCO2e charged to one *good* die (scrapped dies are amortized
        into the survivors: ``area * intensity / yield``).
    """
    if die_area_mm2 <= 0:
        raise ConfigurationError("die_area_mm2 must be > 0")
    y = yield_fraction if yield_fraction > 0 else TYPICAL_YIELD[node]
    if not 0.0 < y <= 1.0:
        raise ConfigurationError(
            f"yield_fraction must be in (0, 1], got {yield_fraction}"
        )
    return die_area_mm2 * CARBON_PER_MM2_KG[node] / y


def packaging_carbon_kg(n_dies: int = 1,
                        substrate_area_mm2: float = 400.0) -> float:
    """Package + substrate + assembly carbon.

    Chiplet note (§3.3): one big package with several small dies beats
    one monolithic die at advanced nodes because per-die yield rises and
    known-good-die assembly scraps less silicon — the modularity argument
    for sustainable reuse.
    """
    if n_dies < 1:
        raise ConfigurationError("n_dies must be >= 1")
    if substrate_area_mm2 <= 0:
        raise ConfigurationError("substrate_area_mm2 must be > 0")
    base = 0.5  # kg: leadframe/laminate baseline
    per_die_bonding = 0.15
    substrate = 0.002 * substrate_area_mm2
    return base + per_die_bonding * n_dies + substrate


def chiplet_vs_monolithic_kg(total_area_mm2: float, node: ProcessNode,
                             n_chiplets: int = 4) -> Dict[str, float]:
    """Embodied carbon of one logical design built both ways.

    Yield improves with smaller dies (first-order Poisson defect model:
    yield ≈ exp(-D * A)); chiplets pay extra packaging but scrap less.
    """
    if total_area_mm2 <= 0 or n_chiplets < 1:
        raise ConfigurationError(
            "total_area_mm2 > 0 and n_chiplets >= 1 required"
        )
    import math
    base_yield = TYPICAL_YIELD[node]
    # Back out a defect density from the node-typical yield at 100 mm^2.
    defect_density = -math.log(base_yield) / 100.0

    def die_yield(area: float) -> float:
        return math.exp(-defect_density * area)

    mono = (total_area_mm2 * CARBON_PER_MM2_KG[node]
            / die_yield(total_area_mm2)
            + packaging_carbon_kg(1, total_area_mm2 * 1.5))
    chiplet_area = total_area_mm2 / n_chiplets
    chip = (n_chiplets * chiplet_area * CARBON_PER_MM2_KG[node]
            / die_yield(chiplet_area)
            + packaging_carbon_kg(n_chiplets, total_area_mm2 * 2.0))
    return {"monolithic_kg": mono, "chiplet_kg": chip}
