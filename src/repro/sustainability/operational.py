"""Operational (use-phase) carbon: energy times grid intensity.

The §2.7 edge-vs-cloud result (Patterson et al.) is, at its core, this
multiplication done honestly: cloud datacenters run efficient hardware
(high utilization, low PUE) on increasingly clean grids; edge devices run
less efficient silicon on whatever grid they are plugged into — so the
same training job emits *more* CO2 on-device.
"""

from __future__ import annotations

from typing import Dict

from repro.errors import ConfigurationError

#: gCO2e per kWh by grid (public-order, ~2023 values).
GRID_INTENSITY_G_PER_KWH: Dict[str, float] = {
    "world-average": 475.0,
    "us-average": 390.0,
    "eu-average": 280.0,
    "coal-heavy": 820.0,
    "hydro-nordic": 30.0,
    "cloud-lowcarbon": 80.0,  # PPA-backed hyperscale regions
    "solar-microgrid": 50.0,
}


def operational_carbon_kg(energy_kwh: float, grid: str,
                          pue: float = 1.0) -> float:
    """Use-phase carbon of ``energy_kwh`` on a named grid.

    Args:
        energy_kwh: Device-level (IT) energy.
        grid: Key into :data:`GRID_INTENSITY_G_PER_KWH`.
        pue: Power usage effectiveness of the hosting facility
            (datacenters ~1.1; edge devices 1.0 — no shared cooling).

    Returns:
        kgCO2e.
    """
    if energy_kwh < 0:
        raise ConfigurationError("energy_kwh must be >= 0")
    if grid not in GRID_INTENSITY_G_PER_KWH:
        raise ConfigurationError(
            f"unknown grid {grid!r}; choose from"
            f" {sorted(GRID_INTENSITY_G_PER_KWH)}"
        )
    if pue < 1.0:
        raise ConfigurationError(f"pue must be >= 1.0, got {pue}")
    return energy_kwh * pue * GRID_INTENSITY_G_PER_KWH[grid] / 1000.0


def training_carbon_kg(flops: float, efficiency_flops_per_j: float,
                       grid: str, pue: float = 1.0) -> float:
    """Carbon of a training job given hardware efficiency.

    Args:
        flops: Total training FLOPs.
        efficiency_flops_per_j: Achieved FLOPs per joule of the hardware
            (cloud accelerators: ~1e10-1e11; edge SoCs: ~1e9-1e10).
        grid: Grid key.
        pue: Facility PUE.
    """
    if flops < 0:
        raise ConfigurationError("flops must be >= 0")
    if efficiency_flops_per_j <= 0:
        raise ConfigurationError("efficiency must be > 0")
    energy_kwh = flops / efficiency_flops_per_j / 3.6e6
    return operational_carbon_kg(energy_kwh, grid, pue=pue)


def edge_vs_cloud_training(flops: float,
                           edge_efficiency: float = 5e9,
                           cloud_efficiency: float = 5e10,
                           edge_grid: str = "world-average",
                           cloud_grid: str = "cloud-lowcarbon",
                           cloud_pue: float = 1.1
                           ) -> Dict[str, float]:
    """The Patterson et al. comparison for one training job.

    Defaults encode the two compounding gaps the paper cites: ~10x
    hardware-efficiency advantage for cloud accelerators and a cleaner
    grid at hyperscale regions, partially offset by datacenter PUE.

    Returns:
        ``{"edge_kg": ..., "cloud_kg": ..., "ratio": edge/cloud}``.
    """
    edge = training_carbon_kg(flops, edge_efficiency, edge_grid, pue=1.0)
    cloud = training_carbon_kg(flops, cloud_efficiency, cloud_grid,
                               pue=cloud_pue)
    ratio = edge / cloud if cloud > 0 else float("inf")
    return {"edge_kg": edge, "cloud_kg": cloud, "ratio": ratio}
