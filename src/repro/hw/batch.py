"""Structure-of-arrays batch roofline pricing.

:meth:`~repro.hw.platform.AnalyticalPlatform.estimate` prices one
(platform, profile) pair per call; the cost of a 10k-candidate DSE sweep
is therefore dominated by interpreter overhead, not arithmetic — the
framework-level version of the scalar-vs-vectorized gap the paper's §2.5
demonstrates for motion planning (and that
:mod:`repro.kernels.planning.collision` demonstrates in-repo).

This module applies the same scalar→batch transformation to the pricing
model itself:

- :class:`PlatformSoA` — ``n`` :class:`~repro.hw.platform.PlatformConfig`
  instances transposed into columns (one contiguous array per field);
- :class:`ProfileSoA` — ``m`` :class:`~repro.core.profile.WorkloadProfile`
  instances, likewise;
- :func:`batch_estimate` — the whole ``(n, m)`` cost block in fused numpy
  expressions: Amdahl split, divergence derating, on/off-chip traffic
  selection, compute/memory overlap, and energy, all as array ops.

**Scalar-equivalence contract**: every expression mirrors the scalar
path in :class:`~repro.hw.platform.AnalyticalPlatform` operation for
operation (same operands, same association order), so results are
**bit-identical** to per-pair ``estimate()`` calls — IEEE-754 double
arithmetic is deterministic, and nothing here reorders it.  The contract
is enforced by ``tests/props/test_property_batch_pricing.py``.

The kernel is only valid for platforms that price *exactly* like
``AnalyticalPlatform`` — subclasses that override ``estimate`` /
``supports`` / the roofline hooks (ASIC mapping tables, FPGA
reconfiguration, contention wrappers) must stay on the scalar path;
:func:`is_soa_priceable` is the gate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

from repro.core.profile import (
    DIVERGENCE_DERATING,
    CostEstimate,
    WorkloadProfile,
)
from repro.engine.arena import BatchArena, Workspace
from repro.errors import ConfigurationError
from repro.hw.platform import AnalyticalPlatform, Platform, PlatformConfig
from repro.telemetry.profiling import get_alloc_meter

__all__ = [
    "BOUND_NAMES",
    "BatchCost",
    "PlatformSoA",
    "ProfileSoA",
    "batch_estimate",
    "is_soa_priceable",
]

#: Bound-code → name mapping for :attr:`BatchCost.bound` (codes are
#: array-friendly; names match ``CostEstimate.bound``).
BOUND_NAMES: Tuple[str, ...] = ("compute", "memory", "serial")
_BOUND_COMPUTE, _BOUND_MEMORY, _BOUND_SERIAL = 0, 1, 2

#: The pricing hooks a platform must inherit unchanged for the SoA
#: kernel to reproduce its estimates.
_PRICING_HOOKS: Tuple[Tuple[type, str], ...] = (
    (AnalyticalPlatform, "estimate"),
    (Platform, "supports"),
    (AnalyticalPlatform, "_divergence_derating"),
    (AnalyticalPlatform, "_effective_bandwidth"),
    (AnalyticalPlatform, "_traffic_energy_per_byte"),
)


#: Per-class verdict cache: the hook check is a pure function of the
#: class, and the fleet engine asks once per *rollout*, so population
#: sweeps would otherwise re-walk the hook list 100k+ times.
_PRICEABLE_CACHE: Dict[type, bool] = {}


def is_soa_priceable(platform: Platform) -> bool:
    """Whether :func:`batch_estimate` reproduces ``platform.estimate``.

    True exactly when the platform is an
    :class:`~repro.hw.platform.AnalyticalPlatform` that inherits every
    pricing hook unchanged (CPU/GPU catalog models, co-design roofline
    platforms); False for accelerators with mapping tables or custom
    roofline terms, which must be priced scalar.
    """
    cls = type(platform)
    verdict = _PRICEABLE_CACHE.get(cls)
    if verdict is None:
        verdict = _PRICEABLE_CACHE[cls] = (
            issubclass(cls, AnalyticalPlatform)
            and all(getattr(cls, name) is getattr(owner, name)
                    for owner, name in _PRICING_HOOKS))
    return verdict


def _column(items: Sequence, get: Callable) -> np.ndarray:
    return np.array([get(item) for item in items], dtype=float)


@dataclass(frozen=True)
class PlatformSoA:
    """``n`` platform configs as columns (SI units, float64).

    Field semantics match :class:`~repro.hw.platform.PlatformConfig`;
    the optional-with-default fields (``peak_int_ops``,
    ``energy_per_int_op``) are pre-resolved into ``int_throughput`` /
    ``int_energy`` exactly as the scalar properties resolve them.
    """

    names: Tuple[str, ...]
    scalar_flops: np.ndarray
    peak_flops: np.ndarray
    int_throughput: np.ndarray
    onchip_bytes: np.ndarray
    onchip_bw: np.ndarray
    offchip_bw: np.ndarray
    launch_overhead_s: np.ndarray
    energy_per_flop: np.ndarray
    int_energy: np.ndarray
    energy_per_byte_onchip: np.ndarray
    energy_per_byte_offchip: np.ndarray
    static_power_w: np.ndarray
    area_mm2: np.ndarray
    lockstep: np.ndarray  # bool

    def __len__(self) -> int:
        return len(self.names)

    @staticmethod
    def from_configs(configs: Sequence[PlatformConfig]) -> "PlatformSoA":
        """Transpose validated configs into columns."""
        return PlatformSoA(
            names=tuple(c.name for c in configs),
            scalar_flops=_column(configs, lambda c: c.scalar_flops),
            peak_flops=_column(configs, lambda c: c.peak_flops),
            int_throughput=_column(configs, lambda c: c.int_throughput),
            onchip_bytes=_column(configs, lambda c: c.onchip_bytes),
            onchip_bw=_column(configs, lambda c: c.onchip_bw),
            offchip_bw=_column(configs, lambda c: c.offchip_bw),
            launch_overhead_s=_column(
                configs, lambda c: c.launch_overhead_s),
            energy_per_flop=_column(
                configs, lambda c: c.energy_per_flop),
            int_energy=_column(configs, lambda c: c.int_energy),
            energy_per_byte_onchip=_column(
                configs, lambda c: c.energy_per_byte_onchip),
            energy_per_byte_offchip=_column(
                configs, lambda c: c.energy_per_byte_offchip),
            static_power_w=_column(configs, lambda c: c.static_power_w),
            area_mm2=_column(configs, lambda c: c.area_mm2),
            lockstep=np.array([c.lockstep for c in configs], dtype=bool),
        )

    @staticmethod
    def from_platforms(platforms: Sequence[Platform]) -> "PlatformSoA":
        """Encode platforms, refusing any the kernel cannot reproduce."""
        for platform in platforms:
            if not is_soa_priceable(platform):
                raise ConfigurationError(
                    f"platform {platform.name!r} ({type(platform).__name__})"
                    f" overrides analytical pricing and cannot be"
                    f" SoA-encoded; price it through the scalar path"
                )
        return PlatformSoA.from_configs([p.config for p in platforms])


@dataclass(frozen=True)
class ProfileSoA:
    """``m`` workload profiles as columns (float64).

    ``derating`` is the pre-resolved ``DIVERGENCE_DERATING`` value of
    each profile's divergence class; it only applies on lockstep rows
    (:func:`batch_estimate` masks it), mirroring the scalar hook.
    """

    names: Tuple[str, ...]
    flops: np.ndarray
    int_ops: np.ndarray
    total_bytes: np.ndarray
    working_set_bytes: np.ndarray
    parallel_fraction: np.ndarray
    derating: np.ndarray

    def __len__(self) -> int:
        return len(self.names)

    @property
    def total_ops(self) -> np.ndarray:
        return self.flops + self.int_ops

    @staticmethod
    def from_profiles(
        profiles: Sequence[WorkloadProfile],
    ) -> "ProfileSoA":
        """Transpose validated profiles into columns."""
        return ProfileSoA(
            names=tuple(p.name for p in profiles),
            flops=_column(profiles, lambda p: p.flops),
            int_ops=_column(profiles, lambda p: p.int_ops),
            total_bytes=_column(profiles, lambda p: p.total_bytes),
            working_set_bytes=_column(
                profiles, lambda p: p.working_set_bytes),
            parallel_fraction=_column(
                profiles, lambda p: p.parallel_fraction),
            derating=_column(
                profiles, lambda p: DIVERGENCE_DERATING[p.divergence]),
        )


@dataclass(frozen=True)
class BatchCost:
    """The priced ``(n_platforms, m_profiles)`` block.

    Every array has shape ``(n, m)``; entry ``[i, j]`` is bit-identical
    to ``platform_i.estimate(profile_j)``.  ``bound`` holds codes into
    :data:`BOUND_NAMES`.
    """

    platform_names: Tuple[str, ...]
    profile_names: Tuple[str, ...]
    latency_s: np.ndarray
    energy_j: np.ndarray
    power_w: np.ndarray
    bound: np.ndarray
    area_mm2: np.ndarray  # (n,) — per platform, as in the scalar path

    @property
    def shape(self) -> Tuple[int, int]:
        return self.latency_s.shape  # type: ignore[return-value]

    def estimate(self, i: int, j: int) -> CostEstimate:
        """Materialize one entry as a scalar :class:`CostEstimate`
        (plain Python floats, as the scalar path produces)."""
        return CostEstimate(
            latency_s=float(self.latency_s[i, j]),
            energy_j=float(self.energy_j[i, j]),
            power_w=float(self.power_w[i, j]),
            area_mm2=float(self.area_mm2[i]),
            platform=self.platform_names[i],
            bound=BOUND_NAMES[int(self.bound[i, j])],
        )


def batch_estimate(platforms: PlatformSoA,
                   profiles: ProfileSoA,
                   arena: Optional[BatchArena] = None) -> BatchCost:
    """Price every (platform, profile) pair in one fused pass.

    Each ufunc call below is the broadcast form of the matching line in
    :meth:`AnalyticalPlatform.estimate`, in the same association order,
    so every entry is bit-identical to the scalar result.  Platform
    columns broadcast down rows (``[:, None]``), profile columns across
    them (``[None, :]``).

    With ``arena`` set, every intermediate and output lands in reusable
    :class:`~repro.engine.arena.BatchArena` buffers instead of fresh
    allocations — same operations, same operand order, so still
    bit-identical (the views are *borrowed*: valid until the next
    kernel call on the same arena).  Selects are written as fill +
    masked :func:`numpy.copyto` (pure element selection, no
    arithmetic), which is value-identical to :func:`numpy.where` and
    never reads the undefined buffer contents.
    """
    ws = Workspace(arena, "hw.batch.")
    shape = (len(platforms), len(profiles))
    m = len(profiles)
    lockstep = platforms.lockstep[:, None]

    # derate = where(lockstep, derating, 1.0)
    derate = ws.out("derate", shape)
    derate.fill(1.0)
    np.copyto(derate, profiles.derating[None, :], where=lockstep)

    # serial_ops = (flops + int_ops) * (1 - parallel_fraction)
    total_ops = ws.out("total_ops", (m,))
    np.add(profiles.flops, profiles.int_ops, out=total_ops)
    serial_frac = ws.out("serial_frac", (m,))
    np.subtract(1.0, profiles.parallel_fraction, out=serial_frac)
    serial_ops = ws.out("serial_ops", (m,))
    np.multiply(total_ops, serial_frac, out=serial_ops)
    parallel_flops = ws.out("parallel_flops", (m,))
    np.multiply(profiles.flops, profiles.parallel_fraction,
                out=parallel_flops)
    parallel_int = ws.out("parallel_int", (m,))
    np.multiply(profiles.int_ops, profiles.parallel_fraction,
                out=parallel_int)

    t_serial = ws.out("t_serial", shape)
    np.divide(serial_ops[None, :], platforms.scalar_flops[:, None],
              out=t_serial)
    # t_parallel = pf/(peak*derate) + pi/(int_throughput*derate)
    denom = ws.out("denom", shape)
    term = ws.out("term", shape)
    np.multiply(platforms.peak_flops[:, None], derate, out=denom)
    t_parallel = ws.out("t_parallel", shape)
    np.divide(parallel_flops[None, :], denom, out=t_parallel)
    np.multiply(platforms.int_throughput[:, None], derate, out=denom)
    np.divide(parallel_int[None, :], denom, out=term)
    np.add(t_parallel, term, out=t_parallel)
    t_compute = ws.out("t_compute", shape)
    np.add(t_serial, t_parallel, out=t_compute)

    onchip = ws.out("onchip", shape, np.bool_)
    np.less_equal(profiles.working_set_bytes[None, :],
                  platforms.onchip_bytes[:, None], out=onchip)
    # bandwidth = where(onchip, onchip_bw, offchip_bw)
    bandwidth = ws.out("bandwidth", shape)
    np.copyto(bandwidth, platforms.offchip_bw[:, None])
    np.copyto(bandwidth, platforms.onchip_bw[:, None], where=onchip)
    t_memory = ws.out("t_memory", shape)
    np.divide(profiles.total_bytes[None, :], bandwidth, out=t_memory)

    busy = ws.out("busy", shape)
    np.maximum(t_compute, t_memory, out=busy)
    latency = ws.out("latency", shape)
    np.add(platforms.launch_overhead_s[:, None], busy, out=latency)

    traffic_energy = ws.out("traffic_energy", shape)
    np.copyto(traffic_energy, platforms.energy_per_byte_offchip[:, None])
    np.copyto(traffic_energy, platforms.energy_per_byte_onchip[:, None],
              where=onchip)
    # energy = ((flops*e_flop + int_ops*e_int) + bytes*traffic) + static*lat
    energy = ws.out("energy", shape)
    np.multiply(profiles.flops[None, :],
                platforms.energy_per_flop[:, None], out=energy)
    np.multiply(profiles.int_ops[None, :],
                platforms.int_energy[:, None], out=term)
    np.add(energy, term, out=energy)
    np.multiply(profiles.total_bytes[None, :], traffic_energy, out=term)
    np.add(energy, term, out=energy)
    np.multiply(platforms.static_power_w[:, None], latency, out=term)
    np.add(energy, term, out=energy)

    # bound = where(t_memory >= t_compute, MEMORY,
    #               where(t_serial > t_parallel, SERIAL, COMPUTE))
    mask = ws.out("mask", shape, np.bool_)
    bound = ws.out("bound", shape, np.int8)
    bound.fill(_BOUND_COMPUTE)
    np.greater(t_serial, t_parallel, out=mask)
    np.copyto(bound, np.int8(_BOUND_SERIAL), where=mask)
    np.greater_equal(t_memory, t_compute, out=mask)
    np.copyto(bound, np.int8(_BOUND_MEMORY), where=mask)

    # power = energy / latency where latency > 0, else static power.
    power = ws.out("power", shape)
    np.copyto(power, platforms.static_power_w[:, None])
    np.greater(latency, 0.0, out=mask)
    np.divide(energy, latency, out=power, where=mask)

    meter = get_alloc_meter()
    if meter.enabled:
        # The full working set of this pass: intermediates + outputs.
        # (Exact accounting; one guarded call per population, not per
        # candidate, so the disabled cost is a single branch.)
        meter.add("hw.batch.batch_estimate",
                  derate, serial_ops, parallel_flops, parallel_int,
                  t_serial, t_parallel, t_compute, onchip, bandwidth,
                  t_memory, busy, latency, traffic_energy, energy,
                  bound, power)

    return BatchCost(
        platform_names=platforms.names,
        profile_names=profiles.names,
        latency_s=latency,
        energy_j=energy,
        power_w=power,
        bound=bound,
        area_mm2=platforms.area_mm2,
    )
