"""Analytical hardware platform models.

Every platform consumes a :class:`~repro.core.profile.WorkloadProfile` and
prices it as a :class:`~repro.core.profile.CostEstimate` via a
roofline-style analytical model (peak compute vs. memory bandwidth, Amdahl
serial fraction, divergence derating on lockstep machines, per-invocation
launch overhead).  §2.5 of the paper insists that software, GPUs, and FPGAs
deserve first-class treatment next to ASICs — so all four are modeled with
the same contract and first-order honesty.

Absolute numbers are datasheet-order calibrations (see
:mod:`repro.hw.catalog`); experiments built on these models compare shapes
(orderings, ratios, crossovers), not silicon measurements.
"""

from repro.hw.asic import AsicAccelerator, AsicConfig
from repro.hw.batch import (
    BatchCost,
    PlatformSoA,
    ProfileSoA,
    batch_estimate,
    is_soa_priceable,
)
from repro.hw.catalog import (
    asic_gemm_engine,
    datacenter_gpu,
    desktop_cpu,
    embedded_cpu,
    embedded_gpu,
    midrange_fpga,
    uav_compute_tiers,
)
from repro.hw.contention import (
    ContendedPlatform,
    SharedMemorySystem,
    co_run,
)
from repro.hw.cpu import CpuConfig, CpuModel
from repro.hw.fpga import FpgaConfig, FpgaModel
from repro.hw.gpu import GpuConfig, GpuModel
from repro.hw.hls import (
    InfeasibleDesign,
    SynthesisReport,
    SynthesisSpec,
    synthesize_accelerator,
)
from repro.hw.mapping import HeterogeneousSoC, Interconnect, MappingPolicy
from repro.hw.memory import MemoryHierarchy, MemoryLevel
from repro.hw.platform import Platform, PlatformConfig
from repro.hw.roofline import RooflineModel
from repro.hw.systolic import SystolicArrayModel

__all__ = [
    "AsicAccelerator",
    "AsicConfig",
    "BatchCost",
    "ContendedPlatform",
    "CpuConfig",
    "InfeasibleDesign",
    "SharedMemorySystem",
    "SynthesisReport",
    "SynthesisSpec",
    "co_run",
    "synthesize_accelerator",
    "CpuModel",
    "FpgaConfig",
    "FpgaModel",
    "GpuConfig",
    "GpuModel",
    "HeterogeneousSoC",
    "Interconnect",
    "MappingPolicy",
    "MemoryHierarchy",
    "MemoryLevel",
    "Platform",
    "PlatformConfig",
    "PlatformSoA",
    "ProfileSoA",
    "RooflineModel",
    "SystolicArrayModel",
    "asic_gemm_engine",
    "batch_estimate",
    "datacenter_gpu",
    "desktop_cpu",
    "embedded_cpu",
    "embedded_gpu",
    "is_soa_priceable",
    "midrange_fpga",
    "uav_compute_tiers",
]
