"""A catalog of calibrated platform instances.

Numbers are datasheet-order calibrations of public device classes (an
ARM-class embedded CPU, a desktop CPU, Jetson-class and datacenter-class
GPUs, a midrange FPGA, a TPU-like GEMM engine).  They are intentionally
round: the experiments built on them compare *shapes* — orderings, ratios,
crossovers — never absolute silicon numbers (see DESIGN.md).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.hw.asic import AsicAccelerator, AsicConfig
from repro.hw.cpu import CpuConfig, CpuModel
from repro.hw.fpga import FpgaConfig, FpgaModel
from repro.hw.gpu import GpuConfig, GpuModel
from repro.hw.platform import Platform
from repro.spec.registry import PLATFORMS, TIERS


@PLATFORMS.register("embedded-cpu")
def embedded_cpu(name: str = "embedded-cpu") -> CpuModel:
    """Quad-core ARM-class embedded CPU with 128-bit SIMD (NEON-like)."""
    return CpuModel(CpuConfig(
        name=name,
        cores=4,
        frequency_hz=1.5e9,
        flops_per_cycle_scalar=2.0,
        simd_width=4,
        simd_efficiency=0.7,
        l2_bytes=2e6,
        dram_bw=12e9,
        onchip_bw=100e9,
        tdp_w=5.0,
        mass_kg=0.03,
    ))


@PLATFORMS.register("desktop-cpu")
def desktop_cpu(name: str = "desktop-cpu") -> CpuModel:
    """8-core desktop CPU with AVX-512-class SIMD."""
    return CpuModel(CpuConfig(
        name=name,
        cores=8,
        frequency_hz=3.5e9,
        flops_per_cycle_scalar=4.0,
        simd_width=16,
        simd_efficiency=0.65,
        l2_bytes=16e6,
        dram_bw=50e9,
        onchip_bw=500e9,
        tdp_w=95.0,
        mass_kg=0.5,
    ))


@PLATFORMS.register("embedded-gpu")
def embedded_gpu(name: str = "embedded-gpu") -> GpuModel:
    """Jetson-class embedded GPU."""
    return GpuModel(GpuConfig(
        name=name,
        sms=8,
        cores_per_sm=128,
        frequency_hz=1.0e9,
        l2_bytes=2e6,
        dram_bw=60e9,
        onchip_bw=800e9,
        launch_overhead_s=15e-6,
        tdp_w=25.0,
        mass_kg=0.25,
    ))


@PLATFORMS.register("datacenter-gpu")
def datacenter_gpu(name: str = "datacenter-gpu") -> GpuModel:
    """A100-class datacenter GPU."""
    return GpuModel(GpuConfig(
        name=name,
        sms=108,
        cores_per_sm=64,
        frequency_hz=1.4e9,
        l2_bytes=40e6,
        dram_bw=1.5e12,
        onchip_bw=10e12,
        launch_overhead_s=8e-6,
        tdp_w=300.0,
        mass_kg=1.5,
        occupancy=0.7,
    ))


@PLATFORMS.register("midrange-fpga")
def midrange_fpga(name: str = "midrange-fpga") -> FpgaModel:
    """Zynq-Ultrascale-class FPGA, fully programmable."""
    return FpgaModel(FpgaConfig(
        name=name,
        dsp_slices=2500,
        flops_per_dsp_per_cycle=0.5,
        fabric_frequency_hz=300e6,
        bram_bytes=4e6,
        dram_bw=20e9,
        onchip_bw=600e9,
        tdp_w=20.0,
        mass_kg=0.15,
    ))


@PLATFORMS.register("gemm-engine", programmable=False)
def asic_gemm_engine(name: str = "gemm-engine") -> AsicAccelerator:
    """TPU-like GEMM/convolution accelerator (edge-inference class)."""
    return AsicAccelerator(AsicConfig(
        name=name,
        supported_op_classes=frozenset({"gemm"}),
        peak_flops=4e12,
        onchip_bytes=8e6,
        onchip_bw=4e12,
        offchip_bw=30e9,
        energy_per_flop=1e-12,
        static_power_w=0.5,
        area_mm2=8.0,
        mass_kg=0.02,
    ))


@TIERS.register("uav-ladder")
def uav_compute_tiers() -> List[Tuple[str, Platform, float, float]]:
    """The onboard-compute ladder for the §2.4 mission experiment.

    Returns rows of ``(tier name, platform, mass_kg, tdp_w)``, ordered from
    weakest/lightest to strongest/heaviest — the sweep axis along which
    Krishnan et al. found that over-provisioning compute hurts total
    mission performance.  Mass/power include carrier board and cooling,
    which is why they exceed the bare-module numbers above.
    """
    micro = CpuModel(CpuConfig(
        name="tier0-microcontroller",
        cores=1, frequency_hz=400e6, flops_per_cycle_scalar=1.0,
        simd_width=1, simd_efficiency=1.0,
        l2_bytes=512e3, dram_bw=2e9, onchip_bw=8e9,
        tdp_w=0.5, mass_kg=0.01,
    ))
    embedded = CpuModel(CpuConfig(
        name="tier1-embedded-cpu",
        cores=4, frequency_hz=1.5e9, flops_per_cycle_scalar=2.0,
        simd_width=4, simd_efficiency=0.7,
        l2_bytes=2e6, dram_bw=12e9, onchip_bw=100e9,
        tdp_w=5.0, mass_kg=0.04,
    ))
    jetson = GpuModel(GpuConfig(
        name="tier2-embedded-gpu",
        sms=8, cores_per_sm=128, frequency_hz=1.0e9,
        l2_bytes=2e6, dram_bw=60e9, onchip_bw=800e9,
        launch_overhead_s=15e-6, tdp_w=25.0, mass_kg=0.3,
    ))
    orin = GpuModel(GpuConfig(
        name="tier3-highend-embedded-gpu",
        sms=16, cores_per_sm=128, frequency_hz=1.3e9,
        l2_bytes=4e6, dram_bw=200e9, onchip_bw=2e12,
        launch_overhead_s=12e-6, tdp_w=60.0, mass_kg=0.7,
    ))
    workstation = GpuModel(GpuConfig(
        name="tier4-workstation-gpu",
        sms=60, cores_per_sm=128, frequency_hz=1.6e9,
        l2_bytes=30e6, dram_bw=700e9, onchip_bw=6e12,
        launch_overhead_s=10e-6, tdp_w=250.0, mass_kg=1.8,
    ))
    return [
        ("tier0", micro, 0.02, 0.5),
        ("tier1", embedded, 0.08, 5.0),
        ("tier2", jetson, 0.45, 25.0),
        ("tier3", orin, 1.0, 60.0),
        ("tier4", workstation, 2.5, 250.0),
    ]
