"""Accelerator synthesis from a workload specification (§3.1).

A working miniature of the "agile design tools" opportunity: given a
measured :class:`~repro.core.profile.WorkloadProfile` and a target
rate, *derive* the fixed-function accelerator that meets the rate —
sizing peak throughput from the compute requirement, SRAM from the
working set, and charging area/power through first-order silicon
models.  Infeasible specifications (rate unreachable inside the area
budget, serial fraction too high) fail with the specific constraint
that broke, which is the "formal verification" half of the story: the
generated design provably meets the model's rate equation, or it is
not generated.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet

from repro.core.profile import DIVERGENCE_DERATING, WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw.asic import AsicAccelerator, AsicConfig

#: First-order silicon cost constants (7nm-class, datasheet order).
MM2_PER_TFLOPS = 1.2
MM2_PER_MB_SRAM = 0.8
BASE_CONTROL_MM2 = 0.5
WATTS_LEAKAGE_PER_MM2 = 0.02
SRAM_BW_PER_TFLOPS = 1e12  # bytes/s of on-chip bandwidth per TFLOP/s
ACCELERATOR_SCALAR_FLOPS = 1e9
LAUNCH_OVERHEAD_S = 2e-6
MAX_PEAK_FLOPS = 100e12  # sanity bound on a single engine


@dataclass(frozen=True)
class SynthesisSpec:
    """What the generated accelerator must achieve.

    Attributes:
        profile: The workload (one invocation) to sustain.
        target_rate_hz: Required invocation rate.
        area_budget_mm2: Maximum silicon area.
        offchip_bw: Off-chip bandwidth available to the engine.
        extra_op_classes: Additional classes to support (each costs
            generality, as in :class:`~repro.hw.asic.AsicConfig`).
        margin: Throughput safety margin (1.2 = 20% headroom).
    """

    profile: WorkloadProfile
    target_rate_hz: float
    area_budget_mm2: float = 50.0
    offchip_bw: float = 50e9
    extra_op_classes: FrozenSet[str] = frozenset()
    margin: float = 1.2

    def __post_init__(self) -> None:
        if self.target_rate_hz <= 0:
            raise ConfigurationError("target_rate_hz must be > 0")
        if self.area_budget_mm2 <= 0:
            raise ConfigurationError("area_budget_mm2 must be > 0")
        if self.margin < 1.0:
            raise ConfigurationError("margin must be >= 1.0")


@dataclass(frozen=True)
class SynthesisReport:
    """The generated design plus its sizing rationale.

    Attributes:
        accelerator: The generated platform model.
        peak_flops: Chosen peak throughput.
        sram_bytes: Chosen on-chip capacity.
        area_mm2: Total area (compute + SRAM + control).
        achieved_rate_hz: Verified sustained rate on the spec profile.
        binding_constraint: What sizing was driven by
            (``"compute" | "memory" | "working-set"``).
    """

    accelerator: AsicAccelerator
    peak_flops: float
    sram_bytes: float
    area_mm2: float
    achieved_rate_hz: float
    binding_constraint: str


class InfeasibleDesign(ConfigurationError):
    """The specification cannot be met; the message names the broken
    constraint."""


def synthesize_accelerator(spec: SynthesisSpec) -> SynthesisReport:
    """Generate a fixed-function accelerator meeting ``spec``.

    The sizing inverts the analytical platform model: the per-invocation
    budget ``T = 1 / (rate * margin)`` must cover launch overhead, the
    serial op chain, the parallel ops at the (derated) peak, and the
    memory time — so the required peak is::

        peak >= parallel_ops / (derate * (T - overhead - serial - mem))

    Raises:
        InfeasibleDesign: When the serial chain or memory time alone
            exceeds the budget, or the sized design busts the area
            budget, or the required peak is beyond single-engine reach.
    """
    profile = spec.profile
    budget_s = 1.0 / (spec.target_rate_hz * spec.margin)

    serial_ops = profile.total_ops * (1.0 - profile.parallel_fraction)
    serial_s = serial_ops / ACCELERATOR_SCALAR_FLOPS
    if LAUNCH_OVERHEAD_S + serial_s >= budget_s:
        raise InfeasibleDesign(
            f"serial chain needs {serial_s * 1e6:.1f} us"
            f" + {LAUNCH_OVERHEAD_S * 1e6:.1f} us overhead, but the"
            f" per-invocation budget is {budget_s * 1e6:.1f} us;"
            " no amount of parallel hardware helps (Amdahl)"
        )

    # Size SRAM to hold the working set when affordable; otherwise the
    # traffic goes off-chip and memory time may dominate.
    sram_bytes = min(profile.working_set_bytes, 64e6)
    sram_area = sram_bytes / 1e6 * MM2_PER_MB_SRAM
    fits_on_chip = sram_bytes >= profile.working_set_bytes
    binding = "compute"
    if fits_on_chip:
        memory_s = 0.0  # priced after peak is chosen (on-chip bw scales)
    else:
        memory_s = profile.total_bytes / spec.offchip_bw
        binding = "memory"
        if LAUNCH_OVERHEAD_S + serial_s + memory_s >= budget_s:
            raise InfeasibleDesign(
                f"off-chip traffic needs {memory_s * 1e3:.2f} ms"
                f" against a {budget_s * 1e3:.2f} ms budget at"
                f" {spec.offchip_bw / 1e9:.0f} GB/s; the working set"
                f" ({profile.working_set_bytes / 1e6:.1f} MB) does not"
                " fit affordable SRAM"
            )

    derate = DIVERGENCE_DERATING[profile.divergence]
    n_classes = 1 + len(spec.extra_op_classes
                        - {profile.op_class})
    generality = (1.0 - 0.15) ** (n_classes - 1)
    parallel_ops = profile.total_ops * profile.parallel_fraction
    compute_window = budget_s - LAUNCH_OVERHEAD_S - serial_s - memory_s
    required_effective = parallel_ops / (derate * compute_window)
    # effective peak = nameplate * generality; overlap of memory and
    # compute is not assumed (conservative: they were budgeted apart).
    nameplate_peak = required_effective / generality
    if nameplate_peak > MAX_PEAK_FLOPS:
        raise InfeasibleDesign(
            f"required peak {nameplate_peak / 1e12:.1f} TFLOP/s exceeds"
            f" the single-engine bound {MAX_PEAK_FLOPS / 1e12:.0f}"
        )

    compute_area = nameplate_peak / 1e12 * MM2_PER_TFLOPS
    area = BASE_CONTROL_MM2 + compute_area + sram_area
    if area > spec.area_budget_mm2:
        raise InfeasibleDesign(
            f"sized design needs {area:.1f} mm^2"
            f" ({compute_area:.1f} compute + {sram_area:.1f} SRAM)"
            f" > budget {spec.area_budget_mm2:.1f} mm^2"
        )

    config = AsicConfig(
        name=f"hls-{profile.op_class}-{spec.target_rate_hz:g}hz",
        supported_op_classes=frozenset({profile.op_class})
        | spec.extra_op_classes,
        peak_flops=nameplate_peak,
        onchip_bytes=sram_bytes,
        onchip_bw=max(SRAM_BW_PER_TFLOPS * nameplate_peak / 1e12,
                      4.0 * spec.offchip_bw),
        offchip_bw=spec.offchip_bw,
        energy_per_flop=1e-12,
        static_power_w=area * WATTS_LEAKAGE_PER_MM2,
        area_mm2=area,
        generality_penalty=0.15,
        launch_overhead_s=LAUNCH_OVERHEAD_S,
    )
    accelerator = AsicAccelerator(config)
    achieved = accelerator.sustained_rate_hz(profile)
    if achieved < spec.target_rate_hz:
        raise InfeasibleDesign(
            f"generated design verifies at {achieved:.1f} Hz"
            f" < target {spec.target_rate_hz:g} Hz: the memory system"
            " binds tighter than the additive sizing assumed"
        )
    return SynthesisReport(
        accelerator=accelerator,
        peak_flops=nameplate_peak,
        sram_bytes=sram_bytes,
        area_mm2=area,
        achieved_rate_hz=achieved,
        binding_constraint=binding,
    )
