"""GPU model: streaming multiprocessors, lockstep warps, launch overhead.

GPUs sit between CPUs and ASICs in the §2.5 spectrum: enormous parallel
throughput and bandwidth, but per-kernel launch overhead and heavy derating
on divergent control flow (tree search, RRT expansion).  Both effects are
first-class in the model because they decide which autonomy kernels a GPU
actually helps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.platform import AnalyticalPlatform, PlatformConfig


@dataclass(frozen=True)
class GpuConfig:
    """GPU description, lowered to a roofline.

    Attributes:
        name: Instance name.
        sms: Streaming-multiprocessor count.
        cores_per_sm: FP32 lanes per SM.
        frequency_hz: SM clock.
        l2_bytes: On-chip (L2 + shared memory) capacity.
        dram_bw: Device-memory bandwidth (B/s).
        onchip_bw: Aggregate shared-memory/L2 bandwidth (B/s).
        launch_overhead_s: Kernel-launch plus host-sync overhead.
        tdp_w: Board power.
        mass_kg: Module mass (board + heatsink) for vehicle budgeting.
        occupancy: Achieved fraction of peak on well-tuned regular kernels.
    """

    name: str
    sms: int = 16
    cores_per_sm: int = 128
    frequency_hz: float = 1.2e9
    l2_bytes: float = 4e6
    dram_bw: float = 200e9
    onchip_bw: float = 2e12
    launch_overhead_s: float = 10e-6
    tdp_w: float = 60.0
    mass_kg: float = 0.3
    occupancy: float = 0.6

    def __post_init__(self) -> None:
        if self.sms < 1 or self.cores_per_sm < 1:
            raise ConfigurationError(
                f"gpu {self.name!r}: sms and cores_per_sm must be >= 1"
            )
        if not 0.0 < self.occupancy <= 1.0:
            raise ConfigurationError(
                f"gpu {self.name!r}: occupancy must be in (0, 1]"
            )

    @property
    def peak_flops(self) -> float:
        """FMA-counted peak at achieved occupancy."""
        return (self.sms * self.cores_per_sm * self.frequency_hz * 2.0
                * self.occupancy)

    @property
    def scalar_flops(self) -> float:
        """Serial-path throughput: one lane, no latency hiding.

        GPUs are terrible serial machines; a single dependent-op chain runs
        at roughly clock / pipeline-depth.  We charge one lane at 1/4
        issue efficiency.
        """
        return self.frequency_hz * 0.25


_GPU_ENERGY_PER_FLOP = 5e-12
_GPU_ONCHIP_PJ_PER_BYTE = 1.5e-12
_GPU_OFFCHIP_PJ_PER_BYTE = 15e-12


class GpuModel(AnalyticalPlatform):
    """A GPU as an analytical roofline platform (lockstep, high overhead)."""

    def __init__(self, config: GpuConfig):
        self.gpu = config
        platform_config = PlatformConfig(
            name=config.name,
            peak_flops=config.peak_flops,
            peak_int_ops=config.peak_flops * 0.5,
            scalar_flops=config.scalar_flops,
            onchip_bytes=config.l2_bytes,
            onchip_bw=config.onchip_bw,
            offchip_bw=config.dram_bw,
            launch_overhead_s=config.launch_overhead_s,
            energy_per_flop=_GPU_ENERGY_PER_FLOP,
            energy_per_byte_onchip=_GPU_ONCHIP_PJ_PER_BYTE,
            energy_per_byte_offchip=_GPU_OFFCHIP_PJ_PER_BYTE,
            static_power_w=0.35 * config.tdp_w,
            lockstep=True,
            mass_kg=config.mass_kg,
            device_class="gpu",
        )
        super().__init__(platform_config)
