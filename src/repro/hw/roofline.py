"""The roofline model: attainable performance vs. arithmetic intensity.

Used both as an analysis tool (where do autonomy kernels sit relative to a
platform's ridge?) and as the validation target for ablation A2 (does the
closed-form roofline agree with the discrete-event simulator's measured
latencies?).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.profile import WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw.platform import Platform


@dataclass(frozen=True)
class RooflineModel:
    """A two-parameter roofline: peak ops/s and memory bandwidth.

    Attributes:
        name: Label for plots/tables.
        peak_ops: Peak compute throughput (op/s).
        bandwidth: Memory bandwidth (B/s).
    """

    name: str
    peak_ops: float
    bandwidth: float

    def __post_init__(self) -> None:
        if self.peak_ops <= 0 or self.bandwidth <= 0:
            raise ConfigurationError(
                f"roofline {self.name!r}: peak_ops and bandwidth must be > 0"
            )

    @property
    def ridge_intensity(self) -> float:
        """Ops/byte where the memory roof meets the compute roof."""
        return self.peak_ops / self.bandwidth

    def attainable_ops(self, intensity: float) -> float:
        """Attainable throughput (op/s) at the given arithmetic intensity."""
        if intensity < 0:
            raise ConfigurationError(
                f"arithmetic intensity must be >= 0, got {intensity}"
            )
        return min(self.peak_ops, self.bandwidth * intensity)

    def is_memory_bound(self, intensity: float) -> bool:
        return intensity < self.ridge_intensity

    def latency_s(self, profile: WorkloadProfile) -> float:
        """Closed-form execution time of one profile invocation."""
        if profile.total_ops == 0:
            return profile.total_bytes / self.bandwidth
        rate = self.attainable_ops(profile.arithmetic_intensity)
        if math.isinf(profile.arithmetic_intensity):
            rate = self.peak_ops
        return profile.total_ops / rate

    def curve(
        self, intensities: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """(intensity, attainable op/s) series for plotting."""
        return [(x, self.attainable_ops(x)) for x in intensities]

    @staticmethod
    def from_platform(platform: Platform,
                      offchip: bool = True) -> "RooflineModel":
        """Derive the roofline implied by a platform model's config."""
        cfg = platform.config
        bandwidth = cfg.offchip_bw if offchip else cfg.onchip_bw
        return RooflineModel(
            name=f"{cfg.name}-roofline",
            peak_ops=cfg.peak_flops,
            bandwidth=bandwidth,
        )


def place_kernels(
    roofline: RooflineModel, profiles: Sequence[WorkloadProfile]
) -> List[Tuple[str, float, float, str]]:
    """Place kernels on a roofline.

    Returns:
        One row per profile:
        ``(name, intensity, attainable op/s, "memory"|"compute")``.
    """
    rows: List[Tuple[str, float, float, str]] = []
    for profile in profiles:
        intensity = profile.arithmetic_intensity
        if math.isinf(intensity):
            rows.append((profile.name, intensity, roofline.peak_ops,
                         "compute"))
            continue
        bound = "memory" if roofline.is_memory_bound(intensity) \
            else "compute"
        rows.append((profile.name, intensity,
                     roofline.attainable_ops(intensity), bound))
    return rows
