"""The platform base model: roofline pricing of workload profiles.

The model is deliberately first-order and shared by every platform kind so
cross-platform comparisons stay apples-to-apples:

- compute time = serial part (Amdahl) + parallel part at peak throughput,
  derated for control-flow divergence on lockstep machines;
- memory time = traffic / bandwidth, where traffic is served on-chip when
  the working set fits and off-chip otherwise;
- latency = launch overhead + max(compute time, memory time)   (perfect
  overlap of compute and memory, the optimistic roofline assumption);
- energy = per-op dynamic energy + per-byte traffic energy + static power
  over the latency.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.core.profile import (
    DIVERGENCE_DERATING,
    CostEstimate,
    WorkloadProfile,
)
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PlatformConfig:
    """Parameters shared by all platform models.  SI units.

    Attributes:
        name: Instance name (e.g. ``"jetson-class-gpu"``).
        peak_flops: Peak parallel floating-point throughput (FLOP/s).
        peak_int_ops: Peak integer-op throughput; defaults to ``peak_flops``.
        scalar_flops: Serial-path throughput used for the Amdahl serial
            fraction (one core, no SIMD).
        onchip_bytes: On-chip memory capacity (SRAM/caches).
        onchip_bw: On-chip memory bandwidth (B/s).
        offchip_bw: Off-chip (DRAM) bandwidth (B/s).
        launch_overhead_s: Fixed per-invocation cost (kernel launch, DMA
            setup, syscall).
        energy_per_flop: Dynamic energy per FLOP (J).
        energy_per_int_op: Dynamic energy per integer op (J); defaults to
            half of ``energy_per_flop``.
        energy_per_byte_onchip: Traffic energy when served on-chip (J/B).
        energy_per_byte_offchip: Traffic energy when served off-chip (J/B).
        static_power_w: Leakage + always-on power (W).
        lockstep: Whether the parallel datapath executes in lockstep
            (SIMT/systolic) and therefore suffers divergence derating.
        area_mm2: Silicon area of the compute unit (0 = not modeled).
        mass_kg: Mass the device adds to a vehicle (module + heatsink).
        device_class: ``"cpu" | "gpu" | "fpga" | "asic"`` — used by the
            advisor and the catalog.
    """

    name: str
    peak_flops: float = 1e9
    peak_int_ops: Optional[float] = None
    scalar_flops: float = 1e9
    onchip_bytes: float = 1e6
    onchip_bw: float = 100e9
    offchip_bw: float = 10e9
    launch_overhead_s: float = 0.0
    energy_per_flop: float = 10e-12
    energy_per_int_op: Optional[float] = None
    energy_per_byte_onchip: float = 1e-12
    energy_per_byte_offchip: float = 20e-12
    static_power_w: float = 1.0
    lockstep: bool = False
    area_mm2: float = 0.0
    mass_kg: float = 0.0
    device_class: str = "cpu"

    def __post_init__(self) -> None:
        for attr in ("peak_flops", "scalar_flops", "onchip_bw", "offchip_bw"):
            if getattr(self, attr) <= 0:
                raise ConfigurationError(
                    f"platform {self.name!r}: {attr} must be > 0"
                )
        for attr in ("onchip_bytes", "launch_overhead_s", "energy_per_flop",
                     "energy_per_byte_onchip", "energy_per_byte_offchip",
                     "static_power_w", "area_mm2", "mass_kg"):
            if getattr(self, attr) < 0:
                raise ConfigurationError(
                    f"platform {self.name!r}: {attr} must be >= 0"
                )

    @property
    def int_throughput(self) -> float:
        return self.peak_int_ops if self.peak_int_ops is not None \
            else self.peak_flops

    @property
    def int_energy(self) -> float:
        return self.energy_per_int_op if self.energy_per_int_op is not None \
            else 0.5 * self.energy_per_flop


class Platform(abc.ABC):
    """Abstract platform: prices profiles into cost estimates."""

    def __init__(self, config: PlatformConfig):
        self.config = config

    @property
    def name(self) -> str:
        return self.config.name

    @property
    def device_class(self) -> str:
        return self.config.device_class

    @abc.abstractmethod
    def estimate(self, profile: WorkloadProfile) -> CostEstimate:
        """Price one invocation of ``profile`` on this platform."""

    def supports(self, profile: WorkloadProfile) -> bool:
        """Whether this platform can run the profile at all.

        Programmable platforms run anything; fixed-function accelerators
        override this with their mapping table.
        """
        return True

    def sustained_rate_hz(self, profile: WorkloadProfile) -> float:
        """Back-to-back invocation rate (1 / latency)."""
        return self.estimate(profile).throughput_hz()

    def _fingerprint_extra(self) -> Dict[str, Any]:
        """Model state beyond :class:`PlatformConfig` that changes
        estimates or :meth:`supports` (overridden by accelerators with
        mapping tables)."""
        return {}

    def fingerprint_spec(self) -> Dict[str, Any]:
        """Everything that determines this platform's pricing behavior,
        for :func:`repro.engine.fingerprint.fingerprint`.

        Two platforms with equal specs are interchangeable to the
        evaluation engine: cached results for one are valid for the
        other, even across process boundaries.
        """
        return {"kind": type(self).__name__, "config": self.config,
                **self._fingerprint_extra()}

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.config.name!r})"


class AnalyticalPlatform(Platform):
    """Shared roofline implementation used by all concrete platforms."""

    def _divergence_derating(self, profile: WorkloadProfile) -> float:
        if not self.config.lockstep:
            return 1.0
        return DIVERGENCE_DERATING[profile.divergence]

    def _effective_bandwidth(self, profile: WorkloadProfile) -> float:
        if profile.working_set_bytes <= self.config.onchip_bytes:
            return self.config.onchip_bw
        return self.config.offchip_bw

    def _traffic_energy_per_byte(self, profile: WorkloadProfile) -> float:
        if profile.working_set_bytes <= self.config.onchip_bytes:
            return self.config.energy_per_byte_onchip
        return self.config.energy_per_byte_offchip

    def estimate(self, profile: WorkloadProfile) -> CostEstimate:
        cfg = self.config
        derate = self._divergence_derating(profile)
        serial_ops = profile.total_ops * (1.0 - profile.parallel_fraction)
        parallel_flops = profile.flops * profile.parallel_fraction
        parallel_int = profile.int_ops * profile.parallel_fraction

        t_serial = serial_ops / cfg.scalar_flops
        t_parallel = (parallel_flops / (cfg.peak_flops * derate)
                      + parallel_int / (cfg.int_throughput * derate))
        t_compute = t_serial + t_parallel

        bandwidth = self._effective_bandwidth(profile)
        t_memory = profile.total_bytes / bandwidth

        busy = max(t_compute, t_memory)
        latency = cfg.launch_overhead_s + busy

        energy = (profile.flops * cfg.energy_per_flop
                  + profile.int_ops * cfg.int_energy
                  + profile.total_bytes * self._traffic_energy_per_byte(profile)
                  + cfg.static_power_w * latency)

        if t_memory >= t_compute:
            bound = "memory"
        elif t_serial > t_parallel:
            bound = "serial"
        else:
            bound = "compute"

        power = energy / latency if latency > 0 else cfg.static_power_w
        return CostEstimate(
            latency_s=latency,
            energy_j=energy,
            power_w=power,
            area_mm2=cfg.area_mm2,
            platform=cfg.name,
            bound=bound,
        )
