"""Cycle-accurate-in-shape systolic array timing for GEMM-class kernels.

The roofline prices *work*; for GEMM engines (TPU-style) the dominant
second-order effect is *utilization*: tiles that do not fill the array
waste cycles.  This model computes exact tile counts and fill/drain
overheads for an output-stationary ``rows x cols`` MAC array, so the E2/E3
experiments can show an accelerator looking great at its native tile size
and mediocre off it — the overfitting §2.3 warns about.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class SystolicArrayModel:
    """Output-stationary systolic array executing ``C[MxN] = A[MxK] B[KxN]``.

    Attributes:
        rows: PE rows (maps to M tiles).
        cols: PE columns (maps to N tiles).
        frequency_hz: Array clock.
        macs_per_pe_per_cycle: Usually 1.
    """

    rows: int = 128
    cols: int = 128
    frequency_hz: float = 1e9
    macs_per_pe_per_cycle: int = 1

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ConfigurationError("systolic array needs rows, cols >= 1")
        if self.frequency_hz <= 0:
            raise ConfigurationError("systolic frequency must be > 0")

    @property
    def peak_macs_per_s(self) -> float:
        return (self.rows * self.cols * self.macs_per_pe_per_cycle
                * self.frequency_hz)

    @property
    def peak_flops(self) -> float:
        """MACs counted as 2 FLOPs."""
        return 2.0 * self.peak_macs_per_s

    def gemm_cycles(self, m: int, n: int, k: int) -> int:
        """Cycles to compute an ``m x k @ k x n`` product.

        Each ``rows x cols`` output tile takes ``k`` accumulation cycles
        plus ``rows + cols - 2`` fill/drain cycles; tiles are processed
        back-to-back (no inter-tile overlap — conservative).
        """
        if min(m, n, k) < 1:
            raise ConfigurationError(
                f"gemm dims must be >= 1, got ({m}, {n}, {k})"
            )
        m_tiles = math.ceil(m / self.rows)
        n_tiles = math.ceil(n / self.cols)
        per_tile = k + self.rows + self.cols - 2
        return m_tiles * n_tiles * per_tile

    def gemm_latency_s(self, m: int, n: int, k: int) -> float:
        return self.gemm_cycles(m, n, k) / self.frequency_hz

    def utilization(self, m: int, n: int, k: int) -> float:
        """Useful MACs / issued PE-cycles, in (0, 1].

        Full for multiples of the array shape with large ``k``; collapses
        for skinny matrices — the shape-overfitting signal.
        """
        useful_macs = float(m) * n * k
        issued = (self.gemm_cycles(m, n, k) * self.rows * self.cols
                  * self.macs_per_pe_per_cycle)
        return useful_macs / issued

    def effective_flops(self, m: int, n: int, k: int) -> float:
        """Achieved FLOP/s on this problem shape."""
        return 2.0 * m * n * k / self.gemm_latency_s(m, n, k)


def conv2d_as_gemm(batch: int, in_channels: int, out_channels: int,
                   height: int, width: int, kernel: int,
                   stride: int = 1) -> tuple:
    """Lower a convolution to im2col GEMM dimensions ``(M, N, K)``.

    ``M = out_channels``, ``N = batch * out_h * out_w``,
    ``K = in_channels * kernel^2`` — the standard mapping used by GEMM
    engines and by :mod:`repro.kernels.ml`.
    """
    if stride < 1 or kernel < 1:
        raise ConfigurationError("conv2d: kernel and stride must be >= 1")
    out_h = (height - kernel) // stride + 1
    out_w = (width - kernel) // stride + 1
    if out_h < 1 or out_w < 1:
        raise ConfigurationError(
            f"conv2d: kernel {kernel} does not fit input {height}x{width}"
        )
    m = out_channels
    n = batch * out_h * out_w
    k = in_channels * kernel * kernel
    return m, n, k
