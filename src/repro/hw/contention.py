"""Shared-resource contention: accelerators are not free (§2.4).

An accelerator dropped into an SoC shares the off-chip memory system
with everything else.  This module models that sharing explicitly:

- :class:`SharedMemorySystem` — a bandwidth pool with proportional
  (weighted fair) allocation and an efficiency loss under contention
  (row-buffer interference, scheduling overhead);
- :class:`ContendedPlatform` — wraps any platform so its estimates are
  priced at its *allocated* share of bandwidth instead of the full pipe.

The A5 ablation uses these to show a paper-faithful effect: adding an
accelerator speeds up its own kernel while pushing a co-resident CPU
task over its deadline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.profile import CostEstimate, WorkloadProfile
from repro.errors import ConfigurationError
from repro.hw.platform import Platform, PlatformConfig, AnalyticalPlatform


@dataclass(frozen=True)
class SharedMemorySystem:
    """A shared off-chip bandwidth pool.

    Attributes:
        total_bandwidth: Aggregate DRAM bandwidth (B/s).
        contention_efficiency: Fraction of the pool actually deliverable
            when more than one client is active (bank conflicts,
            scheduler overhead); 1.0 = ideal.
    """

    total_bandwidth: float = 25e9
    contention_efficiency: float = 0.85

    def __post_init__(self) -> None:
        if self.total_bandwidth <= 0:
            raise ConfigurationError("total_bandwidth must be > 0")
        if not 0.0 < self.contention_efficiency <= 1.0:
            raise ConfigurationError(
                "contention_efficiency must be in (0, 1]"
            )

    def allocate(self, demands: Dict[str, float]
                 ) -> Dict[str, float]:
        """Split the pool across clients by demanded bandwidth.

        Clients demanding less than their fair share keep their demand;
        the surplus is divided among the rest proportionally (max-min
        fairness, one refinement pass per client — exact for the small
        client counts SoCs have).

        Args:
            demands: client name -> demanded bandwidth (B/s).

        Returns:
            client name -> granted bandwidth.  Grants sum to at most
            the (efficiency-derated, when contended) pool.
        """
        if not demands:
            return {}
        if any(d < 0 for d in demands.values()):
            raise ConfigurationError("demands must be >= 0")
        active = {k: v for k, v in demands.items() if v > 0}
        idle = {k: 0.0 for k in demands if k not in active}
        if not active:
            return idle
        pool = self.total_bandwidth
        if len(active) > 1:
            pool *= self.contention_efficiency

        grants: Dict[str, float] = {}
        remaining = pool
        pending = dict(active)
        # Max-min fairness: satisfy the smallest demands first.
        while pending:
            fair = remaining / len(pending)
            satisfied = {k: v for k, v in pending.items() if v <= fair}
            if not satisfied:
                for name in pending:
                    grants[name] = fair
                remaining = 0.0
                break
            for name, demand in satisfied.items():
                grants[name] = demand
                remaining -= demand
                del pending[name]
        grants.update(idle)
        return grants


class ContendedPlatform(Platform):
    """A platform whose off-chip bandwidth is externally constrained.

    Wraps a base platform and re-prices profiles with the granted
    bandwidth substituted for the config's ``offchip_bw``.
    """

    def __init__(self, base: Platform, granted_offchip_bw: float):
        if granted_offchip_bw <= 0:
            raise ConfigurationError(
                "granted_offchip_bw must be > 0"
            )
        cfg = base.config
        constrained = PlatformConfig(
            name=f"{cfg.name}@{granted_offchip_bw / 1e9:.1f}GBps",
            peak_flops=cfg.peak_flops,
            peak_int_ops=cfg.peak_int_ops,
            scalar_flops=cfg.scalar_flops,
            onchip_bytes=cfg.onchip_bytes,
            onchip_bw=cfg.onchip_bw,
            offchip_bw=min(cfg.offchip_bw, granted_offchip_bw),
            launch_overhead_s=cfg.launch_overhead_s,
            energy_per_flop=cfg.energy_per_flop,
            energy_per_int_op=cfg.energy_per_int_op,
            energy_per_byte_onchip=cfg.energy_per_byte_onchip,
            energy_per_byte_offchip=cfg.energy_per_byte_offchip,
            static_power_w=cfg.static_power_w,
            lockstep=cfg.lockstep,
            area_mm2=cfg.area_mm2,
            mass_kg=cfg.mass_kg,
            device_class=cfg.device_class,
        )
        super().__init__(constrained)
        self._base = base
        self._shadow = AnalyticalPlatform(constrained)

    def supports(self, profile: WorkloadProfile) -> bool:
        return self._base.supports(profile)

    def estimate(self, profile: WorkloadProfile) -> CostEstimate:
        if not self._base.supports(profile):
            return self._base.estimate(profile)  # raises MappingError
        return self._shadow.estimate(profile)


def bandwidth_demand(platform: Platform, profile: WorkloadProfile,
                     rate_hz: float) -> float:
    """Instantaneous off-chip bandwidth (B/s) a client consumes while
    its kernel executes.

    A streaming kernel saturates its platform's memory pipe for the
    duration of each invocation, so the *contention-relevant* demand is
    the platform's native off-chip bandwidth — not the rate-averaged
    traffic (which understates interference whenever invocations
    overlap).  Zero when the working set stays on-chip, or when the
    client is idle (``rate_hz == 0``).
    """
    if rate_hz < 0:
        raise ConfigurationError("rate_hz must be >= 0")
    if rate_hz == 0:
        return 0.0
    if profile.working_set_bytes <= platform.config.onchip_bytes:
        return 0.0
    return platform.config.offchip_bw


def co_run(memory: SharedMemorySystem,
           clients: List[Tuple[str, Platform, WorkloadProfile, float]],
           ) -> Dict[str, CostEstimate]:
    """Price several periodic workloads sharing one memory system.

    Args:
        memory: The shared pool.
        clients: ``(name, platform, profile, rate_hz)`` tuples.

    Returns:
        name -> cost estimate under the granted bandwidth.  Clients
        whose traffic stays on-chip are unaffected by contention.
    """
    names = [name for name, *_ in clients]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate client names: {names}")
    demands = {
        name: bandwidth_demand(platform, profile, rate_hz)
        for name, platform, profile, rate_hz in clients
    }
    grants = memory.allocate(demands)
    estimates: Dict[str, CostEstimate] = {}
    for name, platform, profile, rate_hz in clients:
        granted = grants[name]
        if granted <= 0:
            estimates[name] = platform.estimate(profile)
        else:
            estimates[name] = ContendedPlatform(
                platform, granted
            ).estimate(profile)
    return estimates
