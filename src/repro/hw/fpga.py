"""FPGA model: resource-budgeted spatial datapaths at modest clocks.

FPGAs trade clock frequency for spatial parallelism and get efficiency
between GPUs and ASICs.  The model derives peak throughput from a DSP-slice
budget: each mapped operation class consumes DSPs per parallel lane, and
the synthesized design clocks at a fabric frequency well below ASIC speeds.
Reconfiguration (bitstream load) is modeled so that designs which juggle
many kernels pay for context switches — a real deployment effect §2.5's
"flexible accelerators are still accelerators" framing cares about.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Optional

from repro.core.profile import CostEstimate, WorkloadProfile
from repro.errors import ConfigurationError, MappingError
from repro.hw.platform import AnalyticalPlatform, PlatformConfig


@dataclass(frozen=True)
class FpgaConfig:
    """FPGA description, lowered to a roofline.

    Attributes:
        name: Instance name.
        dsp_slices: DSP-slice budget.
        flops_per_dsp_per_cycle: FP throughput per DSP (with LUT support
            logic); < 1 for double-pumped FP32 implementations.
        fabric_frequency_hz: Achievable fabric clock.
        bram_bytes: On-chip block-RAM capacity.
        dram_bw: Off-chip bandwidth.
        onchip_bw: Aggregate BRAM bandwidth.
        reconfiguration_s: Full-bitstream reconfiguration time, charged
            when switching between mapped kernels (see
            :meth:`FpgaModel.estimate_with_reconfig`).
        supported_op_classes: Op classes with synthesized datapaths;
            ``None`` means fully programmable (anything maps, at generic
            efficiency).
        tdp_w: Board power.
        mass_kg: Module mass.
    """

    name: str
    dsp_slices: int = 2000
    flops_per_dsp_per_cycle: float = 0.5
    fabric_frequency_hz: float = 250e6
    bram_bytes: float = 4e6
    dram_bw: float = 20e9
    onchip_bw: float = 500e9
    reconfiguration_s: float = 50e-3
    supported_op_classes: Optional[FrozenSet[str]] = None
    tdp_w: float = 20.0
    mass_kg: float = 0.15

    def __post_init__(self) -> None:
        if self.dsp_slices < 1:
            raise ConfigurationError(
                f"fpga {self.name!r}: dsp_slices must be >= 1"
            )
        if self.fabric_frequency_hz <= 0:
            raise ConfigurationError(
                f"fpga {self.name!r}: fabric_frequency_hz must be > 0"
            )

    @property
    def peak_flops(self) -> float:
        return (self.dsp_slices * self.flops_per_dsp_per_cycle
                * self.fabric_frequency_hz)


_FPGA_ENERGY_PER_FLOP = 8e-12
_FPGA_ONCHIP_PJ_PER_BYTE = 1.2e-12
_FPGA_OFFCHIP_PJ_PER_BYTE = 18e-12


class FpgaModel(AnalyticalPlatform):
    """An FPGA as an analytical platform with optional kernel mapping.

    When ``supported_op_classes`` is set, only those classes run at the
    synthesized datapath's full rate; other classes either fail
    :meth:`supports` (strict mode) or run on a soft-core fallback at 1/50
    of peak — mirroring how real deployments fall back to a MicroBlaze or
    the host.
    """

    SOFTCORE_DERATE = 0.02

    def __init__(self, config: FpgaConfig, strict: bool = False):
        self.fpga = config
        self.strict = strict
        platform_config = PlatformConfig(
            name=config.name,
            peak_flops=config.peak_flops,
            peak_int_ops=config.peak_flops * 2.0,  # int datapaths are cheap
            scalar_flops=config.fabric_frequency_hz,  # pipelined scalar path
            onchip_bytes=config.bram_bytes,
            onchip_bw=config.onchip_bw,
            offchip_bw=config.dram_bw,
            launch_overhead_s=5e-6,
            energy_per_flop=_FPGA_ENERGY_PER_FLOP,
            energy_per_byte_onchip=_FPGA_ONCHIP_PJ_PER_BYTE,
            energy_per_byte_offchip=_FPGA_OFFCHIP_PJ_PER_BYTE,
            static_power_w=0.4 * config.tdp_w,
            lockstep=True,
            mass_kg=config.mass_kg,
            device_class="fpga",
        )
        super().__init__(platform_config)
        self._configured_for: Optional[str] = None

    def _mapped(self, profile: WorkloadProfile) -> bool:
        classes = self.fpga.supported_op_classes
        return classes is None or profile.op_class in classes

    def supports(self, profile: WorkloadProfile) -> bool:
        return self._mapped(profile) or not self.strict

    def _fingerprint_extra(self) -> dict:
        # _configured_for is transient run state, not part of the spec.
        return {"fpga": self.fpga, "strict": self.strict}

    def estimate(self, profile: WorkloadProfile) -> CostEstimate:
        if self._mapped(profile):
            return super().estimate(profile)
        if self.strict:
            raise MappingError(
                f"fpga {self.name!r} has no datapath for op class"
                f" {profile.op_class!r} (supported:"
                f" {sorted(self.fpga.supported_op_classes or [])})"
            )
        # Soft-core fallback: run at a small fraction of peak.
        slow = profile.scaled(1.0 / self.SOFTCORE_DERATE)
        estimate = super().estimate(slow)
        # Energy should reflect the *original* op count (the soft core is
        # slow, not op-hungry) plus static power over the longer latency.
        dynamic = (profile.flops * self.config.energy_per_flop
                   + profile.int_ops * self.config.int_energy
                   + profile.total_bytes
                   * self._traffic_energy_per_byte(profile))
        energy = dynamic + self.config.static_power_w * estimate.latency_s
        return CostEstimate(
            latency_s=estimate.latency_s,
            energy_j=energy,
            power_w=energy / estimate.latency_s if estimate.latency_s else 0.0,
            area_mm2=estimate.area_mm2,
            platform=self.name,
            bound=estimate.bound,
        )

    def estimate_with_reconfig(
        self, profile: WorkloadProfile
    ) -> CostEstimate:
        """Like :meth:`estimate`, charging reconfiguration on a kernel switch.

        Tracks the last op class run; switching classes pays the bitstream
        load.  Call sites that interleave kernels see the real cost of FPGA
        "flexibility".
        """
        base = self.estimate(profile)
        if self._configured_for not in (None, profile.op_class):
            extra = self.fpga.reconfiguration_s
            base = CostEstimate(
                latency_s=base.latency_s + extra,
                energy_j=base.energy_j + self.config.static_power_w * extra,
                power_w=base.power_w,
                area_mm2=base.area_mm2,
                platform=base.platform,
                bound=base.bound,
            )
        self._configured_for = profile.op_class
        return base
