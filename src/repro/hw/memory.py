"""Multi-level memory hierarchy model.

The platform roofline uses a two-level (on-chip / off-chip) shortcut; this
module provides the full hierarchy for studies that need it — e.g. the
§2.2 argument that TOPS/W without off-chip-bandwidth accounting misleads:
:meth:`MemoryHierarchy.traffic_split` shows exactly how much of a kernel's
traffic spills to DRAM as working sets grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.core.profile import WorkloadProfile
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class MemoryLevel:
    """One level of the hierarchy.

    Attributes:
        name: Level name (``"L1"``, ``"L2"``, ``"DRAM"``).
        capacity_bytes: Capacity; the last level should be effectively
            unbounded (use ``float("inf")``).
        bandwidth: Sustainable bandwidth (B/s).
        energy_per_byte: Access energy (J/B).
        latency_s: Access latency for a cold reference.
    """

    name: str
    capacity_bytes: float
    bandwidth: float
    energy_per_byte: float
    latency_s: float = 0.0

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError(
                f"memory level {self.name!r}: bandwidth must be > 0"
            )
        if self.capacity_bytes <= 0:
            raise ConfigurationError(
                f"memory level {self.name!r}: capacity must be > 0"
            )


class MemoryHierarchy:
    """An inclusive hierarchy with a working-set-based traffic model.

    The traffic model is the standard first-order one: a working set that
    fits in level *i* is served entirely by level *i*; a larger working set
    overflows to the next level, and the overflowing fraction of traffic is
    charged there.  This captures the capacity cliff that dominates real
    accelerator behavior without simulating a cache.
    """

    def __init__(self, levels: Sequence[MemoryLevel]):
        if not levels:
            raise ConfigurationError("hierarchy needs at least one level")
        for upper, lower in zip(levels, levels[1:]):
            if lower.capacity_bytes < upper.capacity_bytes:
                raise ConfigurationError(
                    f"levels must have non-decreasing capacity:"
                    f" {lower.name} < {upper.name}"
                )
        self.levels: Tuple[MemoryLevel, ...] = tuple(levels)

    def serving_level(self, working_set_bytes: float) -> MemoryLevel:
        """The innermost level whose capacity holds the working set."""
        for level in self.levels:
            if working_set_bytes <= level.capacity_bytes:
                return level
        return self.levels[-1]

    def traffic_split(
        self, profile: WorkloadProfile
    ) -> Dict[str, float]:
        """Bytes served per level for one invocation.

        A working set that exceeds level *i* sends the overflow fraction
        ``1 - capacity_i / working_set`` of the traffic past level *i*.
        """
        split: Dict[str, float] = {}
        remaining = profile.total_bytes
        ws = profile.working_set_bytes
        for level in self.levels[:-1]:
            if ws <= level.capacity_bytes:
                split[level.name] = remaining
                remaining = 0.0
            else:
                hit_fraction = level.capacity_bytes / ws
                served = remaining * hit_fraction
                split[level.name] = served
                remaining -= served
        split[self.levels[-1].name] = remaining
        return split

    def access_time_s(self, profile: WorkloadProfile) -> float:
        """Total memory time under the traffic split (bandwidth-limited)."""
        split = self.traffic_split(profile)
        by_name = {level.name: level for level in self.levels}
        return sum(nbytes / by_name[name].bandwidth
                   for name, nbytes in split.items())

    def access_energy_j(self, profile: WorkloadProfile) -> float:
        """Total traffic energy under the traffic split."""
        split = self.traffic_split(profile)
        by_name = {level.name: level for level in self.levels}
        return sum(nbytes * by_name[name].energy_per_byte
                   for name, nbytes in split.items())

    def offchip_fraction(self, profile: WorkloadProfile) -> float:
        """Fraction of traffic that reaches the last (off-chip) level."""
        if profile.total_bytes == 0:
            return 0.0
        split = self.traffic_split(profile)
        return split[self.levels[-1].name] / profile.total_bytes


def typical_soc_hierarchy() -> MemoryHierarchy:
    """A representative embedded-SoC hierarchy (datasheet-order numbers)."""
    return MemoryHierarchy([
        MemoryLevel("L1", capacity_bytes=64e3, bandwidth=1e12,
                    energy_per_byte=0.5e-12, latency_s=1e-9),
        MemoryLevel("L2", capacity_bytes=4e6, bandwidth=300e9,
                    energy_per_byte=1e-12, latency_s=5e-9),
        MemoryLevel("DRAM", capacity_bytes=float("inf"), bandwidth=25e9,
                    energy_per_byte=20e-12, latency_s=80e-9),
    ])
