"""CPU model: cores x frequency x (optionally) SIMD lanes.

The §2.5 experiment hinges on the gap between *scalar* software and
*vectorized* software on the same silicon — up to ~500x for batched motion
planning (Thomason et al.).  The model therefore exposes SIMD width and an
auto-vectorization efficiency knob explicitly: the same chip instantiated
with ``simd_width=1`` is the scalar baseline.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hw.platform import AnalyticalPlatform, PlatformConfig


@dataclass(frozen=True)
class CpuConfig:
    """Microarchitecture-level CPU description, lowered to a roofline.

    Attributes:
        name: Instance name.
        cores: Physical core count.
        frequency_hz: Core clock.
        flops_per_cycle_scalar: Scalar FP ops per cycle per core
            (superscalar issue width for FP).
        simd_width: SIMD lanes per FP unit (1 = scalar-only build).
        simd_efficiency: Fraction of peak the vectorizer actually achieves
            on vectorizable code (compilers rarely hit 1.0).
        l2_bytes: Last-level on-chip capacity.
        dram_bw: Off-chip bandwidth (B/s).
        onchip_bw: Cache bandwidth (B/s).
        tdp_w: Thermal design power, used for static power share.
        mass_kg: Module mass for vehicle budgeting.
        syscall_overhead_s: Per-invocation overhead (scheduling, cache
            warmup) — small but nonzero on an OS-hosted CPU.
    """

    name: str
    cores: int = 4
    frequency_hz: float = 2.0e9
    flops_per_cycle_scalar: float = 2.0
    simd_width: int = 8
    simd_efficiency: float = 0.7
    l2_bytes: float = 4e6
    dram_bw: float = 20e9
    onchip_bw: float = 200e9
    tdp_w: float = 15.0
    mass_kg: float = 0.05
    syscall_overhead_s: float = 2e-6

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigurationError(f"cpu {self.name!r}: cores must be >= 1")
        if self.simd_width < 1:
            raise ConfigurationError(
                f"cpu {self.name!r}: simd_width must be >= 1"
            )
        if not 0.0 < self.simd_efficiency <= 1.0:
            raise ConfigurationError(
                f"cpu {self.name!r}: simd_efficiency must be in (0, 1]"
            )

    @property
    def scalar_flops(self) -> float:
        """Single-core, no-SIMD throughput (the Amdahl serial path)."""
        return self.frequency_hz * self.flops_per_cycle_scalar

    @property
    def peak_flops(self) -> float:
        """All cores, all SIMD lanes, at vectorizer efficiency."""
        simd_gain = 1.0 if self.simd_width == 1 \
            else self.simd_width * self.simd_efficiency
        return self.cores * self.scalar_flops * simd_gain

    def scalar_variant(self, name_suffix: str = "-scalar") -> "CpuConfig":
        """The same chip compiled without vectorization (simd_width=1)."""
        return CpuConfig(
            name=self.name + name_suffix,
            cores=self.cores,
            frequency_hz=self.frequency_hz,
            flops_per_cycle_scalar=self.flops_per_cycle_scalar,
            simd_width=1,
            simd_efficiency=1.0,
            l2_bytes=self.l2_bytes,
            dram_bw=self.dram_bw,
            onchip_bw=self.onchip_bw,
            tdp_w=self.tdp_w,
            mass_kg=self.mass_kg,
            syscall_overhead_s=self.syscall_overhead_s,
        )

    def single_core_variant(self, name_suffix: str = "-1core") -> "CpuConfig":
        """The same chip restricted to one core (for parallel baselines)."""
        return CpuConfig(
            name=self.name + name_suffix,
            cores=1,
            frequency_hz=self.frequency_hz,
            flops_per_cycle_scalar=self.flops_per_cycle_scalar,
            simd_width=self.simd_width,
            simd_efficiency=self.simd_efficiency,
            l2_bytes=self.l2_bytes,
            dram_bw=self.dram_bw,
            onchip_bw=self.onchip_bw,
            tdp_w=self.tdp_w / 2,
            mass_kg=self.mass_kg,
            syscall_overhead_s=self.syscall_overhead_s,
        )


# Energy calibration: ~20 pJ/FLOP scalar-class CPU dynamic energy; DRAM
# access ~20 pJ/B, cache ~1 pJ/B.  These are textbook-order (Horowitz,
# ISSCC'14) figures shared across the catalog.
_CPU_ENERGY_PER_FLOP = 20e-12
_CPU_ONCHIP_PJ_PER_BYTE = 1e-12
_CPU_OFFCHIP_PJ_PER_BYTE = 20e-12


class CpuModel(AnalyticalPlatform):
    """A CPU as an analytical roofline platform.

    SIMD execution is modeled as lockstep (divergent code vectorizes
    poorly), while a ``simd_width=1`` build is not (scalar cores follow
    branches for free, to first order).
    """

    def __init__(self, config: CpuConfig):
        self.cpu = config
        platform_config = PlatformConfig(
            name=config.name,
            peak_flops=config.peak_flops,
            peak_int_ops=config.peak_flops,
            scalar_flops=config.scalar_flops,
            onchip_bytes=config.l2_bytes,
            onchip_bw=config.onchip_bw,
            offchip_bw=config.dram_bw,
            launch_overhead_s=config.syscall_overhead_s,
            energy_per_flop=_CPU_ENERGY_PER_FLOP,
            energy_per_byte_onchip=_CPU_ONCHIP_PJ_PER_BYTE,
            energy_per_byte_offchip=_CPU_OFFCHIP_PJ_PER_BYTE,
            static_power_w=0.3 * config.tdp_w,
            lockstep=config.simd_width > 1,
            mass_kg=config.mass_kg,
            device_class="cpu",
        )
        super().__init__(platform_config)
