"""Heterogeneous SoC composition: host + accelerators + interconnect.

§2.5's conclusion is that deployed systems are heterogeneous: ASICs (when
they exist) live next to CPUs, GPUs, and FPGAs, and *offload is not free*.
This module composes platform models into an SoC where each kernel is
mapped to the best supporting device, with input/output transfer charged
over an explicit interconnect — which is exactly the accounting whose
absence §2.4 calls out.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.profile import CostEstimate, WorkloadProfile
from repro.core.workload import TaskGraph
from repro.errors import ConfigurationError, MappingError
from repro.hw.platform import Platform


@dataclass(frozen=True)
class Interconnect:
    """Host-accelerator link (PCIe/AXI-class).

    Attributes:
        bandwidth: Payload bandwidth (B/s).
        latency_s: Per-transfer fixed latency (descriptor + DMA setup).
        energy_per_byte: Transfer energy (J/B).
    """

    bandwidth: float = 16e9
    latency_s: float = 5e-6
    energy_per_byte: float = 10e-12

    def __post_init__(self) -> None:
        if self.bandwidth <= 0:
            raise ConfigurationError("interconnect bandwidth must be > 0")
        if self.latency_s < 0 or self.energy_per_byte < 0:
            raise ConfigurationError(
                "interconnect latency and energy must be >= 0"
            )

    def transfer_cost(self, nbytes: float) -> Tuple[float, float]:
        """(seconds, joules) to move ``nbytes`` across the link."""
        if nbytes <= 0:
            return 0.0, 0.0
        return (self.latency_s + nbytes / self.bandwidth,
                nbytes * self.energy_per_byte)


class MappingPolicy(enum.Enum):
    """How the SoC chooses among devices that support a kernel."""

    FASTEST = "fastest"  # minimize latency including offload
    LOWEST_ENERGY = "lowest-energy"  # minimize energy including offload
    HOST_ONLY = "host-only"  # ignore accelerators (software baseline)
    PREFER_ACCELERATOR = "prefer-accelerator"  # naive: always offload when
    # an accelerator supports the kernel (the §2.4 anti-pattern)


@dataclass(frozen=True)
class MappedEstimate:
    """A cost estimate annotated with the chosen device and offload cost."""

    estimate: CostEstimate
    device: str
    offload_s: float
    offload_j: float


class HeterogeneousSoC:
    """A host platform plus attached accelerators.

    Offload accounting: when a kernel maps to a non-host device, the
    kernel's input bytes travel host→device and output bytes device→host
    (we approximate both with the profile's read/write traffic capped by
    its working set, since internal traffic stays on-device).
    """

    def __init__(self, name: str, host: Platform,
                 accelerators: Sequence[Platform] = (),
                 interconnect: Optional[Interconnect] = None):
        names = [host.name] + [a.name for a in accelerators]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"soc {name!r}: device names must be unique, got {names}"
            )
        self.name = name
        self.host = host
        self.accelerators = list(accelerators)
        self.interconnect = interconnect or Interconnect()

    @property
    def devices(self) -> List[Platform]:
        return [self.host] + self.accelerators

    def device(self, name: str) -> Platform:
        for dev in self.devices:
            if dev.name == name:
                return dev
        raise MappingError(f"soc {self.name!r} has no device {name!r}")

    def fingerprint_spec(self) -> Dict[str, object]:
        """Everything that determines this SoC's mapping and pricing, for
        :func:`repro.engine.fingerprint.fingerprint` (device specs in
        declaration order, since host-vs-accelerator roles matter)."""
        return {
            "kind": type(self).__name__,
            "name": self.name,
            "host": self.host,
            "accelerators": list(self.accelerators),
            "interconnect": self.interconnect,
        }

    def total_mass_kg(self) -> float:
        return sum(d.config.mass_kg for d in self.devices)

    def total_static_power_w(self) -> float:
        return sum(d.config.static_power_w for d in self.devices)

    def _offload_bytes(self, profile: WorkloadProfile) -> float:
        io_bytes = profile.total_bytes
        if profile.working_set_bytes > 0:
            io_bytes = min(io_bytes, profile.working_set_bytes)
        return io_bytes

    def _priced_options(
        self, profile: WorkloadProfile
    ) -> List[MappedEstimate]:
        options: List[MappedEstimate] = []
        for dev in self.devices:
            if not dev.supports(profile):
                continue
            estimate = dev.estimate(profile)
            if dev is self.host:
                offload_s, offload_j = 0.0, 0.0
            else:
                offload_s, offload_j = self.interconnect.transfer_cost(
                    self._offload_bytes(profile)
                )
            total = CostEstimate(
                latency_s=estimate.latency_s + offload_s,
                energy_j=estimate.energy_j + offload_j,
                power_w=estimate.power_w,
                area_mm2=estimate.area_mm2,
                platform=dev.name,
                bound=estimate.bound,
            )
            options.append(MappedEstimate(total, dev.name,
                                          offload_s, offload_j))
        return options

    def map_kernel(self, profile: WorkloadProfile,
                   policy: MappingPolicy = MappingPolicy.FASTEST
                   ) -> MappedEstimate:
        """Choose a device for one kernel and price it, offload included."""
        if policy is MappingPolicy.HOST_ONLY:
            if not self.host.supports(profile):
                raise MappingError(
                    f"host {self.host.name!r} does not support"
                    f" {profile.op_class!r}"
                )
            return MappedEstimate(self.host.estimate(profile),
                                  self.host.name, 0.0, 0.0)

        options = self._priced_options(profile)
        if not options:
            raise MappingError(
                f"soc {self.name!r}: no device supports op class"
                f" {profile.op_class!r} for kernel {profile.name!r}"
            )
        if policy is MappingPolicy.PREFER_ACCELERATOR:
            accelerated = [o for o in options if o.device != self.host.name]
            if accelerated:
                # Naive policy: fastest *accelerator*, host ignored.
                return min(accelerated, key=lambda o: o.estimate.latency_s)
            return options[0]
        if policy is MappingPolicy.LOWEST_ENERGY:
            return min(options, key=lambda o: o.estimate.energy_j)
        return min(options, key=lambda o: o.estimate.latency_s)

    def map_graph(self, graph: TaskGraph,
                  policy: MappingPolicy = MappingPolicy.FASTEST
                  ) -> Dict[str, MappedEstimate]:
        """Map every stage of a task graph; keyed by stage name."""
        return {
            stage.name: self.map_kernel(stage.profile, policy=policy)
            for stage in graph.stages
        }

    def graph_latency_s(self, graph: TaskGraph,
                        policy: MappingPolicy = MappingPolicy.FASTEST
                        ) -> float:
        """Critical-path latency of one activation of the graph."""
        mapping = self.map_graph(graph, policy=policy)
        latencies = {name: m.estimate.latency_s
                     for name, m in mapping.items()}
        length, _ = graph.critical_path(latencies)
        return length

    def graph_energy_j(self, graph: TaskGraph,
                       policy: MappingPolicy = MappingPolicy.FASTEST
                       ) -> float:
        """Total energy of one activation of the graph."""
        mapping = self.map_graph(graph, policy=policy)
        return sum(m.estimate.energy_j for m in mapping.values())
