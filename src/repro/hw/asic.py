"""Fixed-function ASIC accelerator model, with a specialization knob.

An ASIC runs only the operation classes it was taped out for — that is the
whole point, and the whole risk ("widgetism", §2.3).  The model makes the
specialization trade explicit:

- a *widget* supports one op class at maximum efficiency;
- broadening the supported set costs efficiency and area
  (``generality_penalty`` per extra class), reflecting muxing, wider
  datapaths, and less-perfect dataflows;
- unsupported classes do not run at all (:meth:`supports` is ``False``) —
  falling back to a host is the job of
  :class:`repro.hw.mapping.HeterogeneousSoC`.

The specialization-degree ablation (bench A3) sweeps the supported set and
watches suite-level performance trade against per-kernel peak.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable

from repro.core.profile import CostEstimate, WorkloadProfile
from repro.errors import ConfigurationError, MappingError
from repro.hw.platform import AnalyticalPlatform, PlatformConfig


@dataclass(frozen=True)
class AsicConfig:
    """Fixed-function accelerator description.

    Attributes:
        name: Instance name.
        supported_op_classes: Op classes with dedicated datapaths.
        peak_flops: Peak throughput on supported classes, for a
            single-class (widget) design; broader designs are derated.
        onchip_bytes: Dedicated SRAM capacity.
        onchip_bw: SRAM bandwidth.
        offchip_bw: Off-chip bandwidth available to the accelerator.
        energy_per_flop: Dynamic energy per FLOP — ASICs sit at the bottom
            of the energy ladder (~1 pJ/FLOP class).
        static_power_w: Leakage.
        area_mm2: Area of the single-class design; broader designs grow.
        mass_kg: Added module mass.
        generality_penalty: Multiplicative efficiency loss per op class
            beyond the first (e.g. 0.15 → a 3-class design runs at
            ``(1 - 0.15)^2 ≈ 0.72`` of widget peak and ``1.3x`` area).
        launch_overhead_s: DMA/descriptor setup per invocation.
    """

    name: str
    supported_op_classes: FrozenSet[str]
    peak_flops: float = 2e12
    onchip_bytes: float = 8e6
    onchip_bw: float = 4e12
    offchip_bw: float = 50e9
    energy_per_flop: float = 1e-12
    static_power_w: float = 0.5
    area_mm2: float = 10.0
    mass_kg: float = 0.02
    generality_penalty: float = 0.15
    launch_overhead_s: float = 2e-6

    def __post_init__(self) -> None:
        if not self.supported_op_classes:
            raise ConfigurationError(
                f"asic {self.name!r}: must support at least one op class"
            )
        if not 0.0 <= self.generality_penalty < 1.0:
            raise ConfigurationError(
                f"asic {self.name!r}: generality_penalty must be in [0, 1)"
            )

    @property
    def extra_classes(self) -> int:
        return len(self.supported_op_classes) - 1

    @property
    def effective_peak_flops(self) -> float:
        """Widget peak derated for generality."""
        return self.peak_flops * (1.0 - self.generality_penalty) \
            ** self.extra_classes

    @property
    def effective_area_mm2(self) -> float:
        """Area grows ~linearly with supported-class count."""
        return self.area_mm2 * (1.0 + 0.3 * self.extra_classes)


class AsicAccelerator(AnalyticalPlatform):
    """A fixed-function accelerator as an analytical platform."""

    def __init__(self, config: AsicConfig):
        self.asic = config
        platform_config = PlatformConfig(
            name=config.name,
            peak_flops=config.effective_peak_flops,
            peak_int_ops=config.effective_peak_flops,
            # Serial (dependent-chain) work streams through the pipelined
            # datapath at one op per cycle at the accelerator clock
            # (~1 GHz) — slower than a superscalar CPU core, but not the
            # soft-core crawl of an FPGA control processor.
            scalar_flops=1e9,
            onchip_bytes=config.onchip_bytes,
            onchip_bw=config.onchip_bw,
            offchip_bw=config.offchip_bw,
            launch_overhead_s=config.launch_overhead_s,
            energy_per_flop=config.energy_per_flop,
            energy_per_byte_onchip=0.5e-12,
            energy_per_byte_offchip=15e-12,
            static_power_w=config.static_power_w,
            lockstep=True,
            area_mm2=config.effective_area_mm2,
            mass_kg=config.mass_kg,
            device_class="asic",
        )
        super().__init__(platform_config)

    def supports(self, profile: WorkloadProfile) -> bool:
        return profile.op_class in self.asic.supported_op_classes

    def _fingerprint_extra(self) -> dict:
        return {"asic": self.asic}

    def estimate(self, profile: WorkloadProfile) -> CostEstimate:
        if not self.supports(profile):
            raise MappingError(
                f"asic {self.name!r} cannot run op class"
                f" {profile.op_class!r} (supported:"
                f" {sorted(self.asic.supported_op_classes)})"
            )
        return super().estimate(profile)


def widget_asic(op_class: str, name: str = "", **overrides: object
                ) -> AsicAccelerator:
    """A maximally specialized single-kernel accelerator (§2.3's widget)."""
    config = AsicConfig(
        name=name or f"widget-{op_class}",
        supported_op_classes=frozenset({op_class}),
        **overrides,  # type: ignore[arg-type]
    )
    return AsicAccelerator(config)


def crosscutting_asic(op_classes: Iterable[str], name: str = "",
                      **overrides: object) -> AsicAccelerator:
    """A broader accelerator covering several cross-cutting kernels."""
    classes = frozenset(op_classes)
    config = AsicConfig(
        name=name or "crosscut-" + "+".join(sorted(classes)),
        supported_op_classes=classes,
        **overrides,  # type: ignore[arg-type]
    )
    return AsicAccelerator(config)
