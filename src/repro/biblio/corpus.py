"""Synthetic publication corpus with a logistic adoption model.

Each venue publishes a roughly constant volume per year; the *fraction*
of papers mentioning autonomy-accelerator topics follows a logistic curve
centered in the late 2010s — the standard shape of research-topic
adoption, and the one visible in the paper's Fig. 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

#: The venue set Fig. 1 draws from (top architecture/robotics venues).
TOP_VENUES: Tuple[str, ...] = (
    "ISCA", "MICRO", "HPCA", "ASPLOS", "DAC",
    "ICRA", "IROS", "RSS", "CoRL",
)

#: Keyword pool for autonomy-accelerator papers.
ACCEL_KEYWORDS: Tuple[str, ...] = (
    "accelerator", "domain-specific architecture", "robotics",
    "autonomous systems", "motion planning hardware", "SLAM accelerator",
    "FPGA robotics", "real-time perception",
)

#: Keyword pool for unrelated papers.
OTHER_KEYWORDS: Tuple[str, ...] = (
    "branch prediction", "cache coherence", "grasping", "locomotion",
    "quantum compilation", "reinforcement learning", "NoC routing",
    "semantic segmentation", "program synthesis", "memory consistency",
)


@dataclass(frozen=True)
class Publication:
    """One bibliographic record.

    Attributes:
        title: Paper title (synthetic).
        venue: Venue name.
        year: Publication year.
        keywords: Indexed keywords.
    """

    title: str
    venue: str
    year: int
    keywords: Tuple[str, ...]

    def mentions(self, terms: Sequence[str]) -> bool:
        """Whether any search term appears in keywords or title
        (case-insensitive substring match, Scholar-style)."""
        haystacks = [k.lower() for k in self.keywords]
        haystacks.append(self.title.lower())
        return any(
            term.lower() in haystack
            for term in terms for haystack in haystacks
        )


def logistic_fraction(year: int, midpoint: float = 2020.0,
                      steepness: float = 0.55,
                      ceiling: float = 0.18) -> float:
    """Fraction of a venue's papers on autonomy acceleration in ``year``.

    A logistic adoption curve: near zero in the early 2010s, inflecting
    around ``midpoint``, saturating at ``ceiling`` (no field becomes
    100% one topic).
    """
    if not 0.0 < ceiling <= 1.0:
        raise ConfigurationError("ceiling must be in (0, 1]")
    return ceiling / (1.0 + math.exp(-steepness * (year - midpoint)))


def generate_corpus(start_year: int = 2010, end_year: int = 2024,
                    papers_per_venue_per_year: int = 80,
                    venues: Sequence[str] = TOP_VENUES,
                    seed: int = 0) -> List[Publication]:
    """Generate the synthetic corpus.

    Args:
        start_year, end_year: Inclusive year range.
        papers_per_venue_per_year: Mean venue volume (Poisson).
        venues: Venue names.
        seed: RNG seed.
    """
    if end_year < start_year:
        raise ConfigurationError("end_year must be >= start_year")
    if papers_per_venue_per_year < 1:
        raise ConfigurationError(
            "papers_per_venue_per_year must be >= 1"
        )
    rng = np.random.default_rng(seed)
    corpus: List[Publication] = []
    serial = 0
    for year in range(start_year, end_year + 1):
        fraction = logistic_fraction(year)
        for venue in venues:
            volume = max(1, int(rng.poisson(papers_per_venue_per_year)))
            n_accel = int(rng.binomial(volume, fraction))
            for i in range(volume):
                serial += 1
                if i < n_accel:
                    picks = rng.choice(len(ACCEL_KEYWORDS), size=3,
                                       replace=False)
                    keywords = tuple(ACCEL_KEYWORDS[int(p)]
                                     for p in picks)
                    title = (f"Towards {keywords[0]} for"
                             f" {keywords[1]} ({serial})")
                else:
                    picks = rng.choice(len(OTHER_KEYWORDS), size=3,
                                       replace=False)
                    keywords = tuple(OTHER_KEYWORDS[int(p)]
                                     for p in picks)
                    title = f"A study of {keywords[0]} ({serial})"
                corpus.append(Publication(
                    title=title, venue=venue, year=year,
                    keywords=keywords,
                ))
    return corpus
