"""Trend analysis over a publication corpus (the Fig. 1 pipeline).

The queries and aggregations here are corpus-agnostic: point them at a
scraped Scholar export and they produce the real figure; pointed at the
synthetic corpus they reproduce its *shape* (rapid growth through the
late 2010s).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence, Tuple

from repro.biblio.corpus import Publication
from repro.errors import ConfigurationError

#: The Fig. 1 query: accelerators for autonomous systems.
FIG1_TERMS: Tuple[str, ...] = (
    "accelerator", "domain-specific architecture",
    "motion planning hardware", "SLAM accelerator", "FPGA robotics",
)
FIG1_DOMAIN_TERMS: Tuple[str, ...] = (
    "robotics", "autonomous systems", "motion planning hardware",
    "SLAM accelerator", "FPGA robotics", "real-time perception",
)


def query(corpus: Sequence[Publication], terms: Sequence[str],
          venues: Sequence[str] = (),
          require_all_groups: Sequence[Sequence[str]] = ()
          ) -> List[Publication]:
    """Select publications mentioning any of ``terms``.

    Args:
        corpus: The corpus.
        terms: OR-matched terms.
        venues: Optional venue whitelist.
        require_all_groups: Additional term groups that must *each*
            match (AND across groups, OR within) — Scholar's quoted
            multi-term queries.
    """
    if not terms:
        raise ConfigurationError("query needs >= 1 term")
    venue_set = set(venues)
    result = []
    for pub in corpus:
        if venue_set and pub.venue not in venue_set:
            continue
        if not pub.mentions(terms):
            continue
        if any(not pub.mentions(group) for group in require_all_groups):
            continue
        result.append(pub)
    return result


def counts_per_year(publications: Sequence[Publication]
                    ) -> Dict[int, int]:
    """Publication counts keyed by year (all years in range included)."""
    if not publications:
        return {}
    years = [p.year for p in publications]
    counts = {year: 0 for year in range(min(years), max(years) + 1)}
    for pub in publications:
        counts[pub.year] += 1
    return counts


def cagr(first: float, last: float, years: int) -> float:
    """Compound annual growth rate between two counts."""
    if years < 1:
        raise ConfigurationError("years must be >= 1")
    if first <= 0 or last <= 0:
        raise ConfigurationError("counts must be > 0 for CAGR")
    return (last / first) ** (1.0 / years) - 1.0


@dataclass
class TrendReport:
    """Output of :func:`fig1_series`.

    Attributes:
        series: ``(year, count)`` points — the Fig. 1 data.
        total: Total matched publications.
        growth_rate: CAGR between the first and last non-zero years.
        peak_year: Year with the highest count.
    """

    series: List[Tuple[int, int]] = field(default_factory=list)
    total: int = 0
    growth_rate: float = 0.0
    peak_year: int = 0


def venue_breakdown(corpus: Sequence[Publication],
                    terms: Sequence[str] = FIG1_TERMS,
                    domain_terms: Sequence[str] = FIG1_DOMAIN_TERMS,
                    ) -> Dict[str, Dict[int, int]]:
    """Per-venue yearly counts for the Fig. 1 query.

    Returns:
        venue -> {year: count}.  Lets the analysis split architecture
        venues from robotics venues — the interdisciplinarity §3.2
        wants benchmarks to capture.
    """
    matched = query(corpus, terms,
                    require_all_groups=[list(domain_terms)])
    by_venue: Dict[str, List[Publication]] = {}
    for pub in matched:
        by_venue.setdefault(pub.venue, []).append(pub)
    return {venue: counts_per_year(pubs)
            for venue, pubs in sorted(by_venue.items())}


def community_split(corpus: Sequence[Publication],
                    architecture_venues: Sequence[str],
                    robotics_venues: Sequence[str]
                    ) -> Dict[str, int]:
    """Total autonomy-accelerator mentions per community.

    Both communities publishing on the topic is the cross-domain-
    collaboration signal of §3.2.
    """
    breakdown = venue_breakdown(corpus)
    totals = {"architecture": 0, "robotics": 0}
    for venue, counts in breakdown.items():
        total = sum(counts.values())
        if venue in architecture_venues:
            totals["architecture"] += total
        elif venue in robotics_venues:
            totals["robotics"] += total
    return totals


def fig1_series(corpus: Sequence[Publication],
                venues: Sequence[str] = ()) -> TrendReport:
    """Reproduce Fig. 1: autonomy-accelerator mentions per year.

    Matches papers mentioning acceleration terms AND autonomy-domain
    terms, restricted to the given venues (all venues when empty).
    """
    matched = query(corpus, FIG1_TERMS, venues=venues,
                    require_all_groups=[FIG1_DOMAIN_TERMS])
    counts = counts_per_year(matched)
    series = sorted(counts.items())
    nonzero = [(year, count) for year, count in series if count > 0]
    growth = 0.0
    if len(nonzero) >= 2:
        (y0, c0), (y1, c1) = nonzero[0], nonzero[-1]
        if y1 > y0:
            growth = cagr(c0, c1, y1 - y0)
    peak_year = max(series, key=lambda pair: pair[1])[0] if series else 0
    return TrendReport(
        series=series,
        total=len(matched),
        growth_rate=growth,
        peak_year=peak_year,
    )
