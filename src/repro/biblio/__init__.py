"""Publication-trend analysis (paper Fig. 1).

The paper's only figure counts mentions of accelerators for autonomous
systems in top computing/robotics venues (from Google Scholar).  Offline,
we cannot scrape Scholar, so :mod:`~repro.biblio.corpus` generates a
synthetic venue corpus whose autonomy-accelerator share follows a
logistic adoption curve, and :mod:`~repro.biblio.trends` implements the
real analysis (keyword query, venue filter, per-year aggregation, growth
statistics) that would run unchanged on scraped data.
"""

from repro.biblio.corpus import (
    Publication,
    TOP_VENUES,
    generate_corpus,
)
from repro.biblio.trends import (
    TrendReport,
    cagr,
    counts_per_year,
    fig1_series,
    query,
)

__all__ = [
    "Publication",
    "TOP_VENUES",
    "TrendReport",
    "cagr",
    "counts_per_year",
    "fig1_series",
    "generate_corpus",
    "query",
]
