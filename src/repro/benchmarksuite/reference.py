"""Reference results and regression tracking for the suite (§3.2).

"Standardized benchmarks and metrics can ... track progress over time."
This module pins the suite's reference numbers to a named baseline
platform and checks later runs against them — both directions matter: a
*slowdown* is a regression in the design, and an unexplained *speedup*
is a regression in the benchmark (the workload silently got easier,
§2.3's evaluation-drift failure mode).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional

from repro.benchmarksuite.runner import SuiteRunner
from repro.errors import BenchmarkError
from repro.hw import embedded_cpu
from repro.hw.platform import Platform

#: The canonical reference device for suite normalization.
REFERENCE_PLATFORM_NAME = "embedded-cpu"


def compute_reference(platform: Optional[Platform] = None
                      ) -> Dict[str, float]:
    """Suite latencies on the reference platform (seconds by workload).

    Deterministic: analytical models, fixed workloads.
    """
    target = platform if platform is not None else embedded_cpu()
    runner = SuiteRunner()
    rows = runner.run([target])
    return {row.workload: row.latency_s for row in rows}


@dataclass(frozen=True)
class Drift:
    """One workload whose result moved beyond tolerance.

    Attributes:
        workload: Workload name.
        reference_s: Pinned latency.
        measured_s: Observed latency.
        ratio: measured / reference.
        kind: ``"regression"`` (slower) or ``"suspicious-speedup"``.
    """

    workload: str
    reference_s: float
    measured_s: float
    ratio: float
    kind: str


def check_against_reference(
    measured: Mapping[str, float],
    reference: Mapping[str, float],
    tolerance: float = 0.05,
) -> List[Drift]:
    """Compare measured suite latencies to pinned reference values.

    Args:
        measured: workload -> latency (s).
        reference: workload -> pinned latency (s).
        tolerance: Allowed relative deviation in either direction.

    Returns:
        Drift records, worst ratio first (empty = all within
        tolerance).

    Raises:
        BenchmarkError: If the workload sets disagree (a renamed or
            dropped workload is itself a benchmark-governance event,
            not a tolerable drift).
    """
    if set(measured) != set(reference):
        raise BenchmarkError(
            f"workload sets differ: measured {sorted(measured)} vs"
            f" reference {sorted(reference)}"
        )
    if tolerance <= 0:
        raise BenchmarkError("tolerance must be > 0")
    drifts: List[Drift] = []
    for workload, pinned in reference.items():
        observed = measured[workload]
        if pinned <= 0:
            raise BenchmarkError(
                f"reference for {workload!r} must be > 0"
            )
        ratio = observed / pinned
        if ratio > 1.0 + tolerance:
            drifts.append(Drift(workload, pinned, observed, ratio,
                                "regression"))
        elif ratio < 1.0 - tolerance:
            drifts.append(Drift(workload, pinned, observed, ratio,
                                "suspicious-speedup"))
    drifts.sort(key=lambda d: abs(d.ratio - 1.0), reverse=True)
    return drifts


def save_reference(reference: Mapping[str, float], path: str) -> None:
    """Persist pinned reference latencies as JSON."""
    with open(path, "w") as handle:
        json.dump({"platform": REFERENCE_PLATFORM_NAME,
                   "latencies_s": dict(reference)}, handle, indent=2,
                  sort_keys=True)


def load_reference(path: str) -> Dict[str, float]:
    """Load pinned reference latencies saved by :func:`save_reference`.

    Raises:
        BenchmarkError: On a malformed file.
    """
    with open(path) as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict) or "latencies_s" not in payload:
        raise BenchmarkError(f"malformed reference file {path!r}")
    latencies = payload["latencies_s"]
    if not isinstance(latencies, dict) or not latencies:
        raise BenchmarkError(f"empty reference in {path!r}")
    return {str(k): float(v) for k, v in latencies.items()}
