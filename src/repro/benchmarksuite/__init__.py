"""An MLPerf-style benchmark suite for autonomy compute.

§3.2 "Standardized Benchmarks and Metrics", implemented: a registry of
representative multi-stage autonomy workloads (:mod:`workloads`), a
runner that evaluates platforms/SoCs against all of them with deadlines
(:mod:`runner`), and normalized scoring (:mod:`scoring`) so comparisons
are geometric-mean-fair rather than cherry-picked — the §2.3 evaluation
remedy.
"""

from repro.benchmarksuite.runner import (
    BenchmarkRow,
    PairPricer,
    SuiteRunner,
    evaluate_pair,
    price_pairs,
    row_cache,
)
from repro.benchmarksuite.scoring import (
    geometric_mean,
    normalized_scores,
    score_report,
)
from repro.benchmarksuite.workloads import (
    WORKLOAD_BUILDERS,
    build_workload,
    standard_suite,
)

__all__ = [
    "BenchmarkRow",
    "PairPricer",
    "SuiteRunner",
    "WORKLOAD_BUILDERS",
    "build_workload",
    "evaluate_pair",
    "geometric_mean",
    "normalized_scores",
    "price_pairs",
    "row_cache",
    "score_report",
    "standard_suite",
]
