"""The workload registry: representative autonomy pipelines.

Each builder returns a :class:`~repro.core.workload.Workload` whose task
graph is made of *measured-shape* profiles from :mod:`repro.kernels` —
the suite spans perception, estimation, planning, control, and learning
so that single-kernel widgets cannot score well on it (§2.3 by
construction).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.profile import DivergenceClass, WorkloadProfile
from repro.core.workload import Stage, TaskGraph, Workload
from repro.errors import BenchmarkError
from repro.kernels.control.lqr import lqr_profile
from repro.kernels.control.mpc import mpc_profile
from repro.kernels.dynamics import mass_matrix_profile, rnea_profile
from repro.kernels.linalg import cholesky_profile, gemm_profile
from repro.kernels.planning.collision import collision_profile
from repro.kernels.vision.features import harris_profile
from repro.kernels.vision.optical_flow import lk_profile
from repro.kernels.vision.stereo import stereo_profile
from repro.spec.registry import WORKLOADS


@WORKLOADS.register("vio-navigation")
def vio_navigation() -> Workload:
    """Visual-inertial navigation: the Navion-class pipeline (30 Hz)."""
    detect = harris_profile(480, name="detect")
    track = lk_profile(n_points=120, name="track")
    estimate = WorkloadProfile(
        name="estimate", flops=4e6, bytes_read=2e5, bytes_written=5e4,
        working_set_bytes=2e5, parallel_fraction=0.7,
        divergence=DivergenceClass.HIGH, op_class="linalg",
    )
    fuse = cholesky_profile(60, name="fuse")
    graph = TaskGraph("vio-navigation", [
        Stage("detect", detect, rate_hz=30.0, output_bytes=120 * 16),
        Stage("track", track, deps=("detect",), output_bytes=120 * 32),
        Stage("estimate", estimate, deps=("track",), output_bytes=256),
        Stage("fuse", fuse, deps=("estimate",), output_bytes=128),
    ])
    return Workload(name="vio-navigation", graph=graph,
                    target_rate_hz=30.0, quality_metric="ate_rmse_m",
                    tags=("uav", "perception"))


@WORKLOADS.register("slam-backend")
def slam_backend() -> Workload:
    """Pose-graph SLAM backend: sparse linear algebra at 5 Hz."""
    linearize = WorkloadProfile(
        name="linearize", flops=2e6, bytes_read=4e6, bytes_written=1e6,
        working_set_bytes=5e6, parallel_fraction=0.95,
        divergence=DivergenceClass.LOW, op_class="linalg",
    )
    factorize = cholesky_profile(600, name="factorize")
    solve = gemm_profile(600, 1, 600, name="solve")
    graph = TaskGraph("slam-backend", [
        Stage("linearize", linearize, rate_hz=5.0, output_bytes=4e6),
        Stage("factorize", factorize, deps=("linearize",),
              output_bytes=2e6),
        Stage("solve", solve, deps=("factorize",), output_bytes=5e3),
    ])
    return Workload(name="slam-backend", graph=graph,
                    target_rate_hz=5.0, quality_metric="ate_rmse_m",
                    tags=("mapping",))


@WORKLOADS.register("batch-planning")
def batch_planning() -> Workload:
    """Sampling-based planning with vectorized collision checks (10 Hz)."""
    sample = WorkloadProfile(
        name="sample", flops=5e5, int_ops=5e5, bytes_read=4e5,
        bytes_written=4e5, working_set_bytes=5e5,
        parallel_fraction=0.9, divergence=DivergenceClass.LOW,
        op_class="sampling",
    )
    check = collision_profile(n_checks=20000, n_obstacles=80,
                              vectorized=True, name="collision")
    smooth = collision_profile(n_checks=3000, n_obstacles=80,
                               vectorized=True, name="smooth")
    graph = TaskGraph("batch-planning", [
        Stage("sample", sample, rate_hz=10.0, output_bytes=3e5),
        Stage("collision", check, deps=("sample",), output_bytes=3e4),
        Stage("smooth", smooth, deps=("collision",), output_bytes=1e4),
    ])
    return Workload(name="batch-planning", graph=graph,
                    target_rate_hz=10.0,
                    quality_metric="path_length_ratio",
                    tags=("manipulation", "uav"))


@WORKLOADS.register("manipulation-control")
def manipulation_control() -> Workload:
    """Trajectory optimization for a 7-DoF arm at 10 Hz.

    The hot stage is *batched* rigid-body dynamics — 1024 sampled
    rollouts x 16 knot points of RNEA, the GRiD/robomorphic-computing
    workload — followed by a mass-matrix factor and an MPC solve.
    Rollouts are mutually independent, so the batch is highly parallel
    even though a single RNEA pass is recursion-bound.
    """
    from dataclasses import replace

    rollouts = replace(
        rnea_profile(7, name="rollout-dynamics").scaled(1024 * 16),
        name="rollout-dynamics", parallel_fraction=0.99,
    )
    mass = mass_matrix_profile(7, name="crba")
    mpc = mpc_profile(14, 7, horizon=12, name="mpc")
    graph = TaskGraph("manipulation-control", [
        Stage("rollout-dynamics", rollouts, rate_hz=10.0,
              output_bytes=1024 * 64),
        Stage("crba", mass, deps=("rollout-dynamics",),
              output_bytes=1024),
        Stage("mpc", mpc, deps=("crba",), output_bytes=256),
    ])
    return Workload(name="manipulation-control", graph=graph,
                    target_rate_hz=10.0,
                    quality_metric="tracking_error",
                    tags=("manipulation", "control"))


@WORKLOADS.register("ml-inference")
def ml_inference() -> Workload:
    """DNN perception inference: im2col GEMM stack at 30 Hz."""
    conv1 = gemm_profile(64, 10000, 147, name="conv1")
    conv2 = gemm_profile(128, 2500, 576, name="conv2")
    head = gemm_profile(1000, 1, 2048, name="head")
    graph = TaskGraph("ml-inference", [
        Stage("conv1", conv1, rate_hz=30.0, output_bytes=2.5e6),
        Stage("conv2", conv2, deps=("conv1",), output_bytes=1.2e6),
        Stage("head", head, deps=("conv2",), output_bytes=4e3),
    ])
    return Workload(name="ml-inference", graph=graph,
                    target_rate_hz=30.0, quality_metric="accuracy",
                    tags=("perception", "ml"))


@WORKLOADS.register("stereo-mapping")
def stereo_mapping() -> Workload:
    """Dense stereo + occupancy fusion at 10 Hz."""
    stereo = stereo_profile(320, max_disparity=32, name="stereo")
    fuse = WorkloadProfile(
        name="grid-fuse", flops=1e6, int_ops=4e6, bytes_read=4e6,
        bytes_written=4e6, working_set_bytes=8e6,
        parallel_fraction=0.97, divergence=DivergenceClass.LOW,
        op_class="stencil",
    )
    graph = TaskGraph("stereo-mapping", [
        Stage("stereo", stereo, rate_hz=10.0, output_bytes=4e5),
        Stage("grid-fuse", fuse, deps=("stereo",), output_bytes=1e5),
    ])
    return Workload(name="stereo-mapping", graph=graph,
                    target_rate_hz=10.0, quality_metric="map_quality",
                    tags=("mapping", "perception"))


@WORKLOADS.register("safety-monitor")
def safety_monitor() -> Workload:
    """Redundant safety checking: LQR envelope + fast collision (50 Hz)."""
    envelope = lqr_profile(12, 4, riccati_iterations=20, name="envelope")
    proximity = collision_profile(n_checks=500, n_obstacles=40,
                                  vectorized=True, name="proximity")
    graph = TaskGraph("safety-monitor", [
        Stage("proximity", proximity, rate_hz=50.0, output_bytes=1e3),
        Stage("envelope", envelope, deps=("proximity",),
              output_bytes=256),
    ])
    return Workload(name="safety-monitor", graph=graph,
                    target_rate_hz=50.0, quality_metric="success_rate",
                    tags=("safety", "control"))


@WORKLOADS.register("agile-trajopt")
def agile_trajopt() -> Workload:
    """Agile-flight trajectory optimization: iLQR at 50 Hz.

    Profile magnitudes follow one measured
    :class:`repro.kernels.control.IlqrSolver` solve (12-state quad
    model, horizon 30, ~8 iterations): small dense linear algebra with
    a strictly sequential backward recursion.
    """
    linearize = WorkloadProfile(
        name="linearize", flops=3e6, bytes_read=6e5,
        bytes_written=3e5, working_set_bytes=8e5,
        parallel_fraction=0.9, divergence=DivergenceClass.LOW,
        op_class="linalg",
    )
    backward = WorkloadProfile(
        name="backward-pass", flops=5e6, bytes_read=8e5,
        bytes_written=4e5, working_set_bytes=8e5,
        parallel_fraction=0.5, divergence=DivergenceClass.LOW,
        op_class="linalg",
    )
    rollout = WorkloadProfile(
        name="rollout", flops=1e6, bytes_read=2e5, bytes_written=2e5,
        working_set_bytes=3e5, parallel_fraction=0.3,
        divergence=DivergenceClass.LOW, op_class="dynamics",
    )
    graph = TaskGraph("agile-trajopt", [
        Stage("linearize", linearize, rate_hz=50.0,
              output_bytes=2e5),
        Stage("backward-pass", backward, deps=("linearize",),
              output_bytes=1e5),
        Stage("rollout", rollout, deps=("backward-pass",),
              output_bytes=5e4),
    ])
    return Workload(name="agile-trajopt", graph=graph,
                    target_rate_hz=50.0,
                    quality_metric="tracking_error",
                    tags=("uav", "control"))


@WORKLOADS.register("multi-object-tracking")
def multi_object_tracking() -> Workload:
    """Camera MOT: embedding GEMM + Hungarian association at 30 Hz."""
    from repro.kernels.vision.association import association_profile

    embed = gemm_profile(128, 600, 256, name="embed")
    associate = association_profile(60, 60, optimal=True,
                                    name="associate")
    update = WorkloadProfile(
        name="track-update", flops=8e5, bytes_read=2e5,
        bytes_written=2e5, working_set_bytes=3e5,
        parallel_fraction=0.85, divergence=DivergenceClass.LOW,
        op_class="linalg",
    )
    graph = TaskGraph("multi-object-tracking", [
        Stage("embed", embed, rate_hz=30.0, output_bytes=3e5),
        Stage("associate", associate, deps=("embed",),
              output_bytes=2e4),
        Stage("track-update", update, deps=("associate",),
              output_bytes=1e4),
    ])
    return Workload(name="multi-object-tracking", graph=graph,
                    target_rate_hz=30.0, quality_metric="success_rate",
                    tags=("perception", "av"))


#: Legacy name -> builder view of the registry (kept for callers
#: that index it directly); the registry itself is the source of
#: truth and preserves this curated order.
WORKLOAD_BUILDERS: Dict[str, Callable[[], Workload]] = \
    WORKLOADS.as_dict()


def build_workload(name: str) -> Workload:
    """Build one registered workload by name."""
    try:
        builder = WORKLOAD_BUILDERS[name]
    except KeyError:
        raise BenchmarkError(
            f"unknown workload {name!r}; registered:"
            f" {sorted(WORKLOAD_BUILDERS)}"
        ) from None
    return builder()


def standard_suite() -> List[Workload]:
    """All registered workloads, in registry order."""
    return [builder() for builder in WORKLOAD_BUILDERS.values()]
