"""The suite runner: evaluate platforms and SoCs against all workloads.

For a bare :class:`~repro.hw.platform.Platform`, each stage is priced
directly (kernels the platform cannot run make the workload infeasible —
latency ``inf`` — rather than silently skipped).  For a
:class:`~repro.hw.mapping.HeterogeneousSoC`, stages are mapped per the
SoC's policy with offload charged.  Deadlines come from each workload's
target rate.

Evaluation goes through :class:`~repro.engine.evaluator.Evaluator`:
each (workload, target) pair is a candidate, fingerprinted from the
workload's task graph and the target's spec, so rows can be priced in
parallel (``jobs=N``) and cached across runs (``cache=...``).  The
default objective (:class:`PairPricer`) is batch-capable: roofline
targets are priced through the SoA kernel (:mod:`repro.hw.batch`) in
one vectorized pass per batch, with rows identical to the scalar
per-pair path.  Rows
carry ``wall_time_s = 0.0`` when produced this way — wall clock is
*measurement*, not *result*, and lives in the tracer spans and the
``suite.row_wall_s`` histogram instead, which keeps the row table
byte-identical across serial, parallel, and cache-warm runs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from repro.benchmarksuite.scoring import score_report
from repro.benchmarksuite.workloads import standard_suite
from repro.core.report import format_table
from repro.core.workload import Workload
from repro.engine.arena import BatchArena
from repro.engine.cache import ResultCache
from repro.engine.evaluator import Evaluator
from repro.engine.protocol import FidelityTier
from repro.errors import BatchFallback, BenchmarkError, MappingError
from repro.hw.batch import PlatformSoA, ProfileSoA, batch_estimate, \
    is_soa_priceable
from repro.hw.mapping import HeterogeneousSoC, MappingPolicy
from repro.hw.platform import Platform
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer, get_tracer

Target = Union[Platform, HeterogeneousSoC]

#: Module-global arena: suite batches arrive repeatedly with the same
#: shapes (one row per target, one column per stage), so the SoA cost
#: block reaches steady state after the first batch and stops
#: allocating.
_ARENA: "BatchArena | None" = None


def _arena() -> BatchArena:
    global _ARENA
    if _ARENA is None:
        _ARENA = BatchArena()
    return _ARENA


@dataclass(frozen=True)
class BenchmarkRow:
    """One (workload, target) measurement.

    Attributes:
        workload: Workload name.
        target: Platform/SoC name.
        latency_s: Critical-path latency of one activation (``inf`` when
            any stage is unrunnable).
        energy_j: Energy per activation (``inf`` when unrunnable).
        deadline_s: The workload's per-activation deadline.
        wall_time_s: Wall-clock time the evaluation itself took (0.0 for
            hand-built rows and for engine-evaluated rows, where wall
            clock is reported via telemetry so results stay
            deterministic).
        meets_deadline: Whether latency fits the deadline.
    """

    workload: str
    target: str
    latency_s: float
    energy_j: float
    deadline_s: float
    wall_time_s: float = 0.0

    @property
    def meets_deadline(self) -> bool:
        return self.latency_s <= self.deadline_s


def _target_name(target: Target) -> str:
    return target.name


def _evaluate(workload: Workload, target: Target) -> BenchmarkRow:
    deadline = workload.deadline_s()
    try:
        if isinstance(target, HeterogeneousSoC):
            latency = target.graph_latency_s(
                workload.graph, policy=MappingPolicy.FASTEST
            )
            energy = target.graph_energy_j(
                workload.graph, policy=MappingPolicy.FASTEST
            )
        else:
            latencies: Dict[str, float] = {}
            energy = 0.0
            for stage in workload.graph.stages:
                if not target.supports(stage.profile):
                    raise MappingError(
                        f"{target.name} cannot run {stage.name}"
                    )
                estimate = target.estimate(stage.profile)
                latencies[stage.name] = estimate.latency_s
                energy += estimate.energy_j
            latency, _ = workload.graph.critical_path(latencies)
    except MappingError:
        latency, energy = float("inf"), float("inf")
    return BenchmarkRow(
        workload=workload.name,
        target=_target_name(target),
        latency_s=latency,
        energy_j=energy,
        deadline_s=deadline,
    )


def evaluate_pair(pair: Dict[str, Any]) -> BenchmarkRow:
    """Engine objective: price one ``{"workload": ..., "target": ...}``
    candidate (module-level, hence picklable for process pools)."""
    return _evaluate(pair["workload"], pair["target"])


class PairPricer:
    """Batch-capable suite objective: :func:`evaluate_pair` semantics
    plus a vectorized path over SoA-priceable targets.

    ``evaluate_batch`` prices every roofline (target, stage) pair in the
    batch through one :func:`~repro.hw.batch.batch_estimate` call and
    assembles rows from the cost block — with the scalar accumulation
    order (stage energies summed in topological order, latencies through
    the same ``critical_path``), so rows are **identical** to
    :func:`evaluate_pair`.  Targets the SoA kernel cannot reproduce
    (SoCs, accelerators with mapping tables) are priced scalar within
    the same batch; a batch with *no* SoA-priceable target is declined
    via :class:`~repro.errors.BatchFallback` so the Evaluator's scalar
    path (which can use the process pool) takes over.
    """

    def __call__(self, pair: Dict[str, Any]) -> BenchmarkRow:
        return _evaluate(pair["workload"], pair["target"])

    def evaluate_batch(self, pairs: Sequence[Dict[str, Any]]
                       ) -> List[BenchmarkRow]:
        pairs = list(pairs)
        vectorizable = [is_soa_priceable(pair["target"])
                        for pair in pairs]
        if not any(vectorizable):
            raise BatchFallback(
                "no target in this batch prices like AnalyticalPlatform")

        # Unique SoA-priceable targets / workloads, first-seen order.
        targets: List[Target] = []
        target_row: Dict[int, int] = {}
        workloads: List[Workload] = []
        workload_cols: Dict[int, slice] = {}
        profiles: List[Any] = []
        for pair, batchable in zip(pairs, vectorizable):
            if not batchable:
                continue
            target, workload = pair["target"], pair["workload"]
            if id(target) not in target_row:
                target_row[id(target)] = len(targets)
                targets.append(target)
            if id(workload) not in workload_cols:
                start = len(profiles)
                profiles.extend(stage.profile
                                for stage in workload.graph.stages)
                workload_cols[id(workload)] = slice(start, len(profiles))
                workloads.append(workload)
        cost = batch_estimate(PlatformSoA.from_platforms(targets),
                              ProfileSoA.from_profiles(profiles),
                              arena=_arena())

        rows: List[BenchmarkRow] = []
        for pair, batchable in zip(pairs, vectorizable):
            if not batchable:
                rows.append(_evaluate(pair["workload"], pair["target"]))
                continue
            target, workload = pair["target"], pair["workload"]
            row = target_row[id(target)]
            columns = workload_cols[id(workload)]
            stages = workload.graph.stages
            if all(target.supports(stage.profile) for stage in stages):
                latencies = {
                    stage.name: float(cost.latency_s[row, col])
                    for stage, col in zip(
                        stages, range(columns.start, columns.stop))
                }
                energy = 0.0
                for col in range(columns.start, columns.stop):
                    energy += float(cost.energy_j[row, col])
                latency, _ = workload.graph.critical_path(latencies)
            else:
                latency, energy = float("inf"), float("inf")
            rows.append(BenchmarkRow(
                workload=workload.name,
                target=_target_name(target),
                latency_s=latency,
                energy_j=energy,
                deadline_s=workload.deadline_s(),
            ))
        return rows

    # -- Tier-0 roofline screen -------------------------------------
    #
    # Serial-chain pricing: stage latencies *summed* instead of run
    # through the critical-path DP, energies as in the full tier.  The
    # sum upper-bounds the DAG latency, so rows that fit their
    # deadline under the screen also fit it at full fidelity — a safe
    # (conservative) screen for deadline-style gates.  Each row
    # depends only on its own pair, so the screen is chunk-invariant.

    def roofline_screen(self, pair: Dict[str, Any]) -> BenchmarkRow:
        """Price one pair at Tier 0 (serial-chain roofline)."""
        return self.roofline_screen_batch([pair])[0]

    def roofline_screen_batch(self, pairs: Sequence[Dict[str, Any]]
                              ) -> List[BenchmarkRow]:
        """Price a batch at Tier 0 through the SoA kernel."""
        pairs = list(pairs)
        vectorizable = [is_soa_priceable(pair["target"])
                        for pair in pairs]

        targets: List[Target] = []
        target_row: Dict[int, int] = {}
        workload_cols: Dict[int, slice] = {}
        profiles: List[Any] = []
        for pair, batchable in zip(pairs, vectorizable):
            if not batchable:
                continue
            target, workload = pair["target"], pair["workload"]
            if id(target) not in target_row:
                target_row[id(target)] = len(targets)
                targets.append(target)
            if id(workload) not in workload_cols:
                start = len(profiles)
                profiles.extend(stage.profile
                                for stage in workload.graph.stages)
                workload_cols[id(workload)] = slice(start, len(profiles))
        cost = None
        if targets:
            cost = batch_estimate(PlatformSoA.from_platforms(targets),
                                  ProfileSoA.from_profiles(profiles),
                                  arena=_arena())

        rows: List[BenchmarkRow] = []
        for pair, batchable in zip(pairs, vectorizable):
            target, workload = pair["target"], pair["workload"]
            stages = workload.graph.stages
            latency = energy = 0.0
            if batchable and all(target.supports(stage.profile)
                                 for stage in stages):
                row = target_row[id(target)]
                columns = workload_cols[id(workload)]
                for col in range(columns.start, columns.stop):
                    latency += float(cost.latency_s[row, col])
                    energy += float(cost.energy_j[row, col])
            elif not batchable:
                try:
                    if isinstance(target, HeterogeneousSoC):
                        mapping = target.map_graph(
                            workload.graph, policy=MappingPolicy.FASTEST)
                        for mapped in mapping.values():
                            latency += mapped.estimate.latency_s
                            energy += mapped.estimate.energy_j
                    else:
                        for stage in stages:
                            if not target.supports(stage.profile):
                                raise MappingError(
                                    f"{target.name} cannot run"
                                    f" {stage.name}")
                            estimate = target.estimate(stage.profile)
                            latency += estimate.latency_s
                            energy += estimate.energy_j
                except MappingError:
                    latency, energy = float("inf"), float("inf")
            else:
                latency, energy = float("inf"), float("inf")
            rows.append(BenchmarkRow(
                workload=workload.name,
                target=_target_name(target),
                latency_s=latency,
                energy_j=energy,
                deadline_s=workload.deadline_s(),
            ))
        return rows

    def fidelity_tiers(self) -> Tuple[FidelityTier, ...]:
        """Two-tier ladder: serial-chain roofline screen below the
        full critical-path suite pricing (the top tier is this
        objective itself — tier-equivalence contract)."""
        return (
            FidelityTier(name="roofline",
                         evaluate=self.roofline_screen,
                         evaluate_batch=self.roofline_screen_batch,
                         cost_hint=1.0),
            FidelityTier(name="suite",
                         evaluate=self,
                         evaluate_batch=self.evaluate_batch,
                         cost_hint=2.0),
        )


#: The default suite objective: batch-capable, falls back to scalar
#: per-pair pricing transparently (see :class:`PairPricer`).
price_pairs = PairPricer()


def _encode_row(row: BenchmarkRow) -> Dict[str, Any]:
    # Imported lazily: the spec codec module imports this one for the
    # BenchmarkRow class, so a module-level import would be a cycle.
    from repro.spec.codec import to_spec

    return to_spec(row)


def _decode_row(payload: Dict[str, Any]) -> BenchmarkRow:
    from repro.spec.codec import from_spec

    row = from_spec(payload)
    if not isinstance(row, BenchmarkRow):
        raise BenchmarkError(
            f"cache entry decoded to {type(row).__name__},"
            f" not BenchmarkRow"
        )
    return row


def row_cache(directory: Optional[str] = None) -> ResultCache:
    """A :class:`~repro.engine.cache.ResultCache` that round-trips
    :class:`BenchmarkRow` values through disk as tagged
    ``benchmark-row`` specs (see :mod:`repro.spec`)."""
    return ResultCache(directory, encode=_encode_row,
                       decode=_decode_row)


class SuiteRunner:
    """Run a workload suite across a set of targets.

    Args:
        workloads: Suite to run (defaults to the standard suite).
    """

    def __init__(self, workloads: Optional[Sequence[Workload]] = None):
        self.workloads = list(workloads) if workloads is not None \
            else standard_suite()
        if not self.workloads:
            raise BenchmarkError("suite must contain >= 1 workload")

    def run(self, targets: Sequence[Target],
            tracer: Optional[Tracer] = None,
            metrics: Optional[MetricsRegistry] = None, *,
            jobs: int = 1, cache: Optional[ResultCache] = None,
            evaluator: Optional[Evaluator] = None
            ) -> List[BenchmarkRow]:
        """All (workload x target) rows in deterministic order.

        The row table is identical whatever the evaluation mode:
        serial, ``jobs=N`` process-pool parallel, or replayed from a
        warm cache (0 oracle calls).

        Args:
            targets: Platforms/SoCs to evaluate.
            tracer: Telemetry tracer (defaults to the process-global
                no-op); each row gets a wall-clock span on a
                ``suite:<target>`` track.
            metrics: Optional registry receiving row counters and
                latency / wall-time histograms.
            jobs: Process-pool width for row evaluation.
            cache: Result cache (see :func:`row_cache`) shared across
                runs; hits skip the oracle entirely.
            evaluator: A pre-built row evaluator; overrides ``jobs``
                and ``cache``.
        """
        if not targets:
            raise BenchmarkError("need >= 1 target")
        names = [_target_name(t) for t in targets]
        if len(set(names)) != len(names):
            raise BenchmarkError(f"duplicate target names: {names}")
        tracer = tracer if tracer is not None else get_tracer()
        if evaluator is None:
            evaluator = Evaluator(
                price_pairs, jobs=jobs, cache=cache,
                context={"task": "benchmarksuite",
                         "policy": MappingPolicy.FASTEST},
                tracer=tracer, metrics=metrics,
            )
        candidates = [{"workload": workload, "target": target}
                      for workload in self.workloads
                      for target in targets]
        with tracer.wall_span("suite.run", track="suite") as run_span:
            results = evaluator.map_batch(candidates)
        rows = [result.value for result in results]
        if tracer.enabled:
            # Reconstruct per-row spans from the measured durations so
            # the trace keeps its per-target lanes even though the rows
            # themselves were priced in a batch (possibly out of
            # process, possibly from cache — cached rows show as
            # zero-width slices).
            cursor = run_span.start_s
            for result, row in zip(results, rows):
                span = tracer.begin(
                    row.workload, ts=cursor,
                    track=f"suite:{row.target}",
                    args={"latency_s": row.latency_s,
                          "energy_j": row.energy_j,
                          "meets_deadline": row.meets_deadline,
                          "cached": result.cached},
                )
                span.wall = True
                cursor += result.wall_time_s
                tracer.end(span, ts=cursor)
        if metrics is not None:
            self._publish_metrics(
                rows, metrics,
                wall_times=[r.wall_time_s for r in results],
            )
        return rows

    @staticmethod
    def _publish_metrics(rows: Sequence[BenchmarkRow],
                         metrics: MetricsRegistry,
                         wall_times: Optional[Sequence[float]] = None
                         ) -> None:
        latency = metrics.histogram("suite.latency_s")
        wall = metrics.histogram("suite.row_wall_s")
        for index, row in enumerate(rows):
            metrics.counter("suite.rows").inc()
            if math.isfinite(row.latency_s):
                latency.record(row.latency_s)
            else:
                metrics.counter("suite.rows_infeasible").inc()
            if not row.meets_deadline:
                metrics.counter("suite.rows_missing_deadline").inc()
            wall.record(wall_times[index] if wall_times is not None
                        else row.wall_time_s)

    def latency_map(self, rows: Sequence[BenchmarkRow]
                    ) -> Dict[str, Dict[str, float]]:
        """``target -> workload -> latency`` from a result list."""
        table: Dict[str, Dict[str, float]] = {}
        for row in rows:
            table.setdefault(row.target, {})[row.workload] = \
                row.latency_s
        return table

    def ranked_scores(self, rows: Sequence[BenchmarkRow],
                      reference: str) -> List[Tuple[str, float]]:
        """Geomean-speedup ranking vs. a reference target.

        Workloads any target cannot run are excluded suite-wide (their
        speedups are undefined); the honest companion number is
        :func:`repro.benchmarksuite.scoring.coverage_score`.
        """
        table = self.latency_map(rows)
        runnable = {
            w.name for w in self.workloads
            if all(math.isfinite(table[t].get(w.name, float("inf")))
                   for t in table)
        }
        if not runnable:
            raise BenchmarkError(
                "no workload is runnable on every target"
            )
        filtered = {
            target: {w: lat for w, lat in rows_.items()
                     if w in runnable}
            for target, rows_ in table.items()
        }
        return score_report(filtered, reference)

    def report(self, rows: Sequence[BenchmarkRow]) -> str:
        """Human-readable results table."""
        return format_table(
            ["workload", "target", "latency_ms", "energy_mJ",
             "deadline_ms", "ok"],
            [
                [r.workload, r.target,
                 r.latency_s * 1e3 if math.isfinite(r.latency_s)
                 else float("inf"),
                 r.energy_j * 1e3 if math.isfinite(r.energy_j)
                 else float("inf"),
                 r.deadline_s * 1e3,
                 "yes" if r.meets_deadline else "NO"]
                for r in rows
            ],
            title="Benchmark suite results",
        )
