"""Suite scoring: geometric means and normalized speedups.

Arithmetic means over speedups reward blowouts on one benchmark (the
widget trap); geometric means are the suite-fair default, as in SPEC and
MLPerf.
"""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple

from repro.errors import BenchmarkError


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (``inf`` values poison to inf)."""
    if not values:
        raise BenchmarkError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise BenchmarkError(
            f"geometric_mean needs positive values, got {list(values)}"
        )
    if any(math.isinf(v) for v in values):
        return float("inf")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def normalized_scores(latencies: Mapping[str, Mapping[str, float]],
                      reference: str) -> Dict[str, float]:
    """Geometric-mean speedup of each platform over a reference platform.

    Args:
        latencies: ``platform -> workload -> latency_s``.
        reference: Platform whose latencies normalize the others.

    Returns:
        ``platform -> geomean speedup`` (reference scores 1.0).
    """
    if reference not in latencies:
        raise BenchmarkError(
            f"reference platform {reference!r} not in results"
        )
    ref = latencies[reference]
    scores: Dict[str, float] = {}
    for platform, rows in latencies.items():
        if set(rows) != set(ref):
            raise BenchmarkError(
                f"platform {platform!r} ran a different workload set"
                f" than {reference!r}"
            )
        speedups = [ref[w] / rows[w] for w in rows]
        scores[platform] = geometric_mean(speedups)
    return scores


def score_report(latencies: Mapping[str, Mapping[str, float]],
                 reference: str) -> List[Tuple[str, float]]:
    """Ranked ``(platform, score)`` pairs, best first."""
    scores = normalized_scores(latencies, reference)
    return sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))


def coverage_score(latencies: Mapping[str, float],
                   deadlines: Mapping[str, float]) -> float:
    """Fraction of suite workloads meeting their deadline on a platform.

    The §2.3 counterweight to peak speedups: a widget that aces one
    workload and cannot run the rest scores 1/n here.
    """
    if not latencies:
        raise BenchmarkError("empty latency map")
    met = 0
    for workload, latency in latencies.items():
        if workload not in deadlines:
            raise BenchmarkError(
                f"no deadline declared for workload {workload!r}"
            )
        if latency <= deadlines[workload]:
            met += 1
    return met / len(latencies)
