"""Exporters: Chrome trace-event JSON and metrics JSON with provenance.

The trace format is the Chrome/Perfetto trace-event JSON object form
(``{"traceEvents": [...]}``), loadable in ``chrome://tracing`` or
https://ui.perfetto.dev.  Simulated-time events are placed under pid 1
("simulated time") and wall-clock self-profiling spans under pid 2
("wall clock"), so the two clock domains never interleave on one track.
Each distinct span/instant track becomes a named thread via ``M``
(metadata) events.

Timestamps: the tracer records seconds; Chrome expects microseconds.
"""

from __future__ import annotations

import hashlib
import json
import os
import platform as _platform
import subprocess
import sys
import time
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import TelemetryError
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer

__all__ = [
    "chrome_trace_events",
    "machine_fingerprint",
    "run_provenance",
    "trace_summary",
    "write_chrome_trace",
    "write_metrics_json",
]

_SIM_PID = 1
_WALL_PID = 2


def _track_ids(tracer: Tracer) -> Dict[tuple, int]:
    """Stable (pid, track) -> tid assignment in first-seen order."""
    ids: Dict[tuple, int] = {}
    for span in tracer.spans:
        pid = _WALL_PID if span.wall else _SIM_PID
        ids.setdefault((pid, span.track), len(ids) + 1)
    for marker in tracer.instants:
        ids.setdefault((_SIM_PID, marker.track), len(ids) + 1)
    for name, track, _ts, _value in tracer.counters:
        ids.setdefault((_SIM_PID, track), len(ids) + 1)
    return ids


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Flatten a tracer into a list of Chrome trace-event dicts.

    Every event carries the required ``ph``/``ts``/``name`` keys:
    spans become ``X`` (complete) events with ``dur``, instants become
    ``i`` events, counter samples become ``C`` events, and track names
    are declared with ``M`` metadata events.
    """
    ids = _track_ids(tracer)
    events: List[Dict[str, Any]] = []
    for (pid, track), tid in sorted(ids.items(), key=lambda kv: kv[1]):
        events.append({
            "ph": "M", "ts": 0, "name": "thread_name",
            "pid": pid, "tid": tid, "args": {"name": track},
        })
    for pid, label in ((_SIM_PID, "simulated time"),
                       (_WALL_PID, "wall clock")):
        if any(p == pid for p, _ in ids):
            events.append({
                "ph": "M", "ts": 0, "name": "process_name",
                "pid": pid, "tid": 0, "args": {"name": label},
            })
    for span in tracer.spans:
        pid = _WALL_PID if span.wall else _SIM_PID
        end_s = span.end_s if span.end_s is not None else span.start_s
        event: Dict[str, Any] = {
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": (end_s - span.start_s) * 1e6,
            "name": span.name,
            "pid": pid,
            "tid": ids[(pid, span.track)],
        }
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    for marker in tracer.instants:
        event = {
            "ph": "i",
            "ts": marker.start_s * 1e6,
            "name": marker.name,
            "pid": _SIM_PID,
            "tid": ids[(_SIM_PID, marker.track)],
            "s": "t",
        }
        if marker.args:
            event["args"] = dict(marker.args)
        events.append(event)
    for name, track, ts, value in tracer.counters:
        events.append({
            "ph": "C",
            "ts": ts * 1e6,
            "name": name,
            "pid": _SIM_PID,
            "tid": ids[(_SIM_PID, track)],
            "args": {"value": value},
        })
    return events


def _git_sha() -> Optional[str]:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True, text=True, timeout=5.0,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


def _numpy_version() -> Optional[str]:
    try:
        import numpy
        return numpy.__version__
    except ImportError:  # pragma: no cover - numpy is a hard dep
        return None


def machine_fingerprint() -> Dict[str, Any]:
    """A stable, privacy-light identity for the measuring machine.

    The hostname enters only as a truncated hash — enough to tell two
    ledger machines apart, not enough to leak the host name into
    committed artifacts.
    """
    return {
        "hostname_sha": hashlib.sha256(
            _platform.node().encode()).hexdigest()[:12],
        "system": _platform.system(),
        "machine": _platform.machine(),
        "cpus": os.cpu_count(),
    }


def run_provenance(seed: Optional[int] = None,
                   config: Optional[Mapping[str, Any]] = None
                   ) -> Dict[str, Any]:
    """Everything needed to re-run this run: seed, config echo, git SHA
    (best-effort ``None`` outside a checkout), interpreter + numpy
    versions, machine fingerprint, host, time."""
    return {
        "seed": seed,
        "config": dict(config) if config is not None else {},
        "git_sha": _git_sha(),
        "python": sys.version.split()[0],
        "numpy": _numpy_version(),
        "platform": _platform.platform(),
        "machine": machine_fingerprint(),
        "unix_time": time.time(),
        "argv": list(sys.argv),
    }


def write_chrome_trace(tracer: Tracer, path: str,
                       provenance: Optional[Mapping[str, Any]] = None
                       ) -> int:
    """Write the Chrome trace JSON; returns the event count written."""
    events = chrome_trace_events(tracer)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": dict(provenance) if provenance is not None else {},
    }
    with open(path, "w") as handle:
        json.dump(document, handle)
    return len(events)


def write_metrics_json(path: str,
                       registry: Optional[MetricsRegistry] = None,
                       provenance: Optional[Mapping[str, Any]] = None,
                       extra: Optional[Mapping[str, Any]] = None) -> None:
    """Write a flat metrics document: provenance + registry snapshot +
    caller-supplied sections (rows, scores, ...).

    Keys are sorted on the way out, so two exports of the same data are
    byte-identical regardless of dict insertion order — diffable
    artifacts, cacheable hashes.
    """
    document: Dict[str, Any] = {
        "provenance": dict(provenance) if provenance is not None
        else run_provenance(),
        "metrics": registry.snapshot() if registry is not None else {},
    }
    if extra:
        document.update(extra)
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2, default=str,
                  sort_keys=True)


def trace_summary(document: Mapping[str, Any]) -> Dict[str, Any]:
    """Summarize a loaded Chrome trace document (or bare event list).

    Returns per-phase event counts and, per track, the span count and
    total span time — the quick sanity view behind ``repro trace
    summary``.
    """
    events = document.get("traceEvents", document) \
        if isinstance(document, Mapping) else document
    if not isinstance(events, list) or \
            not all(isinstance(e, Mapping) for e in events):
        raise TelemetryError(
            "not a Chrome trace: expected a list of event objects"
            " (or a document with a 'traceEvents' list)"
        )
    phases: Dict[str, int] = {}
    tracks: Dict[tuple, Dict[str, float]] = {}
    names: Dict[tuple, str] = {}
    for event in events:
        ph = event.get("ph", "?")
        phases[ph] = phases.get(ph, 0) + 1
        key = (event.get("pid", 0), event.get("tid", 0))
        if ph == "M" and event.get("name") == "thread_name":
            names[key] = event.get("args", {}).get("name", str(key))
        elif ph == "X":
            entry = tracks.setdefault(key, {"spans": 0, "busy_us": 0.0})
            entry["spans"] += 1
            entry["busy_us"] += float(event.get("dur", 0.0))
    return {
        "events": sum(phases.values()),
        "phases": phases,
        "tracks": {
            names.get(key, str(key)): stats
            for key, stats in sorted(tracks.items())
        },
    }
