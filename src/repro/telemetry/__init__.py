"""Tracing, metrics, and run-provenance for the end-to-end stack.

The paper's headline future direction is *end-to-end modeling tools that
capture the complex interactions between the accelerator, the rest of the
computing system, and the physical environment* — which requires those
interactions to be **observable**.  This package is the substrate:

- :mod:`~repro.telemetry.tracer`  — explicit span/instant/counter events
  on *simulated* time, plus wall-clock self-profiling spans, with a
  global no-op default so instrumentation costs ~nothing when disabled;
- :mod:`~repro.telemetry.metrics` — counters, gauges, and streaming
  histograms (p50/p90/p99/p999 without retaining samples);
- :mod:`~repro.telemetry.export`  — Chrome trace-event JSON (open in
  Perfetto / ``chrome://tracing``) and flat metrics JSON with run
  provenance (seed, git SHA, python/numpy versions, machine
  fingerprint, config echo);
- :mod:`~repro.telemetry.profiling` — span-scoped cProfile hotspot
  capture, tracemalloc/peak-RSS snapshots, and the explicit
  :class:`~repro.telemetry.profiling.AllocationMeter` the SoA kernels
  report bytes-allocated-per-call through.

Producers: :mod:`repro.system.pipeline` (per-stage service spans, queue
depths, drops), :mod:`repro.system.scheduler` (Gantt-reconstructable job
traces), :mod:`repro.benchmarksuite.runner` (per-row wall spans), and the
:mod:`repro.dse` search loops (per-iteration candidate/score events).
"""

from repro.telemetry.export import (
    chrome_trace_events,
    machine_fingerprint,
    run_provenance,
    trace_summary,
    write_chrome_trace,
    write_metrics_json,
)
from repro.telemetry.profiling import (
    AllocationMeter,
    Hotspot,
    ProfileRecord,
    SpanProfiler,
    format_hotspots,
    get_alloc_meter,
    hotspot_rows,
    measure_allocations,
    peak_rss_kb,
)
from repro.telemetry.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    StreamingHistogram,
)
from repro.telemetry.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_tracer,
    use_tracer,
)

__all__ = [
    "AllocationMeter",
    "Counter",
    "Gauge",
    "Hotspot",
    "MetricsRegistry",
    "NULL_TRACER",
    "NullTracer",
    "ProfileRecord",
    "Span",
    "SpanProfiler",
    "StreamingHistogram",
    "Tracer",
    "chrome_trace_events",
    "format_hotspots",
    "get_alloc_meter",
    "get_tracer",
    "hotspot_rows",
    "machine_fingerprint",
    "measure_allocations",
    "peak_rss_kb",
    "run_provenance",
    "set_tracer",
    "trace_summary",
    "use_tracer",
    "write_chrome_trace",
    "write_metrics_json",
]
