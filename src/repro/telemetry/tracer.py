"""Span tracing on simulated and wall-clock time.

Two design constraints drive the shape of this module:

1. **Disabled must be ~free.**  The DES hot path dispatches millions of
   events; the pipeline/scheduler instrumentation therefore guards every
   emit site with ``tracer.enabled`` (a plain attribute, not a property)
   and the process-global default is a :class:`NullTracer`.  The cost of
   instrumentation-when-off is one attribute load + branch per site.
2. **Two clocks.**  System simulations advance a *simulated* clock; the
   suite runner and DSE loops run on *wall* time.  Spans carry a
   ``wall`` flag so the exporter can place them on separate process
   tracks instead of interleaving incommensurable timestamps.

Timestamps are seconds (floats); the Chrome exporter converts to the
microseconds the trace-event format expects.
"""

from __future__ import annotations

import contextlib
import time
from typing import Dict, Iterator, List, Optional

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "Span",
    "Tracer",
    "get_tracer",
    "set_tracer",
    "use_tracer",
]

Args = Dict[str, object]


class Span:
    """One named interval on a track.

    Attributes:
        name: Event name (shown on the trace slice).
        track: Logical lane (exported as a Chrome thread) — e.g.
            ``"stage:detect"`` or ``"job:perception"``.
        start_s: Start timestamp, seconds.
        end_s: End timestamp, seconds (``None`` while open).
        args: Free-form payload shown in the trace viewer.
        wall: True for wall-clock self-profiling spans.
    """

    __slots__ = ("name", "track", "start_s", "end_s", "args", "wall")

    def __init__(self, name: str, track: str, start_s: float,
                 args: Optional[Args] = None, wall: bool = False):
        self.name = name
        self.track = track
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.args = args
        self.wall = wall

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            return 0.0
        return self.end_s - self.start_s

    def __repr__(self) -> str:
        return (f"Span({self.name!r}, track={self.track!r},"
                f" start={self.start_s}, end={self.end_s})")


class Tracer:
    """Collects spans, instant events, and counter samples.

    Usage (simulated time)::

        tracer = Tracer()
        span = tracer.begin("service", ts=sim.now, track="stage:detect")
        ...
        tracer.end(span, ts=sim.now)
        tracer.instant("drop", ts=sim.now, track="stage:detect")
        tracer.counter("queue_depth", ts=sim.now, value=3,
                       track="stage:detect")

    Usage (wall clock)::

        with tracer.wall_span("suite.row", track="suite"):
            evaluate(...)

    A span that unwinds on an exception still closes, and records an
    ``error`` arg naming the exception type — a trace of a crashed run
    shows *where* it died instead of dangling open spans.

    Attaching a :class:`~repro.telemetry.profiling.SpanProfiler` to
    ``tracer.profiler`` upgrades :meth:`profile_span` sites from plain
    wall spans to scoped cProfile/memory captures; with no profiler
    installed (the default) they cost exactly a ``wall_span``.
    """

    enabled = True

    def __init__(self) -> None:
        self.spans: List[Span] = []
        self.instants: List[Span] = []
        # (name, track, ts_s, value) samples for Chrome "C" events.
        self.counters: List[tuple] = []
        # Optional SpanProfiler consulted by profile_span.
        self.profiler = None
        self._wall_origin = time.perf_counter()

    # -- simulated-time API -------------------------------------------

    def begin(self, name: str, ts: float, track: str = "main",
              args: Optional[Args] = None) -> Span:
        """Open a span at simulated time ``ts`` (seconds)."""
        span = Span(name, track, ts, args)
        self.spans.append(span)
        return span

    def end(self, span: Span, ts: float) -> None:
        """Close ``span`` at simulated time ``ts`` (seconds)."""
        span.end_s = ts

    def instant(self, name: str, ts: float, track: str = "main",
                args: Optional[Args] = None) -> None:
        """Record a zero-duration marker (Chrome ``i`` event)."""
        marker = Span(name, track, ts, args)
        marker.end_s = ts
        self.instants.append(marker)

    def counter(self, name: str, ts: float, value: float,
                track: str = "counters") -> None:
        """Record one sample of a time-varying quantity."""
        self.counters.append((name, track, ts, float(value)))

    # -- wall-clock self-profiling API --------------------------------

    def wall_now(self) -> float:
        """Seconds since this tracer was created (wall clock)."""
        return time.perf_counter() - self._wall_origin

    @contextlib.contextmanager
    def wall_span(self, name: str, track: str = "wall",
                  args: Optional[Args] = None) -> Iterator[Span]:
        """Context manager measuring a wall-clock interval.

        Closes the span even when the body raises, tagging it with
        ``args["error"] = <exception type name>`` before re-raising.
        """
        span = Span(name, track, self.wall_now(), args, wall=True)
        self.spans.append(span)
        try:
            yield span
        except BaseException as error:
            span.args = {**(span.args or {}),
                         "error": type(error).__name__}
            raise
        finally:
            span.end_s = self.wall_now()

    @contextlib.contextmanager
    def profile_span(self, name: str, track: str = "wall",
                     args: Optional[Args] = None) -> Iterator[Span]:
        """A wall span that is also a profiler capture point.

        With ``self.profiler`` set (a
        :class:`~repro.telemetry.profiling.SpanProfiler`), the span body
        runs under a scoped capture — CPU hotspots and, if configured,
        a tracemalloc window — recorded on the profiler.  Otherwise it
        is exactly :meth:`wall_span`.
        """
        if self.profiler is None:
            with self.wall_span(name, track, args) as span:
                yield span
            return
        with self.wall_span(name, track, args) as span:
            with self.profiler.capture(name, track):
                yield span

    # -- introspection ------------------------------------------------

    def event_count(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.counters)

    def clear(self) -> None:
        self.spans.clear()
        self.instants.clear()
        self.counters.clear()


class NullTracer(Tracer):
    """The do-nothing default: every emit returns without recording.

    Instrumented code checks ``tracer.enabled`` before formatting args,
    so with this tracer installed the per-event cost is a branch.
    """

    enabled = False

    _NULL_SPAN = Span("null", "null", 0.0)

    def begin(self, name: str, ts: float, track: str = "main",
              args: Optional[Args] = None) -> Span:
        return self._NULL_SPAN

    def end(self, span: Span, ts: float) -> None:
        pass

    def instant(self, name: str, ts: float, track: str = "main",
                args: Optional[Args] = None) -> None:
        pass

    def counter(self, name: str, ts: float, value: float,
                track: str = "counters") -> None:
        pass

    @contextlib.contextmanager
    def wall_span(self, name: str, track: str = "wall",
                  args: Optional[Args] = None) -> Iterator[Span]:
        yield self._NULL_SPAN

    @contextlib.contextmanager
    def profile_span(self, name: str, track: str = "wall",
                     args: Optional[Args] = None) -> Iterator[Span]:
        yield self._NULL_SPAN


NULL_TRACER = NullTracer()
_global_tracer: Tracer = NULL_TRACER


def get_tracer() -> Tracer:
    """The process-global tracer (a no-op :data:`NULL_TRACER` unless
    :func:`set_tracer` installed a real one)."""
    return _global_tracer


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` globally (``None`` restores the no-op default).

    Returns:
        The previously installed tracer (so callers can restore it).
    """
    global _global_tracer
    previous = _global_tracer
    _global_tracer = tracer if tracer is not None else NULL_TRACER
    return previous


@contextlib.contextmanager
def use_tracer(tracer: Tracer) -> Iterator[Tracer]:
    """Scope-install a tracer; restores the previous one on exit."""
    previous = set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
