"""Span-scoped profiling: CPU hotspots, memory snapshots, allocation counters.

The tracer (PR 1) records *where time goes between spans*; this module
records *where it goes inside one* — the instrument the ROADMAP's
"kill the remaining scalar/allocation tax" item needs, and the
measurement substrate the paper's A2 ("pump the brakes": roofline-style
honesty about where cycles are spent) and O2 (standardized, comparable
benchmark reporting) both assume.

Three cooperating pieces, each opt-in and ~free when off:

- :class:`SpanProfiler` — a sidecar attached to a
  :class:`~repro.telemetry.tracer.Tracer` (``tracer.profiler = ...``).
  :meth:`Tracer.profile_span` then captures a cProfile run scoped to the
  span (top-N hotspot table), and optionally a tracemalloc window
  (current/peak bytes, plus bytes attributed to numpy's allocation
  domain) and the process peak-RSS watermark.  With no profiler
  installed ``profile_span`` degrades to a plain ``wall_span``.
- :class:`AllocationMeter` — *explicit, deterministic* byte accounting
  at kernel boundaries.  The SoA kernels
  (:mod:`repro.hw.batch`, :mod:`repro.system.fleet`) report the arrays
  they allocate per call, so a fleet run can state "N bytes allocated
  per rollout" exactly, independent of tracemalloc sampling.  Disabled
  (the default), the cost at each site is one attribute load + branch —
  the same discipline as ``tracer.enabled``.
- Report helpers — :func:`hotspot_rows` / :func:`format_hotspots` turn
  a captured profile into the table ``repro bench --profile`` and
  ``repro fleet --profile-out`` print, and
  :meth:`SpanProfiler.report` emits the JSON-friendly document the CLI
  writes.

cProfile cannot nest: if a capture is already active, inner
``profile_span`` captures record wall time and memory only (their CPU
samples are part of the enclosing capture).  ``ru_maxrss`` is a
process-lifetime high-water mark, monotone by definition; per-span
deltas of it are reported as 0 once the watermark stops moving.
"""

from __future__ import annotations

import contextlib
import cProfile
import pstats
import time
import tracemalloc
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

try:  # POSIX only; peak-RSS reporting degrades to None elsewhere
    import resource
except ImportError:  # pragma: no cover - non-POSIX
    resource = None  # type: ignore[assignment]

__all__ = [
    "AllocationMeter",
    "Hotspot",
    "ProfileRecord",
    "SpanProfiler",
    "format_hotspots",
    "get_alloc_meter",
    "hotspot_rows",
    "measure_allocations",
    "numpy_trace_domain",
    "peak_rss_kb",
]


def peak_rss_kb() -> Optional[int]:
    """Process peak resident-set size in KiB (``None`` off-POSIX).

    ``ru_maxrss`` is kilobytes on Linux and bytes on macOS; normalized
    here to KiB so ledger records compare across both.
    """
    if resource is None:  # pragma: no cover - non-POSIX
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    import sys
    if sys.platform == "darwin":  # pragma: no cover - macOS
        peak //= 1024
    return int(peak)


def numpy_trace_domain() -> Optional[int]:
    """numpy's tracemalloc allocation domain (``None`` if unavailable).

    numpy >= 1.22 registers its data allocations with tracemalloc under
    a dedicated domain, so a snapshot can attribute array bytes
    separately from interpreter objects.
    """
    try:
        import numpy
        return int(numpy.lib.tracemalloc_domain)
    except (ImportError, AttributeError):  # pragma: no cover
        return None


def _domain_bytes(domain: Optional[int]) -> Optional[int]:
    """Bytes currently live in ``domain`` per tracemalloc (None = n/a)."""
    if domain is None or not tracemalloc.is_tracing():
        return None
    snapshot = tracemalloc.take_snapshot().filter_traces(
        [tracemalloc.DomainFilter(inclusive=True, domain=domain)])
    return sum(trace.size for trace in snapshot.traces)


# -- CPU hotspots ------------------------------------------------------

@dataclass(frozen=True)
class Hotspot:
    """One function's share of a captured profile.

    Attributes:
        function: ``file:line(name)`` as pstats prints it.
        calls: Total call count (including recursive re-entries).
        total_s: Time inside the function itself (``tottime``).
        cumulative_s: Time including callees (``cumtime``).
    """

    function: str
    calls: int
    total_s: float
    cumulative_s: float

    def to_dict(self) -> Dict[str, object]:
        return {
            "function": self.function,
            "calls": self.calls,
            "total_s": self.total_s,
            "cumulative_s": self.cumulative_s,
        }


def hotspot_rows(profile: cProfile.Profile,
                 top_n: int = 10) -> List[Hotspot]:
    """The ``top_n`` functions by self-time from a finished profile."""
    stats = pstats.Stats(profile)
    rows = []
    for key, (cc, nc, tt, ct, _callers) in stats.stats.items():
        filename, line, name = key
        if filename == "~":  # builtins print as ~:0(<name>)
            label = name
        else:
            label = f"{filename}:{line}({name})"
        rows.append(Hotspot(function=label, calls=int(nc),
                            total_s=float(tt), cumulative_s=float(ct)))
    rows.sort(key=lambda h: (-h.total_s, h.function))
    return rows[:top_n]


def format_hotspots(hotspots: List[Hotspot],
                    title: str = "Hotspots") -> str:
    """Render a hotspot list as the aligned table the CLI prints."""
    header = f"{'self (ms)':>10} {'cum (ms)':>10} {'calls':>9}  function"
    lines = [title, header, "-" * len(header)]
    for spot in hotspots:
        lines.append(
            f"{spot.total_s * 1e3:>10.2f} {spot.cumulative_s * 1e3:>10.2f}"
            f" {spot.calls:>9d}  {spot.function}")
    return "\n".join(lines)


# -- span capture records ----------------------------------------------

@dataclass
class ProfileRecord:
    """Everything one profiled span captured.

    Attributes:
        name, track: The span the capture was scoped to.
        wall_s: Wall-clock duration of the capture.
        hotspots: Top-N self-time functions (empty if CPU capture was
            off or nested inside another capture).
        cpu_captured: Whether this record owns a cProfile run.
        tracemalloc_current_b: Net traced bytes allocated during the
            span (end minus start; negative if the span freed more than
            it allocated).  ``None`` when memory capture was off.
        tracemalloc_peak_b: Peak traced bytes during the span, relative
            to the span-start baseline.
        numpy_alloc_b: Net bytes in numpy's allocation domain over the
            span (``None`` when numpy or tracemalloc is unavailable).
        rss_peak_kb: Process peak RSS at span end (monotone watermark).
        alloc_sites: :class:`AllocationMeter` deltas recorded during the
            span, ``site -> {"bytes": ..., "arrays": ..., "calls": ...}``.
    """

    name: str
    track: str
    wall_s: float = 0.0
    hotspots: List[Hotspot] = field(default_factory=list)
    cpu_captured: bool = False
    tracemalloc_current_b: Optional[int] = None
    tracemalloc_peak_b: Optional[int] = None
    numpy_alloc_b: Optional[int] = None
    rss_peak_kb: Optional[int] = None
    alloc_sites: Dict[str, Dict[str, float]] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "track": self.track,
            "wall_s": self.wall_s,
            "cpu_captured": self.cpu_captured,
            "hotspots": [spot.to_dict() for spot in self.hotspots],
            "tracemalloc_current_b": self.tracemalloc_current_b,
            "tracemalloc_peak_b": self.tracemalloc_peak_b,
            "numpy_alloc_b": self.numpy_alloc_b,
            "rss_peak_kb": self.rss_peak_kb,
            "alloc_sites": self.alloc_sites,
        }


class SpanProfiler:
    """Opt-in capture sidecar for :meth:`Tracer.profile_span`.

    Args:
        cpu: Capture a cProfile run per (outermost) profiled span.
        memory: Capture a tracemalloc window per profiled span — net and
            peak traced bytes, plus numpy-domain bytes.  Starts
            tracemalloc on demand and stops it again if this capture
            started it.
        top_n: Hotspot rows retained per record.
    """

    def __init__(self, cpu: bool = True, memory: bool = False,
                 top_n: int = 10):
        self.cpu = cpu
        self.memory = memory
        self.top_n = top_n
        self.records: List[ProfileRecord] = []
        self._cpu_active = False

    @contextlib.contextmanager
    def capture(self, name: str, track: str) -> Iterator[ProfileRecord]:
        """Capture one span; appends the finished record."""
        record = ProfileRecord(name=name, track=track)
        meter = get_alloc_meter()
        meter_before = meter.snapshot() if meter.enabled else None

        started_tracing = False
        numpy_before: Optional[int] = None
        if self.memory:
            if not tracemalloc.is_tracing():
                tracemalloc.start()
                started_tracing = True
            tracemalloc.reset_peak()
            current_before, _ = tracemalloc.get_traced_memory()
            numpy_before = _domain_bytes(numpy_trace_domain())
        profile: Optional[cProfile.Profile] = None
        if self.cpu and not self._cpu_active:
            profile = cProfile.Profile()
            self._cpu_active = True
            profile.enable()
        started = time.perf_counter()
        try:
            yield record
        finally:
            record.wall_s = time.perf_counter() - started
            if profile is not None:
                profile.disable()
                self._cpu_active = False
                record.cpu_captured = True
                record.hotspots = hotspot_rows(profile, self.top_n)
            if self.memory:
                current_after, peak = tracemalloc.get_traced_memory()
                record.tracemalloc_current_b = \
                    current_after - current_before
                record.tracemalloc_peak_b = max(
                    0, peak - current_before)
                numpy_after = _domain_bytes(numpy_trace_domain())
                if numpy_before is not None and numpy_after is not None:
                    record.numpy_alloc_b = numpy_after - numpy_before
                if started_tracing:
                    tracemalloc.stop()
            record.rss_peak_kb = peak_rss_kb()
            if meter_before is not None:
                record.alloc_sites = _site_delta(meter_before,
                                                 meter.snapshot())
            self.records.append(record)

    def hotspots(self, name: Optional[str] = None,
                 top_n: Optional[int] = None) -> List[Hotspot]:
        """Merged hotspot view across records (optionally one span
        name), re-ranked by self time."""
        merged: Dict[str, List[float]] = {}
        for record in self.records:
            if name is not None and record.name != name:
                continue
            for spot in record.hotspots:
                entry = merged.setdefault(spot.function, [0, 0.0, 0.0])
                entry[0] += spot.calls
                entry[1] += spot.total_s
                entry[2] += spot.cumulative_s
        rows = [Hotspot(function=fn, calls=int(c), total_s=t,
                        cumulative_s=ct)
                for fn, (c, t, ct) in merged.items()]
        rows.sort(key=lambda h: (-h.total_s, h.function))
        return rows[:top_n if top_n is not None else self.top_n]

    def report(self) -> Dict[str, object]:
        """JSON-friendly document: per-span records + merged hotspots."""
        return {
            "records": [record.to_dict() for record in self.records],
            "hotspots": [spot.to_dict() for spot in self.hotspots()],
        }

    def clear(self) -> None:
        self.records.clear()


# -- explicit allocation accounting ------------------------------------

def _site_delta(before: Dict[str, Dict[str, int]],
                after: Dict[str, Dict[str, int]]
                ) -> Dict[str, Dict[str, int]]:
    delta: Dict[str, Dict[str, int]] = {}
    for site, fields in after.items():
        base = before.get(site, {})
        changed = {key: value - base.get(key, 0)
                   for key, value in fields.items()}
        if any(changed.values()):
            delta[site] = changed
    return delta


class AllocationMeter:
    """Deterministic byte accounting for instrumented kernel sites.

    Producers (the SoA kernels) call :meth:`add` with the arrays they
    allocated; each call is guarded by ``meter.enabled`` at the site,
    so the disabled cost is one attribute load + branch — no tracemalloc
    needed, and the numbers are exact rather than sampled.
    """

    def __init__(self) -> None:
        self.enabled = False
        self._sites: Dict[str, List[int]] = {}

    def add(self, site: str, *arrays) -> int:
        """Record ``arrays`` (anything with ``.nbytes``) against
        ``site``; returns the bytes added."""
        total = 0
        count = 0
        for array in arrays:
            nbytes = getattr(array, "nbytes", None)
            if nbytes is None:
                continue
            total += int(nbytes)
            count += 1
        entry = self._sites.setdefault(site, [0, 0, 0])
        entry[0] += total
        entry[1] += count
        entry[2] += 1
        return total

    def add_bytes(self, site: str, nbytes: int, arrays: int = 1) -> int:
        """Record a raw byte count against ``site`` (for producers that
        size buffers without holding array objects, e.g. arena growth);
        returns the bytes added."""
        entry = self._sites.setdefault(site, [0, 0, 0])
        entry[0] += int(nbytes)
        entry[1] += int(arrays)
        entry[2] += 1
        return int(nbytes)

    def snapshot(self) -> Dict[str, Dict[str, int]]:
        """``site -> {"bytes", "arrays", "calls"}`` (copies)."""
        return {site: {"bytes": entry[0], "arrays": entry[1],
                       "calls": entry[2]}
                for site, entry in sorted(self._sites.items())}

    def total_bytes(self) -> int:
        return sum(entry[0] for entry in self._sites.values())

    def clear(self) -> None:
        self._sites.clear()


#: The process-global meter the kernel sites consult.  One instance for
#: the life of the process (sites may bind it at import time);
#: :func:`measure_allocations` toggles it in place.
_ALLOC_METER = AllocationMeter()


def get_alloc_meter() -> AllocationMeter:
    """The process-global :class:`AllocationMeter` (disabled unless a
    :func:`measure_allocations` scope is active)."""
    return _ALLOC_METER


@contextlib.contextmanager
def measure_allocations(clear: bool = True
                        ) -> Iterator[AllocationMeter]:
    """Enable the global meter for a scope; restores the prior state.

    Args:
        clear: Reset tallies on entry (default), so the scope reads as
            a self-contained measurement.
    """
    meter = _ALLOC_METER
    was_enabled = meter.enabled
    if clear:
        meter.clear()
    meter.enabled = True
    try:
        yield meter
    finally:
        meter.enabled = was_enabled
