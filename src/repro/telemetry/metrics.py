"""Counters, gauges, and streaming histograms.

The histogram is HDR-style: geometric buckets with a fixed growth factor,
so quantiles come from cumulative bucket counts in O(buckets) memory no
matter how many samples are recorded.  With the default 1% bucket growth
the relative quantile error is bounded by ~0.5% (half a bucket), which is
far tighter than the run-to-run noise of any simulation it measures.
"""

from __future__ import annotations

import math
from typing import Dict, List

from repro.errors import TelemetryError

__all__ = ["Counter", "Gauge", "MetricsRegistry", "StreamingHistogram"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise TelemetryError(
                f"counter {self.name!r}: cannot decrease (got {amount})"
            )
        self.value += amount

    def snapshot(self) -> Dict[str, float]:
        return {"value": self.value}


class Gauge:
    """A point-in-time value, with min/max watermarks."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0
        self.min = math.inf
        self.max = -math.inf
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = float(value)
        self.min = min(self.min, self.value)
        self.max = max(self.max, self.value)
        self.updates += 1

    def snapshot(self) -> Dict[str, float]:
        return {
            "value": self.value,
            "min": self.min if self.updates else 0.0,
            "max": self.max if self.updates else 0.0,
            "updates": self.updates,
        }


class StreamingHistogram:
    """Quantile sketch over positive-ish values in bounded memory.

    Values are assigned to geometric buckets ``[v0 * g^i, v0 * g^(i+1))``;
    a quantile query walks the cumulative counts and returns the
    geometric midpoint of the target bucket.  Values at or below
    ``min_value`` (including zero and negatives) land in a dedicated
    underflow bucket reported as ``min_value``.

    Args:
        name: Metric name.
        growth: Bucket growth factor ``g`` (> 1); 1.01 = 1% buckets.
        min_value: Resolution floor; values below it are clamped.
    """

    __slots__ = ("name", "growth", "min_value", "_log_growth",
                 "_buckets", "_underflow", "count", "total",
                 "min", "max")

    def __init__(self, name: str, growth: float = 1.01,
                 min_value: float = 1e-12):
        if growth <= 1.0:
            raise TelemetryError(
                f"histogram {name!r}: growth must be > 1 (got {growth})"
            )
        if min_value <= 0.0:
            raise TelemetryError(
                f"histogram {name!r}: min_value must be > 0"
            )
        self.name = name
        self.growth = growth
        self.min_value = min_value
        self._log_growth = math.log(growth)
        self._buckets: Dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    def record(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)
        if value <= self.min_value:
            self._underflow += 1
            return
        index = int(math.log(value / self.min_value) / self._log_growth)
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def mean(self) -> float:
        if self.count == 0:
            return 0.0
        return self.total / self.count

    def quantile(self, q: float) -> float:
        """The value at quantile ``q`` in [0, 1] (0 on empty)."""
        if not 0.0 <= q <= 1.0:
            raise TelemetryError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * (self.count - 1) + 1
        seen = self._underflow
        if seen >= target:
            return self.min_value
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= target:
                low = self.min_value * self.growth ** index
                return low * math.sqrt(self.growth)
        return self.max

    def summary(self) -> Dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean(),
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
            "p999": self.quantile(0.999),
        }

    snapshot = summary


class MetricsRegistry:
    """A namespace of counters, gauges, and histograms.

    ``counter``/``gauge``/``histogram`` get-or-create by name, so
    producers in different modules can publish into one registry without
    coordinating construction order.  A name may hold only one metric
    type; re-requesting it under a different type raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, factory, kind):
        metric = self._metrics.get(name)
        if metric is None:
            metric = factory(name)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, kind):
            raise TelemetryError(
                f"metric {name!r} already registered as"
                f" {type(metric).__name__}, not {kind.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(self, name: str, growth: float = 1.01,
                  min_value: float = 1e-12) -> StreamingHistogram:
        return self._get_or_create(
            name,
            lambda n: StreamingHistogram(n, growth=growth,
                                         min_value=min_value),
            StreamingHistogram,
        )

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        """``name -> {field -> value}`` for every registered metric."""
        return {
            name: self._metrics[name].snapshot()  # type: ignore[attr-defined]
            for name in self.names()
        }
