"""Exception hierarchy for the :mod:`repro` package.

All exceptions raised intentionally by this package derive from
:class:`ReproError`, so callers can catch framework errors without
accidentally swallowing programming errors (``TypeError`` etc.).
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class ConfigurationError(ReproError):
    """A model or simulation was configured with invalid parameters."""


class ProfileError(ReproError):
    """A workload profile is malformed (negative counts, bad fractions)."""


class MappingError(ReproError):
    """A kernel could not be mapped onto a platform (unsupported op class,
    insufficient resources, or no mapping entry)."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""


class SearchError(ReproError):
    """Design-space exploration failed (empty space, exhausted budget
    without a feasible point, or inconsistent constraints)."""


class PlanningError(ReproError):
    """A motion planner failed in a way that is not a normal "no path
    found" outcome (e.g. start state in collision)."""


class BenchmarkError(ReproError):
    """The benchmark suite was asked to run an unknown or misconfigured
    workload."""


class TelemetryError(ReproError):
    """A telemetry primitive was misused (bad quantile, duplicate metric
    registered under a different type, malformed trace)."""


class EngineError(ReproError):
    """The evaluation engine was misused (unfingerprintable candidate,
    corrupt cache entry, unpicklable objective for a parallel run)."""


class BatchFallback(EngineError):
    """Raised by a batch-capable objective's ``evaluate_batch`` to
    decline a batch it cannot vectorize; the
    :class:`~repro.engine.evaluator.Evaluator` catches it and reprices
    the batch through the scalar path (counted in the
    ``engine.batch_fallbacks`` telemetry)."""


class ServeError(ReproError):
    """The evaluation daemon or its client was misused (malformed wire
    message, unknown operation, response/request mismatch) or the
    transport failed mid-exchange."""


class SpecError(ReproError):
    """A declarative spec is malformed (unknown kind or key, wrong type,
    unresolvable ``ref``, unsupported ``spec_version``).  The message
    always carries a dotted path to the offending field, e.g.
    ``$.suite.targets[2].cores: expected an integer, got str``."""
