"""Sensor sources: rate-driven sample generators with jitter.

Sensors are where end-to-end latency *starts* — a 30 Hz camera adds up to
33 ms of sampling latency before any compute runs, which is why §2.4's
balance between sensor rates and compute rates matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.system.des import Simulator

SampleCallback = Callable[[Simulator, "Sample"], None]


@dataclass(frozen=True)
class Sample:
    """One sensor sample.

    Attributes:
        sensor: Producing sensor's name.
        seq: Monotonic sequence number.
        timestamp: Capture time (simulation seconds).
        nbytes: Payload size.
    """

    sensor: str
    seq: int
    timestamp: float
    nbytes: float


class Sensor:
    """A periodic sensor that emits :class:`Sample` events.

    Args:
        name: Sensor name.
        rate_hz: Nominal sample rate.
        output_bytes: Payload per sample.
        jitter_std_s: Gaussian timing jitter (clipped at half a period so
            ordering never inverts).
        seed: Jitter RNG seed.
    """

    def __init__(self, name: str, rate_hz: float, output_bytes: float,
                 jitter_std_s: float = 0.0, seed: int = 0):
        if rate_hz <= 0:
            raise ConfigurationError(
                f"sensor {name!r}: rate_hz must be > 0"
            )
        if output_bytes < 0 or jitter_std_s < 0:
            raise ConfigurationError(
                f"sensor {name!r}: bytes and jitter must be >= 0"
            )
        self.name = name
        self.rate_hz = rate_hz
        self.output_bytes = output_bytes
        self.jitter_std_s = jitter_std_s
        self._rng = np.random.default_rng(seed)
        self._seq = 0

    @property
    def period_s(self) -> float:
        return 1.0 / self.rate_hz

    def attach(self, sim: Simulator, on_sample: SampleCallback,
               until: Optional[float] = None) -> None:
        """Start emitting samples into ``sim``.

        Args:
            sim: The simulator.
            on_sample: Called for every sample.
            until: Stop emitting after this time (None = forever while
                the simulation runs).
        """
        def emit(s: Simulator) -> None:
            sample = Sample(sensor=self.name, seq=self._seq,
                            timestamp=s.now, nbytes=self.output_bytes)
            self._seq += 1
            on_sample(s, sample)
            delay = self.period_s
            if self.jitter_std_s > 0:
                delay += float(np.clip(
                    self._rng.normal(0.0, self.jitter_std_s),
                    -0.5 * self.period_s, 0.5 * self.period_s,
                ))
            next_time = s.now + max(delay, 1e-9)
            if until is None or next_time <= until:
                s.schedule_at(next_time, emit)

        sim.schedule(0.0, emit)


def camera(rate_hz: float = 30.0, width: int = 640, height: int = 480,
           bytes_per_pixel: int = 2, name: str = "camera") -> Sensor:
    """A camera sensor with a realistic payload size."""
    return Sensor(name=name, rate_hz=rate_hz,
                  output_bytes=float(width * height * bytes_per_pixel),
                  jitter_std_s=0.2e-3)


def imu(rate_hz: float = 200.0, name: str = "imu") -> Sensor:
    """An IMU: tiny payloads at high rate."""
    return Sensor(name=name, rate_hz=rate_hz, output_bytes=64.0,
                  jitter_std_s=0.02e-3)


def lidar(rate_hz: float = 10.0, points: int = 30000,
          name: str = "lidar") -> Sensor:
    """A spinning lidar: large point clouds at low rate."""
    return Sensor(name=name, rate_hz=rate_hz,
                  output_bytes=float(points * 16),
                  jitter_std_s=0.5e-3)
