"""End-to-end system modeling and simulation (MAVBench/RoSE-style).

The paper's central "opportunity" (§3.1): model the *whole* system —
sensors, compute, I/O, actuators, vehicle physics, battery — not just the
kernel.  Components:

- :mod:`~repro.system.des`       — a discrete-event simulation engine;
- :mod:`~repro.system.sensors`   — rate-driven sensor sources with jitter;
- :mod:`~repro.system.io_model`  — serialization/transport costs (the
  "AI tax" of §2.6);
- :mod:`~repro.system.pipeline`  — queued processing pipelines over task
  graphs, with per-sample end-to-end latency accounting;
- :mod:`~repro.system.scheduler` — shared-processor scheduling policies
  (FIFO / priority / EDF / rate-monotonic analysis);
- :mod:`~repro.system.robot`     — UAV mass/power/battery physics;
- :mod:`~repro.system.mission`   — closed-loop missions where compute
  latency limits safe speed and compute mass/power drains the battery
  (the §2.4 experiment);
- :mod:`~repro.system.fleet`     — the vectorized fleet engine: whole
  rollout populations (tiers × scenarios × Monte Carlo perturbations)
  evaluated in closed form, exactly equal to per-rollout
  :func:`~repro.system.mission.run_mission`.
"""

from repro.system.des import Event, Simulator
from repro.system.faults import (
    FaultSchedule,
    ThermalModel,
    run_mission_with_faults,
)
from repro.system.fleet import (
    FleetPerturbation,
    FleetResult,
    FleetRollout,
    FleetStudy,
    FleetStudyResult,
    TierStatistics,
    run_fleet,
    tier_rollouts,
)
from repro.system.io_model import IoModel, ros_like_middleware
from repro.system.mission import (
    Course,
    MissionConfig,
    MissionResult,
    plan_course,
    run_mission,
    sweep_compute_tiers,
)
from repro.system.pipeline import PipelineSimulation, StageStats
from repro.system.robot import BatteryModel, UavPhysics
from repro.system.scheduler import (
    PeriodicTask,
    SchedulerPolicy,
    SchedulerResult,
    simulate_scheduler,
)
from repro.system.sensors import Sensor, camera, imu, lidar

__all__ = [
    "BatteryModel",
    "Course",
    "Event",
    "FaultSchedule",
    "FleetPerturbation",
    "FleetResult",
    "FleetRollout",
    "FleetStudy",
    "FleetStudyResult",
    "IoModel",
    "ThermalModel",
    "TierStatistics",
    "run_mission_with_faults",
    "MissionConfig",
    "MissionResult",
    "PeriodicTask",
    "PipelineSimulation",
    "SchedulerPolicy",
    "SchedulerResult",
    "Sensor",
    "Simulator",
    "StageStats",
    "UavPhysics",
    "camera",
    "imu",
    "lidar",
    "plan_course",
    "ros_like_middleware",
    "run_fleet",
    "run_mission",
    "simulate_scheduler",
    "sweep_compute_tiers",
    "tier_rollouts",
]
