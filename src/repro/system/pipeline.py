"""Queued pipeline simulation over task graphs.

Takes a :class:`~repro.core.workload.TaskGraph`, a per-stage service time
(usually priced by a :mod:`repro.hw` platform), and an
:class:`~repro.system.io_model.IoModel` for inter-stage hops, and runs the
pipeline on the discrete-event engine.  Unlike the closed-form critical
path, this captures queueing: a stage slower than the input rate backs up,
drops frames, and stretches end-to-end latency — the §2.6 effects kernel
benchmarks cannot see.

Semantics:

- each stage is a single server with a bounded queue
  (``queue_capacity``); overflow drops the *oldest* queued item (sensor
  pipelines prefer fresh data);
- stages with multiple dependencies join on sequence number: an
  activation fires when every input with the same ``seq`` has arrived;
- every item carries the timestamp of the source sample that spawned it;
  end-to-end latency is measured at sink completion.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Mapping, Optional, Tuple

from repro.core.workload import TaskGraph
from repro.errors import ConfigurationError
from repro.system.des import Simulator
from repro.system.io_model import IoModel
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.tracer import Tracer, get_tracer


@dataclass
class _Item:
    seq: int
    source_time: float


@dataclass
class StageStats:
    """Per-stage accounting.

    Attributes:
        activations: Times the stage started service.
        completed: Times the stage finished service.
        dropped: Items discarded due to queue overflow.
        busy_s: Total service time accumulated.
        max_queue: Peak queue depth observed.
    """

    activations: int = 0
    completed: int = 0
    dropped: int = 0
    busy_s: float = 0.0
    max_queue: int = 0

    def utilization(self, duration_s: float) -> float:
        if duration_s <= 0:
            raise ConfigurationError("duration must be > 0")
        return min(1.0, self.busy_s / duration_s)


@dataclass
class PipelineResult:
    """Outcome of a pipeline simulation.

    Attributes:
        duration_s: Simulated time span.
        stage_stats: Per-stage statistics.
        end_to_end_latencies: Source-to-sink latency per completed item.
        samples_emitted: Source samples generated.
        samples_completed: Items that reached the sink.
    """

    duration_s: float
    stage_stats: Dict[str, StageStats]
    end_to_end_latencies: List[float]
    samples_emitted: int
    samples_completed: int

    def mean_latency_s(self) -> float:
        if not self.end_to_end_latencies:
            return float("inf")
        return sum(self.end_to_end_latencies) \
            / len(self.end_to_end_latencies)

    def p99_latency_s(self) -> float:
        if not self.end_to_end_latencies:
            return float("inf")
        ordered = sorted(self.end_to_end_latencies)
        index = min(len(ordered) - 1,
                    int(0.99 * (len(ordered) - 1) + 0.5))
        return ordered[index]

    def throughput_hz(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.samples_completed / self.duration_s

    def drop_rate(self) -> float:
        if self.samples_emitted == 0:
            return 0.0
        dropped = sum(s.dropped for s in self.stage_stats.values())
        return min(1.0, dropped / self.samples_emitted)

    def deadline_miss_rate(self, deadline_s: float) -> float:
        """Fraction of *emitted* samples that did not complete within the
        deadline (drops count as misses)."""
        if self.samples_emitted == 0:
            return 0.0
        on_time = sum(1 for lat in self.end_to_end_latencies
                      if lat <= deadline_s)
        return 1.0 - on_time / self.samples_emitted


class PipelineSimulation:
    """Simulate a task graph as a queued pipeline.

    Args:
        graph: The task graph; sources must declare ``rate_hz``.
        service_times: Per-activation service time for every stage.
        io: Inter-stage transport cost model (applied per edge using the
            upstream stage's ``output_bytes``).
        queue_capacity: Per-stage input queue bound.
        tracer: Telemetry tracer; defaults to the process-global one
            (a no-op unless :func:`repro.telemetry.set_tracer` installed
            a real tracer).  When enabled, emits one service span per
            activation on a ``stage:<name>`` track, queue-depth counter
            samples, and drop instants.
        metrics: Optional registry receiving emitted/completed/dropped
            counters, a per-stage peak-queue gauge, and an end-to-end
            latency histogram.
    """

    def __init__(self, graph: TaskGraph,
                 service_times: Mapping[str, float],
                 io: Optional[IoModel] = None,
                 queue_capacity: int = 4,
                 tracer: Optional[Tracer] = None,
                 metrics: Optional[MetricsRegistry] = None):
        for stage in graph.stages:
            if stage.name not in service_times:
                raise ConfigurationError(
                    f"missing service time for stage {stage.name!r}"
                )
            if service_times[stage.name] < 0:
                raise ConfigurationError(
                    f"negative service time for stage {stage.name!r}"
                )
        sources = graph.sources()
        if not sources:
            raise ConfigurationError("graph has no source stages")
        for source in sources:
            if not source.rate_hz or source.rate_hz <= 0:
                raise ConfigurationError(
                    f"source stage {source.name!r} needs rate_hz > 0"
                )
        if queue_capacity < 1:
            raise ConfigurationError("queue_capacity must be >= 1")
        self.graph = graph
        self.service_times = dict(service_times)
        self.io = io or IoModel()
        self.queue_capacity = queue_capacity
        self.tracer = tracer
        self.metrics = metrics

        self._dependents: Dict[str, List[str]] = {
            s.name: [] for s in graph.stages
        }
        for stage in graph.stages:
            for dep in stage.deps:
                self._dependents[dep].append(stage.name)

    def run(self, duration_s: float) -> PipelineResult:
        """Run for ``duration_s`` simulated seconds."""
        if duration_s <= 0:
            raise ConfigurationError("duration_s must be > 0")
        sim = Simulator()
        tracer = self.tracer if self.tracer is not None else get_tracer()
        # Hoisted so the disabled path costs one bool test per site.
        traced = tracer.enabled
        metrics = self.metrics
        stats = {s.name: StageStats() for s in self.graph.stages}
        queues: Dict[str, Deque[_Item]] = {
            s.name: deque() for s in self.graph.stages
        }
        busy: Dict[str, bool] = {s.name: False for s in self.graph.stages}
        # Join buffers: stage -> seq -> count of arrived inputs.
        arrivals: Dict[str, Dict[int, Tuple[int, float]]] = {
            s.name: {} for s in self.graph.stages
        }
        latencies: List[float] = []
        emitted = [0]
        completed = [0]
        sinks = {s.name for s in self.graph.sinks()}

        def try_start(stage_name: str, s: Simulator) -> None:
            if busy[stage_name] or not queues[stage_name]:
                return
            item = queues[stage_name].popleft()
            busy[stage_name] = True
            stats[stage_name].activations += 1
            service = self.service_times[stage_name]
            span = None
            if traced:
                span = tracer.begin(
                    stage_name, ts=s.now, track=f"stage:{stage_name}",
                    args={"seq": item.seq},
                )

            def finish(s2: Simulator, item=item,
                       stage_name=stage_name, span=span) -> None:
                busy[stage_name] = False
                stats[stage_name].completed += 1
                stats[stage_name].busy_s += service
                if span is not None:
                    tracer.end(span, ts=s2.now)
                if stage_name in sinks:
                    latencies.append(s2.now - item.source_time)
                    completed[0] += 1
                else:
                    stage = self.graph.stage(stage_name)
                    hop = self.io.transfer_time_s(stage.output_bytes)
                    for dependent in self._dependents[stage_name]:
                        s2.schedule(
                            hop,
                            lambda s3, d=dependent, it=item:
                            deliver(s3, d, it),
                        )
                try_start(stage_name, s2)

            s.schedule(service, finish)

        def deliver(s: Simulator, stage_name: str, item: _Item) -> None:
            stage = self.graph.stage(stage_name)
            if len(stage.deps) > 1:
                count, earliest = arrivals[stage_name].get(
                    item.seq, (0, item.source_time)
                )
                count += 1
                earliest = min(earliest, item.source_time)
                if count < len(stage.deps):
                    arrivals[stage_name][item.seq] = (count, earliest)
                    return
                del arrivals[stage_name][item.seq]
                item = _Item(seq=item.seq, source_time=earliest)
            queue = queues[stage_name]
            if len(queue) >= self.queue_capacity:
                queue.popleft()
                stats[stage_name].dropped += 1
                if traced:
                    tracer.instant("drop", ts=s.now,
                                   track=f"stage:{stage_name}",
                                   args={"seq": item.seq})
                if metrics is not None:
                    metrics.counter("pipeline.dropped").inc()
            queue.append(item)
            stats[stage_name].max_queue = max(
                stats[stage_name].max_queue, len(queue)
            )
            if traced:
                tracer.counter(f"queue:{stage_name}", ts=s.now,
                               value=len(queue))
            try_start(stage_name, s)

        # Each source keeps its own sequence counter, so stages that join
        # chains descending from *different* sources pair items by index
        # (message_filters-style sync; exact when rates match).
        for source in self.graph.sources():
            period = 1.0 / float(source.rate_hz)  # type: ignore[arg-type]
            seq_counter = [0]

            def emit(s: Simulator, source=source, period=period,
                     seq_counter=seq_counter) -> None:
                item = _Item(seq=seq_counter[0], source_time=s.now)
                seq_counter[0] += 1
                emitted[0] += 1
                deliver(s, source.name, item)
                if s.now + period <= duration_s:
                    s.schedule(period, emit)

            sim.schedule(0.0, emit)

        sim.run(until=duration_s)
        if metrics is not None:
            metrics.counter("pipeline.emitted").inc(emitted[0])
            metrics.counter("pipeline.completed").inc(completed[0])
            histogram = metrics.histogram("pipeline.latency_s")
            for latency in latencies:
                histogram.record(latency)
            for name, stage_stats in stats.items():
                metrics.gauge(f"pipeline.max_queue.{name}").set(
                    stage_stats.max_queue
                )
        return PipelineResult(
            duration_s=duration_s,
            stage_stats=stats,
            end_to_end_latencies=latencies,
            samples_emitted=emitted[0],
            samples_completed=completed[0],
        )
