"""Shared-processor scheduling of periodic real-time tasks.

§2.4's warning that accelerators "introduce complexities in system
scheduling" needs a scheduler to demonstrate it on.  This module simulates
periodic task sets on one processor under FIFO, fixed-priority, and EDF
policies (preemptive for the latter two), and implements the classic
rate-monotonic utilization bound as the analytical cross-check.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.tracer import Tracer, get_tracer


@dataclass(frozen=True)
class PeriodicTask:
    """A periodic hard-deadline task.

    Attributes:
        name: Task name.
        period_s: Release period (deadline = period, implicit-deadline
            model).
        wcet_s: Worst-case execution time per job.
        priority: Smaller = more important (fixed-priority policy only).
    """

    name: str
    period_s: float
    wcet_s: float
    priority: int = 0

    def __post_init__(self) -> None:
        if self.period_s <= 0 or self.wcet_s <= 0:
            raise ConfigurationError(
                f"task {self.name!r}: period and wcet must be > 0"
            )

    @property
    def utilization(self) -> float:
        return self.wcet_s / self.period_s


class SchedulerPolicy(enum.Enum):
    FIFO = "fifo"  # non-preemptive, release order
    FIXED_PRIORITY = "fixed-priority"  # preemptive, static priorities
    EDF = "edf"  # preemptive, earliest deadline first
    RATE_MONOTONIC = "rate-monotonic"  # preemptive, priority ~ 1/period


@dataclass
class SchedulerResult:
    """Outcome of a scheduling simulation.

    Attributes:
        policy: Policy simulated.
        jobs_released: Total jobs released.
        jobs_completed: Jobs that finished (on time or late).
        deadline_misses: Jobs that missed their deadline.
        per_task_misses: Miss counts per task.
        utilization: Task-set utilization (sum of wcet/period).
        max_lateness_s: Worst observed lateness.
    """

    policy: SchedulerPolicy
    jobs_released: int
    jobs_completed: int
    deadline_misses: int
    per_task_misses: Dict[str, int]
    utilization: float
    max_lateness_s: float

    @property
    def miss_rate(self) -> float:
        if self.jobs_released == 0:
            return 0.0
        return self.deadline_misses / self.jobs_released


def response_time_analysis(tasks: List[PeriodicTask]
                           ) -> Dict[str, float]:
    """Exact fixed-priority schedulability: worst-case response times.

    The classic recurrence (Joseph & Pandya)::

        R_i = C_i + sum over higher-priority j of ceil(R_i / T_j) C_j

    iterated to its fixed point.  A task set is fixed-priority
    schedulable iff ``R_i <= T_i`` for every task — an *exact* test,
    unlike the sufficient-only Liu-Layland bound.

    Returns:
        Task name -> worst-case response time (``inf`` when the
        recurrence diverges past the period, i.e. unschedulable).
    """
    if not tasks:
        raise ConfigurationError("need at least one task")
    by_priority = sorted(tasks, key=lambda t: t.priority)
    response: Dict[str, float] = {}
    for index, task in enumerate(by_priority):
        higher = by_priority[:index]
        r = task.wcet_s
        for _ in range(10_000):
            interference = sum(
                math.ceil(r / h.period_s + 1e-12) * h.wcet_s
                for h in higher
            )
            r_next = task.wcet_s + interference
            if r_next > task.period_s:
                r = float("inf")
                break
            if abs(r_next - r) < 1e-12:
                r = r_next
                break
            r = r_next
        response[task.name] = r
    return response


def rm_utilization_bound(n_tasks: int) -> float:
    """Liu & Layland bound ``n (2^(1/n) - 1)`` for rate-monotonic
    schedulability."""
    if n_tasks < 1:
        raise ConfigurationError("n_tasks must be >= 1")
    return n_tasks * (2.0 ** (1.0 / n_tasks) - 1.0)


@dataclass
class _Job:
    task: PeriodicTask
    release: float
    deadline: float
    remaining: float


def _job_key(policy: SchedulerPolicy, job: _Job) -> Tuple[float, float]:
    if policy is SchedulerPolicy.EDF:
        return (job.deadline, job.release)
    if policy is SchedulerPolicy.RATE_MONOTONIC:
        return (job.task.period_s, job.release)
    if policy is SchedulerPolicy.FIXED_PRIORITY:
        return (float(job.task.priority), job.release)
    return (job.release, 0.0)  # FIFO


def simulate_scheduler(tasks: List[PeriodicTask],
                       policy: SchedulerPolicy,
                       duration_s: float,
                       time_step_s: float = 1e-4,
                       tracer: Optional[Tracer] = None
                       ) -> SchedulerResult:
    """Time-stepped simulation of one processor running ``tasks``.

    Preemptive for EDF/priority/RM; non-preemptive for FIFO.  The time
    step bounds simulation error at ``time_step_s`` per job — keep it at
    least ~100x smaller than the shortest period.

    With an enabled ``tracer`` (default: the process-global no-op), the
    run emits a Gantt-reconstructable trace on one ``job:<task>`` track
    per task: an execution span per scheduling interval plus ``release``
    / ``preempt`` / ``complete`` / ``miss`` instants.

    Returns:
        A :class:`SchedulerResult` with deadline-miss accounting.
    """
    if not tasks:
        raise ConfigurationError("need at least one task")
    if duration_s <= 0 or time_step_s <= 0:
        raise ConfigurationError("duration and time step must be > 0")
    shortest = min(t.period_s for t in tasks)
    if time_step_s > shortest / 10.0:
        raise ConfigurationError(
            f"time_step_s {time_step_s} too coarse for shortest period"
            f" {shortest}"
        )

    tracer = tracer if tracer is not None else get_tracer()
    traced = tracer.enabled

    ready: List[_Job] = []
    next_release = {t.name: 0.0 for t in tasks}
    by_name = {t.name: t for t in tasks}
    released = 0
    completed = 0
    misses = 0
    per_task_misses = {t.name: 0 for t in tasks}
    max_lateness = 0.0
    running: Optional[_Job] = None
    run_span = None  # open execution span of the running job

    def _switch_to(job: Optional[_Job], now: float,
                   preempted: bool) -> None:
        """Close the running job's span and open the next one."""
        nonlocal run_span
        if run_span is not None:
            tracer.end(run_span, ts=now)
            run_span = None
        if preempted and running is not None:
            tracer.instant("preempt", ts=now,
                           track=f"job:{running.task.name}")
        if job is not None:
            run_span = tracer.begin(
                job.task.name, ts=now,
                track=f"job:{job.task.name}",
                args={"release": job.release,
                      "deadline": job.deadline},
            )

    steps = int(round(duration_s / time_step_s))
    for step in range(steps):
        now = step * time_step_s
        for name, release_time in list(next_release.items()):
            if now + 1e-12 >= release_time:
                task = by_name[name]
                ready.append(_Job(
                    task=task, release=release_time,
                    deadline=release_time + task.period_s,
                    remaining=task.wcet_s,
                ))
                released += 1
                next_release[name] = release_time + task.period_s
                if traced:
                    tracer.instant(
                        "release", ts=release_time,
                        track=f"job:{name}",
                        args={"deadline":
                              release_time + task.period_s},
                    )

        if policy is SchedulerPolicy.FIFO:
            if running is None and ready:
                ready.sort(key=lambda j: _job_key(policy, j))
                job = ready.pop(0)
                if traced:
                    _switch_to(job, now, preempted=False)
                running = job
        else:
            if ready:
                candidates = ready + ([running] if running else [])
                candidates.sort(key=lambda j: _job_key(policy, j))
                best = candidates[0]
                if best is not running:
                    if traced:
                        _switch_to(best, now,
                                   preempted=running is not None)
                    if running is not None:
                        ready.append(running)
                    ready.remove(best)
                    running = best

        if running is not None:
            running.remaining -= time_step_s
            if running.remaining <= 1e-12:
                finish = now + time_step_s
                completed += 1
                lateness = finish - running.deadline
                if lateness > 1e-9:
                    misses += 1
                    per_task_misses[running.task.name] += 1
                    max_lateness = max(max_lateness, lateness)
                if traced:
                    tracer.instant(
                        "miss" if lateness > 1e-9 else "complete",
                        ts=finish,
                        track=f"job:{running.task.name}",
                        args={"lateness_s": max(0.0, lateness)},
                    )
                    _switch_to(None, finish, preempted=False)
                running = None

    if traced and run_span is not None:
        tracer.end(run_span, ts=duration_s)
        run_span = None

    # Jobs still unfinished at the end whose deadline has passed are
    # misses too — without this, a starved task "never misses" by
    # never completing.
    for job in ready + ([running] if running is not None else []):
        lateness = duration_s - job.deadline
        if lateness > 1e-9:
            misses += 1
            per_task_misses[job.task.name] += 1
            max_lateness = max(max_lateness, lateness)
            if traced:
                tracer.instant("miss", ts=duration_s,
                               track=f"job:{job.task.name}",
                               args={"lateness_s": lateness,
                                     "unfinished": True})

    return SchedulerResult(
        policy=policy,
        jobs_released=released,
        jobs_completed=completed,
        deadline_misses=misses,
        per_task_misses=per_task_misses,
        utilization=sum(t.utilization for t in tasks),
        max_lateness_s=max_lateness,
    )
