"""Closed-loop UAV missions: compute-in-the-loop flight simulation.

The §2.4 experiment, runnable: a quadrotor flies an obstacle course; its
perception-planning-control pipeline runs on a candidate compute tier
whose *latency* bounds safe speed (reaction distance) and whose *mass and
power* drain the battery.  Under-provisioned compute crawls and the
battery dies mid-course; over-provisioned compute flies fast but hauls a
brick — the sweet spot is in the middle, exactly as Krishnan et al. found.

The simulation is time-stepped closed-loop: the vehicle follows a grid-
planned path through a :class:`~repro.kernels.planning.CircleWorld`, the
per-frame pipeline profile is priced on the tier's platform model each
step, and the battery integrates hover + compute power.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.core.profile import WorkloadProfile
from repro.errors import ConfigurationError, SimulationError
from repro.hw.platform import Platform
from repro.kernels.planning.astar import GridPlanner
from repro.kernels.planning.occupancy import CircleWorld, OccupancyGrid
from repro.kernels.vision.features import harris_profile
from repro.kernels.planning.collision import collision_profile
from repro.kernels.control.lqr import lqr_profile
from repro.system.robot import BatteryModel, UavPhysics


def default_frame_profile(scale: float = 1.0) -> WorkloadProfile:
    """Per-frame perception + planning + control workload.

    A DNN-class perception backbone (one ~1 GFLOP GEMM, the im2col view
    of a small detection network), Harris corners on a VGA image, a batch
    of collision checks for local replanning, and a control solve —
    merged into one per-frame profile.  ``scale`` multiplies the workload
    (heavier autonomy stacks).

    The merged profile is forced to a very high parallel fraction: on a
    deployed SoC the residual serial work (NMS, bookkeeping) runs on the
    host cores, not on the accelerator's anemic scalar path.
    """
    if scale <= 0:
        raise ConfigurationError(f"scale must be > 0, got {scale}")
    from repro.kernels.linalg import gemm_profile

    backbone = gemm_profile(256, 4096, 512, name="frame-dnn")
    perception = harris_profile(480, name="frame-perception")
    planning = collision_profile(n_checks=2000, n_obstacles=50,
                                 vectorized=True, name="frame-planning")
    control = lqr_profile(12, 4, riccati_iterations=30,
                          name="frame-control")
    merged = (backbone.combined(perception).combined(planning)
              .combined(control, name="uav-frame"))
    merged = replace(merged, name="uav-frame",
                     parallel_fraction=0.9995)
    return merged.scaled(scale)


@dataclass
class MissionConfig:
    """Mission scenario description.

    Attributes:
        world: 2-D obstacle world to traverse.
        start, goal: Endpoints (must be free).
        uav: Airframe physics.
        battery: Battery pack.
        sensor_rate_hz: Camera rate (adds half a period of sampling
            latency plus a full period when compute is the bottleneck).
        sensing_range_m: Perception horizon for safe-speed computation.
        frame_profile: Per-frame compute workload.
        actuation_latency_s: Motor/ESC response time.
        robot_radius_m: Inflation radius for planning.
        laps: One-way course traversals (odd = end at goal, even = end
            back at start); >1 models patrol/coverage missions where
            endurance matters.
        time_step_s: Integration step.
        max_duration_s: Hard simulation cutoff.
    """

    world: CircleWorld
    start: np.ndarray
    goal: np.ndarray
    uav: UavPhysics = field(default_factory=UavPhysics)
    battery: BatteryModel = field(default_factory=BatteryModel)
    sensor_rate_hz: float = 30.0
    sensing_range_m: float = 10.0
    frame_profile: WorkloadProfile = field(
        default_factory=default_frame_profile
    )
    actuation_latency_s: float = 0.02
    robot_radius_m: float = 0.3
    laps: int = 1
    time_step_s: float = 0.05
    max_duration_s: float = 3600.0

    def __post_init__(self) -> None:
        if self.sensor_rate_hz <= 0:
            raise ConfigurationError("sensor_rate_hz must be > 0")
        if self.sensing_range_m <= 0:
            raise ConfigurationError("sensing_range_m must be > 0")
        if self.time_step_s <= 0:
            raise ConfigurationError("time_step_s must be > 0")
        if self.laps < 1:
            raise ConfigurationError("laps must be >= 1")


@dataclass
class MissionResult:
    """Outcome of one closed-loop mission.

    Attributes:
        success: Goal reached before battery/timeout.
        failure_reason: ``""`` on success; ``"battery"`` or ``"timeout"``.
        mission_time_s: Flight time until success/failure.
        distance_m: Distance covered.
        energy_j: Total energy drawn.
        mean_speed_m_s: Average ground speed.
        safe_speed_m_s: The latency-limited speed bound used.
        pipeline_latency_s: End-to-end perception-to-action latency.
        compute_power_w: Compute power draw.
        hover_power_w: Hover power at all-up mass.
        total_mass_kg: All-up mass.
        endurance_s: Hover endurance with this payload.
    """

    success: bool
    failure_reason: str
    mission_time_s: float
    distance_m: float
    energy_j: float
    mean_speed_m_s: float
    safe_speed_m_s: float
    pipeline_latency_s: float
    compute_power_w: float
    hover_power_w: float
    total_mass_kg: float
    endurance_s: float

    def missions_per_charge(self) -> float:
        """How many such missions one charge supports (>1 is healthy).

        Failed missions score 0.  Degenerate inputs are guarded rather
        than propagated: a free mission (``energy_j <= 0``) supports
        infinitely many repeats, and a zero-power tier (``endurance_s =
        inf`` with zero total power, whose usable energy would otherwise
        evaluate to ``inf * 0 = NaN``) is likewise unlimited.
        """
        if not self.success:
            return 0.0
        if self.energy_j <= 0:
            return float("inf")
        usable = self.endurance_s * (self.hover_power_w
                                     + self.compute_power_w)
        if not math.isfinite(usable):
            return float("inf")
        return usable / self.energy_j


def pipeline_latency_s(platform: Platform,
                       frame_profile: WorkloadProfile,
                       sensor_rate_hz: float,
                       actuation_latency_s: float) -> float:
    """Perception-to-action latency of the frame pipeline on a platform.

    Sampling adds half a sensor period on average; compute adds its
    per-frame latency; when compute is slower than the frame period,
    frames queue/drop and staleness grows by the excess.
    """
    period = 1.0 / sensor_rate_hz
    compute = platform.estimate(frame_profile).latency_s
    staleness = max(0.0, compute - period)
    return 0.5 * period + compute + staleness + actuation_latency_s


@dataclass(frozen=True)
class Course:
    """A planned, lap-expanded mission course with its arc-length table.

    The occupancy-grid rasterization and A* plan that produce a course
    are *tier-independent*: every compute tier (and every battery /
    payload / sensor perturbation of the same scenario) flies the same
    polyline.  Planning once and reusing the :class:`Course` is what
    makes tier sweeps and fleet rollouts cheap; the precomputed
    cumulative lengths are also the single source of truth both the
    scalar chase loop and the vectorized fleet engine consume, so their
    per-step semantics cannot drift apart.

    Attributes:
        waypoints: ``(k, 2)`` world-frame polyline, laps included.
        start: The mission start position the arc lengths are measured
            from (the vehicle's first leg runs start -> waypoint 0).
        cumulative_m: ``(k,)`` arc length from ``start`` through each
            waypoint, i.e. ``cumulative_m[j]`` is the total distance a
            vehicle has flown once it reaches waypoint ``j``.
    """

    waypoints: np.ndarray
    start: np.ndarray
    cumulative_m: np.ndarray

    @property
    def total_length_m(self) -> float:
        """Full course length, start through the last waypoint."""
        return float(self.cumulative_m[-1])

    def __len__(self) -> int:
        return len(self.waypoints)


def plan_course(config: MissionConfig) -> Course:
    """Rasterize, plan, and lap-expand the mission course once.

    Raises:
        ConfigurationError: For non-2-D worlds.
        SimulationError: When no path exists through the world.
    """
    if config.world.dim != 2:
        raise ConfigurationError("missions require a 2-D world")
    grid = OccupancyGrid.from_world(config.world, resolution=0.2)
    planner = GridPlanner(grid, robot_radius=config.robot_radius_m)
    plan = planner.plan(config.start, config.goal)
    if not plan.found:
        raise SimulationError(
            "no path through the mission world; regenerate the scenario"
        )
    waypoints = planner.path_to_world(plan)
    if config.laps > 1:
        forward = waypoints
        backward = waypoints[::-1]
        course = [forward]
        for lap in range(1, config.laps):
            leg = backward if lap % 2 == 1 else forward
            course.append(leg[1:])
        waypoints = np.concatenate(course, axis=0)
    start = np.asarray(config.start, dtype=float).copy()
    legs = np.diff(waypoints, axis=0, prepend=start[None, :])
    gaps = np.sqrt((legs * legs).sum(axis=1))
    return Course(waypoints=waypoints, start=start,
                  cumulative_m=np.cumsum(gaps))


def run_mission(config: MissionConfig, platform: Platform,
                compute_mass_kg: float,
                compute_power_w: float,
                course: Optional[Course] = None) -> MissionResult:
    """Fly the mission with the given compute tier installed.

    The closed-loop traversal is dt-quantized: each step the vehicle
    spends ``total_power * dt`` of battery and advances ``safe_speed *
    dt`` of travel budget along the course's precomputed arc-length
    table.  Waypoint ``j`` counts as reached once the cumulative travel
    budget covers ``course.cumulative_m[j]``.  Every per-step quantity
    is a pure function of the step index (multiplication, not a running
    sum), which is what lets :mod:`repro.system.fleet` evaluate whole
    rollout populations in closed form with field-identical results.

    Args:
        config: Scenario.
        platform: Analytical platform model for the tier.
        compute_mass_kg: Module mass added to the airframe.
        compute_power_w: Module power draw while flying.
        course: Optional precomputed :func:`plan_course` output for this
            exact config (world, endpoints, radius, laps); sweeps pass
            it to plan once instead of once per tier.

    Returns:
        A :class:`MissionResult`; never raises on mission failure (that
        is an outcome, not an error).
    """
    if course is None:
        course = plan_course(config)

    latency = pipeline_latency_s(platform, config.frame_profile,
                                 config.sensor_rate_hz,
                                 config.actuation_latency_s)
    safe_speed = config.uav.safe_speed_m_s(config.sensing_range_m,
                                           latency)

    total_mass = (config.uav.frame_mass_kg + config.battery.mass_kg
                  + compute_mass_kg)
    hover_power = config.uav.hover_power_w(total_mass)
    total_power = hover_power + compute_power_w
    endurance = config.battery.usable_energy_j / total_power

    dt = config.time_step_s
    budget = config.battery.usable_energy_j
    step_travel = safe_speed * dt
    step_energy = total_power * dt
    cumulative = course.cumulative_m.tolist()
    n_waypoints = len(cumulative)

    # Closed-loop traversal: chase waypoints at the safe speed, reading
    # reach-events off the precomputed arc-length table.
    target_index = 0
    steps = 0
    success = False
    reason = "timeout"
    while steps * dt < config.max_duration_s:
        if target_index >= n_waypoints:
            success = True
            reason = ""
            break
        if (steps + 1) * step_energy > budget:
            reason = "battery"
            break
        traveled = (steps + 1) * step_travel
        while (target_index < n_waypoints
               and cumulative[target_index] <= traveled):
            target_index += 1
        steps += 1

    elapsed = steps * dt
    energy = steps * step_energy
    distance = min(steps * step_travel, course.total_length_m)

    return MissionResult(
        success=success,
        failure_reason=reason,
        mission_time_s=elapsed,
        distance_m=distance,
        energy_j=energy,
        mean_speed_m_s=distance / elapsed if elapsed > 0 else 0.0,
        safe_speed_m_s=safe_speed,
        pipeline_latency_s=latency,
        compute_power_w=compute_power_w,
        hover_power_w=hover_power,
        total_mass_kg=total_mass,
        endurance_s=endurance,
    )


def sweep_compute_tiers(
    config: MissionConfig,
    tiers: Sequence[Tuple[str, Platform, float, float]],
    course: Optional[Course] = None,
) -> List[Tuple[str, MissionResult]]:
    """Run the mission across a compute ladder (see
    :func:`repro.hw.catalog.uav_compute_tiers`).

    The occupancy-grid rasterization and A* plan are tier-independent,
    so the sweep plans the course once and reuses it for every tier.

    Returns:
        ``(tier name, result)`` pairs in the given order.
    """
    if not tiers:
        raise ConfigurationError("need at least one tier")
    if course is None:
        course = plan_course(config)
    return [
        (name, run_mission(config, platform, mass, power, course=course))
        for name, platform, mass, power in tiers
    ]
