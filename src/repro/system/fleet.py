"""Vectorized fleet mission engine: batched closed-form rollouts.

:func:`~repro.system.mission.run_mission` simulates ONE (tier, scenario)
pair per call through a time-stepped Python loop — fine for a single
mission, hopeless for the mission-space sweeps the paper's §2.4/§2.6
argument actually needs (tiers × scenarios × Monte Carlo perturbations).
This module evaluates a whole ``(n_rollouts,)`` population at once:

- **Pipeline latency** for every rollout is priced in ONE
  :func:`repro.hw.batch.batch_estimate` call over the population's
  deduplicated platform × frame-profile block (rollouts whose platform
  is not SoA-priceable fall back to scalar ``estimate`` calls, mirroring
  the engine's :class:`~repro.errors.BatchFallback` discipline).
- **Mission outcomes** reduce to closed form: the waypoint chase is
  deterministic given ``safe_speed``, so the dt-quantized traversal is a
  pure function of the step index over the course's cumulative arc
  length.  The first step whose travel budget covers the course is the
  completion step; the first step whose energy draw exceeds the battery
  budget is the cutoff; the timeout bound is the first step at or past
  ``max_duration_s``.  No per-step loop at all — three integer step
  counts per rollout, computed as fused numpy.

**Equivalence contract**: every rollout's :class:`MissionResult` is
**exactly equal**, field for field, to ``run_mission`` on the same
(config, tier) — same dt-quantized time, energy, distance, and failure
reason.  Two ingredients make this hold at the bits:

1. the scalar loop's per-step quantities are multiplication forms
   (``steps * dt``, ``(steps + 1) * step_energy``, ...), never running
   sums, so the closed form evaluates the *same expressions* at the
   final step index; and
2. every vectorized expression mirrors the scalar association order
   with operations that numpy computes identically to Python floats
   (``+ - * /``, ``sqrt``, ``min``/``max``).  The one op where numpy's
   SIMD path rounds differently from CPython — ``x ** 1.5`` inside
   hover power — stays a per-rollout scalar call.

The contract is enforced by ``tests/system/test_fleet.py`` and the
hypothesis suite ``tests/props/test_property_fleet.py``.

On top of the engine, :class:`FleetStudy` runs seeded Monte Carlo
sweeps: per-trial perturbations of battery capacity, payload mass,
sensor rate, and workload scale, shared across tiers (paired draws, so
tier comparisons see the same weather), summarized per tier as success
rates and p50/p90/p99 mission-time / energy statistics.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError
from repro.hw.batch import (
    PlatformSoA,
    ProfileSoA,
    batch_estimate,
    is_soa_priceable,
)
from repro.hw.platform import Platform
from repro.system.mission import (
    Course,
    MissionConfig,
    MissionResult,
    plan_course,
)
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.profiling import get_alloc_meter
from repro.telemetry.tracer import get_tracer

__all__ = [
    "FleetPerturbation",
    "FleetResult",
    "FleetRollout",
    "FleetStudy",
    "FleetStudyResult",
    "TierStatistics",
    "course_key",
    "ensure_course",
    "run_fleet",
    "tier_rollouts",
]

#: ``(tier name, platform, mass_kg, power_w)`` — the ladder row shape
#: shared with :func:`~repro.system.mission.sweep_compute_tiers`.
Tier = Tuple[str, Platform, float, float]


# -- course sharing ----------------------------------------------------

def course_key(config: MissionConfig) -> Tuple:
    """Cache key for the planning inputs of a mission config.

    Perturbing battery/payload/sensor/workload leaves the planned course
    untouched; only the world, endpoints, inflation radius, and lap
    count matter.  The world participates by identity (worlds are
    arrays; hashing contents would cost more than planning saves).
    """
    return (
        id(config.world),
        tuple(np.asarray(config.start, dtype=float).tolist()),
        tuple(np.asarray(config.goal, dtype=float).tolist()),
        float(config.robot_radius_m),
        int(config.laps),
    )


def ensure_course(config: MissionConfig,
                  cache: Optional[Dict[Tuple, Tuple[object, Course]]] = None,
                  ) -> Course:
    """Plan the config's course, reusing ``cache`` across calls.

    The cache maps :func:`course_key` to ``(world, course)``; keeping
    the world object in the entry pins its ``id`` so a recycled id from
    a garbage-collected world can never alias a stale course.
    """
    if cache is None:
        return plan_course(config)
    key = course_key(config)
    entry = cache.get(key)
    if entry is not None and entry[0] is config.world:
        return entry[1]
    course = plan_course(config)
    cache[key] = (config.world, course)
    return course


# -- the rollout population -------------------------------------------

@dataclass(frozen=True)
class FleetRollout:
    """One (scenario, compute tier) pair in a fleet population.

    Attributes:
        name: Label carried through to statistics grouping (typically
            the tier name).
        config: Mission scenario (possibly a perturbed variant).
        platform: Compute platform model for the tier.
        compute_mass_kg: Installed module mass.
        compute_power_w: Installed module power draw.
    """

    name: str
    config: MissionConfig
    platform: Platform
    compute_mass_kg: float
    compute_power_w: float


def tier_rollouts(config: MissionConfig,
                  tiers: Sequence[Tier]) -> List[FleetRollout]:
    """One rollout per ladder tier — the fleet-engine equivalent of
    :func:`~repro.system.mission.sweep_compute_tiers`."""
    if not tiers:
        raise ConfigurationError("need at least one tier")
    return [FleetRollout(name=name, config=config, platform=platform,
                         compute_mass_kg=mass, compute_power_w=power)
            for name, platform, mass, power in tiers]


@dataclass(frozen=True)
class FleetResult:
    """A priced fleet population.

    Attributes:
        rollouts: The population, exactly as submitted.
        results: Per-rollout :class:`MissionResult`, in input order,
            each exactly equal to ``run_mission`` on that rollout.
        batch_priced: Rollouts whose pipeline latency came from the one
            SoA :func:`~repro.hw.batch.batch_estimate` pass.
        scalar_fallback: Rollouts priced through scalar ``estimate``
            (non-SoA-priceable platforms).
    """

    rollouts: Tuple[FleetRollout, ...]
    results: Tuple[MissionResult, ...]
    batch_priced: int
    scalar_fallback: int
    #: Exact bytes of numpy working set the engine allocated for this
    #: population (the rollout SoA columns + closed-form intermediates;
    #: see ``alloc_bytes_per_rollout``).  The instrument behind the
    #: ROADMAP's allocation-tax item: if bytes/rollout grows with
    #: population size, allocation effects are eating the speedup.
    alloc_bytes: int = 0

    def __len__(self) -> int:
        return len(self.results)

    @property
    def alloc_bytes_per_rollout(self) -> float:
        """Engine working-set bytes per rollout (0 on empty fleets)."""
        if not self.results:
            return 0.0
        return self.alloc_bytes / len(self.results)


# -- closed-form step counts ------------------------------------------

def _first_count(unit: np.ndarray, target: np.ndarray,
                 strict: bool) -> np.ndarray:
    """Smallest integer count ``n >= 0`` with ``n * unit >= target``
    (``>`` when ``strict``), elementwise, under float64 arithmetic.

    Counts are float64 (exact for every reachable step index) with
    ``inf`` where no finite count satisfies the bound.  The seed guess
    comes from a rounded division, then bounded fixup sweeps walk it
    onto the exact threshold of the *product* expression — the
    comparison the scalar loop actually evaluates — so the count is
    right even when ``target / unit`` rounds across an integer.
    """
    unit = np.asarray(unit, dtype=float)
    target = np.asarray(target, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = target / unit
    if strict:
        n = np.floor(ratio) + 1.0
    else:
        n = np.ceil(ratio)
    n = np.maximum(n, 0.0)
    adjustable = (np.isfinite(target) & np.isfinite(unit) & (unit > 0)
                  & np.isfinite(n))
    n = np.where(adjustable, n, np.inf)

    def satisfied(count: np.ndarray) -> np.ndarray:
        with np.errstate(invalid="ignore"):
            product = count * unit
        return product > target if strict else product >= target

    # The seed is within a couple of steps of the true threshold; the
    # sweeps are bounded (never `while`) because inf entries would
    # otherwise walk forever (inf - 1 == inf).
    for _ in range(3):
        down = n - 1.0
        n = np.where(adjustable & (down >= 0.0) & satisfied(down),
                     down, n)
    for _ in range(3):
        n = np.where(adjustable & ~satisfied(n), n + 1.0, n)
    return n


# -- the engine --------------------------------------------------------

def run_fleet(rollouts: Sequence[FleetRollout], *,
              metrics: Optional[MetricsRegistry] = None,
              course_cache: Optional[Dict] = None) -> FleetResult:
    """Evaluate a whole rollout population in fused numpy.

    Args:
        rollouts: The population; rollouts may freely share worlds,
            platforms, and frame profiles (sharing is what makes the
            batch block small — platforms and profiles are deduplicated
            by identity before pricing).
        metrics: Optional registry receiving ``fleet.rollouts``,
            ``fleet.batch_hits``, and ``fleet.batch_fallbacks``.
        course_cache: Optional :func:`ensure_course` cache, shared
            across calls; a fresh private one is used by default (so
            rollouts sharing a world still plan only once per call).

    Returns:
        A :class:`FleetResult` whose per-rollout results are exactly
        equal to :func:`~repro.system.mission.run_mission`.
    """
    rollouts = tuple(rollouts)
    tracer = get_tracer()
    with tracer.wall_span("fleet.run", track="fleet") as span:
        result = _run_fleet(rollouts, course_cache)
    if tracer.enabled and span.args is None:
        span.args = {"rollouts": len(rollouts),
                     "batch_priced": result.batch_priced,
                     "scalar_fallback": result.scalar_fallback,
                     "alloc_bytes": result.alloc_bytes}
    if metrics is not None:
        metrics.counter("fleet.rollouts").inc(len(rollouts))
        if result.batch_priced:
            metrics.counter("fleet.batch_hits").inc(result.batch_priced)
        if result.scalar_fallback:
            metrics.counter("fleet.batch_fallbacks").inc(
                result.scalar_fallback)
        if result.alloc_bytes:
            metrics.counter("fleet.alloc_bytes").inc(result.alloc_bytes)
    return result


def _run_fleet(rollouts: Tuple[FleetRollout, ...],
               course_cache: Optional[Dict]) -> FleetResult:
    n = len(rollouts)
    if n == 0:
        return FleetResult(rollouts=(), results=(), batch_priced=0,
                           scalar_fallback=0)
    tracer = get_tracer()
    if course_cache is None:
        course_cache = {}
    with tracer.profile_span("fleet.plan", track="fleet"):
        courses = [ensure_course(r.config, course_cache)
                   for r in rollouts]

    # Per-rollout scalar inputs.  hover_power stays a scalar Python call
    # on purpose: numpy's SIMD `x ** 1.5` rounds differently from
    # CPython's pow on a few per mille of inputs, which would break the
    # bit-equality contract; everything downstream vectorizes exactly.
    with tracer.profile_span("fleet.gather", track="fleet"):
        period = np.empty(n)
        actuation = np.empty(n)
        sensing_range = np.empty(n)
        accel = np.empty(n)
        max_speed = np.empty(n)
        dt = np.empty(n)
        max_duration = np.empty(n)
        budget = np.empty(n)
        length = np.empty(n)
        total_mass = np.empty(n)
        hover_power = np.empty(n)
        compute_power = np.empty(n)
        for i, (rollout, course) in enumerate(zip(rollouts, courses)):
            config = rollout.config
            period[i] = 1.0 / config.sensor_rate_hz
            actuation[i] = config.actuation_latency_s
            sensing_range[i] = config.sensing_range_m
            accel[i] = config.uav.max_accel_m_s2
            max_speed[i] = config.uav.max_speed_m_s
            dt[i] = config.time_step_s
            max_duration[i] = config.max_duration_s
            budget[i] = config.battery.usable_energy_j
            length[i] = course.total_length_m
            mass = (config.uav.frame_mass_kg + config.battery.mass_kg
                    + rollout.compute_mass_kg)
            total_mass[i] = mass
            hover_power[i] = config.uav.hover_power_w(mass)
            compute_power[i] = rollout.compute_power_w

    # Frame-pipeline compute latency: one SoA pass over the population's
    # deduplicated (platform, profile) block; scalar estimates only for
    # platforms the kernel cannot reproduce.
    with tracer.profile_span("fleet.price", track="fleet"):
        compute_latency = np.empty(n)
        priceable = [i for i in range(n)
                     if is_soa_priceable(rollouts[i].platform)]
        fallback = [i for i in range(n) if not is_soa_priceable(
            rollouts[i].platform)]
        if priceable:
            platform_index: Dict[int, int] = {}
            profile_index: Dict[int, int] = {}
            platforms: List[Platform] = []
            profiles: List = []
            rows: List[int] = []
            cols: List[int] = []
            for i in priceable:
                platform = rollouts[i].platform
                row = platform_index.get(id(platform))
                if row is None:
                    row = platform_index[id(platform)] = len(platforms)
                    platforms.append(platform)
                profile = rollouts[i].config.frame_profile
                col = profile_index.get(id(profile))
                if col is None:
                    col = profile_index[id(profile)] = len(profiles)
                    profiles.append(profile)
                rows.append(row)
                cols.append(col)
            cost = batch_estimate(
                PlatformSoA.from_platforms(platforms),
                ProfileSoA.from_profiles(profiles))
            compute_latency[priceable] = cost.latency_s[rows, cols]
        for i in fallback:
            compute_latency[i] = rollouts[i].platform.estimate(
                rollouts[i].config.frame_profile).latency_s

    # Pipeline latency and safe speed — broadcast forms of
    # pipeline_latency_s and UavPhysics.safe_speed_m_s, same
    # association order (see the module docstring's contract).
    with tracer.profile_span("fleet.solve", track="fleet"):
        staleness = np.maximum(compute_latency - period, 0.0)
        latency = 0.5 * period + compute_latency + staleness + actuation
        raw_speed = accel * (np.sqrt(latency * latency
                                     + 2.0 * sensing_range / accel)
                             - latency)
        safe_speed = np.minimum(raw_speed, max_speed)

        total_power = hover_power + compute_power
        endurance = budget / total_power
        step_travel = safe_speed * dt
        step_energy = total_power * dt

        # Closed-form step counts.  The scalar loop, per iteration at
        # step index `s`: exit on timeout when s*dt >= max_duration;
        # succeed when the course is consumed, i.e. when
        # s*step_travel >= length (and at least one step has run —
        # consumption happens inside iterations); break on battery when
        # (s+1)*step_energy > budget.  Check order fixes the tie
        # precedence: timeout, then success, then battery.
        n_timeout = _first_count(dt, max_duration, strict=False)
        n_complete = np.maximum(
            _first_count(step_travel, length, strict=False), 1.0)
        n_battery = _first_count(step_energy, budget, strict=True) - 1.0

        steps = np.minimum(np.minimum(n_timeout, n_complete), n_battery)
        timed_out = n_timeout <= np.minimum(n_complete, n_battery)
        succeeded = ~timed_out & (n_complete <= n_battery)

        elapsed = steps * dt
        energy = steps * step_energy
        distance = np.minimum(steps * step_travel, length)
        mean_speed = np.zeros(n)
        np.divide(distance, elapsed, out=mean_speed, where=elapsed > 0)

    # Exact working-set accounting: every array this engine allocated
    # for the population.  One nbytes sum per call (amortized over all
    # rollouts), published as FleetResult.alloc_bytes and, when a
    # measure_allocations() scope is active, on the global meter.
    soa_arrays = (
        period, actuation, sensing_range, accel, max_speed, dt,
        max_duration, budget, length, total_mass, hover_power,
        compute_power, compute_latency, staleness, latency, raw_speed,
        safe_speed, total_power, endurance, step_travel, step_energy,
        n_timeout, n_complete, n_battery, steps, timed_out, succeeded,
        elapsed, energy, distance, mean_speed,
    )
    alloc_bytes = sum(array.nbytes for array in soa_arrays)
    meter = get_alloc_meter()
    if meter.enabled:
        meter.add("system.fleet.run_fleet", *soa_arrays)

    # Bulk-convert columns to Python scalars (tolist is one C pass;
    # 12 per-element float() calls per rollout are not).
    with tracer.profile_span("fleet.emit", track="fleet"):
        columns = zip(
            succeeded.tolist(), timed_out.tolist(), elapsed.tolist(),
            distance.tolist(), energy.tolist(), mean_speed.tolist(),
            safe_speed.tolist(), latency.tolist(),
            compute_power.tolist(), hover_power.tolist(),
            total_mass.tolist(), endurance.tolist(),
        )
        results = []
        for (ok, late, elapsed_i, distance_i, energy_i, mean_speed_i,
             safe_speed_i, latency_i, compute_power_i, hover_power_i,
             total_mass_i, endurance_i) in columns:
            results.append(MissionResult(
                success=ok,
                failure_reason="" if ok else
                ("timeout" if late else "battery"),
                mission_time_s=elapsed_i,
                distance_m=distance_i,
                energy_j=energy_i,
                mean_speed_m_s=mean_speed_i,
                safe_speed_m_s=safe_speed_i,
                pipeline_latency_s=latency_i,
                compute_power_w=compute_power_i,
                hover_power_w=hover_power_i,
                total_mass_kg=total_mass_i,
                endurance_s=endurance_i,
            ))
    return FleetResult(rollouts=rollouts, results=tuple(results),
                       batch_priced=len(priceable),
                       scalar_fallback=len(fallback),
                       alloc_bytes=alloc_bytes)


def _run_fleet_chunk(rollouts: Sequence[FleetRollout]
                     ) -> Tuple[Tuple[MissionResult, ...], int, int, int]:
    """Pool-worker entry point (module-level for picklability)."""
    result = run_fleet(rollouts)
    return (result.results, result.batch_priced,
            result.scalar_fallback, result.alloc_bytes)


# -- Monte Carlo layer -------------------------------------------------

@dataclass(frozen=True)
class FleetPerturbation:
    """Relative half-widths of the per-trial uniform perturbations.

    Each trial draws one factor per axis from
    ``uniform(1 - width, 1 + width)``; a width of 0 pins that axis.

    Attributes:
        battery_capacity: Pack capacity spread (cell aging, cold packs).
        payload_mass: Compute-module mass spread (cabling, mounts).
        sensor_rate: Camera rate spread (exposure-driven frame drops).
        workload_scale: Per-frame compute spread (scene complexity).
    """

    battery_capacity: float = 0.10
    payload_mass: float = 0.10
    sensor_rate: float = 0.10
    workload_scale: float = 0.25

    def __post_init__(self) -> None:
        for name, value in (
                ("battery_capacity", self.battery_capacity),
                ("payload_mass", self.payload_mass),
                ("sensor_rate", self.sensor_rate),
                ("workload_scale", self.workload_scale)):
            if not 0.0 <= value < 1.0:
                raise ConfigurationError(
                    f"{name} width must be in [0, 1), got {value}")

    def widths(self) -> Tuple[float, float, float, float]:
        return (self.battery_capacity, self.payload_mass,
                self.sensor_rate, self.workload_scale)


@dataclass(frozen=True)
class TierStatistics:
    """Per-tier Monte Carlo summary (times/energies over ALL trials,
    failures included — a dead battery at t=400s is still 400s of
    airtime worth counting).

    Attributes:
        tier: Ladder tier name.
        trials: Trials aggregated.
        success_rate: Fraction of trials that completed the course.
        mission_time_p50_s, mission_time_p90_s, mission_time_p99_s:
            Mission-time percentiles.
        energy_p50_j, energy_p99_j: Energy-draw percentiles.
        failure_counts: ``reason -> count`` over failed trials.
    """

    tier: str
    trials: int
    success_rate: float
    mission_time_p50_s: float
    mission_time_p90_s: float
    mission_time_p99_s: float
    energy_p50_j: float
    energy_p99_j: float
    failure_counts: Dict[str, int]


@dataclass(frozen=True)
class FleetStudyResult:
    """Outcome of a :class:`FleetStudy` run."""

    statistics: Tuple[TierStatistics, ...]
    fleet: FleetResult
    trials: int
    seed: int

    @property
    def batch_priced(self) -> int:
        return self.fleet.batch_priced

    @property
    def scalar_fallback(self) -> int:
        return self.fleet.scalar_fallback

    def best_tier(self) -> TierStatistics:
        """Highest success rate, ties broken by lower median time."""
        return min(self.statistics,
                   key=lambda s: (-s.success_rate, s.mission_time_p50_s))

    def to_rows(self) -> List[Dict]:
        """JSON-friendly per-tier rows (CLI/report format)."""
        return [{
            "tier": s.tier,
            "trials": s.trials,
            "success_rate": round(s.success_rate, 4),
            "mission_time_p50_s": round(s.mission_time_p50_s, 2),
            "mission_time_p90_s": round(s.mission_time_p90_s, 2),
            "mission_time_p99_s": round(s.mission_time_p99_s, 2),
            "energy_p50_j": round(s.energy_p50_j, 1),
            "energy_p99_j": round(s.energy_p99_j, 1),
            "failures": dict(s.failure_counts),
        } for s in self.statistics]


@dataclass
class FleetStudy:
    """A seeded Monte Carlo mission sweep over a compute ladder.

    Every trial draws one perturbation vector (battery capacity,
    payload mass, sensor rate, workload scale) and applies it to EVERY
    tier — paired draws, so tier-vs-tier comparisons are made under
    identical conditions and the between-tier variance is purely the
    compute sizing, not the weather.

    Args:
        config: Baseline mission scenario (the planned course is shared
            by all trials: perturbations never touch the world).
        tiers: Compute ladder, ``(name, platform, mass_kg, power_w)``.
        trials: Monte Carlo trials per tier.
        seed: Perturbation RNG seed (same seed, same study).
        perturbation: Per-axis relative spreads.
    """

    config: MissionConfig
    tiers: Sequence[Tier]
    trials: int = 64
    seed: int = 0
    perturbation: FleetPerturbation = field(
        default_factory=FleetPerturbation)

    def __post_init__(self) -> None:
        if not self.tiers:
            raise ConfigurationError("need at least one tier")
        if self.trials < 1:
            raise ConfigurationError(
                f"trials must be >= 1, got {self.trials}")

    def factors(self) -> np.ndarray:
        """The ``(trials, 4)`` perturbation factor matrix (pure
        function of ``seed``/``trials``/``perturbation``)."""
        widths = np.array(self.perturbation.widths())
        rng = np.random.default_rng(self.seed)
        return rng.uniform(1.0 - widths, 1.0 + widths,
                           size=(self.trials, 4))

    def rollouts(self) -> List[FleetRollout]:
        """The full population, trial-major: every tier flies every
        perturbed scenario."""
        base = self.config
        factors = self.factors()
        population: List[FleetRollout] = []
        for trial in range(self.trials):
            cap, mass, rate, scale = factors[trial]
            perturbed = replace(
                base,
                battery=replace(base.battery,
                                capacity_wh=base.battery.capacity_wh
                                * cap),
                sensor_rate_hz=base.sensor_rate_hz * rate,
                frame_profile=base.frame_profile.scaled(scale),
            )
            for name, platform, module_mass, power in self.tiers:
                population.append(FleetRollout(
                    name=name,
                    config=perturbed,
                    platform=platform,
                    compute_mass_kg=module_mass * mass,
                    compute_power_w=power,
                ))
        return population

    def run(self, *, jobs: int = 1,
            metrics: Optional[MetricsRegistry] = None
            ) -> FleetStudyResult:
        """Evaluate the study population and summarize per tier.

        Args:
            jobs: Process-pool width.  ``jobs > 1`` shards the
                population; shards are independent, so results are
                identical to the serial run (each shard re-plans the
                shared course once — planning, not simulation, is the
                only duplicated work).
            metrics: Optional registry for the ``fleet.*`` counters.
        """
        if jobs < 1:
            raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
        population = self.rollouts()
        if jobs == 1 or len(population) <= jobs:
            fleet = run_fleet(population, metrics=metrics)
        else:
            # Pool workers run run_fleet in their own processes, where
            # no tracer is installed — span the fan-out from the parent
            # so --trace-out still sees the run.
            tracer = get_tracer()
            shards = [population[i::jobs] for i in range(jobs)]
            with tracer.wall_span("fleet.run", track="fleet") as span:
                with ProcessPoolExecutor(max_workers=jobs) as pool:
                    outcomes = list(pool.map(_run_fleet_chunk, shards))
            results: List[Optional[MissionResult]] = [None] * len(
                population)
            batch_priced = 0
            scalar_fallback = 0
            alloc_bytes = 0
            for shard_index, (shard_results, hits, misses,
                              shard_alloc) in enumerate(outcomes):
                for offset, value in enumerate(shard_results):
                    results[shard_index + offset * jobs] = value
                batch_priced += hits
                scalar_fallback += misses
                alloc_bytes += shard_alloc
            if tracer.enabled and span.args is None:
                span.args = {"rollouts": len(population), "jobs": jobs,
                             "batch_priced": batch_priced,
                             "scalar_fallback": scalar_fallback,
                             "alloc_bytes": alloc_bytes}
            fleet = FleetResult(
                rollouts=tuple(population),
                results=tuple(results),  # type: ignore[arg-type]
                batch_priced=batch_priced,
                scalar_fallback=scalar_fallback,
                alloc_bytes=alloc_bytes)
            if metrics is not None:
                metrics.counter("fleet.rollouts").inc(len(population))
                if batch_priced:
                    metrics.counter("fleet.batch_hits").inc(batch_priced)
                if scalar_fallback:
                    metrics.counter("fleet.batch_fallbacks").inc(
                        scalar_fallback)
                if alloc_bytes:
                    metrics.counter("fleet.alloc_bytes").inc(alloc_bytes)
        return FleetStudyResult(
            statistics=tuple(self._summarize(fleet)),
            fleet=fleet,
            trials=self.trials,
            seed=self.seed,
        )

    def _summarize(self, fleet: FleetResult) -> List[TierStatistics]:
        by_tier: Dict[str, List[MissionResult]] = {}
        for rollout, result in zip(fleet.rollouts, fleet.results):
            by_tier.setdefault(rollout.name, []).append(result)
        statistics = []
        for name, _platform, _mass, _power in self.tiers:
            results = by_tier.get(name, [])
            if not results:
                continue
            times = np.array([r.mission_time_s for r in results])
            energies = np.array([r.energy_j for r in results])
            successes = sum(1 for r in results if r.success)
            failures: Dict[str, int] = {}
            for r in results:
                if not r.success:
                    failures[r.failure_reason] = failures.get(
                        r.failure_reason, 0) + 1
            statistics.append(TierStatistics(
                tier=name,
                trials=len(results),
                success_rate=successes / len(results),
                mission_time_p50_s=float(np.percentile(times, 50)),
                mission_time_p90_s=float(np.percentile(times, 90)),
                mission_time_p99_s=float(np.percentile(times, 99)),
                energy_p50_j=float(np.percentile(energies, 50)),
                energy_p99_j=float(np.percentile(energies, 99)),
                failure_counts=failures,
            ))
        return statistics
